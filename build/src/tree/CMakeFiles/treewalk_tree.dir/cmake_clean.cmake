file(REMOVE_RECURSE
  "CMakeFiles/treewalk_tree.dir/delimited.cc.o"
  "CMakeFiles/treewalk_tree.dir/delimited.cc.o.d"
  "CMakeFiles/treewalk_tree.dir/generate.cc.o"
  "CMakeFiles/treewalk_tree.dir/generate.cc.o.d"
  "CMakeFiles/treewalk_tree.dir/term_io.cc.o"
  "CMakeFiles/treewalk_tree.dir/term_io.cc.o.d"
  "CMakeFiles/treewalk_tree.dir/traversal.cc.o"
  "CMakeFiles/treewalk_tree.dir/traversal.cc.o.d"
  "CMakeFiles/treewalk_tree.dir/tree.cc.o"
  "CMakeFiles/treewalk_tree.dir/tree.cc.o.d"
  "CMakeFiles/treewalk_tree.dir/xml_io.cc.o"
  "CMakeFiles/treewalk_tree.dir/xml_io.cc.o.d"
  "libtreewalk_tree.a"
  "libtreewalk_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
