# Empty dependencies file for treewalk_tree.
# This may be replaced when dependencies are built.
