
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tree/delimited.cc" "src/tree/CMakeFiles/treewalk_tree.dir/delimited.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/delimited.cc.o.d"
  "/root/repo/src/tree/generate.cc" "src/tree/CMakeFiles/treewalk_tree.dir/generate.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/generate.cc.o.d"
  "/root/repo/src/tree/term_io.cc" "src/tree/CMakeFiles/treewalk_tree.dir/term_io.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/term_io.cc.o.d"
  "/root/repo/src/tree/traversal.cc" "src/tree/CMakeFiles/treewalk_tree.dir/traversal.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/traversal.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/tree/CMakeFiles/treewalk_tree.dir/tree.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/tree.cc.o.d"
  "/root/repo/src/tree/xml_io.cc" "src/tree/CMakeFiles/treewalk_tree.dir/xml_io.cc.o" "gcc" "src/tree/CMakeFiles/treewalk_tree.dir/xml_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
