file(REMOVE_RECURSE
  "libtreewalk_tree.a"
)
