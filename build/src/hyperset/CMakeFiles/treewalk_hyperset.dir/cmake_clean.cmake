file(REMOVE_RECURSE
  "CMakeFiles/treewalk_hyperset.dir/hyperset.cc.o"
  "CMakeFiles/treewalk_hyperset.dir/hyperset.cc.o.d"
  "libtreewalk_hyperset.a"
  "libtreewalk_hyperset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_hyperset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
