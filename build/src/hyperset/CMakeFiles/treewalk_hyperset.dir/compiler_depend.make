# Empty compiler generated dependencies file for treewalk_hyperset.
# This may be replaced when dependencies are built.
