file(REMOVE_RECURSE
  "libtreewalk_hyperset.a"
)
