file(REMOVE_RECURSE
  "libtreewalk_caterpillar.a"
)
