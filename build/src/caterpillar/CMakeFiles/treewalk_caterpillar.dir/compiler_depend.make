# Empty compiler generated dependencies file for treewalk_caterpillar.
# This may be replaced when dependencies are built.
