file(REMOVE_RECURSE
  "CMakeFiles/treewalk_caterpillar.dir/caterpillar.cc.o"
  "CMakeFiles/treewalk_caterpillar.dir/caterpillar.cc.o.d"
  "libtreewalk_caterpillar.a"
  "libtreewalk_caterpillar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_caterpillar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
