file(REMOVE_RECURSE
  "CMakeFiles/treewalk_protocol.dir/protocol.cc.o"
  "CMakeFiles/treewalk_protocol.dir/protocol.cc.o.d"
  "libtreewalk_protocol.a"
  "libtreewalk_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
