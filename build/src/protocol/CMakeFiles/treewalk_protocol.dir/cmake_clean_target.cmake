file(REMOVE_RECURSE
  "libtreewalk_protocol.a"
)
