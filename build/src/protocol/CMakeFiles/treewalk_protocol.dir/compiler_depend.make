# Empty compiler generated dependencies file for treewalk_protocol.
# This may be replaced when dependencies are built.
