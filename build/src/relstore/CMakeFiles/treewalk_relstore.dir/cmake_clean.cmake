file(REMOVE_RECURSE
  "CMakeFiles/treewalk_relstore.dir/relation.cc.o"
  "CMakeFiles/treewalk_relstore.dir/relation.cc.o.d"
  "CMakeFiles/treewalk_relstore.dir/store.cc.o"
  "CMakeFiles/treewalk_relstore.dir/store.cc.o.d"
  "CMakeFiles/treewalk_relstore.dir/store_eval.cc.o"
  "CMakeFiles/treewalk_relstore.dir/store_eval.cc.o.d"
  "libtreewalk_relstore.a"
  "libtreewalk_relstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_relstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
