# Empty dependencies file for treewalk_relstore.
# This may be replaced when dependencies are built.
