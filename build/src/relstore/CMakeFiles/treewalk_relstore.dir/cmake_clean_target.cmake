file(REMOVE_RECURSE
  "libtreewalk_relstore.a"
)
