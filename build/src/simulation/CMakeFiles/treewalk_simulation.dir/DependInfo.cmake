
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulation/config_graph.cc" "src/simulation/CMakeFiles/treewalk_simulation.dir/config_graph.cc.o" "gcc" "src/simulation/CMakeFiles/treewalk_simulation.dir/config_graph.cc.o.d"
  "/root/repo/src/simulation/logspace_sim.cc" "src/simulation/CMakeFiles/treewalk_simulation.dir/logspace_sim.cc.o" "gcc" "src/simulation/CMakeFiles/treewalk_simulation.dir/logspace_sim.cc.o.d"
  "/root/repo/src/simulation/pebbles.cc" "src/simulation/CMakeFiles/treewalk_simulation.dir/pebbles.cc.o" "gcc" "src/simulation/CMakeFiles/treewalk_simulation.dir/pebbles.cc.o.d"
  "/root/repo/src/simulation/pspace_compile.cc" "src/simulation/CMakeFiles/treewalk_simulation.dir/pspace_compile.cc.o" "gcc" "src/simulation/CMakeFiles/treewalk_simulation.dir/pspace_compile.cc.o.d"
  "/root/repo/src/simulation/string_tm.cc" "src/simulation/CMakeFiles/treewalk_simulation.dir/string_tm.cc.o" "gcc" "src/simulation/CMakeFiles/treewalk_simulation.dir/string_tm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/treewalk_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relstore/CMakeFiles/treewalk_relstore.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/treewalk_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/xtm/CMakeFiles/treewalk_xtm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
