file(REMOVE_RECURSE
  "libtreewalk_simulation.a"
)
