# Empty dependencies file for treewalk_simulation.
# This may be replaced when dependencies are built.
