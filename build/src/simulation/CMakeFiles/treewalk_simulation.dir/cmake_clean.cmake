file(REMOVE_RECURSE
  "CMakeFiles/treewalk_simulation.dir/config_graph.cc.o"
  "CMakeFiles/treewalk_simulation.dir/config_graph.cc.o.d"
  "CMakeFiles/treewalk_simulation.dir/logspace_sim.cc.o"
  "CMakeFiles/treewalk_simulation.dir/logspace_sim.cc.o.d"
  "CMakeFiles/treewalk_simulation.dir/pebbles.cc.o"
  "CMakeFiles/treewalk_simulation.dir/pebbles.cc.o.d"
  "CMakeFiles/treewalk_simulation.dir/pspace_compile.cc.o"
  "CMakeFiles/treewalk_simulation.dir/pspace_compile.cc.o.d"
  "CMakeFiles/treewalk_simulation.dir/string_tm.cc.o"
  "CMakeFiles/treewalk_simulation.dir/string_tm.cc.o.d"
  "libtreewalk_simulation.a"
  "libtreewalk_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
