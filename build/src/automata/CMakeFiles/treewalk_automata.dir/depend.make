# Empty dependencies file for treewalk_automata.
# This may be replaced when dependencies are built.
