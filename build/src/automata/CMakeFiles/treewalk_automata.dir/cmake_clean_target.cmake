file(REMOVE_RECURSE
  "libtreewalk_automata.a"
)
