
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/builder.cc" "src/automata/CMakeFiles/treewalk_automata.dir/builder.cc.o" "gcc" "src/automata/CMakeFiles/treewalk_automata.dir/builder.cc.o.d"
  "/root/repo/src/automata/interpreter.cc" "src/automata/CMakeFiles/treewalk_automata.dir/interpreter.cc.o" "gcc" "src/automata/CMakeFiles/treewalk_automata.dir/interpreter.cc.o.d"
  "/root/repo/src/automata/library.cc" "src/automata/CMakeFiles/treewalk_automata.dir/library.cc.o" "gcc" "src/automata/CMakeFiles/treewalk_automata.dir/library.cc.o.d"
  "/root/repo/src/automata/program.cc" "src/automata/CMakeFiles/treewalk_automata.dir/program.cc.o" "gcc" "src/automata/CMakeFiles/treewalk_automata.dir/program.cc.o.d"
  "/root/repo/src/automata/text_format.cc" "src/automata/CMakeFiles/treewalk_automata.dir/text_format.cc.o" "gcc" "src/automata/CMakeFiles/treewalk_automata.dir/text_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/treewalk_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/relstore/CMakeFiles/treewalk_relstore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
