file(REMOVE_RECURSE
  "CMakeFiles/treewalk_automata.dir/builder.cc.o"
  "CMakeFiles/treewalk_automata.dir/builder.cc.o.d"
  "CMakeFiles/treewalk_automata.dir/interpreter.cc.o"
  "CMakeFiles/treewalk_automata.dir/interpreter.cc.o.d"
  "CMakeFiles/treewalk_automata.dir/library.cc.o"
  "CMakeFiles/treewalk_automata.dir/library.cc.o.d"
  "CMakeFiles/treewalk_automata.dir/program.cc.o"
  "CMakeFiles/treewalk_automata.dir/program.cc.o.d"
  "CMakeFiles/treewalk_automata.dir/text_format.cc.o"
  "CMakeFiles/treewalk_automata.dir/text_format.cc.o.d"
  "libtreewalk_automata.a"
  "libtreewalk_automata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_automata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
