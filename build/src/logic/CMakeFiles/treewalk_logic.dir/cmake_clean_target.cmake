file(REMOVE_RECURSE
  "libtreewalk_logic.a"
)
