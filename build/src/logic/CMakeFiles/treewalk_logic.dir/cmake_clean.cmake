file(REMOVE_RECURSE
  "CMakeFiles/treewalk_logic.dir/atomic_types.cc.o"
  "CMakeFiles/treewalk_logic.dir/atomic_types.cc.o.d"
  "CMakeFiles/treewalk_logic.dir/formula.cc.o"
  "CMakeFiles/treewalk_logic.dir/formula.cc.o.d"
  "CMakeFiles/treewalk_logic.dir/normalize.cc.o"
  "CMakeFiles/treewalk_logic.dir/normalize.cc.o.d"
  "CMakeFiles/treewalk_logic.dir/parser.cc.o"
  "CMakeFiles/treewalk_logic.dir/parser.cc.o.d"
  "CMakeFiles/treewalk_logic.dir/tree_eval.cc.o"
  "CMakeFiles/treewalk_logic.dir/tree_eval.cc.o.d"
  "libtreewalk_logic.a"
  "libtreewalk_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
