# Empty dependencies file for treewalk_logic.
# This may be replaced when dependencies are built.
