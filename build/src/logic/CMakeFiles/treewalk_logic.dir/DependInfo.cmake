
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/atomic_types.cc" "src/logic/CMakeFiles/treewalk_logic.dir/atomic_types.cc.o" "gcc" "src/logic/CMakeFiles/treewalk_logic.dir/atomic_types.cc.o.d"
  "/root/repo/src/logic/formula.cc" "src/logic/CMakeFiles/treewalk_logic.dir/formula.cc.o" "gcc" "src/logic/CMakeFiles/treewalk_logic.dir/formula.cc.o.d"
  "/root/repo/src/logic/normalize.cc" "src/logic/CMakeFiles/treewalk_logic.dir/normalize.cc.o" "gcc" "src/logic/CMakeFiles/treewalk_logic.dir/normalize.cc.o.d"
  "/root/repo/src/logic/parser.cc" "src/logic/CMakeFiles/treewalk_logic.dir/parser.cc.o" "gcc" "src/logic/CMakeFiles/treewalk_logic.dir/parser.cc.o.d"
  "/root/repo/src/logic/tree_eval.cc" "src/logic/CMakeFiles/treewalk_logic.dir/tree_eval.cc.o" "gcc" "src/logic/CMakeFiles/treewalk_logic.dir/tree_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
