file(REMOVE_RECURSE
  "libtreewalk_common.a"
)
