file(REMOVE_RECURSE
  "CMakeFiles/treewalk_common.dir/interner.cc.o"
  "CMakeFiles/treewalk_common.dir/interner.cc.o.d"
  "CMakeFiles/treewalk_common.dir/status.cc.o"
  "CMakeFiles/treewalk_common.dir/status.cc.o.d"
  "libtreewalk_common.a"
  "libtreewalk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
