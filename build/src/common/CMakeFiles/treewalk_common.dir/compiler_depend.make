# Empty compiler generated dependencies file for treewalk_common.
# This may be replaced when dependencies are built.
