file(REMOVE_RECURSE
  "CMakeFiles/treewalk_xpath.dir/compile.cc.o"
  "CMakeFiles/treewalk_xpath.dir/compile.cc.o.d"
  "CMakeFiles/treewalk_xpath.dir/eval.cc.o"
  "CMakeFiles/treewalk_xpath.dir/eval.cc.o.d"
  "CMakeFiles/treewalk_xpath.dir/parser.cc.o"
  "CMakeFiles/treewalk_xpath.dir/parser.cc.o.d"
  "libtreewalk_xpath.a"
  "libtreewalk_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
