# Empty dependencies file for treewalk_xpath.
# This may be replaced when dependencies are built.
