
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xpath/compile.cc" "src/xpath/CMakeFiles/treewalk_xpath.dir/compile.cc.o" "gcc" "src/xpath/CMakeFiles/treewalk_xpath.dir/compile.cc.o.d"
  "/root/repo/src/xpath/eval.cc" "src/xpath/CMakeFiles/treewalk_xpath.dir/eval.cc.o" "gcc" "src/xpath/CMakeFiles/treewalk_xpath.dir/eval.cc.o.d"
  "/root/repo/src/xpath/parser.cc" "src/xpath/CMakeFiles/treewalk_xpath.dir/parser.cc.o" "gcc" "src/xpath/CMakeFiles/treewalk_xpath.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/treewalk_logic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
