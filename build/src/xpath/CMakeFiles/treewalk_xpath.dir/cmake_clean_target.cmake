file(REMOVE_RECURSE
  "libtreewalk_xpath.a"
)
