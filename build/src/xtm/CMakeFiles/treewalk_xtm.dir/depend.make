# Empty dependencies file for treewalk_xtm.
# This may be replaced when dependencies are built.
