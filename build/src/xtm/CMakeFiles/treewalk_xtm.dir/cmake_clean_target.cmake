file(REMOVE_RECURSE
  "libtreewalk_xtm.a"
)
