file(REMOVE_RECURSE
  "CMakeFiles/treewalk_xtm.dir/library.cc.o"
  "CMakeFiles/treewalk_xtm.dir/library.cc.o.d"
  "CMakeFiles/treewalk_xtm.dir/machine.cc.o"
  "CMakeFiles/treewalk_xtm.dir/machine.cc.o.d"
  "CMakeFiles/treewalk_xtm.dir/run.cc.o"
  "CMakeFiles/treewalk_xtm.dir/run.cc.o.d"
  "libtreewalk_xtm.a"
  "libtreewalk_xtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_xtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
