# Empty compiler generated dependencies file for treewalk_regular.
# This may be replaced when dependencies are built.
