
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regular/hedge.cc" "src/regular/CMakeFiles/treewalk_regular.dir/hedge.cc.o" "gcc" "src/regular/CMakeFiles/treewalk_regular.dir/hedge.cc.o.d"
  "/root/repo/src/regular/library.cc" "src/regular/CMakeFiles/treewalk_regular.dir/library.cc.o" "gcc" "src/regular/CMakeFiles/treewalk_regular.dir/library.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
