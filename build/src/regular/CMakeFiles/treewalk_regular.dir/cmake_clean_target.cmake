file(REMOVE_RECURSE
  "libtreewalk_regular.a"
)
