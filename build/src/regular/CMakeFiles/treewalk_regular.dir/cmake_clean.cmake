file(REMOVE_RECURSE
  "CMakeFiles/treewalk_regular.dir/hedge.cc.o"
  "CMakeFiles/treewalk_regular.dir/hedge.cc.o.d"
  "CMakeFiles/treewalk_regular.dir/library.cc.o"
  "CMakeFiles/treewalk_regular.dir/library.cc.o.d"
  "libtreewalk_regular.a"
  "libtreewalk_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/treewalk_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
