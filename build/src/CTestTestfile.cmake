# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("tree")
subdirs("logic")
subdirs("relstore")
subdirs("automata")
subdirs("xpath")
subdirs("xtm")
subdirs("simulation")
subdirs("hyperset")
subdirs("protocol")
subdirs("regular")
subdirs("caterpillar")
