file(REMOVE_RECURSE
  "CMakeFiles/twq.dir/twq.cc.o"
  "CMakeFiles/twq.dir/twq.cc.o.d"
  "twq"
  "twq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
