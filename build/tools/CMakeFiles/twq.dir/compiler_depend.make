# Empty compiler generated dependencies file for twq.
# This may be replaced when dependencies are built.
