# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/tree_test[1]_include.cmake")
include("/root/repo/build/tests/term_io_test[1]_include.cmake")
include("/root/repo/build/tests/delimited_test[1]_include.cmake")
include("/root/repo/build/tests/traversal_test[1]_include.cmake")
include("/root/repo/build/tests/generate_test[1]_include.cmake")
include("/root/repo/build/tests/xml_io_test[1]_include.cmake")
include("/root/repo/build/tests/formula_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/tree_eval_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_types_test[1]_include.cmake")
include("/root/repo/build/tests/relstore_test[1]_include.cmake")
include("/root/repo/build/tests/automata_test[1]_include.cmake")
include("/root/repo/build/tests/library_test[1]_include.cmake")
include("/root/repo/build/tests/xpath_test[1]_include.cmake")
include("/root/repo/build/tests/xtm_test[1]_include.cmake")
include("/root/repo/build/tests/pebbles_test[1]_include.cmake")
include("/root/repo/build/tests/simulation_test[1]_include.cmake")
include("/root/repo/build/tests/hyperset_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/regular_test[1]_include.cmake")
include("/root/repo/build/tests/caterpillar_test[1]_include.cmake")
include("/root/repo/build/tests/text_format_test[1]_include.cmake")
include("/root/repo/build/tests/twp_files_test[1]_include.cmake")
include("/root/repo/build/tests/roundtrip_property_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/normalize_test[1]_include.cmake")
