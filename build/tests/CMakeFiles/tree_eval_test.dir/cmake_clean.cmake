file(REMOVE_RECURSE
  "CMakeFiles/tree_eval_test.dir/tree_eval_test.cc.o"
  "CMakeFiles/tree_eval_test.dir/tree_eval_test.cc.o.d"
  "tree_eval_test"
  "tree_eval_test.pdb"
  "tree_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
