# Empty dependencies file for tree_eval_test.
# This may be replaced when dependencies are built.
