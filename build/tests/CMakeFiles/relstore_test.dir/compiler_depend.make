# Empty compiler generated dependencies file for relstore_test.
# This may be replaced when dependencies are built.
