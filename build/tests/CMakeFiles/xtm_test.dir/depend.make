# Empty dependencies file for xtm_test.
# This may be replaced when dependencies are built.
