file(REMOVE_RECURSE
  "CMakeFiles/xtm_test.dir/xtm_test.cc.o"
  "CMakeFiles/xtm_test.dir/xtm_test.cc.o.d"
  "xtm_test"
  "xtm_test.pdb"
  "xtm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
