file(REMOVE_RECURSE
  "CMakeFiles/twp_files_test.dir/twp_files_test.cc.o"
  "CMakeFiles/twp_files_test.dir/twp_files_test.cc.o.d"
  "twp_files_test"
  "twp_files_test.pdb"
  "twp_files_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twp_files_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
