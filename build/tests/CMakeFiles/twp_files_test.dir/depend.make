# Empty dependencies file for twp_files_test.
# This may be replaced when dependencies are built.
