# Empty compiler generated dependencies file for term_io_test.
# This may be replaced when dependencies are built.
