file(REMOVE_RECURSE
  "CMakeFiles/term_io_test.dir/term_io_test.cc.o"
  "CMakeFiles/term_io_test.dir/term_io_test.cc.o.d"
  "term_io_test"
  "term_io_test.pdb"
  "term_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
