# Empty dependencies file for hyperset_test.
# This may be replaced when dependencies are built.
