file(REMOVE_RECURSE
  "CMakeFiles/hyperset_test.dir/hyperset_test.cc.o"
  "CMakeFiles/hyperset_test.dir/hyperset_test.cc.o.d"
  "hyperset_test"
  "hyperset_test.pdb"
  "hyperset_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
