file(REMOVE_RECURSE
  "CMakeFiles/delimited_test.dir/delimited_test.cc.o"
  "CMakeFiles/delimited_test.dir/delimited_test.cc.o.d"
  "delimited_test"
  "delimited_test.pdb"
  "delimited_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delimited_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
