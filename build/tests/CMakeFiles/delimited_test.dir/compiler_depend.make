# Empty compiler generated dependencies file for delimited_test.
# This may be replaced when dependencies are built.
