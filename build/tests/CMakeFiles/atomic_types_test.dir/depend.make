# Empty dependencies file for atomic_types_test.
# This may be replaced when dependencies are built.
