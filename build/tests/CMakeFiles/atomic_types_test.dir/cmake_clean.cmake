file(REMOVE_RECURSE
  "CMakeFiles/atomic_types_test.dir/atomic_types_test.cc.o"
  "CMakeFiles/atomic_types_test.dir/atomic_types_test.cc.o.d"
  "atomic_types_test"
  "atomic_types_test.pdb"
  "atomic_types_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_types_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
