file(REMOVE_RECURSE
  "CMakeFiles/pebbles_test.dir/pebbles_test.cc.o"
  "CMakeFiles/pebbles_test.dir/pebbles_test.cc.o.d"
  "pebbles_test"
  "pebbles_test.pdb"
  "pebbles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebbles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
