# Empty compiler generated dependencies file for pebbles_test.
# This may be replaced when dependencies are built.
