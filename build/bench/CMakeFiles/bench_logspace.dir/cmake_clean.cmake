file(REMOVE_RECURSE
  "CMakeFiles/bench_logspace.dir/bench_logspace.cc.o"
  "CMakeFiles/bench_logspace.dir/bench_logspace.cc.o.d"
  "bench_logspace"
  "bench_logspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_logspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
