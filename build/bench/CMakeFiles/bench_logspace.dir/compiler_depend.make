# Empty compiler generated dependencies file for bench_logspace.
# This may be replaced when dependencies are built.
