file(REMOVE_RECURSE
  "CMakeFiles/bench_example32.dir/bench_example32.cc.o"
  "CMakeFiles/bench_example32.dir/bench_example32.cc.o.d"
  "bench_example32"
  "bench_example32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_example32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
