# Empty compiler generated dependencies file for bench_example32.
# This may be replaced when dependencies are built.
