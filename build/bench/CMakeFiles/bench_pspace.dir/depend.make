# Empty dependencies file for bench_pspace.
# This may be replaced when dependencies are built.
