file(REMOVE_RECURSE
  "CMakeFiles/bench_pspace.dir/bench_pspace.cc.o"
  "CMakeFiles/bench_pspace.dir/bench_pspace.cc.o.d"
  "bench_pspace"
  "bench_pspace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
