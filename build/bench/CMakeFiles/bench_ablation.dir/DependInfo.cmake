
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation.cc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o" "gcc" "bench/CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xpath/CMakeFiles/treewalk_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/simulation/CMakeFiles/treewalk_simulation.dir/DependInfo.cmake"
  "/root/repo/build/src/xtm/CMakeFiles/treewalk_xtm.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/treewalk_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/automata/CMakeFiles/treewalk_automata.dir/DependInfo.cmake"
  "/root/repo/build/src/relstore/CMakeFiles/treewalk_relstore.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/treewalk_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/hyperset/CMakeFiles/treewalk_hyperset.dir/DependInfo.cmake"
  "/root/repo/build/src/regular/CMakeFiles/treewalk_regular.dir/DependInfo.cmake"
  "/root/repo/build/src/caterpillar/CMakeFiles/treewalk_caterpillar.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/treewalk_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/treewalk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
