# Empty dependencies file for bench_exptime.
# This may be replaced when dependencies are built.
