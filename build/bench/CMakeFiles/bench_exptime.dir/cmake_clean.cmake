file(REMOVE_RECURSE
  "CMakeFiles/bench_exptime.dir/bench_exptime.cc.o"
  "CMakeFiles/bench_exptime.dir/bench_exptime.cc.o.d"
  "bench_exptime"
  "bench_exptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
