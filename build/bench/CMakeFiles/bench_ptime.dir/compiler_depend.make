# Empty compiler generated dependencies file for bench_ptime.
# This may be replaced when dependencies are built.
