file(REMOVE_RECURSE
  "CMakeFiles/bench_ptime.dir/bench_ptime.cc.o"
  "CMakeFiles/bench_ptime.dir/bench_ptime.cc.o.d"
  "bench_ptime"
  "bench_ptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
