# Empty dependencies file for bench_regular.
# This may be replaced when dependencies are built.
