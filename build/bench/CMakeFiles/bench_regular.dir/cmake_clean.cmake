file(REMOVE_RECURSE
  "CMakeFiles/bench_regular.dir/bench_regular.cc.o"
  "CMakeFiles/bench_regular.dir/bench_regular.cc.o.d"
  "bench_regular"
  "bench_regular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
