file(REMOVE_RECURSE
  "CMakeFiles/bench_types.dir/bench_types.cc.o"
  "CMakeFiles/bench_types.dir/bench_types.cc.o.d"
  "bench_types"
  "bench_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
