# Empty compiler generated dependencies file for bench_hyperset.
# This may be replaced when dependencies are built.
