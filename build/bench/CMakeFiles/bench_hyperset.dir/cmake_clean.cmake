file(REMOVE_RECURSE
  "CMakeFiles/bench_hyperset.dir/bench_hyperset.cc.o"
  "CMakeFiles/bench_hyperset.dir/bench_hyperset.cc.o.d"
  "bench_hyperset"
  "bench_hyperset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hyperset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
