file(REMOVE_RECURSE
  "CMakeFiles/bench_dialogues.dir/bench_dialogues.cc.o"
  "CMakeFiles/bench_dialogues.dir/bench_dialogues.cc.o.d"
  "bench_dialogues"
  "bench_dialogues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dialogues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
