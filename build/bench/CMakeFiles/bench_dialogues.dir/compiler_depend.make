# Empty compiler generated dependencies file for bench_dialogues.
# This may be replaced when dependencies are built.
