# Empty dependencies file for protocol_demo.
# This may be replaced when dependencies are built.
