file(REMOVE_RECURSE
  "CMakeFiles/integrity_check.dir/integrity_check.cpp.o"
  "CMakeFiles/integrity_check.dir/integrity_check.cpp.o.d"
  "integrity_check"
  "integrity_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integrity_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
