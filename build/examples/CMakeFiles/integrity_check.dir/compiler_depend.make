# Empty compiler generated dependencies file for integrity_check.
# This may be replaced when dependencies are built.
