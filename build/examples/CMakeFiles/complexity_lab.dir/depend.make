# Empty dependencies file for complexity_lab.
# This may be replaced when dependencies are built.
