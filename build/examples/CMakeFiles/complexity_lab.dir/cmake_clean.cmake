file(REMOVE_RECURSE
  "CMakeFiles/complexity_lab.dir/complexity_lab.cpp.o"
  "CMakeFiles/complexity_lab.dir/complexity_lab.cpp.o.d"
  "complexity_lab"
  "complexity_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complexity_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
