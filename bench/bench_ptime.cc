// E8 (Theorem 7.1(2)): direct interpretation of tw^l programs vs the
// memoizing configuration-graph evaluation.  Shapes to observe: equal
// verdicts; the configuration count grows polynomially (near-linearly
// for the library programs) in the tree size; on programs with repeated
// subcomputations the graph evaluator resolves each start configuration
// once.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/simulation/config_graph.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

Tree Input(int n) {
  std::mt19937 rng(13);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.value_range = 4;
  return RandomTree(rng, options);
}

void BM_TwLDirect(benchmark::State& state) {
  Program p = std::move(RootValueAtSomeLeafProgram()).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto r = interpreter.Run(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    steps = r->stats.steps;
  }
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_TwLConfigGraph(benchmark::State& state) {
  Program p = std::move(RootValueAtSomeLeafProgram()).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  RunOptions options;
  options.max_steps = 100'000'000;
  ConfigGraphResult result;
  for (auto _ : state) {
    auto r = EvaluateViaConfigGraph(p, t, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result = *r;
  }
  state.counters["configs"] = static_cast<double>(result.configs);
  state.counters["steps"] = static_cast<double>(result.steps);
}

void BM_Example32ConfigGraph(benchmark::State& state) {
  Program p = std::move(Example32Program()).value();
  std::mt19937 rng(17);
  Tree t = Example32Tree(rng, static_cast<int>(state.range(0)), true);
  RunOptions options;
  options.max_steps = 100'000'000;
  ConfigGraphResult result;
  for (auto _ : state) {
    auto r = EvaluateViaConfigGraph(p, t, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result = *r;
  }
  state.counters["configs"] = static_cast<double>(result.configs);
  state.counters["memoized_calls"] =
      static_cast<double>(result.memoized_calls);
}

BENCHMARK(BM_TwLDirect)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TwLConfigGraph)->Arg(20)->Arg(60)->Arg(180)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Example32ConfigGraph)->Arg(10)->Arg(30)->Arg(60)
    ->Unit(benchmark::kMillisecond);

}  // namespace
