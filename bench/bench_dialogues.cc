// E6 (Lemma 4.6): the dialogue census.  For each hyperset level m, run
// the set-equality program's protocol on every diagonal input f#f and
// count distinct dialogues.  Shape to observe: hypersets grow as the
// tower exp_m(|D|) while dialogues grow far slower, so from m = 2 on
// distinct hypersets collide — the pigeonhole that proves Theorem 4.1.

#include <benchmark/benchmark.h>

#include "src/automata/library.h"
#include "src/protocol/protocol.h"

namespace {

using namespace treewalk;

constexpr DataValue kHash = -1;

void BM_DialogueCensus(benchmark::State& state) {
  int level = static_cast<int>(state.range(0));
  int domain_size = static_cast<int>(state.range(1));
  std::vector<DataValue> domain;
  for (int i = 0; i < domain_size; ++i) domain.push_back(5 + i);

  Program p = std::move(SetEqualityProgram(kHash)).value();
  ProtocolOptions options;
  options.type_k = 1;

  DialogueCensus census;
  for (auto _ : state) {
    auto r = RunDialogueCensus(p, level, domain, kHash, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    census = *r;
  }
  state.counters["hypersets"] = static_cast<double>(census.num_hypersets);
  state.counters["dialogues"] =
      static_cast<double>(census.num_distinct_dialogues);
  state.counters["collision"] = census.collision_found ? 1 : 0;
}

// (level, |D|): exp_2(3) = 256 protocol runs is the largest cell.
BENCHMARK(BM_DialogueCensus)
    ->Args({1, 2})->Args({1, 3})->Args({1, 4})
    ->Args({2, 2})->Args({2, 3})
    ->Unit(benchmark::kMillisecond);

}  // namespace
