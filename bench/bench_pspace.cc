// E9 (Theorem 7.1(3)): linear-bounded string TMs run directly vs
// compiled into tw^r programs whose relational store carries the tape.
// Shapes to observe: identical verdicts; the store stays O(n) tuples
// (the PSPACE bound); the compiled run pays a polynomial interpretive
// overhead per TM step (active-domain FO updates).

#include <benchmark/benchmark.h>

#include "src/automata/interpreter.h"
#include "src/simulation/pspace_compile.h"
#include "src/simulation/string_tm.h"

namespace {

using namespace treewalk;

std::vector<int> PalindromeInput(int half) {
  std::vector<int> bits;
  for (int i = 0; i < half; ++i) bits.push_back(i % 2);
  std::vector<int> wrapped = {3};
  wrapped.insert(wrapped.end(), bits.begin(), bits.end());
  wrapped.insert(wrapped.end(), bits.rbegin(), bits.rend());
  wrapped.push_back(4);
  return wrapped;
}

void BM_StringTmDirect(benchmark::State& state) {
  StringTm tm = PalindromeTm();
  std::vector<int> input = PalindromeInput(static_cast<int>(state.range(0)));
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto r = RunStringTm(tm, input, 100'000'000);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    steps = r->steps;
  }
  state.counters["tm_steps"] = static_cast<double>(steps);
  state.counters["cells"] = static_cast<double>(input.size());
}

void BM_CompiledTwR(benchmark::State& state) {
  StringTm tm = PalindromeTm();
  Program p = std::move(CompileStringTmToTwR(tm)).value();
  std::vector<int> input = PalindromeInput(static_cast<int>(state.range(0)));
  Tree tree = StringTmInputTree(input);
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  RunStats stats;
  for (auto _ : state) {
    auto r = interpreter.Run(tree);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    stats = r->stats;
  }
  state.counters["program_steps"] = static_cast<double>(stats.steps);
  state.counters["store_tuples"] =
      static_cast<double>(stats.max_store_tuples);
}

BENCHMARK(BM_StringTmDirect)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompiledTwR)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
