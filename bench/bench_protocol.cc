// E5 (Lemma 4.5): the two-party protocol on split strings.  Shapes to
// observe: the protocol's verdict always matches the reference
// evaluation (tested), the transcript is short (dedup bounds rounds),
// and its cost tracks the underlying evaluation.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/library.h"
#include "src/protocol/protocol.h"
#include "src/simulation/config_graph.h"
#include "src/tree/term_io.h"

namespace {

using namespace treewalk;

constexpr DataValue kHash = -1;

std::pair<std::vector<DataValue>, std::vector<DataValue>> Halves(int n) {
  std::mt19937 rng(9);
  std::uniform_int_distribution<DataValue> value(5, 9);
  std::vector<DataValue> f(static_cast<std::size_t>(n));
  std::vector<DataValue> g(static_cast<std::size_t>(n));
  for (auto& v : f) v = value(rng);
  for (auto& v : g) v = value(rng);
  return {f, g};
}

void BM_ProtocolSetEquality(benchmark::State& state) {
  Program p = std::move(SetEqualityProgram(kHash)).value();
  auto [f, g] = Halves(static_cast<int>(state.range(0)));
  std::size_t transcript = 0;
  for (auto _ : state) {
    auto r = RunSplitProtocol(p, f, g, kHash);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    transcript = r->transcript.size();
  }
  state.counters["messages"] = static_cast<double>(transcript);
}

void BM_ReferenceEvaluation(benchmark::State& state) {
  Program p = std::move(SetEqualityProgram(kHash)).value();
  auto [f, g] = Halves(static_cast<int>(state.range(0)));
  std::vector<DataValue> s = f;
  s.push_back(kHash);
  s.insert(s.end(), g.begin(), g.end());
  Tree t = StringTree(s);
  for (auto _ : state) {
    auto r = EvaluateViaConfigGraph(p, t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->accepted);
  }
}

void BM_ProtocolWithLookahead(benchmark::State& state) {
  Program p = std::move(SetEqualityViaLookaheadProgram(kHash)).value();
  auto [f, g] = Halves(static_cast<int>(state.range(0)));
  std::size_t messages = 0, requests = 0;
  for (auto _ : state) {
    auto r = RunSplitProtocol(p, f, g, kHash);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    messages = r->transcript.size();
    requests = 0;
    for (const auto& m : r->transcript) {
      if (m.kind == ProtocolMessage::Kind::kAtpRequest) ++requests;
    }
  }
  state.counters["messages"] = static_cast<double>(messages);
  state.counters["atp_requests"] = static_cast<double>(requests);
}

BENCHMARK(BM_ProtocolSetEquality)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ReferenceEvaluation)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ProtocolWithLookahead)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
