// E1 (Example 3.2): scaling of the tw^{r,l} reference interpreter on the
// delta/leaf-uniformity property, uniform vs poisoned inputs.  Reports
// interpreter steps and atp subcomputations as counters.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

void BM_Example32(benchmark::State& state, bool uniform) {
  int n = static_cast<int>(state.range(0));
  std::mt19937 rng(42);
  Tree tree = Example32Tree(rng, n, uniform);
  Program program = std::move(Example32Program()).value();
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(program, options);
  DelimitedTree delimited = Delimit(tree);

  std::int64_t steps = 0, subs = 0;
  bool accepted = false;
  for (auto _ : state) {
    auto run = interpreter.RunDelimited(delimited.tree);
    if (!run.ok()) state.SkipWithError(run.status().ToString().c_str());
    accepted = run->accepted;
    steps = run->stats.steps;
    subs = run->stats.subcomputations;
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["subcomputations"] = static_cast<double>(subs);
  state.counters["accepted"] = accepted ? 1 : 0;
  state.counters["nodes"] = n;
}

void BM_Example32Uniform(benchmark::State& state) {
  BM_Example32(state, true);
}
void BM_Example32Poisoned(benchmark::State& state) {
  BM_Example32(state, false);
}

BENCHMARK(BM_Example32Uniform)
    ->Arg(10)->Arg(30)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Example32Poisoned)
    ->Arg(10)->Arg(30)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

}  // namespace
