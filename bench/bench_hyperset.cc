// E3 (Lemma 4.2): L^m machinery.  Encoding/decoding cost, membership via
// the reference decoder, and (for m = 1) membership via the FO sentence
// of Lemma 4.2 evaluated on the string tree.  Shape to observe: decoder
// and FO sentence agree (checked in tests); the decoder is linear while
// naive FO evaluation is polynomial of higher degree.

#include <benchmark/benchmark.h>

#include <random>

#include "src/hyperset/hyperset.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/term_io.h"

namespace {

using namespace treewalk;

constexpr DataValue kHash = -1;

Hyperset RandomLevel1(std::mt19937& rng, int domain_size) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<DataValue> atoms;
  for (int v = 0; v < domain_size; ++v) {
    if (coin(rng) != 0) atoms.push_back(5 + v);
  }
  return Hyperset::Atoms(std::move(atoms));
}

void BM_EncodeDecodeRoundTrip(benchmark::State& state) {
  std::mt19937 rng(3);
  // A level-3 hyperset over a small domain.
  std::vector<Hyperset> level2;
  for (int i = 0; i < 4; ++i) {
    std::vector<Hyperset> level1;
    for (int j = 0; j < 3; ++j) level1.push_back(RandomLevel1(rng, 4));
    level2.push_back(std::move(Hyperset::Of(std::move(level1))).value());
  }
  Hyperset h = std::move(Hyperset::Of(std::move(level2))).value();
  for (auto _ : state) {
    std::vector<DataValue> enc = EncodeHyperset(h);
    auto back = DecodeHyperset(3, enc);
    if (!back.ok()) state.SkipWithError("decode failed");
    benchmark::DoNotOptimize(*back == h);
  }
}

void BM_InLmDecoder(benchmark::State& state) {
  int m = static_cast<int>(state.range(0));
  std::mt19937 rng(5);
  std::vector<Hyperset> all = EnumerateHypersets(m, {5, 6});
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const Hyperset& x : all) {
      std::vector<DataValue> s =
          SplitString(EncodeHyperset(x), EncodeHyperset(x), kHash);
      if (InLm(m, s, kHash)) ++hits;
    }
  }
  state.counters["hypersets"] = static_cast<double>(all.size());
  benchmark::DoNotOptimize(hits);
}

void BM_L1MembershipViaFo(benchmark::State& state) {
  int domain_size = static_cast<int>(state.range(0));
  std::vector<DataValue> domain;
  for (int i = 0; i < domain_size; ++i) domain.push_back(5 + i);
  Formula sentence = std::move(ParseFormula(L1Sentence(kHash))).value();
  std::vector<Hyperset> all = EnumerateHypersets(1, domain);
  std::vector<Tree> inputs;
  for (const Hyperset& x : all) {
    inputs.push_back(
        StringTree(SplitString(EncodeHyperset(x), EncodeHyperset(x), kHash)));
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    for (const Tree& t : inputs) {
      auto r = EvalTreeSentence(t, sentence);
      if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
      if (*r) ++hits;
    }
  }
  state.counters["strings"] = static_cast<double>(inputs.size());
  benchmark::DoNotOptimize(hits);
}

BENCHMARK(BM_EncodeDecodeRoundTrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InLmDecoder)->Arg(1)->Arg(2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_L1MembershipViaFo)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace
