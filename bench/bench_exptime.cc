// E13 (Theorem 7.1(4) regime): exponential time from polynomial
// storage.  The store-encoded binary counter takes 2^n - 1 increments
// while its store never exceeds O(n^2) tuples — the configuration space
// of tw^r/tw^{r,l} is exponential even though each configuration is
// polynomial, which is where EXPTIME comes from.

#include <benchmark/benchmark.h>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/tree/term_io.h"

namespace {

using namespace treewalk;

void BM_ExponentialCounter(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Program p = std::move(ExponentialCounterProgram()).value();
  Tree t = StringTree(std::vector<DataValue>(static_cast<std::size_t>(n), 0));
  AssignUniqueIds(t);
  RunOptions options;
  options.max_steps = 1'000'000'000;
  // The visited-set would hold all 2^n configurations; the budget is the
  // intended backstop here.
  options.detect_cycles = false;
  Interpreter interpreter(p, options);
  RunStats stats;
  for (auto _ : state) {
    auto r = interpreter.Run(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    if (!r->accepted) state.SkipWithError("counter did not terminate");
    stats = r->stats;
  }
  state.counters["steps"] = static_cast<double>(stats.steps);
  state.counters["store_tuples"] =
      static_cast<double>(stats.max_store_tuples);
  state.counters["nodes"] = n;
}

BENCHMARK(BM_ExponentialCounter)->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
