// Ablations for the design choices DESIGN.md calls out:
//   (a) exact cycle detection in the interpreter (a store copy + set
//       insert per step) vs budget-only termination;
//   (b) the three tree-walking formalisms on one language (has-label):
//       deterministic tw program, nondeterministic caterpillar product
//       search, bottom-up hedge automaton.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/caterpillar/caterpillar.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/regular/library.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

Tree Input(int n) {
  std::mt19937 rng(37);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b"};
  options.attributes = {};
  return RandomTree(rng, options);
}

void BM_CycleDetection(benchmark::State& state, bool detect) {
  Program p = std::move(HasLabelProgram("missing")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  DelimitedTree delimited = Delimit(t);
  RunOptions options;
  options.max_steps = 100'000'000;
  options.detect_cycles = detect;
  Interpreter interpreter(p, options);
  for (auto _ : state) {
    auto r = interpreter.RunDelimited(delimited.tree);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->accepted);
  }
}

void BM_WithCycleDetection(benchmark::State& state) {
  BM_CycleDetection(state, true);
}
void BM_WithoutCycleDetection(benchmark::State& state) {
  BM_CycleDetection(state, false);
}

void BM_HasLabelWalking(benchmark::State& state) {
  Program p = std::move(HasLabelProgram("b")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  for (auto _ : state) {
    auto r = interpreter.Run(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->accepted);
  }
}

void BM_HasLabelCaterpillar(benchmark::State& state) {
  Caterpillar expr =
      std::move(ParseCaterpillar("(down | right)* b")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = CaterpillarAccepts(t, expr);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(*r);
  }
}

void BM_HasLabelHedge(benchmark::State& state) {
  HedgeAutomaton a = HasLabelHedge("b");
  Tree t = Input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = a.Accepts(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(*r);
  }
}


/// (c) the SelectNodes range planner: the same selector with planning
/// (positive desc(x,y) conjunct prunes to the subtree) vs defeated
/// planning (wrapped in a disjunction).
void BM_Selector(benchmark::State& state, bool planned) {
  std::mt19937 rng(41);
  RandomTreeOptions options;
  options.num_nodes = static_cast<int>(state.range(0));
  options.labels = {"a", "b"};
  options.attributes = {};
  Tree t = RandomTree(rng, options);
  DelimitedTree delimited = Delimit(t);
  Formula phi = std::move(ParseFormula(
                    "exists z (desc(x, y) & E(y, z) & lab(z, #leaf))"))
                    .value();
  if (!planned) phi = Formula::Or(phi, Formula::False());
  // Select from an original mid-tree node: pruning matters away from the
  // root, and an original node always has at least its leaf cap below.
  NodeId origin = delimited.to_delimited[t.size() / 2];
  std::size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectNodes(delimited.tree, phi, origin);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    selected = r->size();
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_SelectorPlanned(benchmark::State& state) {
  BM_Selector(state, true);
}
void BM_SelectorUnplanned(benchmark::State& state) {
  BM_Selector(state, false);
}

BENCHMARK(BM_WithCycleDetection)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WithoutCycleDetection)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HasLabelWalking)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HasLabelCaterpillar)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HasLabelHedge)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectorPlanned)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectorUnplanned)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
