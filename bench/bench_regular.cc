// E10 (Proposition 7.2): the attribute-free regime.  Hedge-automaton
// membership (the regular/MSO side) vs the equivalent tree-walking
// program (the tw side).  Shapes to observe: identical verdicts; the
// bottom-up hedge run is a single linear pass while the walking program
// pays the delimited-DFS constant.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/regular/library.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

Tree Input(int n) {
  std::mt19937 rng(23);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b"};
  options.attributes = {};
  return RandomTree(rng, options);
}

void BM_HedgeParity(benchmark::State& state) {
  HedgeAutomaton a = ParityHedge("b");
  Tree t = Input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = a.Accepts(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(*r);
  }
}

void BM_WalkingParity(benchmark::State& state) {
  Program p = std::move(ParityProgram("b")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto r = interpreter.Run(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    steps = r->stats.steps;
  }
  state.counters["walk_steps"] = static_cast<double>(steps);
}

void BM_HedgeAllLeaves(benchmark::State& state) {
  HedgeAutomaton a = AllLeavesLabelHedge("b");
  Tree t = Input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = a.Accepts(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(*r);
  }
}

void BM_WalkingAllLeaves(benchmark::State& state) {
  Program p = std::move(AllLeavesLabelProgram("b")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  for (auto _ : state) {
    auto r = interpreter.Run(t);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->accepted);
  }
}

BENCHMARK(BM_HedgeParity)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalkingParity)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HedgeAllLeaves)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WalkingAllLeaves)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
