// E11 batch: throughput of the src/engine thread pool on a fixed 64-job
// mixed workload at 1/2/4/8 threads, with a determinism cross-check
// against the serial run, plus the selector cache on/off ablation.
//
// Scaling is only visible when the host actually has multiple cores;
// the jobs/s counter at each thread count is the figure of merit.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "src/automata/builder.h"
#include "src/automata/library.h"
#include "src/engine/batch_journal.h"
#include "src/engine/engine.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

struct Workload {
  std::vector<Program> programs;
  std::vector<Tree> trees;
  std::vector<BatchJob> jobs;
};

/// The same 64-job shape as tests/engine_test.cc, on larger trees so a
/// job is a meaningful unit of work.
const Workload& SharedWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload;
    w->programs.push_back(std::move(HasLabelProgram("a")).value());
    w->programs.push_back(std::move(HasLabelProgram("missing")).value());
    w->programs.push_back(std::move(ParityProgram("a")).value());
    w->programs.push_back(std::move(AllLeavesLabelProgram("a")).value());
    w->programs.push_back(std::move(RootValueAtSomeLeafProgram("a")).value());
    w->programs.push_back(std::move(Example32Program("a")).value());

    std::mt19937 rng(29);
    RandomTreeOptions options;
    options.labels = {"a", "b", "sigma", "delta"};
    options.value_range = 8;
    for (int n : {100, 200, 400, 800}) {
      options.num_nodes = n;
      w->trees.push_back(RandomTree(rng, options));
    }
    w->trees.push_back(Example32Tree(rng, 300, /*uniform=*/true));
    w->trees.push_back(Example32Tree(rng, 300, /*uniform=*/false));

    for (int i = 0; i < 64; ++i) {
      BatchJob job;
      job.program =
          &w->programs[static_cast<std::size_t>(i) % w->programs.size()];
      job.tree = &w->trees[static_cast<std::size_t>(i / 2) % w->trees.size()];
      job.options.max_steps = 100'000'000;
      w->jobs.push_back(job);
    }
    return w;
  }();
  return *workload;
}

bool SameVerdicts(const BatchResult& a, const BatchResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].run.accepted != b.results[i].run.accepted) return false;
    if (!(a.results[i].run.stats == b.results[i].run.stats)) return false;
  }
  return a.stats == b.stats;
}

/// 64 jobs at state.range(0) threads; verifies every timed run is
/// bit-identical to the serial reference.
void BM_Batch64Jobs(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  BatchResult reference =
      std::move(BatchEngine({.num_threads = 1}).RunBatch(w.jobs)).value();
  int threads = static_cast<int>(state.range(0));
  BatchEngine engine({.num_threads = threads});
  for (auto _ : state) {
    auto batch = engine.RunBatch(w.jobs);
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      break;
    }
    if (!SameVerdicts(reference, *batch)) {
      state.SkipWithError("parallel result differs from serial reference");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.jobs.size()));
  state.counters["steps_per_batch"] =
      static_cast<double>(reference.stats.steps);
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() *
                          static_cast<std::int64_t>(w.jobs.size())),
      benchmark::Counter::kIsRate);
}

/// A tw^{r,l} program that fires the *same* FO(exists*) selector k
/// times from the root — the repeated-(selector, origin) pattern the
/// per-run cache exists for (programs whose walks revisit a node, or
/// that call one look-ahead from several states).  Example 3.2 fires
/// each selector at distinct origins and gets no hits by design.
Program RepeatedSelectorProgram(int k) {
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);
  for (int i = 0; i < k; ++i) {
    b.OnLookAhead("#top", "q" + std::to_string(i), "true",
                  "q" + std::to_string(i + 1), "X1",
                  "desc(x, y) & lab(y, #leaf)", "p");
  }
  b.OnMove("#top", "q" + std::to_string(k), "true", "qf", Move::kStay);
  b.OnMove("*", "p", "true", "qf", Move::kStay);
  return std::move(b.Build()).value();
}

/// Selector cache ablation: k = 8 firings of one selector per job, with
/// the cache on vs. off.  With the cache, 1 miss + 7 hits per job —
/// the O(n^2) selector evaluation happens once instead of 8 times.
void BM_BatchSelectorCache(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  Program p = RepeatedSelectorProgram(8);
  std::vector<BatchJob> jobs;
  for (const Tree& t : w.trees) {
    BatchJob job;
    job.program = &p;
    job.tree = &t;
    job.options.max_steps = 100'000'000;
    job.options.cache_selectors = state.range(0) != 0;
    jobs.push_back(job);
  }
  BatchEngine engine({.num_threads = 1});
  std::int64_t hits = 0;
  for (auto _ : state) {
    auto batch = engine.RunBatch(jobs);
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      break;
    }
    if (batch->stats.failed != 0) {
      state.SkipWithError("a cache-ablation job failed");
      break;
    }
    hits = batch->stats.selector_cache_hits;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
  state.counters["cache_hits"] = static_cast<double>(hits);
}

/// E16 journal overhead: the same 64-job workload with every job
/// journaled (2 records per job: one started, one finished), at
/// state.range(0) threads and state.range(1) as the fsync cadence
/// (0 = page-cache only — the crash-consistency default — 1 = fsync
/// per finish, the power-loss-durability setting).  Compare against
/// BM_Batch64Jobs at the same thread count for the overhead ratio.
void BM_Batch64JobsJournaled(benchmark::State& state) {
  const Workload& w = SharedWorkload();
  std::vector<BatchJob> jobs = w.jobs;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].job_id = static_cast<std::uint64_t>(i) + 1;
  }
  int threads = static_cast<int>(state.range(0));
  int sync_every = static_cast<int>(state.range(1));
  const std::string path =
      (std::filesystem::temp_directory_path() / "bench_batch_journal")
          .string();
  BatchEngine engine({.num_threads = threads});
  // The journal is opened once and appended to across iterations —
  // the steady-state shape of a long batch run.  Creation (one-time
  // tmp+rename+fsync) and the final Flush stay outside the timed
  // region, like they sit outside the per-job path in tools/twq.cc.
  std::filesystem::remove(path);
  auto journal = BatchJournal::Open(path, sync_every);
  if (!journal.ok()) {
    state.SkipWithError(journal.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    auto batch = engine.RunBatch(jobs, &*journal);
    if (!batch.ok()) {
      state.SkipWithError(batch.status().ToString().c_str());
      break;
    }
  }
  if (!journal->Flush().ok() || !journal->first_error().ok()) {
    state.SkipWithError("journal I/O failed");
  }
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(jobs.size()));
  state.counters["jobs/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() *
                          static_cast<std::int64_t>(jobs.size())),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_Batch64Jobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_Batch64JobsJournaled)
    ->Args({1, 0})->Args({4, 0})->Args({1, 1})->Args({4, 1})
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_BatchSelectorCache)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
