// Compiled set-at-a-time selector evaluation vs. the reference
// node-at-a-time evaluator (E14).  The workloads are quantifier-depth
// >= 2 FO selectors — the shape atp()-heavy programs evaluate on every
// look-ahead — over random attributed trees.  Every compiled benchmark
// first cross-checks the selected-node set against SelectNodes at each
// measured origin and aborts via SkipWithError on any mismatch, so a
// reported speedup is only ever a speedup on identical answers.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/common/governor.h"
#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

// Quantifier depth >= 2 throughout; `chain` is the two-step composition
// that exercises the guarded join twice, `nested` mixes edge and
// descendant axes, `guarded_forall` adds a universal guard.
constexpr const char* kChain =
    "exists z exists w (E(x, z) & E(z, w) & E(w, y))";
constexpr const char* kNested =
    "exists z (E(x, z) & exists w (E(z, w) & desc(w, y)))";
constexpr const char* kGuardedForall =
    "exists z (desc(x, z) & E(z, y) & forall w (E(z, w) -> lab(w, a)))";

Tree Input(int n) {
  std::mt19937 rng(97);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b"};
  options.attributes = {};
  return RandomTree(rng, options);
}

// A fixed spread of origins: root, shallow, and mid-tree.  Both
// evaluators answer all of them per iteration, so each iteration is
// one "serve a handful of atp look-aheads" unit of work.
std::vector<NodeId> Origins(const Tree& t) {
  return {0, static_cast<NodeId>(t.size() / 4),
          static_cast<NodeId>(t.size() / 2),
          static_cast<NodeId>(3 * t.size() / 4)};
}

void BM_ReferenceSelector(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  std::size_t selected = 0;
  for (auto _ : state) {
    selected = 0;
    for (NodeId origin : origins) {
      auto r = SelectNodes(t, phi, origin);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      selected += r->size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_CompiledSelector(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  AxisIndex index(t);
  Result<CompiledSelector> compiled = CompileSelector(index, phi);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  // Serial cross-check: the compiled answer must equal the reference
  // answer at every origin we are about to time.
  for (NodeId origin : origins) {
    auto reference = SelectNodes(t, phi, origin);
    if (!reference.ok()) {
      state.SkipWithError(reference.status().ToString().c_str());
      return;
    }
    if (compiled->SelectFrom(origin) != *reference) {
      std::string err = "compiled/reference mismatch at origin " +
                        std::to_string(origin);
      state.SkipWithError(err.c_str());
      return;
    }
  }
  std::size_t selected = 0;
  for (auto _ : state) {
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

// Cold-start variant: pays the axis-index build and the compile inside
// the loop.  This is the honest bound for a run that evaluates a
// selector exactly once; the interpreter compiles once per run and
// then amortizes, which BM_CompiledSelector models.
void BM_CompiledSelectorColdStart(benchmark::State& state,
                                  const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  std::size_t selected = 0;
  for (auto _ : state) {
    AxisIndex index(t);
    Result<CompiledSelector> compiled = CompileSelector(index, phi);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

BENCHMARK_CAPTURE(BM_ReferenceSelector, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_ReferenceSelector, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_ReferenceSelector, guarded_forall, kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, guarded_forall, kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, guarded_forall,
                  kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

// --- E15: resource-governor overhead. --------------------------------
//
// The same interpreter run with and without a (roomy) governor: a
// far-future deadline polled at every transition plus a byte budget
// every tracked allocation is charged against.  The pair bounds the
// per-transition cost of the governance hooks; EXPERIMENTS.md targets
// <2% on the walker and the atp()-heavy workload.

void RunGovernedPair(benchmark::State& state, Program (*make)(),
                     Tree (*input)(), bool governed) {
  Program p = make();
  Tree t = input();
  bool accepted = false;
  for (auto _ : state) {
    RunOptions options;
    ResourceGovernor governor;
    if (governed) {
      governor.set_deadline_after(std::chrono::hours(1));
      governor.set_memory_budget(std::int64_t{1} << 32);
      options.governor = &governor;
    }
    Interpreter interpreter(p, options);
    auto r = interpreter.Run(t);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    accepted = r->accepted;
  }
  state.counters["accepted"] = accepted ? 1 : 0;
}

Program MakeParity() { return std::move(ParityProgram("a")).value(); }
Program MakeExample32() { return std::move(Example32Program("a")).value(); }
Tree WalkInput() { return FullTree(2, 8); }
Tree LookaheadInput() {
  std::mt19937 rng(11);
  return Example32Tree(rng, 120, /*uniform=*/true);
}

void BM_InterpreterWalkUngoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeParity, WalkInput, false);
}
void BM_InterpreterWalkGoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeParity, WalkInput, true);
}
void BM_InterpreterLookaheadUngoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeExample32, LookaheadInput, false);
}
void BM_InterpreterLookaheadGoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeExample32, LookaheadInput, true);
}

BENCHMARK(BM_InterpreterWalkUngoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterWalkGoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterLookaheadUngoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterLookaheadGoverned)->Unit(benchmark::kMicrosecond);

}  // namespace
