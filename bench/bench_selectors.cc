// Compiled set-at-a-time selector evaluation vs. the reference
// node-at-a-time evaluator (E14).  The workloads are quantifier-depth
// >= 2 FO selectors — the shape atp()-heavy programs evaluate on every
// look-ahead — over random attributed trees.  Every compiled benchmark
// first cross-checks the selected-node set against SelectNodes at each
// measured origin and aborts via SkipWithError on any mismatch, so a
// reported speedup is only ever a speedup on identical answers.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/common/atomic_file.h"
#include "src/common/governor.h"
#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/selector_cache.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/snapshot.h"
#include "src/tree/term_io.h"

namespace {

using namespace treewalk;

// Quantifier depth >= 2 throughout; `chain` is the two-step composition
// that exercises the guarded join twice, `nested` mixes edge and
// descendant axes, `guarded_forall` adds a universal guard.
constexpr const char* kChain =
    "exists z exists w (E(x, z) & E(z, w) & E(w, y))";
constexpr const char* kNested =
    "exists z (E(x, z) & exists w (E(z, w) & desc(w, y)))";
constexpr const char* kGuardedForall =
    "exists z (desc(x, z) & E(z, y) & forall w (E(z, w) -> lab(w, a)))";

Tree Input(int n) {
  std::mt19937 rng(97);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b"};
  options.attributes = {};
  return RandomTree(rng, options);
}

// A fixed spread of origins: root, shallow, and mid-tree.  Both
// evaluators answer all of them per iteration, so each iteration is
// one "serve a handful of atp look-aheads" unit of work.
std::vector<NodeId> Origins(const Tree& t) {
  return {0, static_cast<NodeId>(t.size() / 4),
          static_cast<NodeId>(t.size() / 2),
          static_cast<NodeId>(3 * t.size() / 4)};
}

void BM_ReferenceSelector(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  std::size_t selected = 0;
  for (auto _ : state) {
    selected = 0;
    for (NodeId origin : origins) {
      auto r = SelectNodes(t, phi, origin);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      selected += r->size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_CompiledSelector(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  AxisIndex index(t);
  Result<CompiledSelector> compiled = CompileSelector(index, phi);
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().ToString().c_str());
    return;
  }
  // Serial cross-check: the compiled answer must equal the reference
  // answer at every origin we are about to time.
  for (NodeId origin : origins) {
    auto reference = SelectNodes(t, phi, origin);
    if (!reference.ok()) {
      state.SkipWithError(reference.status().ToString().c_str());
      return;
    }
    if (compiled->SelectFrom(origin) != *reference) {
      std::string err = "compiled/reference mismatch at origin " +
                        std::to_string(origin);
      state.SkipWithError(err.c_str());
      return;
    }
  }
  std::size_t selected = 0;
  for (auto _ : state) {
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

// Cold-start variant: pays the axis-index build and the compile inside
// the loop.  This is the honest bound for a run that evaluates a
// selector exactly once; the interpreter compiles once per run and
// then amortizes, which BM_CompiledSelector models.
void BM_CompiledSelectorColdStart(benchmark::State& state,
                                  const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  std::size_t selected = 0;
  for (auto _ : state) {
    AxisIndex index(t);
    Result<CompiledSelector> compiled = CompileSelector(index, phi);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

BENCHMARK_CAPTURE(BM_ReferenceSelector, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, chain, kChain)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_ReferenceSelector, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, nested, kNested)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

BENCHMARK_CAPTURE(BM_ReferenceSelector, guarded_forall, kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelector, guarded_forall, kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_CompiledSelectorColdStart, guarded_forall,
                  kGuardedForall)
    ->Arg(100)->Arg(400)->Unit(benchmark::kMicrosecond);

// --- E18: the representation wall. -----------------------------------
//
// Dense-vs-interval cold starts over a size sweep, then the million-
// node arms only the interval representation can reach at all (one
// dense n=10^6 axis matrix is ~116 GiB).  Every arm runs under a
// memory-budgeted governor and reports the governor-accounted peak as
// `peak_mb`, so the O(n) vs O(n^2) space story is in the numbers, not
// just the wall clock.  Cross-checks happen before timing: the sweep
// compares the two representations against each other, the million-
// node arms compare against direct tree navigation (the reference
// evaluator would take hours at that size).

Tree ChainInput(int n) {
  std::mt19937 rng(131);
  return RandomString(rng, n, 2);
}

Tree XmlInput(int n) {
  std::mt19937 rng(131);
  return XmlLikeTree(rng, n);
}

// Ground truth for kChain by navigation: the great-grandchildren of u.
std::vector<NodeId> GreatGrandchildren(const Tree& t, NodeId u) {
  std::vector<NodeId> out;
  for (NodeId z = t.FirstChild(u); z != kNoNode; z = t.NextSibling(z)) {
    for (NodeId w = t.FirstChild(z); w != kNoNode; w = t.NextSibling(w)) {
      for (NodeId y = t.FirstChild(w); y != kNoNode; y = t.NextSibling(y)) {
        out.push_back(y);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Ground truth for kGuardedForall by navigation: children of any strict
// descendant z of u all of whose children are labeled `a`.
std::vector<NodeId> GuardedForallAnswer(const Tree& t, NodeId u) {
  const Symbol a = t.FindLabel("a");
  std::vector<NodeId> out;
  for (NodeId z = u + 1; z < t.SubtreeEnd(u); ++z) {
    bool all_a = true;
    for (NodeId w = t.FirstChild(z); w != kNoNode; w = t.NextSibling(w)) {
      if (t.label(w) != a) {
        all_a = false;
        break;
      }
    }
    if (!all_a) continue;
    for (NodeId y = t.FirstChild(z); y != kNoNode; y = t.NextSibling(y)) {
      out.push_back(y);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

// Cold start under a fixed representation: per-iteration governor +
// axis index + compile + the origin spread, with the interval and
// dense answers cross-checked against each other up front.
void BM_SelectorReprColdStart(benchmark::State& state, const char* selector,
                              AxisRepr repr) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  {
    AxisIndex index(t);
    Result<CompiledSelector> interval =
        CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
    Result<CompiledSelector> dense =
        CompileSelector(index, phi, "x", "y", AxisRepr::kDense);
    if (!interval.ok() || !dense.ok()) {
      state.SkipWithError("cross-check compile failed");
      return;
    }
    for (NodeId origin : origins) {
      if (interval->SelectFrom(origin) != dense->SelectFrom(origin)) {
        state.SkipWithError("interval/dense mismatch");
        return;
      }
    }
  }
  std::size_t selected = 0;
  std::int64_t peak = 0;
  for (auto _ : state) {
    ResourceGovernor governor;
    governor.set_memory_budget(std::int64_t{4} << 30);
    AxisIndex index(t, &governor);
    Result<CompiledSelector> compiled =
        CompileSelector(index, phi, "x", "y", repr);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
    peak = governor.accountant()->peak();
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_mb"] =
      static_cast<double>(peak) / (1024.0 * 1024.0);
}

// The million-node arms: interval-only cold starts on three tree
// shapes, cross-checked against navigation ground truth.
void BM_MillionNodeSelector(benchmark::State& state, Tree (*make)(int),
                            const char* selector,
                            std::vector<NodeId> (*truth)(const Tree&,
                                                         NodeId)) {
  Tree t = make(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins = Origins(t);
  {
    AxisIndex index(t);
    Result<CompiledSelector> compiled =
        CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    for (NodeId origin : origins) {
      if (compiled->SelectFrom(origin) != truth(t, origin)) {
        std::string err = "compiled/navigation mismatch at origin " +
                          std::to_string(origin);
        state.SkipWithError(err.c_str());
        return;
      }
    }
  }
  std::size_t selected = 0;
  std::int64_t peak = 0;
  for (auto _ : state) {
    ResourceGovernor governor;
    governor.set_memory_budget(std::int64_t{1} << 30);
    AxisIndex index(t, &governor);
    Result<CompiledSelector> compiled =
        CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
    peak = governor.accountant()->peak();
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_mb"] =
      static_cast<double>(peak) / (1024.0 * 1024.0);
}

// The dense sweep stops at 4000: one cold start at n=16000 already
// takes ~97 s (the compose is O(n^3/64)), and the 1000 -> 4000 step —
// 25 ms -> 1.6 s against the interval column's 1 ms -> 5 ms — shows
// the wall without burning CI minutes on it.
BENCHMARK_CAPTURE(BM_SelectorReprColdStart, chain_dense, kChain,
                  AxisRepr::kDense)
    ->Arg(1000)->Arg(4000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SelectorReprColdStart, chain_interval, kChain,
                  AxisRepr::kInterval)
    ->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_MillionNodeSelector, chain_tree, ChainInput, kChain,
                  GreatGrandchildren)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MillionNodeSelector, random_tree, Input, kChain,
                  GreatGrandchildren)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MillionNodeSelector, xml_tree, XmlInput, kChain,
                  GreatGrandchildren)
    ->Arg(1000000)->Unit(benchmark::kMillisecond);
// The guard-fold path scales past the dense wall too, but its span
// lists are much wider (every all-a-children family contributes), so
// the arm runs at 10^5 — already 25x beyond where a dense matrix fits
// — to keep the suite's wall clock sane (10^6 measured once: ~220 s).
BENCHMARK_CAPTURE(BM_MillionNodeSelector, random_guarded_forall, Input,
                  kGuardedForall, GuardedForallAnswer)
    ->Arg(100000)->Unit(benchmark::kMillisecond);

// --- E19: zero-parse startup. ----------------------------------------
//
// What does it cost to go from "files on disk" to "compiled selector
// answering queries"?  Two arms at n=10^5 over the same random
// attributed tree and the same quantifier-depth-2 selector:
//
//   parse_compile   read the .term text, parse it, build the axis
//                   index, compile the selector — the pre-snapshot
//                   cold start every invocation used to pay;
//   snapshot_cache  mmap the .twsnap (zero parsing, zero re-numbering;
//                   the compiled-axis postorder section is adopted
//                   directly) and deserialize the compiled selector
//                   from the persistent cache (zero compilation).
//
// Both arms run under a memory-budgeted governor and report the
// governor-accounted peak as `peak_mb`; both cross-check the selected
// set at the origin spread against the other arm before timing, so the
// speedup is on identical answers.  EXPERIMENTS.md E19 targets >= 10x.

constexpr int kE19Nodes = 100000;

struct E19Fixture {
  std::string term_path;
  std::string snap_path;
  std::string cache_dir;
  SelectorCacheKey key;
};

// Writes the .term, the .twsnap, and a warm selector-cache entry under
// the current (build) directory once; every E19 arm shares them.
const E19Fixture& E19Setup() {
  static const E19Fixture* fixture = [] {
    auto* f = new E19Fixture();
    f->term_path = "e19_input.term";
    f->snap_path = "e19_input.twsnap";
    f->cache_dir = ".";
    Tree t = Input(kE19Nodes);
    if (!WriteFileAtomic(f->term_path, PrintTerm(t)).ok() ||
        !WriteTreeSnapshot(t, f->snap_path).ok()) {
      return f;  // arms will SkipWithError on the missing files
    }
    Formula phi = std::move(ParseFormula(kChain)).value();
    AxisIndex index(t);
    Result<CompiledSelector> compiled =
        CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
    if (compiled.ok()) {
      f->key.formula_hash = StableFormulaHash(phi, "x", "y");
      f->key.tree_hash = TreeContentHash(t);
      f->key.repr = AxisRepr::kInterval;
      SelectorDiskCache cache(f->cache_dir);
      (void)cache.Store(f->key, *compiled);
    }
    return f;
  }();
  return *fixture;
}

void BM_ColdStartParseCompile(benchmark::State& state) {
  const E19Fixture& f = E19Setup();
  Formula phi = std::move(ParseFormula(kChain)).value();
  std::size_t selected = 0;
  std::int64_t peak = 0;
  for (auto _ : state) {
    ResourceGovernor governor;
    governor.set_memory_budget(std::int64_t{4} << 30);
    auto text = ReadFileBytes(f.term_path);
    if (!text.ok()) {
      state.SkipWithError(text.status().ToString().c_str());
      return;
    }
    auto tree = ParseTerm(*text);
    if (!tree.ok()) {
      state.SkipWithError(tree.status().ToString().c_str());
      return;
    }
    AxisIndex index(*tree, &governor);
    Result<CompiledSelector> compiled =
        CompileSelector(index, phi, "x", "y", AxisRepr::kInterval);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : Origins(*tree)) {
      selected += compiled->SelectFrom(origin).size();
    }
    peak = governor.accountant()->peak();
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_mb"] = static_cast<double>(peak) / (1024.0 * 1024.0);
}

void BM_ColdStartSnapshotCache(benchmark::State& state) {
  const E19Fixture& f = E19Setup();
  Formula phi = std::move(ParseFormula(kChain)).value();
  // Cross-check: the mmap + cache answer must match parse + compile.
  {
    auto text = ReadFileBytes(f.term_path);
    auto tree = text.ok() ? ParseTerm(*text) : Result<Tree>(text.status());
    auto snap = LoadTreeSnapshot(f.snap_path);
    if (!tree.ok() || !snap.ok()) {
      state.SkipWithError("E19 fixture missing");
      return;
    }
    AxisIndex fresh_index(*tree);
    AxisIndex snap_index(*snap);
    SelectorDiskCache cache(f.cache_dir);
    Result<CompiledSelector> fresh =
        CompileSelector(fresh_index, phi, "x", "y", AxisRepr::kInterval);
    Result<CompiledSelector> cached = cache.Load(f.key);
    if (!fresh.ok() || !cached.ok()) {
      state.SkipWithError("E19 cross-check compile/load failed");
      return;
    }
    for (NodeId origin : Origins(*tree)) {
      if (fresh->SelectFrom(origin) != cached->SelectFrom(origin)) {
        state.SkipWithError("snapshot+cache/fresh mismatch");
        return;
      }
    }
  }
  std::size_t selected = 0;
  std::int64_t peak = 0;
  for (auto _ : state) {
    ResourceGovernor governor;
    governor.set_memory_budget(std::int64_t{4} << 30);
    auto tree = LoadTreeSnapshot(f.snap_path, &governor);
    if (!tree.ok()) {
      state.SkipWithError(tree.status().ToString().c_str());
      return;
    }
    AxisIndex index(*tree, &governor);
    SelectorDiskCache cache(f.cache_dir);
    Result<CompiledSelector> compiled = CompileSelectorCached(
        index, phi, "x", "y", AxisRepr::kInterval, &cache, f.key.tree_hash);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : Origins(*tree)) {
      selected += compiled->SelectFrom(origin).size();
    }
    peak = governor.accountant()->peak();
  }
  state.counters["selected"] = static_cast<double>(selected);
  state.counters["peak_mb"] = static_cast<double>(peak) / (1024.0 * 1024.0);
}

BENCHMARK(BM_ColdStartParseCompile)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ColdStartSnapshotCache)->Unit(benchmark::kMillisecond);

// --- E15: resource-governor overhead. --------------------------------
//
// The same interpreter run with and without a (roomy) governor: a
// far-future deadline polled at every transition plus a byte budget
// every tracked allocation is charged against.  The pair bounds the
// per-transition cost of the governance hooks; EXPERIMENTS.md targets
// <2% on the walker and the atp()-heavy workload.

void RunGovernedPair(benchmark::State& state, Program (*make)(),
                     Tree (*input)(), bool governed) {
  Program p = make();
  Tree t = input();
  bool accepted = false;
  for (auto _ : state) {
    RunOptions options;
    ResourceGovernor governor;
    if (governed) {
      governor.set_deadline_after(std::chrono::hours(1));
      governor.set_memory_budget(std::int64_t{1} << 32);
      options.governor = &governor;
    }
    Interpreter interpreter(p, options);
    auto r = interpreter.Run(t);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    accepted = r->accepted;
  }
  state.counters["accepted"] = accepted ? 1 : 0;
}

Program MakeParity() { return std::move(ParityProgram("a")).value(); }
Program MakeExample32() { return std::move(Example32Program("a")).value(); }
Tree WalkInput() { return FullTree(2, 8); }
Tree LookaheadInput() {
  std::mt19937 rng(11);
  return Example32Tree(rng, 120, /*uniform=*/true);
}

void BM_InterpreterWalkUngoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeParity, WalkInput, false);
}
void BM_InterpreterWalkGoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeParity, WalkInput, true);
}
void BM_InterpreterLookaheadUngoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeExample32, LookaheadInput, false);
}
void BM_InterpreterLookaheadGoverned(benchmark::State& state) {
  RunGovernedPair(state, MakeExample32, LookaheadInput, true);
}

BENCHMARK(BM_InterpreterWalkUngoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterWalkGoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterLookaheadUngoverned)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InterpreterLookaheadGoverned)->Unit(benchmark::kMicrosecond);

}  // namespace
