// Stamps every benchmark's JSON `context` with the build type, so
// tools/bench_gate.py can refuse to compare debug-build numbers (a
// debug baseline makes every release candidate look like a regression
// fixed, and vice versa).  Linked into all bench targets; the key is
// read by the gate before any ratio is computed.

#include <benchmark/benchmark.h>

namespace {

const int kBuildTypeContext = [] {
#ifdef NDEBUG
  benchmark::AddCustomContext("treewalk_build_type", "release");
#else
  benchmark::AddCustomContext("treewalk_build_type", "debug");
#endif
  return 0;
}();

}  // namespace
