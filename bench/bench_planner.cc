// E21: the cost-based planner vs. every fixed strategy (docs/PLANNER.md).
//
// Each workload is one end-to-end selector-serving task — plan (auto arm
// only), build whatever the strategy needs, and answer a fixed spread of
// origins — timed cold, the honest bound for a run that meets the
// selector once.  The three workloads are chosen so the fixed strategies
// genuinely diverge:
//
//   cheap_guarded    a guarded single-join on a large tree: the
//                    reference evaluator answers from the origins'
//                    children while any compiled strategy must first
//                    build an 8192-node satisfier relation
//   quantified_small a quantifier-depth-2 selector on a small tree:
//                    compiled-dense wins, reference pays n^2 per origin
//   quantified_large the same selector shape past the dense/interval
//                    crossover: interval wins, dense builds 128-word
//                    rows and reference is ~seconds
//
// The nightly contract (tools/bench_gate.py --planner-contract) holds
// BM_PlanAuto within 10% of the best fixed arm on every workload and
// requires it to beat each fixed strategy outright somewhere.  Compiled
// arms cross-check against SelectNodes at every measured origin before
// timing, so a win is only ever a win on identical answers.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "src/logic/compile.h"
#include "src/logic/parser.h"
#include "src/logic/planner.h"
#include "src/logic/tree_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/generate.h"
#include "src/tree/tree_stats.h"

namespace {

using namespace treewalk;

constexpr const char* kCheapGuarded = "E(x, y) & lab(y, a)";
constexpr const char* kQuantified =
    "exists z (E(x, z) & exists w (E(z, w) & desc(w, y)))";

Tree Input(int n) {
  std::mt19937 rng(97);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b"};
  options.attributes = {};
  return RandomTree(rng, options);
}

std::vector<NodeId> SpreadOrigins(const Tree& t, int count) {
  std::vector<NodeId> origins;
  for (int i = 0; i < count; ++i) {
    origins.push_back(static_cast<NodeId>(
        (static_cast<std::size_t>(i) * t.size()) / count));
  }
  return origins;
}

/// Reference answers at every origin; the oracle the compiled arms and
/// the auto arm check against.
std::vector<std::vector<NodeId>> ReferenceAnswers(
    benchmark::State& state, const Tree& t, const Formula& phi,
    const std::vector<NodeId>& origins) {
  std::vector<std::vector<NodeId>> answers;
  for (NodeId origin : origins) {
    auto r = SelectNodes(t, phi, origin);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return {};
    }
    answers.push_back(std::move(*r));
  }
  return answers;
}

void BM_PlanReference(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins =
      SpreadOrigins(t, static_cast<int>(state.range(1)));
  std::size_t selected = 0;
  for (auto _ : state) {
    selected = 0;
    for (NodeId origin : origins) {
      auto r = SelectNodes(t, phi, origin);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      selected += r->size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_PlanCompiled(benchmark::State& state, const char* selector,
                     AxisRepr repr) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins =
      SpreadOrigins(t, static_cast<int>(state.range(1)));
  auto answers = ReferenceAnswers(state, t, phi, origins);
  if (answers.empty()) return;
  {
    AxisIndex index(t);
    auto compiled = CompileSelector(index, phi, "x", "y", repr);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    for (std::size_t i = 0; i < origins.size(); ++i) {
      if (compiled->SelectFrom(origins[i]) != answers[i]) {
        state.SkipWithError("compiled/reference mismatch");
        return;
      }
    }
  }
  std::size_t selected = 0;
  for (auto _ : state) {
    AxisIndex index(t);
    auto compiled = CompileSelector(index, phi, "x", "y", repr);
    if (!compiled.ok()) {
      state.SkipWithError(compiled.status().ToString().c_str());
      return;
    }
    selected = 0;
    for (NodeId origin : origins) {
      selected += compiled->SelectFrom(origin).size();
    }
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_PlanDense(benchmark::State& state, const char* selector) {
  BM_PlanCompiled(state, selector, AxisRepr::kDense);
}

void BM_PlanInterval(benchmark::State& state, const char* selector) {
  BM_PlanCompiled(state, selector, AxisRepr::kInterval);
}

void BM_PlanAuto(benchmark::State& state, const char* selector) {
  Tree t = Input(static_cast<int>(state.range(0)));
  Formula phi = std::move(ParseFormula(selector)).value();
  std::vector<NodeId> origins =
      SpreadOrigins(t, static_cast<int>(state.range(1)));
  // Stats are cached per tree in production (snapshot-preloaded or
  // computed once per run), so they sit outside the timing loop; the
  // plan itself is inside — the auto arm pays for its own decision.
  TreeStats stats = ComputeTreeStats(t);
  auto answers = ReferenceAnswers(state, t, phi, origins);
  if (answers.empty()) return;

  std::size_t selected = 0;
  PlanStrategy picked = PlanStrategy::kReference;
  for (auto _ : state) {
    SelectorPlan plan = PlanSelector(stats, phi);
    picked = plan.strategy;
    selected = 0;
    if (plan.strategy == PlanStrategy::kCompiledDense ||
        plan.strategy == PlanStrategy::kCompiledInterval) {
      AxisIndex index(t);
      auto compiled = CompileSelector(index, phi, "x", "y", plan.repr);
      if (compiled.ok()) {
        for (NodeId origin : origins) {
          selected += compiled->SelectFrom(origin).size();
        }
        continue;
      }
      // Runtime decline: reference fallback, same as the interpreter.
    }
    for (NodeId origin : origins) {
      auto r = SelectNodes(t, phi, origin);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
      selected += r->size();
    }
  }
  // Re-check the last answer set against the oracle.
  state.SetLabel(PlanStrategyName(picked));
  std::size_t expected = 0;
  for (const auto& a : answers) expected += a.size();
  if (selected != expected) {
    state.SkipWithError("planned/reference cardinality mismatch");
    return;
  }
  state.counters["selected"] = static_cast<double>(selected);
}

// The auto arm registers LAST so it runs immediately after the fixed
// arms it is gated against (--planner-contract compares within one
// run); putting the multi-second losing arms between auto and its
// nearest rival lets thermal/frequency drift fake a contract miss.
#define PLANNER_WORKLOAD(workload, selector, n, origins)              \
  BENCHMARK_CAPTURE(BM_PlanReference, workload, selector)             \
      ->Args({n, origins})->Unit(benchmark::kMicrosecond);            \
  BENCHMARK_CAPTURE(BM_PlanDense, workload, selector)                 \
      ->Args({n, origins})->Unit(benchmark::kMicrosecond);            \
  BENCHMARK_CAPTURE(BM_PlanInterval, workload, selector)              \
      ->Args({n, origins})->Unit(benchmark::kMicrosecond);            \
  BENCHMARK_CAPTURE(BM_PlanAuto, workload, selector)                  \
      ->Args({n, origins})->Unit(benchmark::kMicrosecond)

PLANNER_WORKLOAD(cheap_guarded, kCheapGuarded, 8192, 256);
PLANNER_WORKLOAD(quantified_small, kQuantified, 256, 8);
PLANNER_WORKLOAD(quantified_large, kQuantified, 8192, 8);

}  // namespace
