// E4 (Lemma 4.3): atomic k-type machinery.  Cost of computing type sets
// (|s|^k tuples) and the growth of the number of realized classes in k
// and |D| — the counting side of Lemma 4.3(2).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <set>

#include "src/logic/atomic_types.h"

namespace {

using namespace treewalk;

std::vector<DataValue> RandomString(int n, int domain_size,
                                    unsigned seed = 11) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<DataValue> dist(0, domain_size - 1);
  std::vector<DataValue> s(static_cast<std::size_t>(n));
  for (auto& v : s) v = dist(rng);
  return s;
}

void BM_AtomicTypeSet(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  std::vector<DataValue> domain = {0, 1, 2};
  std::vector<DataValue> s = RandomString(n, 3);
  std::size_t classes = 0;
  for (auto _ : state) {
    TypeSet types = AtomicTypeSet(s, k, domain);
    classes = types.size();
    benchmark::DoNotOptimize(classes);
  }
  state.counters["classes"] = static_cast<double>(classes);
  state.counters["tuples"] = std::pow(static_cast<double>(n), k);
}

void BM_KEquivalenceCheck(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::vector<DataValue> domain = {0, 1, 2};
  std::vector<DataValue> s1 = RandomString(n, 3, 1);
  std::vector<DataValue> s2 = RandomString(n, 3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KEquivalent(s1, s2, 2, domain));
  }
}

void BM_TypeSetFingerprint(benchmark::State& state) {
  std::vector<DataValue> domain = {0, 1, 2};
  TypeSet types = AtomicTypeSet(RandomString(40, 3), 2, domain);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TypeSetFingerprint(types));
  }
}

/// Class-count growth: how many distinct ==_k classes appear across many
/// random strings — bounded by the Lemma 4.3(2) tower, tiny in practice.
void BM_ClassCensus(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  std::vector<DataValue> domain = {0, 1};
  std::size_t classes = 0;
  for (auto _ : state) {
    std::set<std::uint64_t> seen;
    for (unsigned seed = 0; seed < 200; ++seed) {
      std::vector<DataValue> s = RandomString(6, 2, seed);
      seen.insert(TypeSetFingerprint(AtomicTypeSet(s, k, domain)));
    }
    classes = seen.size();
  }
  state.counters["distinct_classes"] = static_cast<double>(classes);
}

BENCHMARK(BM_AtomicTypeSet)
    ->ArgsProduct({{10, 20, 40}, {1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KEquivalenceCheck)->Arg(10)->Arg(40)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TypeSetFingerprint)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ClassCensus)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

}  // namespace
