// Saturation benchmark for `twq serve` (docs/SERVER.md): closed-loop
// loopback clients against an in-process QueryServer.
//
//   BM_ServeClosedLoop/T   T connections, ample queue — the throughput
//                          curve; items/s is served queries/s.
//   BM_ServeOverload/T     T connections against a 2-slot queue — the
//                          *bounded overload* story: time/op stays flat
//                          because excess load is shed with a typed
//                          kOverloaded instead of queueing without
//                          bound; the shed_ratio counter records how
//                          much was refused.
//
// tools/bench_gate.py compares BENCH_serve.json against the committed
// baseline; a latency collapse under overload (time/op blowing up at
// high thread counts) is exactly the regression the gate exists for.

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>

#include "src/engine/input_cache.h"
#include "src/server/frame.h"
#include "src/server/server.h"
#include "src/tree/term_io.h"
#include "tests/serve_test_util.h"

namespace {

using namespace treewalk;

struct ServerHandle {
  std::unique_ptr<ResidentTreeCache> corpus;
  std::unique_ptr<QueryServer> server;
  std::atomic<std::int64_t> shed{0};
  std::atomic<std::int64_t> served{0};

  explicit ServerHandle(ServerOptions options) {
    corpus = std::make_unique<ResidentTreeCache>(0);
    (void)corpus->GetOrLoad("small",
                            [] { return ParseTerm("a(b(c), d[x=1])"); });
    server = std::make_unique<QueryServer>(options, corpus.get());
    if (!server->Start().ok()) std::abort();
  }
  ~ServerHandle() {
    server->BeginDrain();
    server->AwaitTermination();
  }
};

/// Plenty of headroom: the closed-loop ceiling is the wire + dispatch
/// cost, not admission.
ServerHandle& AmpleServer() {
  static ServerHandle* handle = [] {
    ServerOptions options;
    options.num_workers = 4;
    options.max_queue = 256;
    options.max_connections = 256;
    return new ServerHandle(options);
  }();
  return *handle;
}

/// Deliberately tiny queue: most of a large fleet must shed.
ServerHandle& TinyQueueServer() {
  static ServerHandle* handle = [] {
    ServerOptions options;
    options.num_workers = 2;
    options.max_queue = 2;
    options.max_connections = 256;
    return new ServerHandle(options);
  }();
  return *handle;
}

void DriveClosedLoop(benchmark::State& state, ServerHandle& host) {
  int fd = serve_test::Connect(host.server->port());
  if (fd < 0) {
    state.SkipWithError("connect failed");
    return;
  }
  const std::string request =
      serve_test::QueryFrame("small", serve_test::kAcceptAllProgram);
  std::int64_t served = 0, shed = 0;
  for (auto _ : state) {
    MessageType type;
    std::string body;
    if (!serve_test::Exchange(fd, request, type, body)) {
      state.SkipWithError("exchange failed");
      break;
    }
    if (type == MessageType::kQueryResult) {
      ++served;
    } else {
      ++shed;  // typed kOverloaded: immediate, bounded
    }
  }
  close(fd);
  host.served.fetch_add(served);
  host.shed.fetch_add(shed);
  state.SetItemsProcessed(served + shed);
  if (state.thread_index() == 0) {
    const double total = static_cast<double>(host.served.load() +
                                             host.shed.load());
    state.counters["shed_ratio"] =
        total > 0 ? static_cast<double>(host.shed.load()) / total : 0.0;
    host.served.store(0);
    host.shed.store(0);
  }
}

void BM_ServeClosedLoop(benchmark::State& state) {
  DriveClosedLoop(state, AmpleServer());
}
BENCHMARK(BM_ServeClosedLoop)
    ->Threads(1)
    ->Threads(4)
    ->Threads(16)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_ServeOverload(benchmark::State& state) {
  DriveClosedLoop(state, TinyQueueServer());
}
BENCHMARK(BM_ServeOverload)
    ->Threads(16)
    ->Threads(32)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

}  // namespace
