// E11: interpreter microbenchmarks — the cost centers of the Definition
// 3.1 semantics: pure walking throughput, store updates via
// active-domain FO, selector (atp) evaluation, and delimiting.

#include <benchmark/benchmark.h>

#include <random>

#include "src/automata/builder.h"
#include "src/automata/interpreter.h"
#include "src/automata/library.h"
#include "src/logic/parser.h"
#include "src/logic/tree_eval.h"
#include "src/relstore/store_eval.h"
#include "src/tree/delimited.h"
#include "src/tree/generate.h"

namespace {

using namespace treewalk;

Tree Input(int n) {
  std::mt19937 rng(29);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.value_range = 8;
  return RandomTree(rng, options);
}

/// Raw walking throughput: the full-DFS HasLabel program on a tree
/// without the target label (worst case: visits everything).
void BM_WalkThroughput(benchmark::State& state) {
  Program p = std::move(HasLabelProgram("missing")).value();
  Tree t = Input(static_cast<int>(state.range(0)));
  DelimitedTree delimited = Delimit(t);
  RunOptions options;
  options.max_steps = 100'000'000;
  Interpreter interpreter(p, options);
  std::int64_t steps = 0;
  for (auto _ : state) {
    auto r = interpreter.RunDelimited(delimited.tree);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    steps = r->stats.steps;
  }
  state.SetItemsProcessed(state.iterations() * steps);
  state.counters["steps"] = static_cast<double>(steps);
}

void BM_Delimit(benchmark::State& state) {
  Tree t = Input(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    DelimitedTree d = Delimit(t);
    benchmark::DoNotOptimize(d.tree.size());
  }
}

/// One relational store update: X := {x, y | X(x,y) | (P(x) & y = c)}.
void BM_StoreUpdate(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Store store = std::move(Store::Create({{"X", 2}, {"P", 1}})).value();
  for (int i = 0; i < n; ++i) store.Find("X")->Insert({i, i + 1});
  store.Find("P")->Insert({n});
  StoreContext context;
  context.store = &store;
  context.current_attrs = {{"id", n + 1}};
  Formula psi =
      std::move(ParseFormula("X(u, v) | (P(u) & v = attr(id))")).value();
  for (auto _ : state) {
    auto r = EvalStoreFormula(context, psi, {"u", "v"});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r->size());
  }
  state.counters["tuples"] = n + 1;
}

/// Selector evaluation: the Example 3.2 leaf-descendant selector.
void BM_SelectorEval(benchmark::State& state) {
  Tree t = Input(static_cast<int>(state.range(0)));
  DelimitedTree delimited = Delimit(t);
  Formula phi = std::move(ParseFormula(
                    "exists z (desc(x, y) & E(y, z) & lab(z, #leaf))"))
                    .value();
  std::size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectNodes(delimited.tree, phi, delimited.tree.root());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    selected = r->size();
  }
  state.counters["selected"] = static_cast<double>(selected);
}

/// Guard evaluation: the singleton check of Example 3.2.
void BM_GuardEval(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Store store = std::move(Store::Create({{"X1", 1}})).value();
  for (int i = 0; i < n; ++i) store.Find("X1")->Insert({i});
  StoreContext context;
  context.store = &store;
  Formula xi =
      std::move(ParseFormula("forall u forall v (X1(u) & X1(v) -> u = v)"))
          .value();
  for (auto _ : state) {
    auto r = EvalStoreSentence(context, xi);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(*r);
  }
}

BENCHMARK(BM_WalkThroughput)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Delimit)->Arg(100)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_StoreUpdate)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SelectorEval)->Arg(50)->Arg(200)->Arg(800)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GuardEval)->Arg(2)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
