// E7 (Theorem 7.1(1)): cost of the two-pebble LOGSPACE simulation vs the
// direct xTM run.  Shape to observe: identical verdicts; the pebble walk
// overhead per TM step is O(n polylog n), so total walk moves grow
// polynomially while the direct run is linear — the theorem trades time
// for the absence of a stored tape.

#include <benchmark/benchmark.h>

#include "src/simulation/logspace_sim.h"
#include "src/tree/tree.h"
#include "src/xtm/library.h"
#include "src/xtm/run.h"

namespace {

using namespace treewalk;

Tree CounterChain(int n) {
  TreeBuilder b;
  auto node = b.AddRoot("a");
  for (int i = 1; i < n; ++i) {
    node = b.AddChild(node, i % 4 == 0 ? "x" : "a");
  }
  return b.Build();
}

void BM_DirectXtm(benchmark::State& state) {
  Xtm m = XtmCountMod4("x");
  Tree input = CounterChain(static_cast<int>(state.range(0)));
  XtmResult result;
  for (auto _ : state) {
    auto r = RunXtm(m, input, XtmOptions{100'000'000, 0});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result = *r;
  }
  state.counters["tm_steps"] = static_cast<double>(result.steps);
  state.counters["tape_cells"] = static_cast<double>(result.space);
}

void BM_PebbleSimulation(benchmark::State& state) {
  Xtm m = XtmCountMod4("x");
  Tree input = CounterChain(static_cast<int>(state.range(0)));
  LogspaceSimResult result;
  for (auto _ : state) {
    auto r = RunLogspaceSimulation(m, input, XtmOptions{100'000'000, 0});
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    result = *r;
  }
  state.counters["tm_steps"] = static_cast<double>(result.tm_steps);
  state.counters["walk_moves"] = static_cast<double>(result.walk_steps);
  state.counters["tape_cells"] = static_cast<double>(result.tape_cells);
}

BENCHMARK(BM_DirectXtm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PebbleSimulation)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
