// E2 (Section 2.3): direct XPath evaluation vs evaluation through the
// FO(exists*) compilation, over random documents of growing size.  The
// shapes to observe: both agree; the direct evaluator is much faster
// (node-set algebra vs naive logical search), and the gap widens with
// query nesting — the abstraction is for *expressiveness*, not speed.

#include <benchmark/benchmark.h>

#include <random>

#include "src/logic/tree_eval.h"
#include "src/tree/generate.h"
#include "src/xpath/xpath.h"

namespace {

using namespace treewalk;

Tree Document(int n) {
  std::mt19937 rng(7);
  RandomTreeOptions options;
  options.num_nodes = n;
  options.labels = {"a", "b", "c"};
  options.attributes = {"p"};
  options.value_range = 4;
  return RandomTree(rng, options);
}

const char* Query(int index) {
  static const char* kQueries[] = {
      "//a",               // 0: descendant scan
      "a/b",               // 1: child chain
      "//a[b][@p = 1]",    // 2: filters
      "//a[b/c] | //b[c]", // 3: union + nesting
  };
  return kQueries[index];
}

void BM_XPathDirect(benchmark::State& state) {
  Tree doc = Document(static_cast<int>(state.range(0)));
  XPath xpath = std::move(ParseXPath(Query(static_cast<int>(state.range(1)))))
                    .value();
  std::size_t selected = 0;
  for (auto _ : state) {
    auto r = EvalXPath(doc, xpath, doc.root());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    selected = r->size();
    benchmark::DoNotOptimize(selected);
  }
  state.counters["selected"] = static_cast<double>(selected);
}

void BM_XPathViaFo(benchmark::State& state) {
  Tree doc = Document(static_cast<int>(state.range(0)));
  XPath xpath = std::move(ParseXPath(Query(static_cast<int>(state.range(1)))))
                    .value();
  Formula formula = std::move(CompileXPathToFo(xpath)).value();
  std::size_t selected = 0;
  for (auto _ : state) {
    auto r = SelectNodes(doc, formula, doc.root());
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    selected = r->size();
    benchmark::DoNotOptimize(selected);
  }
  state.counters["selected"] = static_cast<double>(selected);
}

BENCHMARK(BM_XPathDirect)
    ->ArgsProduct({{50, 200, 800}, {0, 1, 2, 3}})
    ->Unit(benchmark::kMicrosecond);
// The naive FO search is O(n^{1+vars}); nested queries get a small n.
BENCHMARK(BM_XPathViaFo)
    ->ArgsProduct({{50, 200}, {0, 1}})
    ->Args({30, 2})->Args({60, 2})->Args({30, 3})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
