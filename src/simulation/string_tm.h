#ifndef TREEWALK_SIMULATION_STRING_TM_H_
#define TREEWALK_SIMULATION_STRING_TM_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace treewalk {

/// A deterministic single-tape, linear-bounded Turing machine over small
/// integer symbols: the machine runs in place on its input (it may
/// overwrite but not extend the tape), so its space use is exactly n —
/// the PSPACE^X regime that Theorem 7.1(3) encodes into a relational
/// store.  Moving off either tape end rejects.
struct StringTm {
  enum class Dir { kLeft, kRight, kStay };

  struct Action {
    std::string next_state;
    int write = -1;  ///< -1: keep the symbol
    Dir dir = Dir::kStay;
  };

  std::string initial_state;
  std::string accept_state;
  int alphabet_size = 2;
  /// delta: (state, read symbol) -> action.  Missing entries are stuck
  /// (reject).
  std::map<std::pair<std::string, int>, Action> delta;

  Status Validate() const;
};

struct StringTmResult {
  bool accepted = false;
  std::int64_t steps = 0;
};

/// Reference semantics; `input` must be nonempty with symbols in range.
Result<StringTmResult> RunStringTm(const StringTm& tm,
                                   const std::vector<int>& input,
                                   std::int64_t max_steps = 1'000'000);

/// Sample machine: accepts iff the input (over {0, 1}) is a palindrome.
/// Uses two marker symbols; the classic mark-ends-and-shrink loop.
StringTm PalindromeTm();

/// Sample machine: accepts iff the input over {0, 1} contains as many
/// 0s as 1s.  Repeatedly crosses off one 0 and one 1.
StringTm EqualCountTm();

}  // namespace treewalk

#endif  // TREEWALK_SIMULATION_STRING_TM_H_
