#ifndef TREEWALK_SIMULATION_LOGSPACE_SIM_H_
#define TREEWALK_SIMULATION_LOGSPACE_SIM_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/tree/tree.h"
#include "src/xtm/machine.h"
#include "src/xtm/run.h"

namespace treewalk {

struct LogspaceSimResult {
  bool accepted = false;
  /// Transitions of the simulated machine.
  std::int64_t tm_steps = 0;
  /// Tree-walking moves spent by the pebble machinery — the quantity
  /// Theorem 7.1(1) bounds polynomially.
  std::int64_t walk_steps = 0;
  /// Highest tape cell the machine touched.
  std::size_t tape_cells = 0;
};

/// Runs a deterministic, register-free xTM through the Theorem 7.1(1)
/// construction: the work tape is *not* stored — its contents are encoded
/// as the document-order ranks of pebbles (one value pebble per bit-plane
/// of the tape alphabet, plus a head pebble), and every read/write is
/// done by pebble rank arithmetic (halving for bit tests, +/- 2^i for bit
/// writes).
///
/// The machine must fit the regime of the theorem: if a tape-as-number
/// rank would exceed the number of nodes (the machine uses more than
/// ~log2 |t| cells), the run aborts with kResourceExhausted — exactly the
/// paper's "at most log2 |t| space" assumption.  Machines with registers
/// or universal states are rejected with kFailedPrecondition.
///
/// Equivalence with the direct semantics (RunXtm) on every input is the
/// E7 experiment.
Result<LogspaceSimResult> RunLogspaceSimulation(const Xtm& machine,
                                                const Tree& input,
                                                XtmOptions options = {});

}  // namespace treewalk

#endif  // TREEWALK_SIMULATION_LOGSPACE_SIM_H_
