#ifndef TREEWALK_SIMULATION_CONFIG_GRAPH_H_
#define TREEWALK_SIMULATION_CONFIG_GRAPH_H_

#include <cstdint>

#include "src/automata/interpreter.h"
#include "src/automata/program.h"
#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

struct ConfigGraphResult {
  bool accepted = false;
  /// Distinct configurations [u, q, tau] materialized.  For tw^l this is
  /// polynomial in |t| — the crux of Theorem 7.1(2).
  std::size_t configs = 0;
  /// atp() call configurations resolved through the memo table (each is
  /// evaluated once, however many callers it has).
  std::size_t memoized_calls = 0;
  std::int64_t steps = 0;
};

/// Evaluates a tree-walking program by materializing its configuration
/// graph with memoized subcomputation outcomes — the PTIME evaluation
/// strategy of Theorem 7.1(2).  Unlike the direct interpreter, which
/// re-runs a subcomputation for every atp() call site, each start
/// configuration is resolved exactly once; a subcomputation that reaches
/// itself (unbounded regress) is rejected, which coincides with the
/// direct semantics because an atp() whose subcomputation rejects makes
/// the caller reject.
///
/// Accepts any program class (for tw^r the graph is a chain and this
/// degenerates to the interpreter); the polynomial configuration bound
/// holds for tw and tw^l.
Result<ConfigGraphResult> EvaluateViaConfigGraph(const Program& program,
                                                 const Tree& input,
                                                 RunOptions options = {});

}  // namespace treewalk

#endif  // TREEWALK_SIMULATION_CONFIG_GRAPH_H_
