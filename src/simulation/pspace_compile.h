#ifndef TREEWALK_SIMULATION_PSPACE_COMPILE_H_
#define TREEWALK_SIMULATION_PSPACE_COMPILE_H_

#include <vector>

#include "src/automata/program.h"
#include "src/common/result.h"
#include "src/simulation/string_tm.h"
#include "src/tree/tree.h"

namespace treewalk {

/// The Theorem 7.1(3) construction, made executable: compiles a linear-
/// bounded string TM into a tw^r program (relational storage, *no*
/// look-ahead) that accepts exactly the monadic trees whose attribute-"a"
/// sequence the TM accepts.
///
/// The emitted program works in two phases:
///   1. Build: one walk down the chain materializes the successor
///      relation Next over the unique-ID attribute (via a one-value
///      carry register P), the head position Head = {id of cell 0}, and
///      the tape as unary relations T<s> = {ids of cells holding s}.
///   2. Run: the TM's control is compiled into automaton states; each
///      delta step is a guard "exists h (Head(h) & T<s>(h))" followed by
///      FO register updates that rewrite the cell under the head and
///      advance Head through Next.  Falling off the tape empties Head,
///      after which no guard fires and the program sticks (rejects),
///      matching the LBA semantics.
///
/// The input tree must be produced by StringTmInputTree() (or have the
/// same shape: a monadic tree with attributes "a" and unique "id").
Result<Program> CompileStringTmToTwR(const StringTm& tm);

/// Builds the input encoding: a monadic tree whose nodes carry the tape
/// symbols in attribute "a" and document-order unique IDs in "id".
Tree StringTmInputTree(const std::vector<int>& input);

}  // namespace treewalk

#endif  // TREEWALK_SIMULATION_PSPACE_COMPILE_H_
