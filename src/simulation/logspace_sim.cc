#include "src/simulation/logspace_sim.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/simulation/pebbles.h"
#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Number of bit-planes needed for `alphabet` symbols.
int PlanesFor(int alphabet) {
  int planes = 0;
  for (int v = alphabet - 1; v > 0; v >>= 1) ++planes;
  return std::max(planes, 1);
}

}  // namespace

Result<LogspaceSimResult> RunLogspaceSimulation(const Xtm& machine,
                                                const Tree& input,
                                                XtmOptions options) {
  TREEWALK_RETURN_IF_ERROR(machine.Validate());
  if (machine.num_registers != 0) {
    return FailedPrecondition(
        "the LOGSPACE simulation handles register-free machines");
  }
  if (!machine.universal_states.empty()) {
    return FailedPrecondition(
        "the LOGSPACE simulation handles deterministic machines");
  }
  if (input.empty()) return InvalidArgument("empty input tree");

  DelimitedTree delimited = Delimit(input);
  const Tree& tree = delimited.tree;

  // Pebble layout: planes value pebbles encoding the tape, then the head.
  const int planes = PlanesFor(machine.tape_alphabet_size);
  const int head = planes;
  PebbleMachine pebbles(tree, planes + 1);

  // Pre-resolve labels and shadowing, mirroring the direct engine.
  std::vector<Symbol> labels;
  std::set<std::string> exact_keys;
  for (const XtmTransition& t : machine.transitions) {
    labels.push_back(t.label == "*" ? -2 : tree.FindLabel(t.label));
    if (t.label != "*") exact_keys.insert(t.state + "\x1f" + t.label);
  }

  LogspaceSimResult result;
  result.tape_cells = 1;
  NodeId node = tree.root();
  std::string state = machine.initial_state;

  // Head index, maintained as the rank of the head pebble; the integer
  // shadow below is only used to drive the bit loops (walking the head
  // pebble to the root would recover it at the same asymptotic cost).
  int head_index = 0;

  auto read_symbol = [&]() -> Result<int> {
    int symbol = 0;
    for (int j = 0; j < planes; ++j) {
      TREEWALK_ASSIGN_OR_RETURN(int bit, pebbles.TestBit(j, head_index));
      symbol |= bit << j;
    }
    return symbol;
  };
  auto write_symbol = [&](int symbol) -> Status {
    for (int j = 0; j < planes; ++j) {
      TREEWALK_RETURN_IF_ERROR(
          pebbles.WriteBit(j, head_index, ((symbol >> j) & 1) != 0));
    }
    return Status::Ok();
  };

  while (true) {
    if (state == machine.accept_state) {
      result.accepted = true;
      result.walk_steps = pebbles.steps();
      return result;
    }
    TREEWALK_ASSIGN_OR_RETURN(int read, read_symbol());

    // Find the unique applicable transition.
    Symbol label = tree.label(node);
    bool shadowed =
        exact_keys.count(state + "\x1f" + tree.LabelName(label)) > 0;
    const XtmTransition* found = nullptr;
    for (std::size_t i = 0; i < machine.transitions.size(); ++i) {
      const XtmTransition& t = machine.transitions[i];
      if (t.state != state) continue;
      if (t.label == "*") {
        if (shadowed) continue;
      } else if (labels[i] != label) {
        continue;
      }
      if (t.read != -1 && t.read != read) continue;
      if (found != nullptr) {
        return Nondeterminism("two transitions apply in state " + state);
      }
      found = &t;
    }
    if (found == nullptr) {
      result.accepted = false;
      result.walk_steps = pebbles.steps();
      return result;
    }
    if (++result.tm_steps > options.max_steps) {
      return ResourceExhausted("simulated xTM exceeded max_steps");
    }

    // Tree move.
    NodeId v = node;
    switch (found->tree_move) {
      case Move::kStay:
        break;
      case Move::kLeft:
        v = tree.PrevSibling(node);
        break;
      case Move::kRight:
        v = tree.NextSibling(node);
        break;
      case Move::kUp:
        v = tree.Parent(node);
        break;
      case Move::kDown:
        v = tree.FirstChild(node);
        break;
    }
    if (v == kNoNode) {
      result.accepted = false;
      result.walk_steps = pebbles.steps();
      return result;
    }
    node = v;

    // Tape write.
    if (found->write != -1) {
      TREEWALK_RETURN_IF_ERROR(write_symbol(found->write));
    }
    // Tape move.
    switch (found->tape_move) {
      case TapeMove::kStay:
        break;
      case TapeMove::kLeft:
        if (head_index == 0) {
          result.accepted = false;  // fell off the tape
          result.walk_steps = pebbles.steps();
          return result;
        }
        TREEWALK_RETURN_IF_ERROR(pebbles.DocPrev(head));
        --head_index;
        break;
      case TapeMove::kRight:
        TREEWALK_RETURN_IF_ERROR(pebbles.DocNext(head));
        ++head_index;
        break;
    }
    result.tape_cells =
        std::max(result.tape_cells, static_cast<std::size_t>(head_index) + 1);
    state = found->next_state;
  }
}

}  // namespace treewalk
