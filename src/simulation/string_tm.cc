#include "src/simulation/string_tm.h"

namespace treewalk {

Status StringTm::Validate() const {
  if (initial_state.empty() || accept_state.empty()) {
    return InvalidArgument("string TM initial/accept states not set");
  }
  if (alphabet_size < 1) return InvalidArgument("empty tape alphabet");
  for (const auto& [key, action] : delta) {
    const auto& [state, read] = key;
    if (state == accept_state) {
      return InvalidArgument("no transition may leave the accept state");
    }
    if (read < 0 || read >= alphabet_size) {
      return InvalidArgument("read symbol out of range in state " + state);
    }
    if (action.write < -1 || action.write >= alphabet_size) {
      return InvalidArgument("write symbol out of range in state " + state);
    }
    if (action.next_state.empty()) {
      return InvalidArgument("empty successor state in state " + state);
    }
  }
  return Status::Ok();
}

Result<StringTmResult> RunStringTm(const StringTm& tm,
                                   const std::vector<int>& input,
                                   std::int64_t max_steps) {
  TREEWALK_RETURN_IF_ERROR(tm.Validate());
  if (input.empty()) return InvalidArgument("empty input");
  for (int symbol : input) {
    if (symbol < 0 || symbol >= tm.alphabet_size) {
      return InvalidArgument("input symbol out of range");
    }
  }

  std::vector<int> tape = input;
  std::size_t head = 0;
  std::string state = tm.initial_state;
  StringTmResult result;
  while (true) {
    if (state == tm.accept_state) {
      result.accepted = true;
      return result;
    }
    auto it = tm.delta.find({state, tape[head]});
    if (it == tm.delta.end()) {
      result.accepted = false;  // stuck
      return result;
    }
    if (++result.steps > max_steps) {
      return ResourceExhausted("string TM exceeded max_steps");
    }
    const StringTm::Action& action = it->second;
    if (action.write != -1) tape[head] = action.write;
    switch (action.dir) {
      case StringTm::Dir::kStay:
        break;
      case StringTm::Dir::kLeft:
        if (head == 0) {
          result.accepted = false;  // fell off the tape
          return result;
        }
        --head;
        break;
      case StringTm::Dir::kRight:
        if (++head >= tape.size()) {
          result.accepted = false;  // linear bounded: no extension
          return result;
        }
        break;
    }
    state = action.next_state;
  }
}

namespace {

/// Symbols shared by the sample machines: 0/1 input bits, 2 crossed-off,
/// 3 left end marker, 4 right end marker.
constexpr int kCross = 2;
constexpr int kLeftEnd = 3;
constexpr int kRightEnd = 4;

void Rule(StringTm& tm, const std::string& state, int read,
          const std::string& next, int write = -1,
          StringTm::Dir dir = StringTm::Dir::kStay) {
  tm.delta[{state, read}] = StringTm::Action{next, write, dir};
}

}  // namespace

StringTm PalindromeTm() {
  using Dir = StringTm::Dir;
  StringTm tm;
  tm.initial_state = "q0";
  tm.accept_state = "acc";
  tm.alphabet_size = 5;
  Rule(tm, "q0", kLeftEnd, "find", -1, Dir::kRight);
  // `find`: at the leftmost unchecked cell.
  Rule(tm, "find", 0, "seek0", kCross, Dir::kRight);
  Rule(tm, "find", 1, "seek1", kCross, Dir::kRight);
  Rule(tm, "find", kCross, "acc");     // everything checked
  Rule(tm, "find", kRightEnd, "acc");  // empty input
  for (int carry : {0, 1}) {
    std::string seek = "seek" + std::to_string(carry);
    std::string check = "check" + std::to_string(carry);
    // Run right to the first crossed cell / right end...
    Rule(tm, seek, 0, seek, -1, Dir::kRight);
    Rule(tm, seek, 1, seek, -1, Dir::kRight);
    Rule(tm, seek, kCross, check, -1, Dir::kLeft);
    Rule(tm, seek, kRightEnd, check, -1, Dir::kLeft);
    // ...and check the cell before it.
    Rule(tm, check, carry, "rewind", kCross, Dir::kLeft);
    Rule(tm, check, kCross, "acc");  // met the cell just crossed: middle
    // mismatching bit: stuck, rejects.
  }
  Rule(tm, "rewind", 0, "rewind", -1, Dir::kLeft);
  Rule(tm, "rewind", 1, "rewind", -1, Dir::kLeft);
  Rule(tm, "rewind", kCross, "find", -1, Dir::kRight);
  Rule(tm, "rewind", kLeftEnd, "find", -1, Dir::kRight);
  return tm;
}

StringTm EqualCountTm() {
  using Dir = StringTm::Dir;
  StringTm tm;
  tm.initial_state = "q0";
  tm.accept_state = "acc";
  tm.alphabet_size = 5;
  Rule(tm, "q0", kLeftEnd, "scan", -1, Dir::kRight);
  // `scan`: find the first unmatched bit.
  Rule(tm, "scan", kCross, "scan", -1, Dir::kRight);
  Rule(tm, "scan", 0, "find1", kCross, Dir::kRight);
  Rule(tm, "scan", 1, "find0", kCross, Dir::kRight);
  Rule(tm, "scan", kRightEnd, "acc");  // all bits matched
  for (int want : {0, 1}) {
    std::string find = "find" + std::to_string(want);
    Rule(tm, find, 1 - want, find, -1, Dir::kRight);
    Rule(tm, find, kCross, find, -1, Dir::kRight);
    Rule(tm, find, want, "rewind", kCross, Dir::kLeft);
    // Right end without a partner: stuck, rejects.
  }
  Rule(tm, "rewind", 0, "rewind", -1, Dir::kLeft);
  Rule(tm, "rewind", 1, "rewind", -1, Dir::kLeft);
  Rule(tm, "rewind", kCross, "rewind", -1, Dir::kLeft);
  Rule(tm, "rewind", kLeftEnd, "scan", -1, Dir::kRight);
  return tm;
}

}  // namespace treewalk
