#include "src/simulation/config_graph.h"

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/logic/tree_eval.h"
#include "src/relstore/store_eval.h"
#include "src/tree/delimited.h"

namespace treewalk {

namespace {

using ConfigKey = std::tuple<NodeId, std::string, Store>;

struct CallOutcome {
  enum class Kind { kInProgress, kAccept, kReject };
  Kind kind = Kind::kInProgress;
  Relation returned{0};
};

class GraphEvaluator {
 public:
  GraphEvaluator(const Program& program, const Tree& tree,
                 const RunOptions& options)
      : program_(program), tree_(tree), options_(options) {
    for (const Rule& rule : program.rules()) {
      labels_.push_back(rule.label == "*" ? -2 : tree.FindLabel(rule.label));
      if (rule.label != "*") {
        exact_keys_.insert(rule.state + "\x1f" + rule.label);
      }
    }
  }

  Result<ConfigGraphResult> Run() {
    TREEWALK_ASSIGN_OR_RETURN(
        CallOutcome outcome,
        Resolve(tree_.root(), program_.initial_state(),
                program_.initial_store(), 0));
    ConfigGraphResult result;
    result.accepted = outcome.kind == CallOutcome::Kind::kAccept;
    result.configs = seen_configs_.size();
    result.memoized_calls = memo_.size();
    result.steps = steps_;
    return result;
  }

 private:
  /// Outcome of the computation started at [u, q, tau], memoized.
  Result<CallOutcome> Resolve(NodeId start, const std::string& start_state,
                              const Store& start_store, int depth) {
    if (depth > options_.max_depth) {
      return ResourceExhausted("atp nesting exceeded max_depth");
    }
    ConfigKey key(start, start_state, start_store);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      if (it->second.kind == CallOutcome::Kind::kInProgress) {
        // Self-referential subcomputation: the direct semantics recurses
        // forever, which is rejection.
        CallOutcome reject;
        reject.kind = CallOutcome::Kind::kReject;
        return reject;
      }
      return it->second;
    }
    memo_.emplace(key, CallOutcome{});

    NodeId u = start;
    std::string state = start_state;
    Store store = start_store;
    std::set<ConfigKey> visited;

    CallOutcome outcome;
    outcome.kind = CallOutcome::Kind::kReject;
    while (true) {
      if (state == program_.final_state()) {
        outcome.kind = CallOutcome::Kind::kAccept;
        if (store.num_relations() > 0) outcome.returned = store.At(0);
        break;
      }
      ConfigKey config(u, state, store);
      if (!visited.insert(config).second) break;  // cycle: reject
      seen_configs_.insert(config);

      TREEWALK_ASSIGN_OR_RETURN(const Rule* rule, FindRule(u, state, store));
      if (rule == nullptr) break;  // stuck: reject
      if (++steps_ > options_.max_steps) {
        return ResourceExhausted("exceeded max_steps");
      }

      const Action& action = rule->action;
      bool rejected = false;
      switch (action.kind) {
        case Action::Kind::kMove: {
          NodeId v = ApplyMove(u, action.move);
          if (v == kNoNode) {
            rejected = true;
            break;
          }
          u = v;
          break;
        }
        case Action::Kind::kUpdate: {
          StoreContext context = MakeContext(u, store);
          TREEWALK_ASSIGN_OR_RETURN(
              Relation updated,
              EvalStoreFormula(context, action.update, action.update_vars));
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(updated)));
          break;
        }
        case Action::Kind::kLookAhead: {
          TREEWALK_ASSIGN_OR_RETURN(
              std::vector<NodeId> selected,
              SelectNodes(tree_, action.selector, u));
          Relation collected(store.At(0).arity());
          for (NodeId v : selected) {
            TREEWALK_ASSIGN_OR_RETURN(
                CallOutcome sub,
                Resolve(v, action.call_state, store, depth + 1));
            if (sub.kind != CallOutcome::Kind::kAccept) {
              rejected = true;
              break;
            }
            collected.UnionWith(sub.returned);
          }
          if (rejected) break;
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(collected)));
          break;
        }
      }
      if (rejected) break;
      state = action.next_state;
    }

    memo_[key] = outcome;
    return outcome;
  }

  Result<const Rule*> FindRule(NodeId u, const std::string& state,
                               const Store& store) {
    Symbol label = tree_.label(u);
    bool shadowed =
        exact_keys_.count(state + "\x1f" + tree_.LabelName(label)) > 0;
    const Rule* found = nullptr;
    StoreContext context = MakeContext(u, store);
    for (std::size_t i = 0; i < program_.rules().size(); ++i) {
      const Rule& rule = program_.rules()[i];
      if (rule.state != state) continue;
      if (rule.label == "*") {
        if (shadowed) continue;
      } else if (labels_[i] != label) {
        continue;
      }
      TREEWALK_ASSIGN_OR_RETURN(bool holds,
                                EvalStoreSentence(context, rule.guard));
      if (!holds) continue;
      if (found != nullptr) {
        return Nondeterminism("two rules apply in state " + state);
      }
      found = &rule;
    }
    return found;
  }

  StoreContext MakeContext(NodeId u, const Store& store) const {
    StoreContext context;
    context.store = &store;
    context.values = &tree_.values();
    for (AttrId a = 0; a < static_cast<AttrId>(tree_.num_attributes()); ++a) {
      context.current_attrs[tree_.attributes().NameOf(a)] = tree_.attr(a, u);
    }
    return context;
  }

  NodeId ApplyMove(NodeId u, Move move) const {
    switch (move) {
      case Move::kStay:
        return u;
      case Move::kLeft:
        return tree_.PrevSibling(u);
      case Move::kRight:
        return tree_.NextSibling(u);
      case Move::kUp:
        return tree_.Parent(u);
      case Move::kDown:
        return tree_.FirstChild(u);
    }
    return kNoNode;
  }

  const Program& program_;
  const Tree& tree_;
  const RunOptions& options_;
  std::vector<Symbol> labels_;
  std::set<std::string> exact_keys_;
  std::map<ConfigKey, CallOutcome> memo_;
  std::set<ConfigKey> seen_configs_;
  std::int64_t steps_ = 0;
};

}  // namespace

Result<ConfigGraphResult> EvaluateViaConfigGraph(const Program& program,
                                                 const Tree& input,
                                                 RunOptions options) {
  if (input.empty()) return InvalidArgument("empty input tree");
  DelimitedTree delimited = Delimit(input);
  GraphEvaluator evaluator(program, delimited.tree, options);
  return evaluator.Run();
}

}  // namespace treewalk
