#include "src/simulation/pebbles.h"

#include <cassert>

namespace treewalk {

PebbleMachine::PebbleMachine(const Tree& tree, int num_pebbles)
    : tree_(&tree), num_pebbles_(num_pebbles) {
  assert(num_pebbles >= 0);
  // Three internal scratch pebbles beyond the user-visible ones.
  pebbles_.assign(static_cast<std::size_t>(num_pebbles) + 3, tree.root());
}

bool PebbleMachine::AtRoot(int p) const {
  return pebbles_[static_cast<std::size_t>(p)] == tree_->root();
}

bool PebbleMachine::Equal(int p, int q) const {
  return pebbles_[static_cast<std::size_t>(p)] ==
         pebbles_[static_cast<std::size_t>(q)];
}

void PebbleMachine::Place(int p, int q) {
  pebbles_[static_cast<std::size_t>(p)] =
      pebbles_[static_cast<std::size_t>(q)];
  ++steps_;
}

void PebbleMachine::MoveToRoot(int p) {
  pebbles_[static_cast<std::size_t>(p)] = tree_->root();
  ++steps_;
}

Status PebbleMachine::DocNext(int p) {
  NodeId u = pebbles_[static_cast<std::size_t>(p)];
  // Walk: first child, else nearest ancestor-or-self next sibling.  Each
  // local move costs one step.
  if (tree_->FirstChild(u) != kNoNode) {
    ++steps_;
    pebbles_[static_cast<std::size_t>(p)] = tree_->FirstChild(u);
    return Status::Ok();
  }
  for (NodeId v = u; v != kNoNode; v = tree_->Parent(v)) {
    ++steps_;
    if (tree_->NextSibling(v) != kNoNode) {
      pebbles_[static_cast<std::size_t>(p)] = tree_->NextSibling(v);
      return Status::Ok();
    }
  }
  return ResourceExhausted("pebble advanced past the last node");
}

Status PebbleMachine::DocPrev(int p) {
  NodeId u = pebbles_[static_cast<std::size_t>(p)];
  if (u == tree_->root()) {
    return ResourceExhausted("pebble retreated past the root");
  }
  ++steps_;
  NodeId left = tree_->PrevSibling(u);
  if (left == kNoNode) {
    pebbles_[static_cast<std::size_t>(p)] = tree_->Parent(u);
    return Status::Ok();
  }
  while (tree_->LastChild(left) != kNoNode) {
    ++steps_;
    left = tree_->LastChild(left);
  }
  pebbles_[static_cast<std::size_t>(p)] = left;
  return Status::Ok();
}

Status PebbleMachine::AdvanceBy(int p, int q) {
  // Count rank(q) by walking a copy back to the root, advancing p in
  // lockstep.
  int counter = Scratch(0);
  Place(counter, q);
  while (!AtRoot(counter)) {
    TREEWALK_RETURN_IF_ERROR(DocPrev(counter));
    TREEWALK_RETURN_IF_ERROR(DocNext(p));
  }
  return Status::Ok();
}

Status PebbleMachine::RetreatBy(int p, int q) {
  assert(p != q);
  int counter = Scratch(0);
  Place(counter, q);
  while (!AtRoot(counter)) {
    TREEWALK_RETURN_IF_ERROR(DocPrev(counter));
    TREEWALK_RETURN_IF_ERROR(DocPrev(p));
  }
  return Status::Ok();
}

Status PebbleMachine::Halve(int p) {
  // Walk lo up from the root and hi down from p toward each other; they
  // meet (or become adjacent) at floor(rank(p) / 2).
  int lo = Scratch(1);
  int hi = Scratch(2);
  MoveToRoot(lo);
  Place(hi, p);
  while (true) {
    if (Equal(lo, hi)) break;
    TREEWALK_RETURN_IF_ERROR(DocPrev(hi));
    if (Equal(lo, hi)) break;
    TREEWALK_RETURN_IF_ERROR(DocNext(lo));
  }
  Place(p, lo);
  return Status::Ok();
}

Result<int> PebbleMachine::ParityOf(int p) {
  int walker = Scratch(1);
  Place(walker, p);
  int parity = 0;
  while (!AtRoot(walker)) {
    TREEWALK_RETURN_IF_ERROR(DocPrev(walker));
    parity ^= 1;
  }
  return parity;
}

Status PebbleMachine::SetToPowerOfTwo(int p, int i) {
  MoveToRoot(p);
  TREEWALK_RETURN_IF_ERROR(DocNext(p));  // rank 1
  for (int k = 0; k < i; ++k) {
    TREEWALK_RETURN_IF_ERROR(AdvanceBy(p, p));  // doubling
  }
  return Status::Ok();
}

Result<int> PebbleMachine::TestBit(int p, int bit) {
  // Halve's internal `hi` pebble aliases `copy`; the aliasing is benign
  // (the first Place(hi, copy) is a self-copy).
  int copy = Scratch(2);
  Place(copy, p);
  for (int k = 0; k < bit; ++k) {
    TREEWALK_RETURN_IF_ERROR(Halve(copy));
  }
  return ParityOf(copy);
}

Status PebbleMachine::WriteBit(int p, int bit, bool value) {
  TREEWALK_ASSIGN_OR_RETURN(int current, TestBit(p, bit));
  if ((current != 0) == value) return Status::Ok();
  int power = Scratch(0);
  // SetToPowerOfTwo/AdvanceBy both use Scratch(0) internally; inline the
  // doubling against a second scratch to avoid aliasing.
  // power := 1.
  MoveToRoot(power);
  TREEWALK_RETURN_IF_ERROR(DocNext(power));
  int counter = Scratch(1);
  for (int k = 0; k < bit; ++k) {
    // power += power, counting via `counter` walking a snapshot.
    Place(counter, power);
    while (!AtRoot(counter)) {
      TREEWALK_RETURN_IF_ERROR(DocPrev(counter));
      TREEWALK_RETURN_IF_ERROR(DocNext(power));
    }
  }
  // Apply: p += / -= power, again with the distinct counter.
  Place(counter, power);
  while (!AtRoot(counter)) {
    TREEWALK_RETURN_IF_ERROR(DocPrev(counter));
    TREEWALK_RETURN_IF_ERROR(value ? DocNext(p) : DocPrev(p));
  }
  return Status::Ok();
}

}  // namespace treewalk
