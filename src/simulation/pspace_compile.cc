#include "src/simulation/pspace_compile.h"

#include <string>

#include "src/automata/builder.h"
#include "src/tree/delimited.h"
#include "src/tree/term_io.h"

namespace treewalk {

namespace {

std::string TapeRel(int symbol) { return "T" + std::to_string(symbol); }

/// Program-state name for the TM control state `q`.  The TM accept state
/// maps to the program's final state.
std::string RunState(const StringTm& tm, const std::string& q) {
  return q == tm.accept_state ? "qf" : "run_" + q;
}

}  // namespace

Result<Program> CompileStringTmToTwR(const StringTm& tm) {
  TREEWALK_RETURN_IF_ERROR(tm.Validate());
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("b_start", "qf");
  b.DeclareRegister("Next", 2);
  b.DeclareRegister("P", 1);
  b.DeclareRegister("Head", 1);
  for (int s = 0; s < tm.alphabet_size; ++s) {
    b.DeclareRegister(TapeRel(s), 1);
  }

  // ---- Phase 1: materialize Next / Head / T<s> by walking the chain.
  b.OnMove(kTopLabel, "b_start", "true", "b_open", Move::kDown);
  b.OnMove(kOpenLabel, "b_open", "true", "b_first", Move::kRight);
  // First chain node: the head starts on cell 0.
  b.OnUpdate("*", "b_first", "true", "b_next", "Head", "u = attr(id)",
             {"u"});
  // Every chain node: extend Next with (previous id, this id)...
  b.OnUpdate("*", "b_next", "true", "b_prev", "Next",
             "Next(u, v) | (P(u) & v = attr(id))", {"u", "v"});
  // ...remember this id as the new predecessor...
  b.OnUpdate("*", "b_prev", "true", "b_sym", "P", "u = attr(id)", {"u"});
  // ...and file this cell under its symbol's tape relation.
  for (int s = 0; s < tm.alphabet_size; ++s) {
    b.OnUpdate("*", "b_sym",
               "exists u (u = attr(a) & u = " + std::to_string(s) + ")",
               "b_desc", TapeRel(s),
               TapeRel(s) + "(u) | u = attr(id)", {"u"});
  }
  b.OnMove("*", "b_desc", "true", "b_next", Move::kDown);
  // Descending from a chain node lands on its #open delimiter; skip to
  // the next cell.
  b.OnMove(kOpenLabel, "b_next", "true", "b_next", Move::kRight);
  // The #leaf cap ends the build; hand over to the TM control.
  b.OnMove(kLeafLabel, "b_next", "true", RunState(tm, tm.initial_state),
           Move::kStay);

  // ---- Phase 2: one guarded micro-pipeline per delta entry.
  int pipeline = 0;
  for (const auto& [key, action] : tm.delta) {
    const auto& [q, read] = key;
    const std::string tag = std::to_string(pipeline++);
    const std::string guard =
        "exists h (Head(h) & " + TapeRel(read) + "(h))";
    const bool writes = action.write != -1 && action.write != read;
    const bool moves = action.dir != StringTm::Dir::kStay;
    const std::string done = RunState(tm, action.next_state);
    const std::string after_write = moves ? "mv_" + tag : done;

    if (writes) {
      // Erase the old symbol under the head, then add the new one.
      b.OnUpdate("*", RunState(tm, q), guard, "wr_" + tag, TapeRel(read),
                 TapeRel(read) + "(u) & !(Head(u))", {"u"});
      b.OnUpdate("*", "wr_" + tag, "true", after_write,
                 TapeRel(action.write),
                 TapeRel(action.write) + "(u) | Head(u)", {"u"});
    } else {
      // No tape change: an identity update carries the pipeline forward.
      b.OnUpdate("*", RunState(tm, q), guard, after_write, "P", "P(u)",
                 {"u"});
    }
    if (moves) {
      const char* step = action.dir == StringTm::Dir::kRight
                             ? "exists h (Head(h) & Next(h, u))"
                             : "exists h (Head(h) & Next(u, h))";
      b.OnUpdate("*", "mv_" + tag, "true", done, "Head", step, {"u"});
    }
  }
  return b.Build();
}

Tree StringTmInputTree(const std::vector<int>& input) {
  std::vector<DataValue> values(input.begin(), input.end());
  Tree tree = StringTree(values, "s", "a");
  AssignUniqueIds(tree);
  return tree;
}

}  // namespace treewalk
