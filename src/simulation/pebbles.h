#ifndef TREEWALK_SIMULATION_PEBBLES_H_
#define TREEWALK_SIMULATION_PEBBLES_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// The pebble machinery of Theorem 7.1(1)'s proof: with unique IDs, a
/// tree-walking device can place a finite number of pebbles on nodes (by
/// storing their IDs in registers) and do arithmetic on their
/// *document-order ranks*.  The paper numbers nodes "in-order"; any total
/// order with locally-computable successor works, and document (pre-)
/// order is one (see DESIGN.md substitution 3).  Since Tree stores nodes
/// in document order, rank(p) == NodeId(p), which tests exploit; the
/// machine itself only uses local moves and honestly counts every move.
///
/// All operations run in O(n) moves or better; the step counter is the
/// cost model for the LOGSPACE simulation's polynomial-overhead claim.
class PebbleMachine {
 public:
  /// `num_pebbles` pebbles, all initially on the root (rank 0).
  PebbleMachine(const Tree& tree, int num_pebbles);

  int num_pebbles() const { return num_pebbles_; }
  std::int64_t steps() const { return steps_; }
  const Tree& tree() const { return *tree_; }

  /// Current node of pebble `p` (its rank, by the storage invariant).
  NodeId node(int p) const { return pebbles_[static_cast<std::size_t>(p)]; }

  // --- O(1) primitives. ------------------------------------------------
  bool AtRoot(int p) const;
  bool Equal(int p, int q) const;
  /// p := q (copying an ID between registers costs one step).
  void Place(int p, int q);
  void MoveToRoot(int p);

  // --- Document-order steps (amortized O(1), worst case O(depth)). -----
  /// Advances `p` to the next node in document order; error at the end.
  Status DocNext(int p);
  /// Retreats `p`; error at the root.
  Status DocPrev(int p);

  // --- Rank arithmetic (each O(n) moves). -------------------------------
  /// rank(p) += rank(q).  p and q may alias (doubling).
  Status AdvanceBy(int p, int q);
  /// rank(p) -= rank(q); error if that would be negative.  p != q.
  Status RetreatBy(int p, int q);
  /// rank(p) := floor(rank(p) / 2), by walking two pebbles toward each
  /// other (the proof's trick for reading tape bits).
  Status Halve(int p);
  /// rank(p) mod 2, by walking a copy to the root counting modulo two.
  Result<int> ParityOf(int p);
  /// rank(p) := 2^i; error if 2^i exceeds the tree (capacity n-1).
  Status SetToPowerOfTwo(int p, int i);

  // --- Tape-as-number operations (the heart of the simulation). --------
  /// Bit `bit` of rank(p): halve a copy `bit` times, then take parity.
  Result<int> TestBit(int p, int bit);
  /// Sets bit `bit` of rank(p) to `value` (add/subtract 2^bit as needed).
  Status WriteBit(int p, int bit, bool value);

 private:
  /// Index of an internal scratch pebble (allocated beyond the user's).
  int Scratch(int i) const { return num_pebbles_ + i; }

  const Tree* tree_;
  int num_pebbles_;
  std::vector<NodeId> pebbles_;
  std::int64_t steps_ = 0;
};

}  // namespace treewalk

#endif  // TREEWALK_SIMULATION_PEBBLES_H_
