#include "src/regular/hedge.h"

#include <algorithm>
#include <set>

#include "src/tree/traversal.h"

namespace treewalk {

HRegex HRegex::Make(Node node) {
  return HRegex(std::make_shared<const Node>(std::move(node)));
}

HRegex HRegex::Epsilon() {
  Node n;
  n.kind = Kind::kEpsilon;
  return Make(std::move(n));
}

HRegex HRegex::Sym(int state) {
  Node n;
  n.kind = Kind::kSym;
  n.sym = state;
  return Make(std::move(n));
}

HRegex HRegex::Concat(HRegex a, HRegex b) {
  Node n;
  n.kind = Kind::kConcat;
  n.children = {std::move(a), std::move(b)};
  return Make(std::move(n));
}

HRegex HRegex::Alt(HRegex a, HRegex b) {
  Node n;
  n.kind = Kind::kAlt;
  n.children = {std::move(a), std::move(b)};
  return Make(std::move(n));
}

HRegex HRegex::Star(HRegex inner) {
  Node n;
  n.kind = Kind::kStar;
  n.children = {std::move(inner)};
  return Make(std::move(n));
}

HRegex HRegex::Seq(const std::vector<HRegex>& parts) {
  if (parts.empty()) return Epsilon();
  HRegex out = parts.front();
  for (std::size_t i = 1; i < parts.size(); ++i) {
    out = Concat(out, parts[i]);
  }
  return out;
}

HRegex HRegex::AnyOf(const std::vector<int>& states) {
  if (states.empty()) return Star(Epsilon());
  HRegex alt = Sym(states.front());
  for (std::size_t i = 1; i < states.size(); ++i) {
    alt = Alt(alt, Sym(states[i]));
  }
  return Star(alt);
}

int Nfa::AddState() {
  states_.emplace_back();
  return static_cast<int>(states_.size()) - 1;
}

Nfa::Nfa(const HRegex& regex) {
  auto [start, accept] = Build(regex);
  start_ = start;
  accept_ = accept;
}

std::pair<int, int> Nfa::Build(const HRegex& regex) {
  switch (regex.kind()) {
    case HRegex::Kind::kEpsilon: {
      int s = AddState();
      int t = AddState();
      states_[static_cast<std::size_t>(s)].edges.emplace_back(-1, t);
      return {s, t};
    }
    case HRegex::Kind::kSym: {
      int s = AddState();
      int t = AddState();
      states_[static_cast<std::size_t>(s)].edges.emplace_back(regex.sym(), t);
      return {s, t};
    }
    case HRegex::Kind::kConcat: {
      auto [s1, t1] = Build(regex.left());
      auto [s2, t2] = Build(regex.right());
      states_[static_cast<std::size_t>(t1)].edges.emplace_back(-1, s2);
      return {s1, t2};
    }
    case HRegex::Kind::kAlt: {
      auto [s1, t1] = Build(regex.left());
      auto [s2, t2] = Build(regex.right());
      int s = AddState();
      int t = AddState();
      states_[static_cast<std::size_t>(s)].edges.emplace_back(-1, s1);
      states_[static_cast<std::size_t>(s)].edges.emplace_back(-1, s2);
      states_[static_cast<std::size_t>(t1)].edges.emplace_back(-1, t);
      states_[static_cast<std::size_t>(t2)].edges.emplace_back(-1, t);
      return {s, t};
    }
    case HRegex::Kind::kStar: {
      auto [s1, t1] = Build(regex.inner());
      int s = AddState();
      int t = AddState();
      states_[static_cast<std::size_t>(s)].edges.emplace_back(-1, s1);
      states_[static_cast<std::size_t>(s)].edges.emplace_back(-1, t);
      states_[static_cast<std::size_t>(t1)].edges.emplace_back(-1, s1);
      states_[static_cast<std::size_t>(t1)].edges.emplace_back(-1, t);
      return {s, t};
    }
  }
  return {0, 0};
}

void Nfa::EpsilonClose(std::vector<bool>& set) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (!set[s]) continue;
      for (const auto& [symbol, target] : states_[s].edges) {
        if (symbol == -1 && !set[static_cast<std::size_t>(target)]) {
          set[static_cast<std::size_t>(target)] = true;
          changed = true;
        }
      }
    }
  }
}

bool Nfa::AcceptsSomeWord(const std::vector<std::vector<int>>& sets) const {
  std::vector<bool> current(states_.size(), false);
  current[static_cast<std::size_t>(start_)] = true;
  EpsilonClose(current);
  for (const std::vector<int>& letter_set : sets) {
    std::vector<bool> next(states_.size(), false);
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (!current[s]) continue;
      for (const auto& [symbol, target] : states_[s].edges) {
        if (symbol == -1) continue;
        if (std::find(letter_set.begin(), letter_set.end(), symbol) !=
            letter_set.end()) {
          next[static_cast<std::size_t>(target)] = true;
        }
      }
    }
    EpsilonClose(next);
    current = std::move(next);
  }
  return current[static_cast<std::size_t>(accept_)];
}

Nfa Nfa::IntersectWith(const Nfa& other, int b_width) const {
  Nfa out;
  const std::size_t nb = other.states_.size();
  out.states_.resize(states_.size() * nb);
  auto id = [nb](int a, int b) {
    return static_cast<int>(static_cast<std::size_t>(a) * nb +
                            static_cast<std::size_t>(b));
  };
  for (std::size_t a = 0; a < states_.size(); ++a) {
    for (std::size_t b = 0; b < nb; ++b) {
      State& state = out.states_[static_cast<std::size_t>(
          id(static_cast<int>(a), static_cast<int>(b)))];
      // Epsilon moves of either component.
      for (const auto& [sym, ta] : states_[a].edges) {
        if (sym == -1) {
          state.edges.emplace_back(-1, id(ta, static_cast<int>(b)));
        }
      }
      for (const auto& [sym, tb] : other.states_[b].edges) {
        if (sym == -1) {
          state.edges.emplace_back(-1, id(static_cast<int>(a), tb));
        }
      }
      // Joint symbol moves on the pair symbol.
      for (const auto& [sa, ta] : states_[a].edges) {
        if (sa == -1) continue;
        for (const auto& [sb, tb] : other.states_[b].edges) {
          if (sb == -1) continue;
          state.edges.emplace_back(sa * b_width + sb, id(ta, tb));
        }
      }
    }
  }
  out.start_ = id(start_, other.start_);
  out.accept_ = id(accept_, other.accept_);
  return out;
}

Nfa Nfa::ShiftSymbols(int offset) const {
  Nfa out = *this;
  for (State& state : out.states_) {
    for (auto& [sym, target] : state.edges) {
      if (sym != -1) sym += offset;
    }
  }
  return out;
}

void HedgeAutomaton::AddTransition(int state, std::string label,
                                   HRegex horizontal) {
  transitions_.push_back(
      Transition{state, std::move(label), Nfa(horizontal)});
}

Result<std::vector<std::vector<int>>> HedgeAutomaton::RunBottomUp(
    const Tree& tree) const {
  if (tree.empty()) return InvalidArgument("empty tree");
  std::set<std::string> exact_labels;
  for (const Transition& t : transitions_) {
    if (t.label != "*") exact_labels.insert(t.label);
  }
  std::vector<std::vector<int>> states(tree.size());
  for (NodeId u : PostOrder(tree)) {
    std::vector<std::vector<int>> child_sets;
    for (NodeId c = tree.FirstChild(u); c != kNoNode;
         c = tree.NextSibling(c)) {
      child_sets.push_back(states[static_cast<std::size_t>(c)]);
    }
    const std::string& label = tree.LabelName(tree.label(u));
    bool shadowed = exact_labels.count(label) > 0;
    std::set<int> reachable;
    for (const Transition& t : transitions_) {
      if (t.label == "*") {
        if (shadowed) continue;
      } else if (t.label != label) {
        continue;
      }
      if (reachable.count(t.state) > 0) continue;
      if (t.horizontal.AcceptsSomeWord(child_sets)) {
        reachable.insert(t.state);
      }
    }
    states[static_cast<std::size_t>(u)].assign(reachable.begin(),
                                               reachable.end());
  }
  return states;
}

Result<bool> HedgeAutomaton::Accepts(const Tree& tree) const {
  TREEWALK_ASSIGN_OR_RETURN(auto states, RunBottomUp(tree));
  const std::vector<int>& root = states[static_cast<std::size_t>(tree.root())];
  for (int f : final_) {
    if (std::find(root.begin(), root.end(), f) != root.end()) return true;
  }
  return false;
}

std::vector<const HedgeAutomaton::Transition*> HedgeAutomaton::ApplicableAt(
    const std::string& label) const {
  bool has_exact = false;
  if (label != "*") {
    for (const Transition& t : transitions_) {
      if (t.label == label) {
        has_exact = true;
        break;
      }
    }
  }
  std::vector<const Transition*> out;
  for (const Transition& t : transitions_) {
    bool applies = label == "*" ? t.label == "*"
                                : (t.label == label ||
                                   (t.label == "*" && !has_exact));
    if (applies) out.push_back(&t);
  }
  return out;
}

namespace {

/// Exact labels a transition list mentions.
std::set<std::string> ExactLabelsOf(
    const std::vector<std::string>& labels) {
  std::set<std::string> out;
  for (const std::string& l : labels) {
    if (l != "*") out.insert(l);
  }
  return out;
}

}  // namespace

HedgeAutomaton HedgeAutomaton::Union(const HedgeAutomaton& a,
                                     const HedgeAutomaton& b) {
  // Wildcard shadowing is per merged label set: if A has an exact "b"
  // row, B's wildcards would wrongly stop applying at "b" nodes.
  // Instantiate each side's wildcard rows at the *other* side's exact
  // labels first, so the merged shadowing changes nothing.
  std::vector<std::string> a_labels, b_labels;
  for (const Transition& t : a.transitions_) a_labels.push_back(t.label);
  for (const Transition& t : b.transitions_) b_labels.push_back(t.label);
  std::set<std::string> a_exact = ExactLabelsOf(a_labels);
  std::set<std::string> b_exact = ExactLabelsOf(b_labels);

  HedgeAutomaton out(a.num_states_ + b.num_states_);
  out.transitions_ = a.transitions_;
  for (const std::string& label : b_exact) {
    if (a_exact.count(label) > 0) continue;
    for (const Transition* t : a.ApplicableAt("*")) {
      out.transitions_.push_back(Transition{t->state, label, t->horizontal});
    }
  }
  for (const Transition& t : b.transitions_) {
    out.transitions_.push_back(Transition{
        t.state + a.num_states_, t.label,
        t.horizontal.ShiftSymbols(a.num_states_)});
  }
  for (const std::string& label : a_exact) {
    if (b_exact.count(label) > 0) continue;
    for (const Transition* t : b.ApplicableAt("*")) {
      out.transitions_.push_back(Transition{
          t->state + a.num_states_, label,
          t->horizontal.ShiftSymbols(a.num_states_)});
    }
  }
  out.final_ = a.final_;
  for (int f : b.final_) out.final_.push_back(f + a.num_states_);
  return out;
}

HedgeAutomaton HedgeAutomaton::Intersect(const HedgeAutomaton& a,
                                         const HedgeAutomaton& b) {
  const int nb = b.num_states_;
  HedgeAutomaton out(a.num_states_ * nb);
  // Label universe: every exact label either side mentions gets its own
  // product transitions; a joint wildcard row covers the rest, which
  // preserves shadowing (the product's exact rows shadow its wildcard
  // exactly where a component's exact rows shadowed its wildcard).
  std::set<std::string> labels;
  for (const Transition& t : a.transitions_) {
    if (t.label != "*") labels.insert(t.label);
  }
  for (const Transition& t : b.transitions_) {
    if (t.label != "*") labels.insert(t.label);
  }
  labels.insert("*");
  for (const std::string& label : labels) {
    for (const Transition* ta : a.ApplicableAt(label)) {
      for (const Transition* tb : b.ApplicableAt(label)) {
        out.transitions_.push_back(Transition{
            ta->state * nb + tb->state, label,
            ta->horizontal.IntersectWith(tb->horizontal, nb)});
      }
    }
  }
  for (int fa : a.final_) {
    for (int fb : b.final_) out.final_.push_back(fa * nb + fb);
  }
  return out;
}

Result<std::vector<int>> HedgeAutomaton::StatesAt(const Tree& tree,
                                                  NodeId node) const {
  if (!tree.Valid(node)) return InvalidArgument("invalid node");
  TREEWALK_ASSIGN_OR_RETURN(auto states, RunBottomUp(tree));
  return states[static_cast<std::size_t>(node)];
}

}  // namespace treewalk
