#ifndef TREEWALK_REGULAR_LIBRARY_H_
#define TREEWALK_REGULAR_LIBRARY_H_

#include <string_view>

#include "src/regular/hedge.h"

namespace treewalk {

/// Hedge automaton for "the number of `label`-nodes is even" — the
/// regular partner of ParityProgram() for the Proposition 7.2
/// (attribute-free) comparison.  States: 0 = even, 1 = odd.
HedgeAutomaton ParityHedge(std::string_view label);

/// Hedge automaton for "some node carries `label`" — partner of
/// HasLabelProgram().  States: 0 = absent, 1 = present.
HedgeAutomaton HasLabelHedge(std::string_view label);

/// Hedge automaton for "every leaf carries `label`" — partner of
/// AllLeavesLabelProgram().  State 0 = subtree ok.
HedgeAutomaton AllLeavesLabelHedge(std::string_view label);

}  // namespace treewalk

#endif  // TREEWALK_REGULAR_LIBRARY_H_
