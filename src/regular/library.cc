#include "src/regular/library.h"

#include <string>

namespace treewalk {

namespace {

/// Words over {0, 1} with an even number of 1s: (0* 1 0* 1)* 0*.
HRegex EvenOnes() {
  HRegex zeros = HRegex::Star(HRegex::Sym(0));
  HRegex pair = HRegex::Seq(
      {zeros, HRegex::Sym(1), zeros, HRegex::Sym(1)});
  return HRegex::Concat(HRegex::Star(pair), zeros);
}

/// Words over {0, 1} with an odd number of 1s.
HRegex OddOnes() {
  HRegex zeros = HRegex::Star(HRegex::Sym(0));
  return HRegex::Seq({zeros, HRegex::Sym(1), EvenOnes()});
}

}  // namespace

HedgeAutomaton ParityHedge(std::string_view label) {
  const std::string lab(label);
  HedgeAutomaton a(2);
  // State of a node = parity of `label`-nodes in its subtree.
  a.AddTransition(1, lab, EvenOnes());
  a.AddTransition(0, lab, OddOnes());
  a.AddTransition(0, "*", EvenOnes());
  a.AddTransition(1, "*", OddOnes());
  a.AddFinal(0);
  return a;
}

HedgeAutomaton HasLabelHedge(std::string_view label) {
  const std::string lab(label);
  HedgeAutomaton a(2);
  HRegex any = HRegex::AnyOf({0, 1});
  // A `label` node is present regardless of its children.
  a.AddTransition(1, lab, any);
  // Any other node is present iff some child is.
  a.AddTransition(1, "*",
                  HRegex::Seq({any, HRegex::Sym(1), any}));
  a.AddTransition(0, "*", HRegex::AnyOf({0}));
  a.AddFinal(1);
  return a;
}

HedgeAutomaton AllLeavesLabelHedge(std::string_view label) {
  const std::string lab(label);
  HedgeAutomaton a(1);
  HRegex ok_plus = HRegex::Concat(HRegex::Sym(0), HRegex::AnyOf({0}));
  // A `label` leaf is ok; internal nodes (any label) are ok when every
  // child is ok; a non-`label` leaf gets no state.
  a.AddTransition(0, lab, HRegex::Epsilon());
  a.AddTransition(0, lab, ok_plus);
  a.AddTransition(0, "*", ok_plus);
  a.AddFinal(0);
  return a;
}

}  // namespace treewalk
