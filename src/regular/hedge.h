#ifndef TREEWALK_REGULAR_HEDGE_H_
#define TREEWALK_REGULAR_HEDGE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Regular expressions over hedge-automaton states (small ints), used as
/// the horizontal languages of unranked tree automata.
///
///   HRegex::Sym(0)                      -- one child in state 0
///   HRegex::Star(HRegex::Sym(1))        -- any number of state-1 children
///   HRegex::Concat(a, b), Alt(a, b), Epsilon()
class HRegex {
 public:
  enum class Kind { kEpsilon, kSym, kConcat, kAlt, kStar };

  static HRegex Epsilon();
  static HRegex Sym(int state);
  static HRegex Concat(HRegex a, HRegex b);
  static HRegex Alt(HRegex a, HRegex b);
  static HRegex Star(HRegex inner);
  /// Concatenation of a list (Epsilon when empty).
  static HRegex Seq(const std::vector<HRegex>& parts);
  /// (a)* for Sym-lists: Star(Alt(...)).
  static HRegex AnyOf(const std::vector<int>& states);

  Kind kind() const { return node_->kind; }
  int sym() const { return node_->sym; }
  const HRegex& left() const { return node_->children[0]; }
  const HRegex& right() const { return node_->children[1]; }
  const HRegex& inner() const { return node_->children[0]; }

 private:
  struct Node {
    Kind kind;
    int sym = -1;
    std::vector<HRegex> children;
  };
  explicit HRegex(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}
  static HRegex Make(Node node);

  std::shared_ptr<const Node> node_;
};

/// Thompson-constructed NFA over state symbols; advances by *sets* of
/// possible symbols, which is exactly what nondeterministic bottom-up
/// hedge evaluation needs.
class Nfa {
 public:
  /// Builds the NFA for `regex`.
  explicit Nfa(const HRegex& regex);

  /// True if some word w_1...w_n with w_i in sets[i] is accepted.
  bool AcceptsSomeWord(const std::vector<std::vector<int>>& sets) const;

  /// Product NFA over pair symbols: accepts a word of pair symbols
  /// (a * b_width + b) iff this accepts the a-projection and `other`
  /// accepts the b-projection.  Used by HedgeAutomaton intersection.
  Nfa IntersectWith(const Nfa& other, int b_width) const;

  /// Rebuilds with every symbol s replaced by s + offset (for disjoint
  /// unions of state spaces).
  Nfa ShiftSymbols(int offset) const;

 private:
  Nfa() = default;

  struct State {
    /// (symbol, target) edges; symbol -1 is epsilon.
    std::vector<std::pair<int, int>> edges;
  };
  int AddState();
  /// Adds the fragment for `regex`; returns (start, end).
  std::pair<int, int> Build(const HRegex& regex);
  void EpsilonClose(std::vector<bool>& set) const;

  std::vector<State> states_;
  int start_ = 0;
  int accept_ = 0;
};

/// A nondeterministic bottom-up hedge automaton: the standard model of
/// regular unranked tree languages (the MSO-definable languages of
/// Proposition 7.2).  A run assigns states bottom-up: node u with label
/// sigma can take state q if some transition (q, sigma, L) has the
/// children's state word in L.  The tree is accepted if the root can
/// take a final state.
class HedgeAutomaton {
 public:
  /// `num_states` automaton states named 0..num_states-1.
  explicit HedgeAutomaton(int num_states) : num_states_(num_states) {}

  /// Adds transition (state, label, horizontal).  Label "*" matches any
  /// label *not* matched by a non-wildcard transition of any state
  /// (exact labels shadow the wildcard, mirroring the walking library).
  void AddTransition(int state, std::string label, HRegex horizontal);

  void AddFinal(int state) { final_.push_back(state); }

  int num_states() const { return num_states_; }

  /// Membership test; runs bottom-up over `tree` (not delimited — hedge
  /// automata see the raw tree).
  Result<bool> Accepts(const Tree& tree) const;

  /// The set of states the given node can take (for tests).
  Result<std::vector<int>> StatesAt(const Tree& tree, NodeId node) const;

  /// Language union: disjoint union of the two automata (regular tree
  /// languages are closed under union).
  static HedgeAutomaton Union(const HedgeAutomaton& a,
                              const HedgeAutomaton& b);

  /// Language intersection via the product construction: product states
  /// (qa, qb) = qa * b.num_states() + qb, horizontal languages as
  /// product NFAs, with exact-label transitions instantiated from both
  /// sides' label sets so wildcard shadowing semantics are preserved.
  static HedgeAutomaton Intersect(const HedgeAutomaton& a,
                                  const HedgeAutomaton& b);

 private:
  struct Transition {
    int state;
    std::string label;
    Nfa horizontal;
  };

  /// All transitions of `self` applicable at a node labeled `label`
  /// under shadowing (label == "*" asks for the pure-wildcard row).
  std::vector<const Transition*> ApplicableAt(const std::string& label) const;
  Result<std::vector<std::vector<int>>> RunBottomUp(const Tree& tree) const;

  int num_states_;
  std::vector<Transition> transitions_;
  std::vector<int> final_;
};

}  // namespace treewalk

#endif  // TREEWALK_REGULAR_HEDGE_H_
