#ifndef TREEWALK_PROTOCOL_PROTOCOL_H_
#define TREEWALK_PROTOCOL_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/automata/program.h"
#include "src/common/result.h"

namespace treewalk {

/// One message of the Lemma 4.5 protocol.  `from` is 0 for party I
/// (holding f) and 1 for party II (holding g).
struct ProtocolMessage {
  enum class Kind {
    kType,              ///< <theta>: the party's N-type token (init)
    kAtpRequest,        ///< <phi, q, theta, tau>: evaluate my atp remotely
    kReply,             ///< <R>: the relation collected remotely
    kConfig,            ///< <q, tau>: the main walk crossed the boundary
    kConfigNeedAnswer,  ///< <q, tau, NeedAnswer>: a subcomputation crossed
    kAccept,
    kReject,
  };
  Kind kind;
  int from;
  std::string payload;
};

const char* MessageKindName(ProtocolMessage::Kind kind);

struct ProtocolOptions {
  std::int64_t max_steps = 1'000'000;
  int max_depth = 64;
  /// Variable budget k of the N-type tokens exchanged at initialization.
  int type_k = 2;
};

struct ProtocolResult {
  bool accepted = false;
  std::vector<ProtocolMessage> transcript;
  std::int64_t steps = 0;
  /// Order-sensitive 64-bit fingerprint of the transcript; equal
  /// dialogues (Lemma 4.6's counting unit) get equal fingerprints.
  std::uint64_t dialogue_fingerprint = 0;
};

/// Executes a tw^{r,l} program on the split string f#g through the
/// two-party protocol of Lemma 4.5: party I owns f# (and the tree-top
/// delimiters), party II owns g; the parties exchange N-type tokens at
/// initialization, configurations when the walk crosses the boundary,
/// and atp-request/reply pairs when a look-ahead selects nodes in the
/// other party's half.  Requests are deduplicated as in the lemma's
/// round-bounding argument: an already-answered request is reused, and a
/// request that re-enters itself while in flight rejects (the
/// computation cycled).
///
/// The verdict always equals the memoizing reference evaluation
/// (EvaluateViaConfigGraph) of the program on the same string.
///
/// Substitution note (DESIGN.md #4): the lemma's ==_N equivalence-class
/// messages are realized as atomic-type-set fingerprints of each half.
Result<ProtocolResult> RunSplitProtocol(const Program& program,
                                        const std::vector<DataValue>& f,
                                        const std::vector<DataValue>& g,
                                        DataValue hash,
                                        ProtocolOptions options = {});

/// Aggregate of a Lemma 4.6 census run.
struct DialogueCensus {
  int level = 0;
  std::size_t num_hypersets = 0;
  std::size_t num_distinct_dialogues = 0;
  /// Two distinct hypersets whose diagonal inputs f#f produced identical
  /// dialogues (the pigeonhole pair of Lemma 4.6), if any were found.
  bool collision_found = false;
  std::string collision_a;
  std::string collision_b;
};

/// Runs `program` through the protocol on the diagonal input f#f for the
/// encoding f of every level-`level` hyperset over `domain`, and counts
/// distinct dialogues.  When two distinct hypersets produce the same
/// dialogue, Lemma 4.6's argument applies: the protocol (hence the
/// program) cannot separate the mixed inputs, so it cannot compute L^m.
Result<DialogueCensus> RunDialogueCensus(const Program& program, int level,
                                         const std::vector<DataValue>& domain,
                                         DataValue hash,
                                         ProtocolOptions options = {});

}  // namespace treewalk

#endif  // TREEWALK_PROTOCOL_PROTOCOL_H_
