#include "src/protocol/protocol.h"

#include <map>
#include <set>
#include <tuple>

#include "src/hyperset/hyperset.h"
#include "src/logic/atomic_types.h"
#include "src/logic/tree_eval.h"
#include "src/relstore/store_eval.h"
#include "src/tree/delimited.h"
#include "src/tree/term_io.h"

namespace treewalk {

const char* MessageKindName(ProtocolMessage::Kind kind) {
  switch (kind) {
    case ProtocolMessage::Kind::kType:
      return "type";
    case ProtocolMessage::Kind::kAtpRequest:
      return "atp-request";
    case ProtocolMessage::Kind::kReply:
      return "reply";
    case ProtocolMessage::Kind::kConfig:
      return "config";
    case ProtocolMessage::Kind::kConfigNeedAnswer:
      return "config-need-answer";
    case ProtocolMessage::Kind::kAccept:
      return "accept";
    case ProtocolMessage::Kind::kReject:
      return "reject";
  }
  return "?";
}

namespace {

using ConfigKey = std::tuple<NodeId, std::string, Store>;

struct CallOutcome {
  enum class Kind { kInProgress, kAccept, kReject };
  Kind kind = Kind::kInProgress;
  Relation returned{0};
};

std::string SerializeStore(const Store& store) { return store.ToString(); }

/// The protocol session: a memoizing evaluation of the program on the
/// full split string, attributing every step to the party owning the
/// current node and recording the messages the Lemma 4.5 protocol
/// exchanges.
class Session {
 public:
  Session(const Program& program, const Tree& tree,
          const std::vector<int>& owner, const ProtocolOptions& options)
      : program_(program), tree_(tree), owner_(owner), options_(options) {
    for (const Rule& rule : program.rules()) {
      labels_.push_back(rule.label == "*" ? -2 : tree.FindLabel(rule.label));
      if (rule.label != "*") {
        exact_keys_.insert(rule.state + "\x1f" + rule.label);
      }
    }
  }

  Result<ProtocolResult> Run(std::uint64_t type_token_f,
                             std::uint64_t type_token_g) {
    Emit(ProtocolMessage::Kind::kType, 0, std::to_string(type_token_f));
    Emit(ProtocolMessage::Kind::kType, 1, std::to_string(type_token_g));

    TREEWALK_ASSIGN_OR_RETURN(
        CallOutcome outcome,
        Resolve(tree_.root(), program_.initial_state(),
                program_.initial_store(), 0));
    bool accepted = outcome.kind == CallOutcome::Kind::kAccept;
    Emit(accepted ? ProtocolMessage::Kind::kAccept
                  : ProtocolMessage::Kind::kReject,
         last_party_, "");

    ProtocolResult result;
    result.accepted = accepted;
    result.steps = steps_;
    result.dialogue_fingerprint = fingerprint_;
    result.transcript = std::move(transcript_);
    return result;
  }

 private:
  int OwnerOf(NodeId u) const { return owner_[static_cast<std::size_t>(u)]; }

  void Emit(ProtocolMessage::Kind kind, int from, std::string payload) {
    // Fingerprint: FNV-1a over (kind, from, payload).
    auto mix = [this](std::uint64_t v) {
      for (int byte = 0; byte < 8; ++byte) {
        fingerprint_ ^= (v >> (8 * byte)) & 0xff;
        fingerprint_ *= 1099511628211ull;
      }
    };
    mix(static_cast<std::uint64_t>(kind));
    mix(static_cast<std::uint64_t>(from));
    for (char c : payload) mix(static_cast<unsigned char>(c));
    transcript_.push_back(
        ProtocolMessage{kind, from, std::move(payload)});
  }

  Result<CallOutcome> Resolve(NodeId start, const std::string& start_state,
                              const Store& start_store, int depth) {
    if (depth > options_.max_depth) {
      return ResourceExhausted("atp nesting exceeded max_depth");
    }
    ConfigKey key(start, start_state, start_store);
    auto it = memo_.find(key);
    if (it != memo_.end()) {
      if (it->second.kind == CallOutcome::Kind::kInProgress) {
        // Lemma 4.5's rule (ii): a request re-issued while in flight
        // means the computation cycled; the party sends <reject>.
        Emit(ProtocolMessage::Kind::kReject, OwnerOf(start), "cycle");
        CallOutcome reject;
        reject.kind = CallOutcome::Kind::kReject;
        return reject;
      }
      return it->second;  // rule (i): reuse, no message
    }
    memo_.emplace(key, CallOutcome{});

    NodeId u = start;
    std::string state = start_state;
    Store store = start_store;
    std::set<ConfigKey> visited;

    CallOutcome outcome;
    outcome.kind = CallOutcome::Kind::kReject;
    while (true) {
      last_party_ = OwnerOf(u);
      if (state == program_.final_state()) {
        outcome.kind = CallOutcome::Kind::kAccept;
        if (store.num_relations() > 0) outcome.returned = store.At(0);
        break;
      }
      ConfigKey config(u, state, store);
      if (!visited.insert(config).second) {
        Emit(ProtocolMessage::Kind::kReject, OwnerOf(u), "cycle");
        break;
      }

      TREEWALK_ASSIGN_OR_RETURN(const Rule* rule, FindRule(u, state, store));
      if (rule == nullptr) break;  // stuck
      if (++steps_ > options_.max_steps) {
        return ResourceExhausted("exceeded max_steps");
      }

      const Action& action = rule->action;
      bool rejected = false;
      switch (action.kind) {
        case Action::Kind::kMove: {
          NodeId v = ApplyMove(u, action.move);
          if (v == kNoNode) {
            rejected = true;
            break;
          }
          if (OwnerOf(v) != OwnerOf(u)) {
            // The walk crosses the boundary: the active party ships the
            // configuration (with NeedAnswer when a caller awaits us).
            Emit(depth == 0 ? ProtocolMessage::Kind::kConfig
                            : ProtocolMessage::Kind::kConfigNeedAnswer,
                 OwnerOf(u),
                 action.next_state + " | " + SerializeStore(store));
          }
          u = v;
          break;
        }
        case Action::Kind::kUpdate: {
          StoreContext context = MakeContext(u, store);
          TREEWALK_ASSIGN_OR_RETURN(
              Relation updated,
              EvalStoreFormula(context, action.update, action.update_vars));
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(updated)));
          break;
        }
        case Action::Kind::kLookAhead: {
          TREEWALK_ASSIGN_OR_RETURN(
              std::vector<NodeId> selected,
              SelectNodes(tree_, action.selector, u));
          // Partition by owner; a nonempty foreign part costs an
          // atp-request (once per distinct request payload).
          bool has_foreign = false;
          for (NodeId v : selected) {
            if (OwnerOf(v) != OwnerOf(u)) has_foreign = true;
          }
          if (has_foreign) {
            std::string payload = action.selector.ToString() + " | " +
                                  action.call_state + " | " +
                                  SerializeStore(store);
            if (requests_sent_.insert(payload).second) {
              Emit(ProtocolMessage::Kind::kAtpRequest, OwnerOf(u),
                   std::move(payload));
            } else {
              has_foreign = false;  // answered before: reuse silently
            }
          }
          Relation collected(store.At(0).arity());
          Relation foreign_part(store.At(0).arity());
          for (NodeId v : selected) {
            TREEWALK_ASSIGN_OR_RETURN(
                CallOutcome sub,
                Resolve(v, action.call_state, store, depth + 1));
            if (sub.kind != CallOutcome::Kind::kAccept) {
              rejected = true;
              break;
            }
            collected.UnionWith(sub.returned);
            if (OwnerOf(v) != OwnerOf(u)) {
              foreign_part.UnionWith(sub.returned);
            }
          }
          if (rejected) break;
          if (has_foreign) {
            Emit(ProtocolMessage::Kind::kReply, 1 - OwnerOf(u),
                 foreign_part.ToString());
          }
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(collected)));
          break;
        }
      }
      if (rejected) break;
      state = action.next_state;
    }

    memo_[key] = outcome;
    return outcome;
  }

  Result<const Rule*> FindRule(NodeId u, const std::string& state,
                               const Store& store) {
    Symbol label = tree_.label(u);
    bool shadowed =
        exact_keys_.count(state + "\x1f" + tree_.LabelName(label)) > 0;
    const Rule* found = nullptr;
    StoreContext context = MakeContext(u, store);
    for (std::size_t i = 0; i < program_.rules().size(); ++i) {
      const Rule& rule = program_.rules()[i];
      if (rule.state != state) continue;
      if (rule.label == "*") {
        if (shadowed) continue;
      } else if (labels_[i] != label) {
        continue;
      }
      TREEWALK_ASSIGN_OR_RETURN(bool holds,
                                EvalStoreSentence(context, rule.guard));
      if (!holds) continue;
      if (found != nullptr) {
        return Nondeterminism("two rules apply in state " + state);
      }
      found = &rule;
    }
    return found;
  }

  StoreContext MakeContext(NodeId u, const Store& store) const {
    StoreContext context;
    context.store = &store;
    context.values = &tree_.values();
    for (AttrId a = 0; a < static_cast<AttrId>(tree_.num_attributes()); ++a) {
      context.current_attrs[tree_.attributes().NameOf(a)] = tree_.attr(a, u);
    }
    return context;
  }

  NodeId ApplyMove(NodeId u, Move move) const {
    switch (move) {
      case Move::kStay:
        return u;
      case Move::kLeft:
        return tree_.PrevSibling(u);
      case Move::kRight:
        return tree_.NextSibling(u);
      case Move::kUp:
        return tree_.Parent(u);
      case Move::kDown:
        return tree_.FirstChild(u);
    }
    return kNoNode;
  }

  const Program& program_;
  const Tree& tree_;
  const std::vector<int>& owner_;
  const ProtocolOptions& options_;
  std::vector<Symbol> labels_;
  std::set<std::string> exact_keys_;
  std::map<ConfigKey, CallOutcome> memo_;
  std::set<std::string> requests_sent_;
  std::vector<ProtocolMessage> transcript_;
  std::uint64_t fingerprint_ = 1469598103934665603ull;
  std::int64_t steps_ = 0;
  int last_party_ = 0;
};

}  // namespace

Result<ProtocolResult> RunSplitProtocol(const Program& program,
                                        const std::vector<DataValue>& f,
                                        const std::vector<DataValue>& g,
                                        DataValue hash,
                                        ProtocolOptions options) {
  for (const auto* half : {&f, &g}) {
    for (DataValue v : *half) {
      if (v == hash) {
        return InvalidArgument("separator value occurs inside a half");
      }
    }
  }
  std::vector<DataValue> s = SplitString(f, g, hash);
  Tree string_tree = StringTree(s);
  DelimitedTree delimited = Delimit(string_tree);
  const Tree& tree = delimited.tree;

  // Ownership: original chain position <= |f| (f plus the separator)
  // belongs to party I; delimiters follow their parent; the top wrapper
  // is party I's.
  const NodeId boundary = static_cast<NodeId>(f.size());
  std::vector<int> owner(tree.size(), 0);
  for (NodeId d = 0; d < static_cast<NodeId>(tree.size()); ++d) {
    NodeId orig = delimited.to_original[static_cast<std::size_t>(d)];
    if (orig != kNoNode) {
      owner[static_cast<std::size_t>(d)] = orig <= boundary ? 0 : 1;
    } else if (tree.Parent(d) != kNoNode) {
      owner[static_cast<std::size_t>(d)] =
          owner[static_cast<std::size_t>(tree.Parent(d))];
    }
  }

  // N-type tokens over the shared finite domain (all values of s).
  std::vector<DataValue> domain = s;
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  std::vector<DataValue> f_hash = f;
  f_hash.push_back(hash);
  std::vector<DataValue> hash_g = {hash};
  hash_g.insert(hash_g.end(), g.begin(), g.end());
  std::uint64_t token_f =
      TypeSetFingerprint(AtomicTypeSet(f_hash, options.type_k, domain));
  std::uint64_t token_g =
      TypeSetFingerprint(AtomicTypeSet(hash_g, options.type_k, domain));

  Session session(program, tree, owner, options);
  return session.Run(token_f, token_g);
}

Result<DialogueCensus> RunDialogueCensus(const Program& program, int level,
                                         const std::vector<DataValue>& domain,
                                         DataValue hash,
                                         ProtocolOptions options) {
  DialogueCensus census;
  census.level = level;
  std::map<std::uint64_t, const Hyperset*> seen;
  std::vector<Hyperset> hypersets = EnumerateHypersets(level, domain);
  census.num_hypersets = hypersets.size();
  for (const Hyperset& h : hypersets) {
    std::vector<DataValue> f = EncodeHyperset(h);
    TREEWALK_ASSIGN_OR_RETURN(ProtocolResult run,
                              RunSplitProtocol(program, f, f, hash, options));
    auto [it, inserted] = seen.emplace(run.dialogue_fingerprint, &h);
    if (!inserted && !census.collision_found && !(*it->second == h)) {
      census.collision_found = true;
      census.collision_a = it->second->ToString();
      census.collision_b = h.ToString();
    }
  }
  census.num_distinct_dialogues = seen.size();
  return census;
}

}  // namespace treewalk
