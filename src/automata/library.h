#ifndef TREEWALK_AUTOMATA_LIBRARY_H_
#define TREEWALK_AUTOMATA_LIBRARY_H_

#include <string_view>

#include "src/automata/program.h"
#include "src/common/result.h"

namespace treewalk {

/// The paper's Example 3.2, verbatim in spirit: a tw^{r,l} program with
/// one unary relation register X1 that accepts a tree iff for every
/// delta-labeled node all of its leaf descendants carry the same value of
/// attribute `attr`.  Rejection happens by the delta-checker
/// subcomputation getting stuck on a non-singleton X1, which rejects the
/// whole run (Section 3 semantics).
Result<Program> Example32Program(std::string_view attr = "a");

/// Plain tw: depth-first walk of delim(t) that accepts iff some node
/// carries `label`.  Demonstrates delimiter-guided DFS with five states
/// and no storage.
Result<Program> HasLabelProgram(std::string_view label);

/// Plain tw: accepts iff the number of `label`-labeled nodes is even.
/// A regular (MSO) property computed by pure walking — the Prop. 7.2
/// regime (A = empty set).
Result<Program> ParityProgram(std::string_view label);

/// Plain tw: accepts iff every leaf carries `label`.  Partner of the
/// regular module's AllLeavesLabelHedge for the Prop. 7.2 comparison.
Result<Program> AllLeavesLabelProgram(std::string_view label);

/// tw^l: stores the root's `attr` value in a single-value register, then
/// walks the tree and accepts iff some leaf carries the same value.
/// Uses guard-dispatched branching on register content.
Result<Program> RootValueAtSomeLeafProgram(std::string_view attr = "a");

/// tw^r: on a split string (monadic tree, attribute `attr`, one
/// occurrence of `separator`), collects the value sets before and after
/// the separator into registers F and G and accepts iff F = G.  This
/// decides L^1 on level-1 hyperset encodings, but only sees the *flat
/// symbol set* — the Section 4 census uses it to exhibit dialogue
/// collisions on deeper hypersets.
Result<Program> SetEqualityProgram(DataValue separator,
                                   std::string_view attr = "a");

/// tw^{r,l}: the same language as SetEqualityProgram, but computed with
/// two atp() look-aheads from the root instead of a walk: one
/// subcomputation per cell before/after the separator returns the cell's
/// value; the unions are compared with an FO guard.  On split strings
/// its look-aheads select nodes in both halves, so the Lemma 4.5
/// protocol exchanges atp-request/reply pairs.
Result<Program> SetEqualityViaLookaheadProgram(DataValue separator,
                                               std::string_view attr = "a");

/// tw^r: collects the multiset-free *set* of all `attr` values of
/// `label`-nodes into a binary relation paired with the root's value,
/// then accepts iff every collected value equals the root's.  Exercises
/// relational updates with quantified guards and no look-ahead.
/// (Walks with the DFS skeleton, updating on every `label` node.)
Result<Program> AllLabelValuesEqualRootProgram(std::string_view label,
                                               std::string_view attr = "a");

/// tw^{r,l}: evaluates an AND/OR circuit tree (labels "and", "or",
/// "lit"; literal truth = attribute `attr` = 1) using atp() as the
/// alternation mechanism of Theorem 7.1(2)'s proof sketch: a gate
/// launches one subcomputation per child, each returning {0} or {1},
/// and decides by an FO guard on the union.  Equivalent to the
/// alternating machine XtmBooleanCircuit().
Result<Program> BooleanCircuitProgram(std::string_view attr = "v");

/// tw^r: the EXPTIME^X regime of Theorem 7.1(4), exhibited.  One walk
/// materializes the document order over unique IDs (attribute "id") as
/// a Less relation; then a single FO update repeatedly *increments* the
/// register X read as a binary number over the IDs (bit i = node i in
/// X), until X holds every ID.  The store stays polynomial while the
/// run takes 2^|t| - 1 increments: exponentially many configurations
/// from polynomial storage.  Requires AssignUniqueIds(tree) first.
Result<Program> ExponentialCounterProgram();

}  // namespace treewalk

#endif  // TREEWALK_AUTOMATA_LIBRARY_H_
