#ifndef TREEWALK_AUTOMATA_PROGRAM_H_
#define TREEWALK_AUTOMATA_PROGRAM_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/logic/formula.h"
#include "src/relstore/store.h"

namespace treewalk {

/// The four device classes of the paper (Definitions 3.1 and 5.1).
enum class ProgramClass {
  kTw,    ///< plain tree-walking: no registers, no look-ahead
  kTwL,   ///< tw^l: unary single-value registers + single-node look-ahead
  kTwR,   ///< tw^r: relational storage, no look-ahead
  kTwRL,  ///< tw^{r,l}: relational storage + look-ahead (Definition 3.1)
};

const char* ProgramClassName(ProgramClass c);

/// Walking directions of the move function m_d (Definition 3.1):
/// stay, left sibling, right sibling, parent, first child.
enum class Move { kStay, kLeft, kRight, kUp, kDown };

const char* MoveName(Move m);

/// The right-hand side alpha of a rule.
struct Action {
  enum class Kind {
    kMove,       ///< (q', d)
    kUpdate,     ///< (q', psi, i)
    kLookAhead,  ///< (q', atp(phi(x,y), p), i)
  };

  Kind kind = Kind::kMove;
  /// Successor state q'.
  std::string next_state;
  /// kMove: the direction d.
  Move move = Move::kStay;
  /// kUpdate / kLookAhead: target register index i (0-based).
  int register_index = 0;
  /// kUpdate: the store formula psi defining the new register content...
  Formula update;
  /// ...with its free variables in tuple-column order.
  std::vector<std::string> update_vars;
  /// kLookAhead: the FO(exists*) selector phi(x, y)...
  Formula selector;
  /// ...and the state p the subcomputations start in.
  std::string call_state;
};

/// One transition rule (sigma, q, xi) -> alpha.  `label` is matched
/// against the node label on the *delimited* tree, so it may be a
/// delimiter label (#top, #open, #close, #leaf); the wildcard "*" matches
/// any label but is shadowed by an exact-label rule for the same state
/// (this keeps wildcard programs deterministic without rule duplication).
struct Rule {
  std::string label;
  std::string state;
  /// The store sentence xi; must be Formula::True() for class kTw.
  Formula guard;
  Action action;
};

/// A validated tree-walking program (Definition 3.1).  Immutable; build
/// with ProgramBuilder.  Programs always run on delim(t) — the
/// interpreter wraps raw input trees itself.
class Program {
 public:
  ProgramClass program_class() const { return class_; }
  const std::string& initial_state() const { return initial_state_; }
  const std::string& final_state() const { return final_state_; }
  const std::vector<Rule>& rules() const { return rules_; }
  /// Register schema and initial contents (tau_0).
  const Store& initial_store() const { return initial_store_; }

  /// All state names mentioned by the program.
  std::vector<std::string> States() const;

  /// The size measure |B| of Definition 3.1: states + initial register
  /// values + total guard size.
  std::size_t SizeMeasure() const;

 private:
  friend class ProgramBuilder;

  ProgramClass class_ = ProgramClass::kTw;
  std::string initial_state_;
  std::string final_state_;
  std::vector<Rule> rules_;
  Store initial_store_;
};

}  // namespace treewalk

#endif  // TREEWALK_AUTOMATA_PROGRAM_H_
