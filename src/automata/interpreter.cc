#include "src/automata/interpreter.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include <chrono>

#include "src/common/failpoint.h"
#include "src/common/governor.h"
#include "src/common/metrics.h"
#include "src/logic/compile.h"
#include "src/logic/planner.h"
#include "src/logic/selector_cache.h"
#include "src/logic/tree_eval.h"
#include "src/tree/snapshot.h"
#include "src/relstore/store_eval.h"
#include "src/tree/axis_index.h"
#include "src/tree/tree_stats.h"

namespace treewalk {

const char* PlanModeName(PlanMode m) {
  switch (m) {
    case PlanMode::kAuto:
      return "auto";
    case PlanMode::kFixed:
      return "fixed";
  }
  return "?";
}

const char* RejectReasonName(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kStuck:
      return "stuck";
    case RejectReason::kCycle:
      return "cycle";
    case RejectReason::kSubcomputationRejected:
      return "subcomputation-rejected";
    case RejectReason::kMoveOffTree:
      return "move-off-tree";
  }
  return "?";
}

namespace {

/// Interpreter instrument family (docs/OBSERVABILITY.md).  RunStats
/// stays the per-run view; these registry counters are its process-wide
/// aggregation, flushed once per run (end of Runner::Run, success or
/// error) so the per-transition hot loop never touches an atomic.
struct InterpMetrics {
  Counter* runs;
  Counter* steps;
  Counter* subcomputations;
  Counter* atp_calls;
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* compiled_evals;
  Counter* reference_evals;
  Counter* interval_evals;
  Counter* dense_evals;
  Counter* store_updates;
  Counter* picks_reference;
  Counter* picks_dense;
  Counter* picks_interval;
  Histogram* compiled_eval_us;
  Histogram* reference_eval_us;

  static InterpMetrics& Get() {
    static InterpMetrics* metrics = [] {
      auto* m = new InterpMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      m->runs = r.FindOrCreateCounter("treewalk_interp_runs_total",
                                      "Interpreter runs started");
      m->steps = r.FindOrCreateCounter("treewalk_interp_steps_total",
                                       "Transitions executed");
      m->subcomputations =
          r.FindOrCreateCounter("treewalk_interp_subcomputations_total",
                                "atp() subcomputations spawned");
      m->atp_calls = r.FindOrCreateCounter("treewalk_interp_atp_calls_total",
                                           "atp() rule firings");
      m->cache_hits = r.FindOrCreateCounter(
          "treewalk_interp_selector_cache_total",
          "Selector evaluations answered from the per-run cache",
          {{"outcome", "hit"}});
      m->cache_misses = r.FindOrCreateCounter(
          "treewalk_interp_selector_cache_total",
          "Selector evaluations answered from the per-run cache",
          {{"outcome", "miss"}});
      m->compiled_evals = r.FindOrCreateCounter(
          "treewalk_interp_selector_evals_total",
          "Actual selector evaluations by evaluator path",
          {{"path", "compiled"}});
      m->reference_evals = r.FindOrCreateCounter(
          "treewalk_interp_selector_evals_total",
          "Actual selector evaluations by evaluator path",
          {{"path", "reference"}});
      m->interval_evals = r.FindOrCreateCounter(
          "treewalk_interp_selector_repr_total",
          "Compiled selector evaluations by matrix representation",
          {{"repr", "interval"}});
      m->dense_evals = r.FindOrCreateCounter(
          "treewalk_interp_selector_repr_total",
          "Compiled selector evaluations by matrix representation",
          {{"repr", "dense"}});
      m->store_updates = r.FindOrCreateCounter(
          "treewalk_interp_store_updates_total", "Register store writes");
      m->picks_reference = r.FindOrCreateCounter(
          "treewalk_planner_picks_total",
          "Cost-based planner strategy picks, one per distinct selector "
          "planned under PlanMode::kAuto",
          {{"strategy", "reference"}});
      m->picks_dense = r.FindOrCreateCounter(
          "treewalk_planner_picks_total",
          "Cost-based planner strategy picks, one per distinct selector "
          "planned under PlanMode::kAuto",
          {{"strategy", "compiled-dense"}});
      m->picks_interval = r.FindOrCreateCounter(
          "treewalk_planner_picks_total",
          "Cost-based planner strategy picks, one per distinct selector "
          "planned under PlanMode::kAuto",
          {{"strategy", "compiled-interval"}});
      m->compiled_eval_us = r.FindOrCreateHistogram(
          "treewalk_interp_selector_eval_us",
          "Selector evaluation latency by evaluator path", LatencyBucketsUs(),
          {{"path", "compiled"}});
      m->reference_eval_us = r.FindOrCreateHistogram(
          "treewalk_interp_selector_eval_us",
          "Selector evaluation latency by evaluator path", LatencyBucketsUs(),
          {{"path", "reference"}});
      return m;
    }();
    return *metrics;
  }
};

/// Outcome of one (sub)computation.
struct Outcome {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  /// Content of the first register at acceptance (what atp() collects).
  Relation returned{0};
};

class Runner {
 public:
  Runner(const Program& program, const Tree& tree, const RunOptions& options)
      : program_(program), tree_(tree), options_(options) {
    // Pre-resolve rule labels to symbols; rules whose label the tree
    // never uses can only match via the wildcard.
    for (const Rule& rule : program.rules()) {
      labels_.push_back(rule.label == "*" ? -2 : tree.FindLabel(rule.label));
    }
    // States with at least one exact-label rule, for wildcard shadowing.
    for (const Rule& rule : program.rules()) {
      if (rule.label != "*") {
        exact_keys_.insert(rule.state + "\x1f" + rule.label);
      }
    }
    // Selector identities for the atp() cache.  Rules whose selectors
    // print identically evaluate identically, so they share one cache
    // id (the first such rule's index).  Also collect the store
    // relations each selector mentions for its cache-key fingerprint;
    // selectors are tree formulas, so this is empty today — keeping it
    // in the key means the cache stays correct if selectors ever gain
    // store atoms.
    selector_ids_.resize(program.rules().size(), 0);
    selector_rels_.resize(program.rules().size());
    std::map<std::string, std::size_t> first_use;
    for (std::size_t i = 0; i < program.rules().size(); ++i) {
      const Rule& rule = program.rules()[i];
      if (rule.action.kind != Action::Kind::kLookAhead) continue;
      selector_ids_[i] =
          first_use.emplace(rule.action.selector.ToString(), i).first->second;
      for (const std::string& name : rule.action.selector.RelationNames()) {
        int index = program.initial_store().IndexOf(name);
        if (index >= 0) selector_rels_[i].push_back(index);
      }
    }
  }

  Result<RunResult> Run() {
    Result<Outcome> outcome =
        Compute(tree_.root(), program_.initial_state(),
                program_.initial_store(), /*depth=*/0);
    // Flush stats into the registry whether the run completed or
    // aborted — observability counts work done, not work finished.
    FlushMetrics();
    if (!outcome.ok()) return outcome.status();
    RunResult result;
    result.accepted = outcome->accepted;
    result.reason = outcome->reason;
    result.stats = stats_;
    result.trace = std::move(trace_);
    return result;
  }

 private:
  using ConfigKey = std::tuple<NodeId, std::string, Store>;

  Result<Outcome> Compute(NodeId start, const std::string& start_state,
                          Store store, int depth) {
    if (depth > options_.max_depth) {
      return ResourceExhausted("atp nesting exceeded max_depth=" +
                               std::to_string(options_.max_depth));
    }
    stats_.max_depth_reached = std::max(stats_.max_depth_reached, depth);

    NodeId u = start;
    std::string state = start_state;
    std::set<ConfigKey> visited;
    // The memo lives for this (sub)computation; its budget charge is
    // released with it at scope exit.
    ScopedMemoryCharge memo_charge(options_.governor,
                                   MemoryCategory::kCycleMemo);

    while (true) {
      if (options_.cancel != nullptr &&
          options_.cancel->load(std::memory_order_relaxed)) {
        return Cancelled("run cancelled after " +
                         std::to_string(stats_.steps) + " steps");
      }
      TREEWALK_RETURN_IF_ERROR(GovernorCheckDeadline(options_.governor));
      TREEWALK_FAILPOINT("interpreter/step");
      if (state == program_.final_state()) {
        Outcome out;
        out.accepted = true;
        if (store.num_relations() > 0) out.returned = store.At(0);
        return out;
      }
      if (options_.detect_cycles) {
        if (!visited.insert(ConfigKey(u, state, store)).second) {
          return Rejected(RejectReason::kCycle);
        }
        // ~per-entry footprint: tree-node overhead + key payload, with
        // each store tuple counted at pointer-ish granularity.
        TREEWALK_RETURN_IF_ERROR(memo_charge.Add(
            64 + static_cast<std::int64_t>(state.size()) +
            static_cast<std::int64_t>(store.TotalTuples()) * 24));
      }

      TREEWALK_ASSIGN_OR_RETURN(const Rule* rule, FindRule(u, state, store));
      if (rule == nullptr) return Rejected(RejectReason::kStuck);

      if (++stats_.steps > options_.max_steps) {
        return ResourceExhausted("exceeded max_steps=" +
                                 std::to_string(options_.max_steps));
      }
      if (options_.record_trace &&
          trace_.size() < options_.max_trace_entries) {
        TREEWALK_RETURN_IF_ERROR(
            GovernorCharge(options_.governor, MemoryCategory::kTrace, 128));
      }
      Trace(u, state, *rule);

      const Action& action = rule->action;
      switch (action.kind) {
        case Action::Kind::kMove: {
          NodeId v = ApplyMove(u, action.move);
          if (v == kNoNode) return Rejected(RejectReason::kMoveOffTree);
          u = v;
          break;
        }
        case Action::Kind::kUpdate: {
          StoreContext context = MakeContext(u, store);
          TREEWALK_ASSIGN_OR_RETURN(
              Relation result,
              EvalStoreFormula(context, action.update, action.update_vars));
          TREEWALK_RETURN_IF_ERROR(CheckDiscipline(result, "update"));
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(result)));
          ++stats_.store_updates;
          break;
        }
        case Action::Kind::kLookAhead: {
          ++stats_.subcomputations;
          ++stats_.atp_calls;
          std::size_t rule_index =
              static_cast<std::size_t>(rule - program_.rules().data());
          TREEWALK_ASSIGN_OR_RETURN(
              std::vector<NodeId> selected,
              Select(rule_index, action.selector, u, store));
          if (program_.program_class() == ProgramClass::kTwL &&
              selected.size() > 1) {
            return FailedPrecondition(
                "tw^l look-ahead selected " +
                std::to_string(selected.size()) +
                " nodes; Definition 5.1 allows at most one");
          }
          Relation collected(store.At(0).arity());
          for (NodeId v : selected) {
            TREEWALK_ASSIGN_OR_RETURN(
                Outcome sub, Compute(v, action.call_state, store, depth + 1));
            if (!sub.accepted) {
              return Rejected(RejectReason::kSubcomputationRejected);
            }
            collected.UnionWith(sub.returned);
          }
          TREEWALK_RETURN_IF_ERROR(CheckDiscipline(collected, "look-ahead"));
          TREEWALK_RETURN_IF_ERROR(store.Replace(
              static_cast<std::size_t>(action.register_index),
              std::move(collected)));
          ++stats_.store_updates;
          break;
        }
      }
      state = action.next_state;
      std::size_t tuples = store.TotalTuples();
      if (tuples > stats_.max_store_tuples) {
        // Store growth is charged at its high-water mark across the
        // whole run (monotone; never released).
        TREEWALK_RETURN_IF_ERROR(GovernorCharge(
            options_.governor, MemoryCategory::kStore,
            static_cast<std::int64_t>(tuples - stats_.max_store_tuples) *
                24));
        stats_.max_store_tuples = tuples;
      }
    }
  }

  /// SelectNodes with the per-run cache in front (Definition 3.1's
  /// atp() node selection).  The key is (selector id = rule index,
  /// origin, fingerprint of the store relations the selector mentions);
  /// since selectors are store-free tree formulas the fingerprint is a
  /// constant, and repeated fan-outs from one origin hit the cache.
  Result<std::vector<NodeId>> Select(std::size_t rule_index,
                                     const Formula& selector, NodeId origin,
                                     const Store& store) {
    TREEWALK_FAILPOINT("interpreter/select");
    if (!options_.cache_selectors) {
      ++stats_.selector_cache_misses;
      return EvalSelector(selector_ids_[rule_index], selector, origin);
    }
    std::uint64_t store_fp = 0;
    for (int rel : selector_rels_[rule_index]) {
      store_fp ^= store.At(static_cast<std::size_t>(rel)).Fingerprint() +
                  0x9e3779b97f4a7c15ULL + (store_fp << 6) + (store_fp >> 2);
    }
    SelectorKey key{selector_ids_[rule_index], origin, store_fp};
    auto it = selector_cache_.find(key);
    if (it != selector_cache_.end()) {
      ++stats_.selector_cache_hits;
      return it->second;
    }
    ++stats_.selector_cache_misses;
    TREEWALK_ASSIGN_OR_RETURN(
        std::vector<NodeId> selected,
        EvalSelector(selector_ids_[rule_index], selector, origin));
    TREEWALK_RETURN_IF_ERROR(GovernorCharge(
        options_.governor, MemoryCategory::kSelectorCache,
        48 + static_cast<std::int64_t>(selected.size()) * 8));
    selector_cache_.emplace(key, selected);
    return selected;
  }

  /// One selector evaluation, compiled when possible.  Each canonical
  /// selector is compiled at most once per run against the lazily built
  /// axis index; a selector the partial compiler declines is remembered
  /// as a fallback and served by the reference SelectNodes, which also
  /// reproduces the reference error behavior (docs/EVALUATOR.md).
  Result<std::vector<NodeId>> EvalSelector(std::size_t canonical_id,
                                           const Formula& selector,
                                           NodeId origin) {
    if (options_.compile_selectors) {
      auto it = compiled_.find(canonical_id);
      if (it == compiled_.end()) {
        // Pick the strategy for this selector.  kAuto consults the
        // cost-based planner (src/logic/planner.h) once per canonical
        // selector; kFixed keeps the legacy always-compile,
        // size-threshold behavior.  A reference pick is remembered as
        // an empty compiled slot, exactly like a compiler decline, so
        // later evaluations skip straight to SelectNodes.
        AxisRepr repr = options_.axis_repr;
        if (options_.plan_mode == PlanMode::kAuto) {
          if (!tree_stats_.has_value()) {
            TreeStats scratch;
            tree_stats_ = *GetOrComputeTreeStats(tree_, scratch);
          }
          PlanOptions plan_opts;
          plan_opts.forced_repr = options_.axis_repr;
          const SelectorPlan plan = PlanSelector(
              *tree_stats_, selector,
              options_.planner_calibration != nullptr
                  ? *options_.planner_calibration
                  : PlannerCalibration{},
              plan_opts);
          switch (plan.strategy) {
            case PlanStrategy::kReference:
              ++stats_.planner_picks_reference;
              compiled_.emplace(canonical_id, std::nullopt);
              break;
            case PlanStrategy::kCompiledDense:
              ++stats_.planner_picks_dense;
              repr = plan.repr;
              break;
            case PlanStrategy::kCompiledInterval:
            case PlanStrategy::kXPathDirect:  // never offered here
              ++stats_.planner_picks_interval;
              repr = plan.repr;
              break;
          }
          if (plan.strategy == PlanStrategy::kReference) {
            ScopedLatencyUs timer(InterpMetrics::Get().reference_eval_us);
            return SelectNodes(tree_, selector, origin);
          }
        }
        if (!axis_index_.has_value()) {
          axis_index_.emplace(tree_, options_.governor);
          // Construction charges the base bitsets; a trip surfaces here
          // as the run's error rather than in a getter.
          TREEWALK_RETURN_IF_ERROR(axis_index_->status());
        }
        if (options_.selector_disk_cache != nullptr &&
            !tree_hash_.has_value()) {
          // One content hash per run, shared by every cached compile.
          tree_hash_ = TreeContentHash(tree_);
        }
        Result<CompiledSelector> compiled = CompileSelectorCached(
            *axis_index_, selector, "x", "y", repr,
            options_.selector_disk_cache, tree_hash_.value_or(0));
        if (!compiled.ok() &&
            (compiled.status().code() == StatusCode::kResourceExhausted ||
             compiled.status().code() == StatusCode::kDeadlineExceeded)) {
          // Budget and deadline trips are hard errors for the whole run:
          // falling back to the reference evaluator would evade the very
          // limits the governor enforces.  Every other compile failure
          // (width > 2, injected compiler faults) is a decline, served
          // by the reference SelectNodes below.
          return compiled.status();
        }
        std::optional<CompiledSelector> slot;
        if (compiled.ok()) {
          slot = std::move(compiled).value();
          // The materialized relation stays alive for the run.
          TREEWALK_RETURN_IF_ERROR(GovernorCharge(
              options_.governor, MemoryCategory::kCompiledOps,
              slot->RetainedBytes()));
        }
        it = compiled_.emplace(canonical_id, std::move(slot)).first;
      }
      if (it->second.has_value()) {
        ++stats_.compiled_selector_evals;
        if (it->second->repr() == AxisRepr::kInterval) {
          ++stats_.interval_selector_evals;
        } else {
          ++stats_.dense_selector_evals;
        }
        ScopedLatencyUs timer(InterpMetrics::Get().compiled_eval_us);
        return it->second->SelectFrom(origin);
      }
    }
    ScopedLatencyUs timer(InterpMetrics::Get().reference_eval_us);
    return SelectNodes(tree_, selector, origin);
  }

  void FlushMetrics() const {
    InterpMetrics& m = InterpMetrics::Get();
    m.runs->Increment();
    m.steps->Increment(stats_.steps);
    m.subcomputations->Increment(stats_.subcomputations);
    m.atp_calls->Increment(stats_.atp_calls);
    m.cache_hits->Increment(stats_.selector_cache_hits);
    m.cache_misses->Increment(stats_.selector_cache_misses);
    m.compiled_evals->Increment(stats_.compiled_selector_evals);
    m.reference_evals->Increment(stats_.selector_cache_misses -
                                 stats_.compiled_selector_evals);
    m.interval_evals->Increment(stats_.interval_selector_evals);
    m.dense_evals->Increment(stats_.dense_selector_evals);
    m.picks_reference->Increment(stats_.planner_picks_reference);
    m.picks_dense->Increment(stats_.planner_picks_dense);
    m.picks_interval->Increment(stats_.planner_picks_interval);
    m.store_updates->Increment(stats_.store_updates);
  }

  static Result<Outcome> Rejected(RejectReason reason) {
    Outcome out;
    out.accepted = false;
    out.reason = reason;
    return out;
  }

  Status CheckDiscipline(const Relation& r, const char* what) const {
    if (program_.program_class() == ProgramClass::kTwL && r.size() > 1) {
      return FailedPrecondition(
          std::string("tw^l register discipline violated: ") + what +
          " produced " + std::to_string(r.size()) + " values");
    }
    return Status::Ok();
  }

  /// Finds the unique applicable rule, nullptr if none, or a
  /// Nondeterminism error if several guards fire.
  Result<const Rule*> FindRule(NodeId u, const std::string& state,
                               const Store& store) {
    Symbol label = tree_.label(u);
    bool shadowed = exact_keys_.count(
                        state + "\x1f" + tree_.LabelName(label)) > 0;
    const Rule* found = nullptr;
    StoreContext context = MakeContext(u, store);
    for (std::size_t i = 0; i < program_.rules().size(); ++i) {
      const Rule& rule = program_.rules()[i];
      if (rule.state != state) continue;
      bool is_wildcard = rule.label == "*";
      if (is_wildcard) {
        if (shadowed) continue;
      } else if (labels_[i] != label) {
        continue;
      }
      TREEWALK_ASSIGN_OR_RETURN(bool holds,
                                EvalStoreSentence(context, rule.guard));
      if (!holds) continue;
      if (found != nullptr) {
        return Nondeterminism("rules for (" + tree_.LabelName(label) + ", " +
                              state + ") both apply: guards " +
                              found->guard.ToString() + " and " +
                              rule.guard.ToString());
      }
      found = &rule;
    }
    return found;
  }

  StoreContext MakeContext(NodeId u, const Store& store) const {
    StoreContext context;
    context.store = &store;
    context.values = &tree_.values();
    for (AttrId a = 0; a < static_cast<AttrId>(tree_.num_attributes()); ++a) {
      context.current_attrs[tree_.attributes().NameOf(a)] = tree_.attr(a, u);
    }
    return context;
  }

  NodeId ApplyMove(NodeId u, Move move) const {
    switch (move) {
      case Move::kStay:
        return u;
      case Move::kLeft:
        return tree_.PrevSibling(u);
      case Move::kRight:
        return tree_.NextSibling(u);
      case Move::kUp:
        return tree_.Parent(u);
      case Move::kDown:
        return tree_.FirstChild(u);
    }
    return kNoNode;
  }

  void Trace(NodeId u, const std::string& state, const Rule& rule) {
    if (!options_.record_trace ||
        trace_.size() >= options_.max_trace_entries) {
      return;
    }
    std::string entry = "[" + std::to_string(u) + ":" +
                        tree_.LabelName(tree_.label(u)) + ", " + state + "]";
    switch (rule.action.kind) {
      case Action::Kind::kMove:
        entry += " move " + std::string(MoveName(rule.action.move));
        break;
      case Action::Kind::kUpdate:
        entry += " update X" + std::to_string(rule.action.register_index + 1);
        break;
      case Action::Kind::kLookAhead:
        entry += " atp(" + rule.action.selector.ToString() + ", " +
                 rule.action.call_state + ")";
        break;
    }
    entry += " -> " + rule.action.next_state;
    trace_.push_back(std::move(entry));
  }

  using SelectorKey = std::tuple<std::size_t, NodeId, std::uint64_t>;

  const Program& program_;
  const Tree& tree_;
  const RunOptions& options_;
  std::vector<Symbol> labels_;
  std::set<std::string> exact_keys_;
  std::vector<std::size_t> selector_ids_;
  std::vector<std::vector<int>> selector_rels_;
  std::map<SelectorKey, std::vector<NodeId>> selector_cache_;
  std::optional<AxisIndex> axis_index_;
  std::optional<std::uint64_t> tree_hash_;  // lazy; disk-cache key half
  /// Lazy tree statistics for PlanMode::kAuto (snapshot-preloaded or
  /// one O(n) scan, computed at the first selector planned this run).
  std::optional<TreeStats> tree_stats_;
  /// Per-canonical-selector compile result: absent = untried, nullopt =
  /// compiler declined (reference fallback), value = compiled.
  std::map<std::size_t, std::optional<CompiledSelector>> compiled_;
  RunStats stats_;
  std::vector<std::string> trace_;
};

}  // namespace

Interpreter::Interpreter(const Program& program, RunOptions options)
    : program_(program), options_(options) {}

Result<RunResult> Interpreter::Run(const Tree& input) const {
  if (input.empty()) return InvalidArgument("empty input tree");
  DelimitedTree delimited = Delimit(input);
  return RunDelimited(delimited.tree);
}

Result<RunResult> Interpreter::RunDelimited(const Tree& delimited) const {
  if (delimited.empty()) return InvalidArgument("empty input tree");
  Runner runner(program_, delimited, options_);
  return runner.Run();
}

Result<bool> Accepts(const Program& program, const Tree& input,
                     RunOptions options) {
  Interpreter interpreter(program, options);
  TREEWALK_ASSIGN_OR_RETURN(RunResult result, interpreter.Run(input));
  return result.accepted;
}

}  // namespace treewalk
