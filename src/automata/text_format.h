#ifndef TREEWALK_AUTOMATA_TEXT_FORMAT_H_
#define TREEWALK_AUTOMATA_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "src/automata/program.h"
#include "src/common/result.h"

namespace treewalk {

/// Textual serialization of tree-walking programs (.twp), so programs
/// can live in files instead of C++:
///
///   # Example 3.2, abridged
///   class twrl
///   states q0 qf
///   register X1 1
///   init X1 { (5) (6) }
///   rule #top q0 [true] move down q1
///   rule *    q1 [exists u X1(u)] update X1(u) "u = attr(a)" q2
///   rule delta q2 [true] atp X1 "desc(x, y) & lab(y, delta)" call qf
///
/// Directives: class (tw | twl | twr | twrl), states (initial final),
/// register (name arity), init (name + tuple set), rule.  Rule actions:
///   move <stay|left|right|up|down> <next-state>
///   update <reg>(<var>, ...) "<psi>" <next-state>
///   atp <reg> "<phi(x, y)>" <call-state> <next-state>
///
/// Guards are bracketed; formulas are double-quoted (no embedded
/// quotes).  Lines whose first non-space character is '#' are comments
/// (labels like #top only ever appear mid-line, after "rule").
Result<Program> ParseProgramText(std::string_view source);

/// Renders a program in the format accepted by ParseProgramText().
/// ParseProgramText(ProgramToText(p)) reproduces p's behaviour.
std::string ProgramToText(const Program& program);

}  // namespace treewalk

#endif  // TREEWALK_AUTOMATA_TEXT_FORMAT_H_
