#ifndef TREEWALK_AUTOMATA_INTERPRETER_H_
#define TREEWALK_AUTOMATA_INTERPRETER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/automata/program.h"
#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/tree/axis_index.h"
#include "src/tree/delimited.h"
#include "src/tree/tree.h"

namespace treewalk {

class SelectorDiskCache;     // src/logic/selector_cache.h
struct PlannerCalibration;   // src/logic/planner.h

/// How the run picks a selector-evaluation strategy.
enum class PlanMode {
  /// Cost-based: the planner (src/logic/planner.h) scores reference vs
  /// compiled-dense vs compiled-interval per distinct selector from
  /// tree statistics and formula features, replacing the fixed
  /// size-threshold heuristics.  Strategy choice is per-run
  /// deterministic (a pure function of tree + selector + calibration).
  kAuto = 0,
  /// Legacy fixed heuristics: always try to compile, resolve kAuto
  /// representation by the kDenseAxisNodeLimit size threshold.
  kFixed,
};

const char* PlanModeName(PlanMode m);

/// Resource limits for a run.  Exceeding any limit aborts the run with
/// kResourceExhausted (an *error*, distinct from semantic rejection).
struct RunOptions {
  /// Total transitions across the main computation and all
  /// subcomputations.
  std::int64_t max_steps = 1'000'000;
  /// Maximum atp() nesting depth.
  int max_depth = 64;
  /// Record a human-readable trace of the first `max_trace_entries`
  /// transitions.
  bool record_trace = false;
  std::size_t max_trace_entries = 1000;
  /// Ablation: exact cycle detection memoizes every configuration
  /// (node, state, store) of a computation, which costs a store copy and
  /// an ordered-set insert per step.  With detection off, a looping
  /// computation runs into max_steps (kResourceExhausted) instead of
  /// rejecting with kCycle; terminating runs are unaffected.
  bool detect_cycles = true;
  /// Per-run atp() selector-result cache keyed on (selector, origin
  /// node, fingerprint of the store relations the selector mentions).
  /// Selectors are tree formulas — they cannot read the store — so the
  /// fingerprint component is constant and repeated fan-outs from one
  /// node skip re-evaluating the FO selector.  Semantically invisible:
  /// SelectNodes is pure over the (immutable) run input.
  bool cache_selectors = true;
  /// Set-at-a-time selector evaluation: compile each distinct atp()
  /// selector once per run into a bitset satisfier relation over a
  /// per-run axis index (src/logic/compile.h) and answer every
  /// SelectNodes with a row read.  Composes with cache_selectors (the
  /// compiled evaluator serves the cache misses).  Selectors the
  /// partial compiler declines (three-plus-variable subformulas) fall
  /// back to the reference evaluator, so this is semantically
  /// invisible; turn off to ablate or to force the reference path.
  bool compile_selectors = true;
  /// Matrix representation for compiled selectors (src/tree/axis_index.h):
  /// kAuto picks dense for small trees and interval spans for large
  /// ones; kInterval / kDense force one.  Both produce identical
  /// answers — this trades O(n^2) bitset matrices against O(n·spans)
  /// pre-order interval lists, which is what lets compiled evaluation
  /// (and a linear memory budget) survive million-node inputs.
  AxisRepr axis_repr = AxisRepr::kAuto;
  /// Strategy selection for atp() selectors (see PlanMode).  kAuto asks
  /// the cost-based planner; kFixed keeps the pre-planner behavior.
  /// Semantically invisible either way: every strategy returns the same
  /// nodes.
  PlanMode plan_mode = PlanMode::kAuto;
  /// Cost-model constants for kAuto planning; null uses the built-in
  /// defaults.  Passed by pointer so calibration stays per-run and
  /// deterministic — there is no global mutable calibration.  Must
  /// outlive the run.
  const PlannerCalibration* planner_calibration = nullptr;
  /// Persistent compiled-selector cache (src/logic/selector_cache.h).
  /// When non-null, each selector compile first consults the on-disk
  /// cache keyed by (formula, tree content hash, resolved repr) and
  /// persists fresh compiles back.  Any cache failure degrades to a
  /// plain compile — semantically invisible, like compile_selectors
  /// itself.  Must outlive the run.
  const SelectorDiskCache* selector_disk_cache = nullptr;
  /// Cooperative cancellation: when non-null and set, the run aborts
  /// with kCancelled at the next transition boundary.  The pointee must
  /// outlive the run; src/engine points every job of a batch at one
  /// flag.
  const std::atomic<bool>* cancel = nullptr;
  /// Per-run resource governor (src/common/governor.h).  When non-null,
  /// the deadline is polled at every transition boundary (beside the
  /// cancel flag; a trip aborts with kDeadlineExceeded) and the run's
  /// growing structures — cycle memo, trace, store tuples, selector
  /// cache, axis index, compiled selectors — charge its memory budget
  /// (a trip aborts with kResourceExhausted and a category breakdown).
  /// Not thread-safe: one governor per run; must outlive the run.
  ResourceGovernor* governor = nullptr;
};

/// Why a run rejected (Section 3 semantics; cycles reject per the
/// protocol convention of Lemma 4.5).
enum class RejectReason {
  kNone,                     ///< run accepted
  kStuck,                    ///< no rule applies
  kCycle,                    ///< a configuration repeated
  kSubcomputationRejected,   ///< an atp() subcomputation rejected
  kMoveOffTree,              ///< a move left the (delimited) tree
};

const char* RejectReasonName(RejectReason r);

struct RunStats {
  std::int64_t steps = 0;
  std::int64_t subcomputations = 0;
  /// atp() rule firings (each may spawn several subcomputations).
  std::int64_t atp_calls = 0;
  /// Selector evaluations answered from / added to the per-run cache.
  std::int64_t selector_cache_hits = 0;
  std::int64_t selector_cache_misses = 0;
  /// Selector evaluations answered by the compiled set-at-a-time
  /// evaluator (subset of selector_cache_misses when the cache is on);
  /// misses beyond this count fell back to the reference evaluator.
  std::int64_t compiled_selector_evals = 0;
  /// compiled_selector_evals split by the matrix representation the
  /// serving selector compiled under (RunOptions::axis_repr, resolved).
  std::int64_t interval_selector_evals = 0;
  std::int64_t dense_selector_evals = 0;
  /// Planner strategy picks, one per distinct selector planned this run
  /// (all zero under PlanMode::kFixed).  A reference pick means the
  /// planner chose not to compile; compile *declines* after a dense or
  /// interval pick still count under the pick that was made.
  std::int64_t planner_picks_reference = 0;
  std::int64_t planner_picks_dense = 0;
  std::int64_t planner_picks_interval = 0;
  /// Register writes (update rules and look-ahead collections).
  std::int64_t store_updates = 0;
  std::size_t max_store_tuples = 0;
  int max_depth_reached = 0;

  friend bool operator==(const RunStats&, const RunStats&) = default;
};

struct RunResult {
  bool accepted = false;
  RejectReason reason = RejectReason::kNone;
  RunStats stats;
  std::vector<std::string> trace;
};

/// Deterministic interpreter for tree-walking programs: the reference
/// semantics of Definition 3.1.  Programs walk delim(t); Run() wraps the
/// input itself, RunDelimited() accepts a pre-delimited tree (so repeated
/// runs over one input can share the transform).
///
/// Determinism is enforced at runtime: if two rules apply to one
/// configuration the run aborts with kNondeterminism.  Class tw^l's
/// register discipline (at most one value per register, at most one
/// selected node per look-ahead) is likewise enforced, aborting with
/// kFailedPrecondition on violation.
class Interpreter {
 public:
  explicit Interpreter(const Program& program, RunOptions options = {});

  /// Runs on (the delimitation of) `input`.
  Result<RunResult> Run(const Tree& input) const;

  /// Runs directly on an already-delimited tree.
  Result<RunResult> RunDelimited(const Tree& delimited) const;

 private:
  const Program& program_;
  RunOptions options_;
};

/// Convenience: build-run-report in one call; true iff accepted.
Result<bool> Accepts(const Program& program, const Tree& input,
                     RunOptions options = {});

}  // namespace treewalk

#endif  // TREEWALK_AUTOMATA_INTERPRETER_H_
