#include "src/automata/program.h"

#include <algorithm>

namespace treewalk {

const char* ProgramClassName(ProgramClass c) {
  switch (c) {
    case ProgramClass::kTw:
      return "tw";
    case ProgramClass::kTwL:
      return "tw^l";
    case ProgramClass::kTwR:
      return "tw^r";
    case ProgramClass::kTwRL:
      return "tw^{r,l}";
  }
  return "?";
}

const char* MoveName(Move m) {
  switch (m) {
    case Move::kStay:
      return "stay";
    case Move::kLeft:
      return "left";
    case Move::kRight:
      return "right";
    case Move::kUp:
      return "up";
    case Move::kDown:
      return "down";
  }
  return "?";
}

std::vector<std::string> Program::States() const {
  std::vector<std::string> states = {initial_state_, final_state_};
  for (const Rule& rule : rules_) {
    states.push_back(rule.state);
    states.push_back(rule.action.next_state);
    if (rule.action.kind == Action::Kind::kLookAhead) {
      states.push_back(rule.action.call_state);
    }
  }
  std::sort(states.begin(), states.end());
  states.erase(std::unique(states.begin(), states.end()), states.end());
  return states;
}

std::size_t Program::SizeMeasure() const {
  std::size_t size = States().size();
  for (std::size_t i = 0; i < initial_store_.num_relations(); ++i) {
    size += initial_store_.At(i).size();
  }
  for (const Rule& rule : rules_) {
    size += rule.guard.valid() ? rule.guard.Size() : 0;
  }
  return size;
}

}  // namespace treewalk
