#include "src/automata/text_format.h"

#include <cctype>
#include <memory>
#include <sstream>
#include <vector>

#include "src/automata/builder.h"

namespace treewalk {

namespace {

/// Splits one line into tokens.  Double-quoted spans and bracketed spans
/// become single tokens (quotes/brackets stripped).
Result<std::vector<std::string>> Tokenize(const std::string& line,
                                          int line_number) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  auto err = [line_number](const std::string& message) {
    return InvalidArgument("line " + std::to_string(line_number) + ": " +
                           message);
  };
  while (i < line.size()) {
    char c = line[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"' || c == '[') {
      char close = c == '"' ? '"' : ']';
      std::size_t end = line.find(close, i + 1);
      if (end == std::string::npos) {
        return err(std::string("unterminated ") + c);
      }
      tokens.push_back(line.substr(i + 1, end - i - 1));
      i = end + 1;
      continue;
    }
    std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i])) &&
           line[i] != '"' && line[i] != '[') {
      ++i;
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

Result<Move> ParseMove(const std::string& word, int line_number) {
  if (word == "stay") return Move::kStay;
  if (word == "left") return Move::kLeft;
  if (word == "right") return Move::kRight;
  if (word == "up") return Move::kUp;
  if (word == "down") return Move::kDown;
  return InvalidArgument("line " + std::to_string(line_number) +
                         ": unknown direction '" + word + "'");
}

/// Parses "reg(u, v)" into name + variable list; bare "reg" is allowed
/// for arity 0.
Result<std::pair<std::string, std::vector<std::string>>> ParseRegisterRef(
    const std::string& token, int line_number) {
  auto err = [line_number](const std::string& message) {
    return InvalidArgument("line " + std::to_string(line_number) + ": " +
                           message);
  };
  std::size_t open = token.find('(');
  if (open == std::string::npos) {
    return std::make_pair(token, std::vector<std::string>{});
  }
  if (token.back() != ')') return err("expected ')' in register reference");
  std::string name = token.substr(0, open);
  std::vector<std::string> vars;
  std::string body = token.substr(open + 1, token.size() - open - 2);
  std::string current;
  for (char c : body) {
    if (c == ',' || std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) vars.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) vars.push_back(std::move(current));
  return std::make_pair(std::move(name), std::move(vars));
}

}  // namespace

Result<Program> ParseProgramText(std::string_view source) {
  std::istringstream stream{std::string(source)};
  std::string line;
  int line_number = 0;

  bool have_class = false;
  ProgramClass program_class = ProgramClass::kTw;
  std::unique_ptr<ProgramBuilder> builder;

  // `class` (and ideally `states`) must precede registers and rules.
  auto err = [&line_number](const std::string& message) {
    return InvalidArgument("line " + std::to_string(line_number) + ": " +
                           message);
  };

  std::string initial_state, final_state;
  bool have_states = false;

  auto ensure_builder = [&]() -> Status {
    if (builder != nullptr) return Status::Ok();
    if (!have_class) {
      return InvalidArgument("'class' directive must come first");
    }
    builder = std::make_unique<ProgramBuilder>(program_class);
    if (have_states) builder->SetStates(initial_state, final_state);
    return Status::Ok();
  };

  while (std::getline(stream, line)) {
    ++line_number;
    TREEWALK_ASSIGN_OR_RETURN(std::vector<std::string> tokens,
                              Tokenize(line, line_number));
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& directive = tokens[0];

    if (directive == "class") {
      if (tokens.size() != 2) return err("usage: class <tw|twl|twr|twrl>");
      if (tokens[1] == "tw") {
        program_class = ProgramClass::kTw;
      } else if (tokens[1] == "twl") {
        program_class = ProgramClass::kTwL;
      } else if (tokens[1] == "twr") {
        program_class = ProgramClass::kTwR;
      } else if (tokens[1] == "twrl") {
        program_class = ProgramClass::kTwRL;
      } else {
        return err("unknown class '" + tokens[1] + "'");
      }
      have_class = true;
      continue;
    }
    if (directive == "states") {
      if (tokens.size() != 3) return err("usage: states <initial> <final>");
      initial_state = tokens[1];
      final_state = tokens[2];
      have_states = true;
      if (builder != nullptr) builder->SetStates(initial_state, final_state);
      continue;
    }
    if (directive == "register") {
      if (tokens.size() != 3) return err("usage: register <name> <arity>");
      TREEWALK_RETURN_IF_ERROR(ensure_builder());
      builder->DeclareRegister(tokens[1], std::atoi(tokens[2].c_str()));
      continue;
    }
    if (directive == "init") {
      // init NAME { (v1 v2) (v3 v4) ... }  -- commas optional.
      if (tokens.size() < 4 || tokens[2] != "{" || tokens.back() != "}") {
        return err("usage: init <name> { (v ...) ... }");
      }
      TREEWALK_RETURN_IF_ERROR(ensure_builder());
      // Re-scan the tuple region between '{' and '}' from the raw tokens:
      // tokens like "(5" "6)" or "(5)" appear; strip parens and group.
      std::vector<Tuple> tuples;
      Tuple current;
      bool in_tuple = false;
      for (std::size_t t = 3; t + 1 < tokens.size(); ++t) {
        std::string piece = tokens[t];
        while (!piece.empty() && piece.front() == '(') {
          in_tuple = true;
          piece.erase(piece.begin());
        }
        bool closes = false;
        while (!piece.empty() && (piece.back() == ')' || piece.back() == ',')) {
          if (piece.back() == ')') closes = true;
          piece.pop_back();
        }
        if (!piece.empty()) {
          if (!in_tuple) return err("value outside a tuple in init");
          current.push_back(std::atoll(piece.c_str()));
        }
        if (closes) {
          tuples.push_back(std::move(current));
          current.clear();
          in_tuple = false;
        }
      }
      if (in_tuple) return err("unterminated tuple in init");
      int arity = tuples.empty() ? 0 : static_cast<int>(tuples[0].size());
      for (const Tuple& t : tuples) {
        if (static_cast<int>(t.size()) != arity) {
          return err("mixed tuple arities in init");
        }
      }
      builder->InitRegisterRelation(tokens[1], Relation(arity, tuples));
      continue;
    }
    if (directive == "rule") {
      // rule LABEL STATE [guard] <action...>
      if (tokens.size() < 5) return err("rule too short");
      TREEWALK_RETURN_IF_ERROR(ensure_builder());
      const std::string& label = tokens[1];
      const std::string& state = tokens[2];
      const std::string& guard = tokens[3];
      const std::string& action = tokens[4];
      if (action == "move") {
        if (tokens.size() != 7) {
          return err("usage: ... move <dir> <next-state>");
        }
        TREEWALK_ASSIGN_OR_RETURN(Move move,
                                  ParseMove(tokens[5], line_number));
        builder->OnMove(label, state, guard, tokens[6], move);
        continue;
      }
      if (action == "update") {
        if (tokens.size() != 8) {
          return err("usage: ... update <reg>(vars) \"psi\" <next-state>");
        }
        TREEWALK_ASSIGN_OR_RETURN(auto reg,
                                  ParseRegisterRef(tokens[5], line_number));
        builder->OnUpdate(label, state, guard, tokens[7], reg.first,
                          tokens[6], reg.second);
        continue;
      }
      if (action == "atp") {
        if (tokens.size() != 9) {
          return err(
              "usage: ... atp <reg> \"phi\" <call-state> <next-state>");
        }
        builder->OnLookAhead(label, state, guard, tokens[8], tokens[5],
                             tokens[6], tokens[7]);
        continue;
      }
      return err("unknown action '" + action + "'");
    }
    return err("unknown directive '" + directive + "'");
  }
  if (builder == nullptr) {
    TREEWALK_RETURN_IF_ERROR(ensure_builder());
  }
  return builder->Build();
}

std::string ProgramToText(const Program& program) {
  std::string out;
  out += "class ";
  switch (program.program_class()) {
    case ProgramClass::kTw:
      out += "tw";
      break;
    case ProgramClass::kTwL:
      out += "twl";
      break;
    case ProgramClass::kTwR:
      out += "twr";
      break;
    case ProgramClass::kTwRL:
      out += "twrl";
      break;
  }
  out += "\nstates " + program.initial_state() + " " +
         program.final_state() + "\n";
  const Store& store = program.initial_store();
  for (std::size_t i = 0; i < store.num_relations(); ++i) {
    out += "register " + store.NameAt(i) + " " +
           std::to_string(store.At(i).arity()) + "\n";
    if (!store.At(i).empty()) {
      out += "init " + store.NameAt(i) + " {";
      for (const Tuple& t : store.At(i).tuples()) {
        out += " (";
        for (std::size_t j = 0; j < t.size(); ++j) {
          if (j > 0) out += " ";
          out += std::to_string(t[j]);
        }
        out += ")";
      }
      out += " }\n";
    }
  }
  for (const Rule& rule : program.rules()) {
    out += "rule " + rule.label + " " + rule.state + " [" +
           rule.guard.ToString() + "] ";
    const Action& action = rule.action;
    switch (action.kind) {
      case Action::Kind::kMove:
        out += std::string("move ") + MoveName(action.move) + " " +
               action.next_state;
        break;
      case Action::Kind::kUpdate: {
        out += "update " +
               store.NameAt(static_cast<std::size_t>(action.register_index)) +
               "(";
        // No spaces: the register reference must tokenize as one word.
        for (std::size_t j = 0; j < action.update_vars.size(); ++j) {
          if (j > 0) out += ",";
          out += action.update_vars[j];
        }
        out += ") \"" + action.update.ToString() + "\" " + action.next_state;
        break;
      }
      case Action::Kind::kLookAhead:
        out += "atp " +
               store.NameAt(static_cast<std::size_t>(action.register_index)) +
               " \"" + action.selector.ToString() + "\" " +
               action.call_state + " " + action.next_state;
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace treewalk
