#include "src/automata/builder.h"

#include <set>

#include "src/logic/parser.h"

namespace treewalk {

ProgramBuilder& ProgramBuilder::SetStates(std::string_view initial,
                                          std::string_view final) {
  initial_state_ = std::string(initial);
  final_state_ = std::string(final);
  return *this;
}

ProgramBuilder& ProgramBuilder::DeclareRegister(std::string_view name,
                                                int arity) {
  registers_.emplace_back(std::string(name), arity);
  return *this;
}

ProgramBuilder& ProgramBuilder::InitRegister(std::string_view name,
                                             DataValue value) {
  initial_contents_.emplace_back(std::string(name),
                                 Relation::Singleton(value));
  return *this;
}

ProgramBuilder& ProgramBuilder::InitRegisterRelation(std::string_view name,
                                                     Relation relation) {
  initial_contents_.emplace_back(std::string(name), std::move(relation));
  return *this;
}

ProgramBuilder& ProgramBuilder::OnMove(std::string_view label,
                                       std::string_view state,
                                       std::string_view guard,
                                       std::string_view next_state,
                                       Move move) {
  PendingRule r;
  r.label = std::string(label);
  r.state = std::string(state);
  r.guard = std::string(guard);
  r.kind = Action::Kind::kMove;
  r.next_state = std::string(next_state);
  r.move = move;
  pending_.push_back(std::move(r));
  return *this;
}

ProgramBuilder& ProgramBuilder::OnUpdate(
    std::string_view label, std::string_view state, std::string_view guard,
    std::string_view next_state, std::string_view reg, std::string_view psi,
    std::vector<std::string> vars) {
  PendingRule r;
  r.label = std::string(label);
  r.state = std::string(state);
  r.guard = std::string(guard);
  r.kind = Action::Kind::kUpdate;
  r.next_state = std::string(next_state);
  r.reg = std::string(reg);
  r.formula = std::string(psi);
  r.vars = std::move(vars);
  pending_.push_back(std::move(r));
  return *this;
}

ProgramBuilder& ProgramBuilder::OnLookAhead(
    std::string_view label, std::string_view state, std::string_view guard,
    std::string_view next_state, std::string_view reg, std::string_view phi,
    std::string_view call_state) {
  PendingRule r;
  r.label = std::string(label);
  r.state = std::string(state);
  r.guard = std::string(guard);
  r.kind = Action::Kind::kLookAhead;
  r.next_state = std::string(next_state);
  r.reg = std::string(reg);
  r.formula = std::string(phi);
  r.call_state = std::string(call_state);
  pending_.push_back(std::move(r));
  return *this;
}

namespace {

Status RuleError(std::size_t index, const std::string& message) {
  return InvalidArgument("rule #" + std::to_string(index) + ": " + message);
}

}  // namespace

Result<Program> ProgramBuilder::Build() const {
  if (initial_state_.empty() || final_state_.empty()) {
    return InvalidArgument("initial/final states not set");
  }

  Program program;
  program.class_ = class_;
  program.initial_state_ = initial_state_;
  program.final_state_ = final_state_;

  // --- Register schema. ----------------------------------------------
  if (class_ == ProgramClass::kTw && !registers_.empty()) {
    return FailedPrecondition("class tw allows no registers");
  }
  if (class_ == ProgramClass::kTwL) {
    for (const auto& [name, arity] : registers_) {
      if (arity != 1) {
        return FailedPrecondition("class tw^l requires unary registers; '" +
                                  name + "' has arity " +
                                  std::to_string(arity));
      }
    }
  }
  TREEWALK_ASSIGN_OR_RETURN(program.initial_store_,
                            Store::Create(registers_));
  for (const auto& [name, relation] : initial_contents_) {
    int index = program.initial_store_.IndexOf(name);
    if (index < 0) return NotFound("unknown register '" + name + "'");
    TREEWALK_RETURN_IF_ERROR(program.initial_store_.Replace(
        static_cast<std::size_t>(index), relation));
    if (class_ == ProgramClass::kTwL && relation.size() > 1) {
      return FailedPrecondition("class tw^l registers hold at most one "
                                "value; initial '" +
                                name + "' has " +
                                std::to_string(relation.size()));
    }
  }

  const Store& store = program.initial_store_;
  auto arity_of = [&store](const std::string& name) {
    return store.ArityOf(name);
  };

  // --- Rules. ----------------------------------------------------------
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const PendingRule& p = pending_[i];
    if (p.state == final_state_) {
      return RuleError(i, "no transition may leave the final state");
    }
    Rule rule;
    rule.label = p.label;
    rule.state = p.state;

    auto guard = ParseFormula(p.guard);
    if (!guard.ok()) {
      return RuleError(i, "guard: " + guard.status().message());
    }
    rule.guard = *guard;
    if (class_ == ProgramClass::kTw) {
      if (rule.guard.node().kind != FormulaKind::kTrue) {
        return RuleError(i, "class tw has no store; guard must be 'true'");
      }
    } else {
      Status valid = ValidateStoreFormula(rule.guard, arity_of);
      if (!valid.ok()) return RuleError(i, "guard: " + valid.message());
      if (!rule.guard.FreeVariables().empty()) {
        return RuleError(i, "guard must be a sentence");
      }
    }

    rule.action.kind = p.kind;
    rule.action.next_state = p.next_state;
    switch (p.kind) {
      case Action::Kind::kMove:
        rule.action.move = p.move;
        break;
      case Action::Kind::kUpdate: {
        if (class_ == ProgramClass::kTw) {
          return RuleError(i, "class tw has no registers to update");
        }
        int reg = store.IndexOf(p.reg);
        if (reg < 0) return RuleError(i, "unknown register '" + p.reg + "'");
        rule.action.register_index = reg;
        auto psi = ParseFormula(p.formula);
        if (!psi.ok()) {
          return RuleError(i, "update: " + psi.status().message());
        }
        rule.action.update = *psi;
        Status valid = ValidateStoreFormula(rule.action.update, arity_of);
        if (!valid.ok()) return RuleError(i, "update: " + valid.message());
        rule.action.update_vars = p.vars;
        if (static_cast<int>(p.vars.size()) != store.ArityOf(p.reg)) {
          return RuleError(i, "update variable list has " +
                                  std::to_string(p.vars.size()) +
                                  " entries for register of arity " +
                                  std::to_string(store.ArityOf(p.reg)));
        }
        for (const std::string& v : rule.action.update.FreeVariables()) {
          bool found = false;
          for (const std::string& w : p.vars) {
            if (v == w) {
              found = true;
              break;
            }
          }
          if (!found) {
            return RuleError(i, "update formula has stray free variable '" +
                                    v + "'");
          }
        }
        break;
      }
      case Action::Kind::kLookAhead: {
        if (class_ == ProgramClass::kTw || class_ == ProgramClass::kTwR) {
          return RuleError(
              i, std::string("class ") + ProgramClassName(class_) +
                     " has no look-ahead (Definition 5.1)");
        }
        int reg = store.IndexOf(p.reg);
        if (reg < 0) return RuleError(i, "unknown register '" + p.reg + "'");
        rule.action.register_index = reg;
        if (store.At(static_cast<std::size_t>(reg)).arity() !=
            store.At(0).arity()) {
          return RuleError(i,
                           "look-ahead target register must share the arity "
                           "of the first register (subcomputations return "
                           "their first register)");
        }
        auto phi = ParseFormula(p.formula);
        if (!phi.ok()) {
          return RuleError(i, "selector: " + phi.status().message());
        }
        rule.action.selector = *phi;
        Status valid = ValidateTreeFormula(rule.action.selector);
        if (!valid.ok()) return RuleError(i, "selector: " + valid.message());
        if (!rule.action.selector.IsExistentialPrenex()) {
          return RuleError(i, "selector must be FO(exists*) (Section 2.3)");
        }
        for (const std::string& v : rule.action.selector.FreeVariables()) {
          if (v != "x" && v != "y") {
            return RuleError(
                i, "selector free variables must be within {x, y}; found '" +
                       v + "'");
          }
        }
        rule.action.call_state = p.call_state;
        break;
      }
    }
    program.rules_.push_back(std::move(rule));
  }

  // --- Static determinism screen: identical (label, state) pairs with
  // syntactically identical guards are certainly nondeterministic; the
  // general case is checked at runtime.
  std::set<std::string> seen;
  for (const Rule& rule : program.rules_) {
    std::string key =
        rule.label + "\x1f" + rule.state + "\x1f" + rule.guard.ToString();
    if (!seen.insert(key).second) {
      return Nondeterminism("two rules for (" + rule.label + ", " +
                            rule.state + ") with identical guard " +
                            rule.guard.ToString());
    }
  }
  return program;
}

}  // namespace treewalk
