#ifndef TREEWALK_AUTOMATA_BUILDER_H_
#define TREEWALK_AUTOMATA_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/automata/program.h"
#include "src/common/result.h"

namespace treewalk {

/// Incremental constructor for tree-walking programs.  Formulas are given
/// as source text in the parser.h syntax.  All validation — parsing, sort
/// checking, arity checking, class restrictions (Definition 5.1) — runs
/// in Build(), which reports the first error with context.
///
///   ProgramBuilder b(ProgramClass::kTwRL);
///   b.SetStates("q0", "qf");
///   b.DeclareRegister("X1", 1);
///   b.OnLookAhead("#top", "q0", "true", "q1", "X1",
///                 "desc(x, y) & lab(y, delta)", "q2");
///   b.OnMove("#top", "q1", "true", "qf", Move::kStay);
///   ...
///   Result<Program> p = b.Build();
class ProgramBuilder {
 public:
  explicit ProgramBuilder(ProgramClass program_class)
      : class_(program_class) {}

  /// Sets the initial and final states.
  ProgramBuilder& SetStates(std::string_view initial, std::string_view final);

  /// Declares register `name` with the given arity (class kTw allows no
  /// registers; class kTwL requires arity 1).  Registers are indexed in
  /// declaration order; the *first* declared register is the one returned
  /// by subcomputations.
  ProgramBuilder& DeclareRegister(std::string_view name, int arity);

  /// Sets the initial content of register `name` to the singleton {value}
  /// (the paper's tau_0 maps registers to D union {bottom}; bottom is the
  /// default empty register).
  ProgramBuilder& InitRegister(std::string_view name, DataValue value);
  /// Sets the initial content of register `name` to an arbitrary relation.
  ProgramBuilder& InitRegisterRelation(std::string_view name,
                                       Relation relation);

  /// Adds a move rule (sigma, q, xi) -> (q', d).
  ProgramBuilder& OnMove(std::string_view label, std::string_view state,
                         std::string_view guard, std::string_view next_state,
                         Move move);

  /// Adds an update rule (sigma, q, xi) -> (q', psi, i): register
  /// `reg` := { vars : psi }.
  ProgramBuilder& OnUpdate(std::string_view label, std::string_view state,
                           std::string_view guard,
                           std::string_view next_state, std::string_view reg,
                           std::string_view psi,
                           std::vector<std::string> vars);

  /// Adds a look-ahead rule (sigma, q, xi) -> (q', atp(phi, p), i).
  ProgramBuilder& OnLookAhead(std::string_view label, std::string_view state,
                              std::string_view guard,
                              std::string_view next_state,
                              std::string_view reg, std::string_view phi,
                              std::string_view call_state);

  /// Validates everything and produces the program.
  Result<Program> Build() const;

 private:
  struct PendingRule {
    std::string label;
    std::string state;
    std::string guard;
    Action::Kind kind;
    std::string next_state;
    Move move = Move::kStay;
    std::string reg;
    std::string formula;  // psi or phi source
    std::vector<std::string> vars;
    std::string call_state;
  };

  ProgramClass class_;
  std::string initial_state_;
  std::string final_state_;
  std::vector<std::pair<std::string, int>> registers_;
  std::vector<std::pair<std::string, Relation>> initial_contents_;
  std::vector<PendingRule> pending_;
};

}  // namespace treewalk

#endif  // TREEWALK_AUTOMATA_BUILDER_H_
