#include "src/automata/library.h"

#include <string>

#include "src/automata/builder.h"
#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Installs the delimiter-guided DFS skeleton shared by the walking
/// programs: from state `fwd` descend into first children, bounce off
/// #open to the first real child, turn around at #leaf / #close into
/// state `back`, and from `back` step to the right sibling in `fwd`.
/// Exact-label rules added by callers shadow the wildcard descend rule.
void AddDfsSkeleton(ProgramBuilder& b, const std::string& fwd,
                    const std::string& back) {
  b.OnMove(kTopLabel, fwd, "true", fwd, Move::kDown);
  b.OnMove(kOpenLabel, fwd, "true", fwd, Move::kRight);
  b.OnMove("*", fwd, "true", fwd, Move::kDown);
  b.OnMove(kLeafLabel, fwd, "true", back, Move::kUp);
  b.OnMove(kCloseLabel, fwd, "true", back, Move::kUp);
  b.OnMove("*", back, "true", fwd, Move::kRight);
  // Note: in state `back` at #top the wildcard moves right off the tree,
  // which rejects; callers that accept at end-of-walk add an exact
  // (#top, back) rule that shadows it.
}

}  // namespace

Result<Program> Example32Program(std::string_view attr) {
  const std::string a(attr);
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X1", 1);

  // (1) At the top delimiter, run a subcomputation from every
  //     delta-labeled descendant.
  b.OnLookAhead(kTopLabel, "q0", "true", "q1", "X1",
                "desc(x, y) & lab(y, delta)", "q2");
  // (2) All delta checks returned: accept.
  b.OnMove(kTopLabel, "q1", "true", "qf", Move::kStay);
  // (3) At a delta node, collect the attribute values of all its leaf
  //     descendants (nodes whose child is the #leaf cap).
  b.OnLookAhead("delta", "q2", "true", "q3", "X1",
                "exists z (desc(x, y) & E(y, z) & lab(z, #leaf))", "q4");
  // (4) Accept the subcomputation iff the collected set is (at most) a
  //     singleton; otherwise no rule applies, the subcomputation gets
  //     stuck, and the whole run rejects.
  b.OnMove("delta", "q3",
           "forall u forall v (X1(u) & X1(v) -> u = v)", "qf", Move::kStay);
  // (5)+(6) A leaf (of either label) returns its attribute value.
  b.OnUpdate("delta", "q4", "true", "q5", "X1", "u = attr(" + a + ")",
             {"u"});
  b.OnUpdate("sigma", "q4", "true", "q5", "X1", "u = attr(" + a + ")",
             {"u"});
  b.OnMove("*", "q5", "true", "qf", Move::kStay);
  return b.Build();
}

Result<Program> HasLabelProgram(std::string_view label) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("fwd", "qf");
  // Found it: exact-label rule shadows the wildcard descend.
  b.OnMove(std::string(label), "fwd", "true", "qf", Move::kStay);
  AddDfsSkeleton(b, "fwd", "back");
  return b.Build();
}

Result<Program> ParityProgram(std::string_view label) {
  const std::string lab(label);
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("fwd_e", "qf");
  AddDfsSkeleton(b, "fwd_e", "back_e");
  AddDfsSkeleton(b, "fwd_o", "back_o");
  // Crossing a `label` node flips parity (and still descends).
  b.OnMove(lab, "fwd_e", "true", "fwd_o", Move::kDown);
  b.OnMove(lab, "fwd_o", "true", "fwd_e", Move::kDown);
  // End of walk back at #top: accept iff even.
  b.OnMove(kTopLabel, "back_e", "true", "qf", Move::kStay);
  return b.Build();
}

Result<Program> AllLeavesLabelProgram(std::string_view label) {
  ProgramBuilder b(ProgramClass::kTw);
  b.SetStates("fwd", "qf");
  b.OnMove(kTopLabel, "fwd", "true", "fwd", Move::kDown);
  b.OnMove(kOpenLabel, "fwd", "true", "fwd", Move::kRight);
  b.OnMove("*", "fwd", "true", "fwd", Move::kDown);
  // Surface at the leaf itself; only a `label` leaf may continue.
  b.OnMove(kLeafLabel, "fwd", "true", "at_leaf", Move::kUp);
  b.OnMove(std::string(label), "at_leaf", "true", "fwd", Move::kRight);
  b.OnMove(kCloseLabel, "fwd", "true", "back", Move::kUp);
  b.OnMove("*", "back", "true", "fwd", Move::kRight);
  b.OnMove(kTopLabel, "back", "true", "qf", Move::kStay);
  return b.Build();
}

Result<Program> RootValueAtSomeLeafProgram(std::string_view attr) {
  const std::string a(attr);
  ProgramBuilder b(ProgramClass::kTwL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  // Navigate #top -> #open -> original root; record its value.
  b.OnMove(kTopLabel, "q0", "true", "q1", Move::kDown);
  b.OnMove(kOpenLabel, "q1", "true", "q2", Move::kRight);
  b.OnUpdate("*", "q2", "true", "fwd", "X", "u = attr(" + a + ")", {"u"});
  // DFS; at #leaf surface to the leaf node in state at_leaf.
  b.OnMove(kOpenLabel, "fwd", "true", "fwd", Move::kRight);
  b.OnMove("*", "fwd", "true", "fwd", Move::kDown);
  b.OnMove(kLeafLabel, "fwd", "true", "at_leaf", Move::kUp);
  b.OnMove(kCloseLabel, "fwd", "true", "back", Move::kUp);
  b.OnMove("*", "back", "true", "fwd", Move::kRight);
  // At an original leaf, branch on whether its value matches the stored
  // one (complementary guards keep the program deterministic).
  b.OnMove("*", "at_leaf", "exists u (X(u) & u = attr(" + a + "))", "qf",
           Move::kStay);
  b.OnMove("*", "at_leaf", "!(exists u (X(u) & u = attr(" + a + ")))",
           "fwd", Move::kRight);
  return b.Build();
}

Result<Program> SetEqualityProgram(DataValue separator,
                                   std::string_view attr) {
  const std::string a(attr);
  const std::string is_sep =
      "exists u (u = attr(" + a + ") & u = " + std::to_string(separator) +
      ")";
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("F", 1);
  b.DeclareRegister("G", 1);
  // Walk in: #top -> #open -> first cell.
  b.OnMove(kTopLabel, "q0", "true", "q1", Move::kDown);
  b.OnMove(kOpenLabel, "q1", "true", "cf", Move::kRight);
  // Before the separator: collect into F and descend.
  b.OnMove(kOpenLabel, "cf", "true", "cf", Move::kRight);
  b.OnUpdate("*", "cf", "!(" + is_sep + ")", "cf_desc", "F",
             "F(u) | u = attr(" + a + ")", {"u"});
  b.OnMove("*", "cf_desc", "true", "cf", Move::kDown);
  // The separator switches to collecting into G.
  b.OnMove("*", "cf", is_sep, "cg", Move::kDown);
  // A string without a separator runs into #leaf and rejects by walking
  // off the tree (the exact rule shadows the guarded wildcards).
  b.OnMove(kLeafLabel, "cf", "true", "cf", Move::kRight);
  // After the separator: collect into G; a second separator gets stuck.
  b.OnMove(kOpenLabel, "cg", "true", "cg", Move::kRight);
  b.OnUpdate("*", "cg", "!(" + is_sep + ")", "cg_desc", "G",
             "G(u) | u = attr(" + a + ")", {"u"});
  b.OnMove("*", "cg_desc", "true", "cg", Move::kDown);
  // End of string: accept iff the two sets coincide.
  b.OnMove(kLeafLabel, "cg", "forall u (F(u) <-> G(u))", "qf", Move::kStay);
  return b.Build();
}

Result<Program> SetEqualityViaLookaheadProgram(DataValue separator,
                                               std::string_view attr) {
  const std::string a(attr);
  const std::string sep = std::to_string(separator);
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("F", 1);
  b.DeclareRegister("G", 1);
  // Cells strictly before the separator have it strictly below them in
  // the monadic tree; cells after are below it (and are told apart from
  // delimiters by having children).
  b.OnLookAhead(kTopLabel, "q0", "true", "q1", "F",
                "exists h (desc(x, y) & !(lab(y, #top)) & desc(y, h) & "
                "val(" + a + ", h) = " + sep + ")",
                "ret");
  b.OnLookAhead(kTopLabel, "q1", "true", "q2", "G",
                "exists z exists h (desc(x, y) & E(y, z) & desc(h, y) & "
                "val(" + a + ", h) = " + sep + ")",
                "ret");
  // Each selected cell returns its value through the first register.
  b.OnUpdate("*", "ret", "true", "ret2", "F", "u = attr(" + a + ")", {"u"});
  b.OnMove("*", "ret2", "true", "qf", Move::kStay);
  b.OnMove(kTopLabel, "q2", "forall u (F(u) <-> G(u))", "qf", Move::kStay);
  return b.Build();
}

Result<Program> AllLabelValuesEqualRootProgram(std::string_view label,
                                               std::string_view attr) {
  const std::string lab(label);
  const std::string a(attr);
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("R", 1);   // root's value
  b.DeclareRegister("S", 1);   // values seen at `label` nodes
  // Record the root value.
  b.OnMove(kTopLabel, "q0", "true", "q1", Move::kDown);
  b.OnMove(kOpenLabel, "q1", "true", "q2", Move::kRight);
  b.OnUpdate("*", "q2", "true", "fwd", "R", "u = attr(" + a + ")", {"u"});
  // DFS, accumulating S at every `label` node (then descending).
  b.OnMove(kOpenLabel, "fwd", "true", "fwd", Move::kRight);
  b.OnUpdate(lab, "fwd", "true", "fwd_seen", "S",
             "S(u) | u = attr(" + a + ")", {"u"});
  b.OnMove(lab, "fwd_seen", "true", "fwd", Move::kDown);
  b.OnMove("*", "fwd", "true", "fwd", Move::kDown);
  b.OnMove(kLeafLabel, "fwd", "true", "back", Move::kUp);
  b.OnMove(kCloseLabel, "fwd", "true", "back", Move::kUp);
  b.OnMove("*", "back", "true", "fwd", Move::kRight);
  // Walk done: accept iff S is a subset of R.
  b.OnMove(kTopLabel, "back", "forall u (S(u) -> R(u))", "qf", Move::kStay);
  return b.Build();
}

Result<Program> BooleanCircuitProgram(std::string_view attr) {
  const std::string a(attr);
  // Selector: the original-node children of x (delimiters excluded).
  const std::string kids =
      "E(x, y) & !(lab(y, #open)) & !(lab(y, #close)) & !(lab(y, #leaf))";
  ProgramBuilder b(ProgramClass::kTwRL);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);
  // Evaluate the root gate, then accept iff it returned 1.
  b.OnLookAhead(kTopLabel, "q0", "true", "q1", "X", kids, "eval");
  b.OnMove(kTopLabel, "q1", "exists u (X(u) & u = 1)", "qf", Move::kStay);
  // A literal returns its (0/1) attribute value.
  b.OnUpdate("lit", "eval", "true", "ret", "X", "u = attr(" + a + ")",
             {"u"});
  b.OnMove("lit", "ret", "true", "qf", Move::kStay);
  // A gate evaluates every child through one subcomputation each (the
  // proof sketch's universal branching), then folds the union.
  b.OnLookAhead("and", "eval", "true", "and_fold", "X", kids, "eval");
  b.OnUpdate("and", "and_fold", "!(exists u (X(u) & u = 0))", "ret", "X",
             "u = 1", {"u"});
  b.OnUpdate("and", "and_fold", "exists u (X(u) & u = 0)", "ret", "X",
             "u = 0", {"u"});
  b.OnMove("and", "ret", "true", "qf", Move::kStay);
  b.OnLookAhead("or", "eval", "true", "or_fold", "X", kids, "eval");
  b.OnUpdate("or", "or_fold", "exists u (X(u) & u = 1)", "ret", "X",
             "u = 1", {"u"});
  b.OnUpdate("or", "or_fold", "!(exists u (X(u) & u = 1))", "ret", "X",
             "u = 0", {"u"});
  b.OnMove("or", "ret", "true", "qf", Move::kStay);
  return b.Build();
}

Result<Program> ExponentialCounterProgram() {
  ProgramBuilder b(ProgramClass::kTwR);
  b.SetStates("q0", "qf");
  b.DeclareRegister("X", 1);     // the counter: set of IDs = binary number
  b.DeclareRegister("Seen", 1);  // IDs visited during the setup walk
  b.DeclareRegister("Less", 2);  // strict document order over IDs

  // Setup walk over the delimited tree in document order (delimiters are
  // skipped by exact rules shadowing the wildcard pipeline).
  b.OnMove(kTopLabel, "q0", "true", "walk", Move::kDown);
  // At an original node: extend Less with Seen x {id}, add id to Seen,
  // then descend.
  b.OnUpdate("*", "walk", "true", "w2", "Less",
             "Less(u, v) | (Seen(u) & v = attr(id))", {"u", "v"});
  b.OnUpdate("*", "w2", "true", "w3", "Seen", "Seen(u) | u = attr(id)",
             {"u"});
  b.OnMove("*", "w3", "true", "walk", Move::kDown);
  // Delimiters: #open descends into siblings; #leaf/#close backtrack.
  b.OnMove(kOpenLabel, "walk", "true", "walk", Move::kRight);
  b.OnMove(kLeafLabel, "walk", "true", "back", Move::kUp);
  b.OnMove(kCloseLabel, "walk", "true", "back", Move::kUp);
  b.OnMove("*", "back", "true", "walk", Move::kRight);
  // Setup done at #top; start counting from X = {} (zero).
  b.OnMove(kTopLabel, "back", "true", "count", Move::kStay);

  // Counting loop: while some ID is missing from X, apply one binary
  // increment (lowest 0 flips to 1, the 1s below it clear); when X
  // covers every ID, accept.
  b.OnUpdate(kTopLabel, "count", "exists u (Seen(u) & !(X(u)))", "count",
             "X",
             "(!(X(x)) & Seen(x) & forall w (Less(w, x) -> X(w))) | "
             "(X(x) & exists w (Seen(w) & !(X(w)) & Less(w, x)))",
             {"x"});
  b.OnMove(kTopLabel, "count", "forall u (Seen(u) -> X(u))", "qf",
           Move::kStay);
  return b.Build();
}

}  // namespace treewalk
