#include "src/client/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <thread>
#include <utility>

#include "src/common/metrics.h"

namespace treewalk {

namespace {

using Clock = std::chrono::steady_clock;

/// Client instrument family (docs/OBSERVABILITY.md): fleet-wide sums
/// of the per-client counters, so a process hosting many QueryClients
/// (loadgen, the kill-loop harness) exports one coherent story.
struct ClientMetrics {
  Counter* attempts;
  Counter* retries;
  Counter* transport_errors;
  Counter* breaker_opened;
  Counter* breaker_shed;
  Counter* hedges_launched;
  Counter* hedges_won;

  static ClientMetrics& Get() {
    static ClientMetrics* metrics = [] {
      auto* m = new ClientMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      m->attempts = r.FindOrCreateCounter(
          "treewalk_client_attempts_total",
          "Query attempts launched by resilient clients (first tries "
          "and retries)");
      m->retries = r.FindOrCreateCounter(
          "treewalk_client_retries_total",
          "Query attempts after the first (jittered exponential "
          "backoff)");
      m->transport_errors = r.FindOrCreateCounter(
          "treewalk_client_transport_errors_total",
          "Connect/read/write failures observed by resilient clients");
      m->breaker_opened = r.FindOrCreateCounter(
          "treewalk_client_breaker_opened_total",
          "Circuit breaker transitions into the open state");
      m->breaker_shed = r.FindOrCreateCounter(
          "treewalk_client_breaker_shed_total",
          "Queries failed fast locally because the breaker was open");
      m->hedges_launched = r.FindOrCreateCounter(
          "treewalk_client_hedges_total",
          "Hedged requests launched against the secondary endpoint",
          {{"outcome", "launched"}});
      m->hedges_won = r.FindOrCreateCounter(
          "treewalk_client_hedges_total",
          "Hedged requests launched against the secondary endpoint",
          {{"outcome", "won"}});
      return m;
    }();
    return *metrics;
  }
};

std::int64_t MillisLeft(Clock::time_point deadline) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                               Clock::now())
      .count();
}

/// Connect with a timeout (non-blocking connect + poll), then restore
/// blocking mode; -1 on failure.
int ConnectTo(const Endpoint& target, std::int64_t timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(target.port));
  if (inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return -1;
  }
  int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    struct pollfd pfd = {fd, POLLOUT, 0};
    rc = poll(&pfd, 1, static_cast<int>(std::max<std::int64_t>(
                           timeout_ms, 1))) == 1
             ? 0
             : -1;
    if (rc == 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        rc = -1;
      }
    }
  }
  if (rc != 0) {
    close(fd);
    return -1;
  }
  fcntl(fd, F_SETFL, flags);
  return fd;
}

bool ReadFullTimed(int fd, unsigned char* buf, std::size_t len,
                   Clock::time_point deadline) {
  std::size_t done = 0;
  while (done < len) {
    std::int64_t left = MillisLeft(deadline);
    if (left <= 0) return false;
    struct pollfd pfd = {fd, POLLIN, 0};
    int pr = poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;
    ssize_t n = recv(fd, buf + done, len - done, 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool WriteFullTimed(int fd, const char* buf, std::size_t len,
                    Clock::time_point deadline) {
  std::size_t done = 0;
  while (done < len) {
    std::int64_t left = MillisLeft(deadline);
    if (left <= 0) return false;
    struct pollfd pfd = {fd, POLLOUT, 0};
    int pr = poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) return false;
    ssize_t n = send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// One framed request/response on an already-connected socket.
bool ExchangeOn(int fd, const std::string& request, std::int64_t wait_ms,
                MessageType& type, std::string& body) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(wait_ms);
  if (!WriteFullTimed(fd, request.data(), request.size(), deadline)) {
    return false;
  }
  unsigned char prefix[4];
  if (!ReadFullTimed(fd, prefix, sizeof(prefix), deadline)) return false;
  Result<std::uint32_t> len = DecodeFrameLength(prefix);
  if (!len.ok()) return false;
  std::string payload(*len, '\0');
  if (!ReadFullTimed(fd, reinterpret_cast<unsigned char*>(payload.data()),
                     payload.size(), deadline)) {
    return false;
  }
  Result<Frame> frame = DecodeFramePayload(payload);
  if (!frame.ok()) return false;
  type = frame->type;
  body.assign(frame->body);
  return true;
}

/// xorshift64* full-jitter: sleep uniformly in [0, window).
std::uint64_t NextRand(std::uint64_t& state) {
  state ^= state >> 12;
  state ^= state << 25;
  state ^= state >> 27;
  return state * 0x2545f4914f6cdd1dULL;
}

bool IsRetryableWireError(WireError code) {
  switch (code) {
    case WireError::kOverloaded:
    case WireError::kDraining:
    case WireError::kCancelled:
    case WireError::kInternal:
      return true;
    case WireError::kInvalidRequest:
    case WireError::kNotFound:
    case WireError::kDeadlineExceeded:
    case WireError::kResourceExhausted:
    case WireError::kRejectedProgram:
    case WireError::kQuarantined:
      return false;
  }
  return false;
}

}  // namespace

Status StatusFromWireError(WireError code, const std::string& message) {
  const std::string text =
      std::string(WireErrorName(code)) + ": " + message;
  switch (code) {
    case WireError::kOverloaded:
    case WireError::kDraining:
    case WireError::kResourceExhausted:
      return ResourceExhausted(text);
    case WireError::kInvalidRequest:
      return InvalidArgument(text);
    case WireError::kNotFound:
      return NotFound(text);
    case WireError::kDeadlineExceeded:
      return DeadlineExceeded(text);
    case WireError::kCancelled:
      return Cancelled(text);
    case WireError::kRejectedProgram:
    case WireError::kQuarantined:
      return FailedPrecondition(text);
    case WireError::kInternal:
      return Internal(text);
  }
  return Internal(text);
}

QueryClient::QueryClient(ClientOptions options)
    : options_(std::move(options)) {
  rng_state_ = options_.backoff_seed != 0
                   ? options_.backoff_seed
                   : 0x9e3779b97f4a7c15ULL ^
                         reinterpret_cast<std::uintptr_t>(this);
}

QueryClient::~QueryClient() {
  if (fd_ >= 0) close(fd_);
}

Status QueryClient::Connect() {
  if (fd_ >= 0) return Status::Ok();
  int fd = ConnectTo(options_.endpoint, options_.connect_timeout_ms);
  {
    std::lock_guard<std::mutex> lock(fd_mu_);
    fd_ = fd;
  }
  if (fd < 0) {
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().transport_errors->Increment();
    return ResourceExhausted("cannot connect to " + options_.endpoint.host +
                             ":" + std::to_string(options_.endpoint.port));
  }
  counters_.reconnects.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

QueryClient::ExchangeResult QueryClient::ExchangePrimary(
    const std::string& request, std::int64_t wait_ms) {
  ExchangeResult out;
  if (fd_ < 0 && !Connect().ok()) return out;
  if (!ExchangeOn(fd_, request, wait_ms, out.type, out.body)) {
    {
      std::lock_guard<std::mutex> lock(fd_mu_);
      close(fd_);
      fd_ = -1;
    }
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().transport_errors->Increment();
    return out;
  }
  out.transport_ok = true;
  return out;
}

QueryClient::ExchangeResult QueryClient::ExchangeOneShot(
    const Endpoint& target, const std::string& request, std::int64_t wait_ms,
    HedgeSlot* slot) {
  ExchangeResult out;
  int fd = ConnectTo(target, options_.connect_timeout_ms);
  if (fd < 0) {
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().transport_errors->Increment();
    return out;
  }
  if (slot != nullptr) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->fd = fd;
  }
  out.transport_ok = ExchangeOn(fd, request, wait_ms, out.type, out.body);
  if (!out.transport_ok) {
    counters_.transport_errors.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().transport_errors->Increment();
  }
  if (slot != nullptr) {
    // Hold the lock across reset+close (mirroring fd_mu_) so the
    // abort's load+shutdown cannot land on a recycled descriptor.
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->fd = -1;
    close(fd);
  } else {
    close(fd);
  }
  return out;
}

QueryClient::ExchangeResult QueryClient::ExchangeHedged(
    const std::string& request, std::int64_t wait_ms, bool& hedge_won) {
  // The primary runs on a worker thread so this thread can launch the
  // hedge mid-flight; first *successful* completion wins and the
  // loser's socket is shut down (an aborted read, not a leak).
  struct Race {
    std::mutex mu;
    std::condition_variable cv;
    bool primary_done = false;
    bool hedge_done = false;
    ExchangeResult primary;
    ExchangeResult hedge;
  } race;

  std::thread primary_thread([&] {
    ExchangeResult r = ExchangePrimary(request, wait_ms);
    std::lock_guard<std::mutex> lock(race.mu);
    race.primary = std::move(r);
    race.primary_done = true;
    race.cv.notify_all();
  });

  std::thread hedge_thread;
  HedgeSlot hedge_slot;
  bool hedge_launched = false;
  {
    std::unique_lock<std::mutex> lock(race.mu);
    race.cv.wait_for(lock,
                     std::chrono::milliseconds(options_.hedge_delay_ms),
                     [&] { return race.primary_done; });
    if (!race.primary_done ||
        !(race.primary.transport_ok &&
          race.primary.type == MessageType::kQueryResult)) {
      hedge_launched = true;
    }
  }
  if (hedge_launched) {
    counters_.hedges_launched.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().hedges_launched->Increment();
    hedge_thread = std::thread([&] {
      ExchangeResult r =
          ExchangeOneShot(options_.hedge, request, wait_ms, &hedge_slot);
      std::lock_guard<std::mutex> lock(race.mu);
      race.hedge = std::move(r);
      race.hedge_done = true;
      race.cv.notify_all();
    });
  }

  ExchangeResult winner;
  {
    std::unique_lock<std::mutex> lock(race.mu);
    auto success = [](const ExchangeResult& r) {
      return r.transport_ok && r.type == MessageType::kQueryResult;
    };
    race.cv.wait(lock, [&] {
      if (race.primary_done && success(race.primary)) return true;
      if (race.hedge_done && success(race.hedge)) return true;
      return race.primary_done && (!hedge_launched || race.hedge_done);
    });
    if (race.hedge_done && success(race.hedge) &&
        !(race.primary_done && success(race.primary))) {
      winner = race.hedge;
      hedge_won = true;
      counters_.hedges_won.fetch_add(1, std::memory_order_relaxed);
      ClientMetrics::Get().hedges_won->Increment();
    } else if (race.primary_done) {
      winner = race.primary;
    } else {
      winner = race.hedge;  // hedge answered (non-result) first
    }
  }
  // Abort whichever side is still in flight so the joins below are
  // prompt: the primary via the persistent fd, the hedge via its slot.
  {
    std::lock_guard<std::mutex> lock(race.mu);
    {
      std::lock_guard<std::mutex> fd_lock(fd_mu_);
      if (!race.primary_done && fd_ >= 0) shutdown(fd_, SHUT_RDWR);
    }
    std::lock_guard<std::mutex> hedge_lock(hedge_slot.mu);
    if (!race.hedge_done && hedge_slot.fd >= 0) {
      shutdown(hedge_slot.fd, SHUT_RDWR);
    }
  }
  primary_thread.join();
  if (hedge_thread.joinable()) hedge_thread.join();
  return winner;
}

QueryOutcome QueryClient::Query(const std::string& tree_name,
                                const std::string& program_text) {
  ClientMetrics& metrics = ClientMetrics::Get();
  QueryOutcome out;
  const Clock::time_point start = Clock::now();
  const bool budgeted = options_.total_deadline_ms > 0;
  const Clock::time_point budget_deadline =
      start + std::chrono::milliseconds(options_.total_deadline_ms);

  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    // Deadline propagation: the wire deadline of *this* attempt is the
    // end-to-end budget minus everything already spent (connects,
    // failed attempts, backoff sleeps) — the server-side governor can
    // never run past the client's remaining patience.
    // The exchange wait must cover the time the server may
    // *legitimately* compute — the attempt's wire deadline plus wire
    // slack — with io_timeout_ms as the floor for deadline-less
    // requests; otherwise a long-deadline query is aborted client-side
    // mid-computation and miscounted as a transport failure.
    std::int64_t wire_deadline_ms = options_.request_deadline_ms;
    std::int64_t wait_ms =
        std::max(options_.io_timeout_ms, wire_deadline_ms + 50);
    if (budgeted) {
      std::int64_t remaining = MillisLeft(budget_deadline);
      if (remaining <= 0) {
        counters_.deadline_exhausted.fetch_add(1, std::memory_order_relaxed);
        out.status = DeadlineExceeded(
            "client budget of " +
            std::to_string(options_.total_deadline_ms) +
            " ms exhausted after " + std::to_string(attempt - 1) +
            " attempt(s)");
        return out;
      }
      // Under a budget the remaining budget *is* the stall guard: wait
      // exactly that long (plus slack), never past it.
      wire_deadline_ms = remaining;
      wait_ms = remaining + 50;
    }
    if (!BreakerAdmits()) {
      counters_.breaker_shed.fetch_add(1, std::memory_order_relaxed);
      metrics.breaker_shed->Increment();
      out.status = ResourceExhausted(
          "circuit breaker open (cooling down after " +
          std::to_string(options_.breaker_threshold) +
          " consecutive failures)");
      return out;
    }

    QueryRequest query;
    query.tree_name = tree_name;
    query.program_text = program_text;
    query.deadline_ms = static_cast<std::uint32_t>(
        std::max<std::int64_t>(wire_deadline_ms, 0));
    const std::string request =
        EncodeFrame(MessageType::kQuery, EncodeQueryRequest(query));

    counters_.attempts.fetch_add(1, std::memory_order_relaxed);
    metrics.attempts->Increment();
    if (attempt > 1) {
      counters_.retries.fetch_add(1, std::memory_order_relaxed);
      metrics.retries->Increment();
    }
    ++out.attempts;

    ExchangeResult got =
        options_.hedge.port != 0
            ? ExchangeHedged(request, wait_ms, out.hedge_won)
            : ExchangePrimary(request, wait_ms);

    bool retryable;
    if (!got.transport_ok) {
      retryable = true;
      out.has_wire_error = false;
      out.status = ResourceExhausted(
          "transport failure against " + options_.endpoint.host + ":" +
          std::to_string(options_.endpoint.port));
    } else if (got.type == MessageType::kQueryResult) {
      Result<QueryResultMsg> result = DecodeQueryResult(got.body);
      if (result.ok()) {
        BreakerRecord(/*success=*/true);
        out.status = Status::Ok();
        out.result = *result;
        return out;
      }
      retryable = true;  // a garbled frame is a transport-class failure
      out.has_wire_error = false;
      out.status = Internal("undecodable query result: " +
                            result.status().message());
    } else if (got.type == MessageType::kError) {
      Result<ErrorMsg> error = DecodeError(got.body);
      WireError code = error.ok() ? error->code : WireError::kInternal;
      out.has_wire_error = true;
      out.wire_error = code;
      out.status = StatusFromWireError(
          code, error.ok() ? error->message : "undecodable error frame");
      retryable = IsRetryableWireError(code);
    } else {
      retryable = true;
      out.has_wire_error = false;
      out.status = Internal(std::string("unexpected response frame: ") +
                            MessageTypeName(got.type));
    }

    if (retryable) {
      BreakerRecord(/*success=*/false);
    } else if (got.transport_ok) {
      // A terminal verdict still proves the endpoint healthy — the
      // server answered.  Recording it as a breaker success matters
      // most in half-open state: the probe must close the breaker (and
      // clear its in-flight latch), not wedge it open forever.
      BreakerRecord(/*success=*/true);
    }
    if (!retryable || attempt == max_attempts) return out;

    // Full-jitter exponential backoff, clamped to the remaining budget
    // (sleeping past the deadline would turn a retry into a timeout).
    std::int64_t window =
        std::min(options_.retry.max_backoff_ms,
                 options_.retry.initial_backoff_ms << (attempt - 1));
    if (window > 0) {
      std::int64_t sleep_ms = static_cast<std::int64_t>(
          NextRand(rng_state_) % static_cast<std::uint64_t>(window + 1));
      if (budgeted) {
        sleep_ms = std::min(sleep_ms,
                            std::max<std::int64_t>(
                                MillisLeft(budget_deadline), 0));
      }
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
    }
  }
  return out;  // unreachable: the loop always returns
}

Result<bool> QueryClient::Health() {
  ExchangeResult got = ExchangePrimary(
      EncodeFrame(MessageType::kHealth, ""), options_.io_timeout_ms);
  if (!got.transport_ok) return ResourceExhausted("health probe: no answer");
  if (got.type != MessageType::kHealthResult) {
    return Internal(std::string("health probe answered with ") +
                    MessageTypeName(got.type));
  }
  TREEWALK_ASSIGN_OR_RETURN(ProbeResultMsg probe,
                            DecodeProbeResult(got.body));
  return probe.ok;
}

Result<bool> QueryClient::Ready() {
  ExchangeResult got = ExchangePrimary(EncodeFrame(MessageType::kReady, ""),
                                       options_.io_timeout_ms);
  if (!got.transport_ok) return ResourceExhausted("ready probe: no answer");
  if (got.type != MessageType::kReadyResult) {
    return Internal(std::string("ready probe answered with ") +
                    MessageTypeName(got.type));
  }
  TREEWALK_ASSIGN_OR_RETURN(ProbeResultMsg probe,
                            DecodeProbeResult(got.body));
  return probe.ok;
}

Result<StatsMap> QueryClient::Stats() {
  ExchangeResult got = ExchangePrimary(EncodeFrame(MessageType::kStats, ""),
                                       options_.io_timeout_ms);
  if (!got.transport_ok) return ResourceExhausted("stats: no answer");
  if (got.type != MessageType::kStatsResult) {
    return Internal(std::string("stats answered with ") +
                    MessageTypeName(got.type));
  }
  return DecodeStats(got.body);
}

Status QueryClient::Ping() {
  ExchangeResult got = ExchangePrimary(EncodeFrame(MessageType::kPing, ""),
                                       options_.io_timeout_ms);
  if (!got.transport_ok) return ResourceExhausted("ping: no answer");
  if (got.type != MessageType::kPong) {
    return Internal(std::string("ping answered with ") +
                    MessageTypeName(got.type));
  }
  return Status::Ok();
}

QueryClient::BreakerState QueryClient::breaker_state() const {
  std::lock_guard<std::mutex> lock(breaker_mu_);
  return breaker_state_;
}

bool QueryClient::BreakerAdmits() {
  if (options_.breaker_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  switch (breaker_state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (Clock::now() < breaker_open_until_) return false;
      breaker_state_ = BreakerState::kHalfOpen;
      half_open_probe_inflight_ = false;
      [[fallthrough]];
    case BreakerState::kHalfOpen:
      // Exactly one probe at a time; a second request while the probe
      // is out still fails fast.
      if (half_open_probe_inflight_) return false;
      half_open_probe_inflight_ = true;
      counters_.breaker_probes.fetch_add(1, std::memory_order_relaxed);
      return true;
  }
  return true;
}

void QueryClient::BreakerRecord(bool success) {
  if (options_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(breaker_mu_);
  if (success) {
    if (breaker_state_ == BreakerState::kHalfOpen) {
      counters_.breaker_closed.fetch_add(1, std::memory_order_relaxed);
    }
    breaker_state_ = BreakerState::kClosed;
    consecutive_failures_ = 0;
    half_open_probe_inflight_ = false;
    return;
  }
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // The half-open probe failed: straight back to open for another
    // cooldown, without needing threshold failures again.
    breaker_state_ = BreakerState::kOpen;
    breaker_open_until_ =
        Clock::now() +
        std::chrono::milliseconds(options_.breaker_cooldown_ms);
    half_open_probe_inflight_ = false;
    counters_.breaker_opened.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().breaker_opened->Increment();
    return;
  }
  if (++consecutive_failures_ >= options_.breaker_threshold &&
      breaker_state_ == BreakerState::kClosed) {
    breaker_state_ = BreakerState::kOpen;
    breaker_open_until_ =
        Clock::now() +
        std::chrono::milliseconds(options_.breaker_cooldown_ms);
    counters_.breaker_opened.fetch_add(1, std::memory_order_relaxed);
    ClientMetrics::Get().breaker_opened->Increment();
  }
}

}  // namespace treewalk
