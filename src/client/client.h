#ifndef TREEWALK_CLIENT_CLIENT_H_
#define TREEWALK_CLIENT_CLIENT_H_

/// Resilient client library for the `twq serve` wire protocol
/// (docs/SERVER.md, "The resilient client").  The daemon's crash-only
/// story only closes end-to-end if the *client* survives the crash:
/// a supervisor SIGKILL/restart cycle looks like a burst of connection
/// resets and refusals, and a raw socket loop turns each into a
/// user-visible failure.  QueryClient turns them into a bounded retry:
///
///   backoff     jittered exponential retries reusing the engine's
///               RetryPolicy knobs (max_attempts, initial/max backoff);
///               full jitter, so a restarted daemon is not greeted by a
///               synchronized thundering herd
///   deadline    one end-to-end budget (total_deadline_ms) propagated
///               per attempt: the wire deadline_ms each attempt carries
///               is the budget *minus elapsed time*, so the server-side
///               governor never runs past what the client will wait for
///   breaker     a consecutive-failure circuit breaker: after
///               breaker_threshold transport/transient failures in a
///               row the client fails fast locally (no connect, no
///               socket) until breaker_cooldown_ms passes, then lets
///               exactly one half-open probe through — success closes
///               the breaker, failure re-opens it
///   hedging     optionally race a second endpoint: if the primary has
///               not answered within hedge_delay_ms, the same request
///               is sent to the hedge endpoint and the first success
///               wins (the loser's socket is shut down)
///
/// One QueryClient owns one connection and is NOT thread-safe: a fleet
/// uses one instance per thread (each with its own breaker, which is
/// what you want — a thread that saw failures stops sending).
///
/// Retryability: transport errors and the transient wire errors
/// kOverloaded / kDraining / kCancelled / kInternal retry; semantic
/// verdicts (kInvalidRequest, kNotFound, kRejectedProgram,
/// kQuarantined) and spent budgets (kDeadlineExceeded,
/// kResourceExhausted) are terminal.  Only retryable failures count
/// *against* the breaker; any transport-successful exchange — a
/// served result or a terminal verdict like kNotFound — counts as a
/// breaker success, because the server demonstrably answered.  In
/// particular a half-open probe that draws a terminal verdict closes
/// the breaker rather than leaving the probe wedged in flight.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/result.h"
#include "src/engine/engine.h"
#include "src/server/frame.h"

namespace treewalk {

/// One host:port target.
struct Endpoint {
  std::string host = "127.0.0.1";
  int port = 0;
};

struct ClientOptions {
  Endpoint endpoint;
  /// Optional hedge target (port 0 = hedging off).  Typically a second
  /// replica; hedging against the same endpoint only helps when one
  /// connection is wedged.
  Endpoint hedge;
  /// How long the primary has the request exclusively before the hedge
  /// is launched.
  std::int64_t hedge_delay_ms = 50;
  /// Retry knobs, reusing the engine's policy type: max_attempts,
  /// initial_backoff_ms, max_backoff_ms.  (`degrade` is server-side
  /// semantics and is ignored here.)
  RetryPolicy retry;
  /// End-to-end budget across all attempts, backoffs, and hedges; each
  /// attempt's wire deadline is what remains of it.  0 = no budget
  /// (attempts carry request_deadline_ms instead).
  std::int64_t total_deadline_ms = 0;
  /// Per-attempt server deadline when total_deadline_ms == 0
  /// (0 = server default).
  std::int64_t request_deadline_ms = 0;
  std::int64_t connect_timeout_ms = 1000;
  /// Floor on the per-exchange wait (write + full response read).  Each
  /// exchange waits max(io_timeout_ms, attempt wire deadline + slack),
  /// so a server legitimately computing up to its propagated deadline
  /// is never aborted client-side; under a total_deadline_ms budget the
  /// wait is the remaining budget plus slack instead.
  std::int64_t io_timeout_ms = 5000;
  /// Consecutive retryable failures that open the breaker; 0 = breaker
  /// disabled.
  int breaker_threshold = 0;
  /// How long an open breaker fails fast before allowing the half-open
  /// probe.
  std::int64_t breaker_cooldown_ms = 250;
  /// Seeds backoff jitter (0 = derived from the address of the client).
  std::uint64_t backoff_seed = 0;
};

/// Monotonic client-side counters; exact by construction (each event
/// increments exactly one counter at the point it happens), so tests
/// can reconcile them against server books.
struct ClientCounters {
  std::atomic<std::int64_t> attempts{0};         ///< exchanges launched
  std::atomic<std::int64_t> retries{0};          ///< attempts after the first
  std::atomic<std::int64_t> reconnects{0};       ///< fresh primary connects
  std::atomic<std::int64_t> transport_errors{0}; ///< connect/read/write failures
  std::atomic<std::int64_t> breaker_opened{0};
  std::atomic<std::int64_t> breaker_shed{0};     ///< fail-fast while open
  std::atomic<std::int64_t> breaker_probes{0};   ///< half-open probes sent
  std::atomic<std::int64_t> breaker_closed{0};   ///< probe success -> closed
  std::atomic<std::int64_t> hedges_launched{0};
  std::atomic<std::int64_t> hedges_won{0};       ///< hedge answered first
  std::atomic<std::int64_t> deadline_exhausted{0}; ///< budget died client-side
};

/// Everything one resilient query produced.  `status.ok()` means
/// `result` is a served verdict (accept or reject); otherwise
/// `wire_error` (when `has_wire_error`) is the server's last typed
/// refusal, and transport-level failures leave has_wire_error false.
struct QueryOutcome {
  Status status = Status::Ok();
  QueryResultMsg result;
  bool has_wire_error = false;
  WireError wire_error = WireError::kInternal;
  int attempts = 0;
  bool hedge_won = false;
};

/// Maps a typed server refusal onto the engine's Status vocabulary
/// (the inverse direction of WireErrorFromStatus, for client callers
/// that speak Status).
Status StatusFromWireError(WireError code, const std::string& message);

class QueryClient {
 public:
  enum class BreakerState { kClosed, kOpen, kHalfOpen };

  explicit QueryClient(ClientOptions options);
  ~QueryClient();

  QueryClient(const QueryClient&) = delete;
  QueryClient& operator=(const QueryClient&) = delete;

  /// Eagerly establishes the primary connection (Query() and the
  /// probes connect lazily; a held probe wants the connection to exist
  /// *before* the server starts draining, when new accepts are
  /// refused).
  Status Connect();

  /// One resilient query: retries, deadline propagation, breaker,
  /// hedging — per the options.
  QueryOutcome Query(const std::string& tree_name,
                     const std::string& program_text);

  /// Single-attempt probes and metadata fetches on the primary
  /// connection (one silent reconnect if it had gone stale).  Probes
  /// are deliberately un-retried: a health check that retries until it
  /// succeeds measures the retry budget, not the server.
  Result<bool> Health();
  Result<bool> Ready();
  Result<StatsMap> Stats();
  Status Ping();

  BreakerState breaker_state() const;
  const ClientCounters& counters() const { return counters_; }
  const ClientOptions& options() const { return options_; }

 private:
  struct ExchangeResult {
    bool transport_ok = false;
    MessageType type = MessageType::kPong;
    std::string body;
  };

  /// Request/response on the persistent primary connection,
  /// (re)connecting as needed; closes it on transport failure.
  ExchangeResult ExchangePrimary(const std::string& request,
                                 std::int64_t wait_ms);
  /// A hedge connection's descriptor, shared between the hedge worker
  /// (which opens, publishes, and closes it) and the hedged race's
  /// abort path (which loads it and shuts it down).  mu orders
  /// reset+close against load+shutdown — the same protocol fd_mu_
  /// gives the primary — so the abort can never land on a descriptor
  /// another thread has already closed and recycled.
  struct HedgeSlot {
    std::mutex mu;
    int fd = -1;
  };
  /// One-shot request/response on a fresh connection to `target`.
  ExchangeResult ExchangeOneShot(const Endpoint& target,
                                 const std::string& request,
                                 std::int64_t wait_ms, HedgeSlot* slot);
  /// Primary exchange, racing the hedge endpoint after hedge_delay_ms.
  ExchangeResult ExchangeHedged(const std::string& request,
                                std::int64_t wait_ms, bool& hedge_won);

  /// Breaker gate for one attempt: false = fail fast (shed).  When it
  /// returns true in half-open state, the attempt is the probe.
  bool BreakerAdmits();
  void BreakerRecord(bool success);

  ClientOptions options_;
  ClientCounters counters_;
  /// Guards fd_ against the one cross-thread access: during a hedged
  /// exchange the primary runs on a worker thread (which may reconnect
  /// or close-and-reset fd_) while this thread reads fd_ to shut a
  /// stalled primary down.  Holding the lock across close/reset also
  /// keeps that shutdown from landing on a recycled descriptor.
  std::mutex fd_mu_;
  int fd_ = -1;

  mutable std::mutex breaker_mu_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  std::chrono::steady_clock::time_point breaker_open_until_{};
  bool half_open_probe_inflight_ = false;

  std::uint64_t rng_state_;
};

}  // namespace treewalk

#endif  // TREEWALK_CLIENT_CLIENT_H_
