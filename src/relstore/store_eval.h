#ifndef TREEWALK_RELSTORE_STORE_EVAL_H_
#define TREEWALK_RELSTORE_STORE_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/interner.h"
#include "src/common/result.h"
#include "src/logic/formula.h"
#include "src/relstore/store.h"

namespace treewalk {

/// Evaluation context for the store logic of Section 3: the formula sees
/// the relational storage, the attribute values of the automaton's
/// current node (the attr(.) terms), and its own constants.  All
/// quantification ranges over the *active domain*: values in the store,
/// the current attribute values, and the constants appearing in the
/// formula.
struct StoreContext {
  const Store* store = nullptr;
  /// Attribute name -> value at the automaton's current node.
  std::map<std::string, DataValue> current_attrs;
  /// Interner used to resolve string constants; may be null when the
  /// formula has none.
  ValueInterner* values = nullptr;
};

/// The active domain of a formula under a context (sorted, unique).
/// Exposed for tests and for the PSPACE simulation's accounting.
Result<std::vector<DataValue>> ActiveDomain(const StoreContext& context,
                                            const Formula& formula);

/// Evaluates a store sentence (no free variables): the guards xi of
/// Definition 3.1.
Result<bool> EvalStoreSentence(const StoreContext& context,
                               const Formula& formula);

/// Evaluates a store formula with free variables `vars` (in tuple order):
/// returns the relation { d-bar in active-domain^|vars| : psi(d-bar) }.
/// This is the register-update semantics of Definition 3.1 rule form 2.
///
/// Every free variable of the formula must appear in `vars`; `vars` may
/// list extra variables (they become unconstrained columns over the
/// active domain).
Result<Relation> EvalStoreFormula(const StoreContext& context,
                                  const Formula& formula,
                                  const std::vector<std::string>& vars);

}  // namespace treewalk

#endif  // TREEWALK_RELSTORE_STORE_EVAL_H_
