#include "src/relstore/store.h"

#include <algorithm>

namespace treewalk {

Result<Store> Store::Create(
    const std::vector<std::pair<std::string, int>>& schema) {
  Store store;
  for (const auto& [name, arity] : schema) {
    if (arity < 0) {
      return InvalidArgument("negative arity for relation '" + name + "'");
    }
    if (store.IndexOf(name) >= 0) {
      return InvalidArgument("duplicate relation name '" + name + "'");
    }
    store.names_.push_back(name);
    store.relations_.emplace_back(arity);
  }
  return store;
}

int Store::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return -1;
}

int Store::ArityOf(const std::string& name) const {
  int index = IndexOf(name);
  return index < 0 ? -1 : relations_[static_cast<std::size_t>(index)].arity();
}

const Relation* Store::Find(const std::string& name) const {
  int index = IndexOf(name);
  return index < 0 ? nullptr : &relations_[static_cast<std::size_t>(index)];
}

Relation* Store::Find(const std::string& name) {
  int index = IndexOf(name);
  return index < 0 ? nullptr : &relations_[static_cast<std::size_t>(index)];
}

Status Store::Replace(std::size_t index, Relation relation) {
  if (index >= relations_.size()) {
    return InvalidArgument("relation index out of range");
  }
  if (relation.arity() != relations_[index].arity()) {
    return InvalidArgument("arity mismatch replacing relation '" +
                           names_[index] + "'");
  }
  relations_[index] = std::move(relation);
  return Status::Ok();
}

std::vector<DataValue> Store::ActiveDomain() const {
  std::vector<DataValue> out;
  for (const Relation& r : relations_) {
    std::vector<DataValue> values = r.Values();
    out.insert(out.end(), values.begin(), values.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::uint64_t Store::Fingerprint() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Relation& r : relations_) {
    h ^= r.Fingerprint() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::size_t Store::TotalTuples() const {
  std::size_t total = 0;
  for (const Relation& r : relations_) total += r.size();
  return total;
}

std::string Store::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (i > 0) out += "; ";
    out += names_[i];
    out += " = ";
    out += relations_[i].ToString();
  }
  return out;
}

}  // namespace treewalk
