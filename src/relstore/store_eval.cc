#include "src/relstore/store_eval.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

namespace {

/// Collects the data constants of a formula into `out`; string constants
/// are resolved through the context's interner.
Status CollectConstants(const StoreContext& context, const Formula& f,
                        std::vector<DataValue>& out) {
  const FormulaNode& n = f.node();
  for (const Formula& c : n.children) {
    TREEWALK_RETURN_IF_ERROR(CollectConstants(context, c, out));
  }
  if (n.kind != FormulaKind::kAtom) return Status::Ok();
  for (const Term& t : n.terms) {
    switch (t.kind) {
      case Term::Kind::kIntConst:
        out.push_back(t.value);
        break;
      case Term::Kind::kStrConst:
        if (context.values == nullptr) {
          return InvalidArgument(
              "string constant \"" + t.text +
              "\" requires a ValueInterner in the store context");
        }
        out.push_back(context.values->ValueFor(t.text));
        break;
      case Term::Kind::kCurrentAttr: {
        auto it = context.current_attrs.find(t.attr);
        if (it == context.current_attrs.end()) {
          return InvalidArgument("current node has no attribute '" + t.attr +
                                 "'");
        }
        break;
      }
      default:
        break;
    }
  }
  return Status::Ok();
}

class StoreEvaluator {
 public:
  StoreEvaluator(const StoreContext& context, std::vector<DataValue> domain)
      : context_(context), domain_(std::move(domain)) {}

  bool Eval(const Formula& f, std::map<std::string, DataValue>& env) {
    const FormulaNode& n = f.node();
    switch (n.kind) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kNot:
        return !Eval(n.children[0], env);
      case FormulaKind::kAnd:
        return Eval(n.children[0], env) && Eval(n.children[1], env);
      case FormulaKind::kOr:
        return Eval(n.children[0], env) || Eval(n.children[1], env);
      case FormulaKind::kImplies:
        return !Eval(n.children[0], env) || Eval(n.children[1], env);
      case FormulaKind::kIff:
        return Eval(n.children[0], env) == Eval(n.children[1], env);
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        bool exists = n.kind == FormulaKind::kExists;
        auto it = env.find(n.var);
        bool had = it != env.end();
        DataValue saved = had ? it->second : 0;
        bool result = !exists;
        for (DataValue v : domain_) {
          env[n.var] = v;
          if (Eval(n.children[0], env) == exists) {
            result = exists;
            break;
          }
        }
        if (had) {
          env[n.var] = saved;
        } else {
          env.erase(n.var);
        }
        return result;
      }
      case FormulaKind::kAtom: {
        if (n.atom == AtomKind::kEq) {
          return Value(n.terms[0], env) == Value(n.terms[1], env);
        }
        assert(n.atom == AtomKind::kRelation);
        const Relation* rel = context_.store->Find(n.symbol);
        assert(rel != nullptr);
        Tuple t;
        t.reserve(n.terms.size());
        for (const Term& term : n.terms) t.push_back(Value(term, env));
        return rel->Contains(t);
      }
    }
    return false;
  }

 private:
  DataValue Value(const Term& t, std::map<std::string, DataValue>& env) {
    switch (t.kind) {
      case Term::Kind::kVar: {
        auto it = env.find(t.var);
        assert(it != env.end());
        return it->second;
      }
      case Term::Kind::kIntConst:
        return t.value;
      case Term::Kind::kStrConst:
        assert(context_.values != nullptr);
        return context_.values->ValueFor(t.text);
      case Term::Kind::kCurrentAttr: {
        auto it = context_.current_attrs.find(t.attr);
        assert(it != context_.current_attrs.end());
        return it->second;
      }
      case Term::Kind::kAttrOfVar:
        assert(false && "val(.,.) in store formula");
        return 0;
    }
    return 0;
  }

  const StoreContext& context_;
  std::vector<DataValue> domain_;
};

Status Validate(const StoreContext& context, const Formula& formula) {
  if (!formula.valid()) return InvalidArgument("empty formula");
  if (context.store == nullptr) {
    return InvalidArgument("store context has no store");
  }
  const Store* store = context.store;
  return ValidateStoreFormula(
      formula, [store](const std::string& name) { return store->ArityOf(name); });
}

}  // namespace

Result<std::vector<DataValue>> ActiveDomain(const StoreContext& context,
                                            const Formula& formula) {
  TREEWALK_RETURN_IF_ERROR(Validate(context, formula));
  std::vector<DataValue> domain = context.store->ActiveDomain();
  for (const auto& [name, value] : context.current_attrs) {
    domain.push_back(value);
  }
  TREEWALK_RETURN_IF_ERROR(CollectConstants(context, formula, domain));
  std::sort(domain.begin(), domain.end());
  domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
  return domain;
}

Result<bool> EvalStoreSentence(const StoreContext& context,
                               const Formula& formula) {
  if (formula.valid() && !formula.FreeVariables().empty()) {
    return InvalidArgument("store sentence has free variables");
  }
  TREEWALK_ASSIGN_OR_RETURN(std::vector<DataValue> domain,
                            ActiveDomain(context, formula));
  StoreEvaluator evaluator(context, std::move(domain));
  std::map<std::string, DataValue> env;
  return evaluator.Eval(formula, env);
}

Result<Relation> EvalStoreFormula(const StoreContext& context,
                                  const Formula& formula,
                                  const std::vector<std::string>& vars) {
  TREEWALK_ASSIGN_OR_RETURN(std::vector<DataValue> domain,
                            ActiveDomain(context, formula));
  for (const std::string& v : formula.FreeVariables()) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      return InvalidArgument("free variable '" + v +
                             "' missing from the tuple variable list");
    }
  }
  for (std::size_t i = 0; i < vars.size(); ++i) {
    for (std::size_t j = i + 1; j < vars.size(); ++j) {
      if (vars[i] == vars[j]) {
        return InvalidArgument("duplicate tuple variable '" + vars[i] + "'");
      }
    }
  }

  StoreEvaluator evaluator(context, domain);
  Relation result(static_cast<int>(vars.size()));
  if (vars.empty()) {
    std::map<std::string, DataValue> env;
    if (evaluator.Eval(formula, env)) result.Insert({});
    return result;
  }

  std::map<std::string, DataValue> env;
  std::vector<std::size_t> odometer(vars.size(), 0);
  if (domain.empty()) return result;  // no tuples over an empty domain
  while (true) {
    Tuple tuple;
    tuple.reserve(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i) {
      env[vars[i]] = domain[odometer[i]];
      tuple.push_back(domain[odometer[i]]);
    }
    if (evaluator.Eval(formula, env)) result.Insert(tuple);
    std::size_t slot = vars.size() - 1;
    while (true) {
      if (++odometer[slot] < domain.size()) break;
      odometer[slot] = 0;
      if (slot == 0) return result;
      --slot;
    }
  }
}

}  // namespace treewalk
