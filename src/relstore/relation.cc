#include "src/relstore/relation.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

Relation::Relation(int arity, std::vector<Tuple> tuples)
    : arity_(arity), tuples_(std::move(tuples)) {
  for ([[maybe_unused]] const Tuple& t : tuples_) {
    assert(static_cast<int>(t.size()) == arity_);
  }
  std::sort(tuples_.begin(), tuples_.end());
  tuples_.erase(std::unique(tuples_.begin(), tuples_.end()), tuples_.end());
}

bool Relation::Contains(const Tuple& t) const {
  assert(static_cast<int>(t.size()) == arity_);
  return std::binary_search(tuples_.begin(), tuples_.end(), t);
}

bool Relation::Insert(const Tuple& t) {
  assert(static_cast<int>(t.size()) == arity_);
  auto it = std::lower_bound(tuples_.begin(), tuples_.end(), t);
  if (it != tuples_.end() && *it == t) return false;
  tuples_.insert(it, t);
  return true;
}

void Relation::UnionWith(const Relation& other) {
  assert(arity_ == other.arity_);
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  std::merge(tuples_.begin(), tuples_.end(), other.tuples_.begin(),
             other.tuples_.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  tuples_ = std::move(merged);
}

std::vector<DataValue> Relation::Values() const {
  std::vector<DataValue> out;
  for (const Tuple& t : tuples_) {
    out.insert(out.end(), t.begin(), t.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Relation Relation::Singleton(DataValue v) {
  return Relation(1, {{v}});
}

std::uint64_t Relation::Fingerprint() const {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<std::uint64_t>(arity_));
  mix(tuples_.size());
  for (const Tuple& t : tuples_) {
    for (DataValue v : t) mix(static_cast<std::uint64_t>(v));
  }
  return h;
}

std::string Relation::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < tuples_.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (std::size_t j = 0; j < tuples_[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += tuples_[i][j] == kBottom ? "_|_" : std::to_string(tuples_[i][j]);
    }
    out += ")";
  }
  out += "}";
  return out;
}

}  // namespace treewalk
