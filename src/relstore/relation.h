#ifndef TREEWALK_RELSTORE_RELATION_H_
#define TREEWALK_RELSTORE_RELATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/data_value.h"

namespace treewalk {

/// A tuple of data values.
using Tuple = std::vector<DataValue>;

/// A finite relation over the data domain D: a sorted, duplicate-free set
/// of equal-arity tuples.  This is the content of one register of a
/// tw^r / tw^{r,l} automaton (Section 3).
///
/// Arity-0 relations are booleans: either empty (false) or containing the
/// single empty tuple (true).
class Relation {
 public:
  /// Empty relation of the given arity.
  explicit Relation(int arity = 1) : arity_(arity) {}

  /// Builds from tuples (deduplicated and sorted).  All tuples must have
  /// length `arity`.
  Relation(int arity, std::vector<Tuple> tuples);

  int arity() const { return arity_; }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Membership test; `t` must have the right arity.
  bool Contains(const Tuple& t) const;

  /// Inserts a tuple (keeps sortedness); returns true if new.
  bool Insert(const Tuple& t);

  /// Set union with a relation of the same arity.
  void UnionWith(const Relation& other);

  /// All values occurring in some tuple, sorted, unique.
  std::vector<DataValue> Values() const;

  /// A singleton unary relation {v}; convenience for tw^l registers.
  static Relation Singleton(DataValue v);

  /// Order-sensitive 64-bit content hash (tuples are kept sorted, so
  /// equal relations hash equally).  A fast discriminator for cache
  /// keys; not collision-free.
  std::uint64_t Fingerprint() const;

  /// "{(v1, ..., vk)}".
  std::string ToString() const;

  friend bool operator==(const Relation&, const Relation&) = default;
  /// Lexicographic; usable as a map key.
  friend auto operator<=>(const Relation& a, const Relation& b) = default;

 private:
  int arity_;
  std::vector<Tuple> tuples_;  // sorted, unique
};

}  // namespace treewalk

#endif  // TREEWALK_RELSTORE_RELATION_H_
