#ifndef TREEWALK_RELSTORE_STORE_H_
#define TREEWALK_RELSTORE_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/relstore/relation.h"

namespace treewalk {

/// The relational storage of a tw^r / tw^{r,l} automaton (Section 3): a
/// fixed list of named relations X_1, ..., X_k with declared arities.
/// The schema (names and arities) is immutable after construction;
/// contents are mutable.
class Store {
 public:
  Store() = default;

  /// Declares the relations; names must be unique.
  static Result<Store> Create(
      const std::vector<std::pair<std::string, int>>& schema);

  std::size_t num_relations() const { return relations_.size(); }

  /// Index of a relation name, or -1.
  int IndexOf(const std::string& name) const;
  /// Arity of a relation name, or -1 if unknown (shape matches the
  /// callback ValidateStoreFormula expects).
  int ArityOf(const std::string& name) const;

  const std::string& NameAt(std::size_t index) const {
    return names_[index];
  }
  const Relation& At(std::size_t index) const { return relations_[index]; }
  Relation& At(std::size_t index) { return relations_[index]; }

  const Relation* Find(const std::string& name) const;
  Relation* Find(const std::string& name);

  /// Replaces relation `index`; arity must match the schema.
  Status Replace(std::size_t index, Relation relation);

  /// All values occurring in any relation, sorted, unique (the store part
  /// of the active domain).
  std::vector<DataValue> ActiveDomain() const;

  /// Total number of tuples across relations (a size measure for the
  /// PSPACE accounting of Theorem 7.1(3)).
  std::size_t TotalTuples() const;

  /// 64-bit content hash over all relations (schema excluded — one
  /// store's fingerprints are only compared with its own).  A fast
  /// discriminator for cache keys; not collision-free.
  std::uint64_t Fingerprint() const;

  /// Deterministic comparison for memoization of configurations.
  friend bool operator==(const Store&, const Store&) = default;
  friend auto operator<=>(const Store&, const Store&) = default;

  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<Relation> relations_;
};

}  // namespace treewalk

#endif  // TREEWALK_RELSTORE_STORE_H_
