#include "src/engine/batch_journal.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace treewalk {

namespace {

/// Status codes are journaled by numeric value; the enum is append-only
/// (src/common/status.h), so values are stable across versions.
bool ValidStatusCode(long code) {
  return code >= static_cast<long>(StatusCode::kOk) &&
         code <= static_cast<long>(StatusCode::kDeadlineExceeded);
}

}  // namespace

std::string EncodeBatchRecord(const BatchRecord& record) {
  char buffer[128];
  if (record.type == BatchRecord::Type::kJobStarted) {
    std::snprintf(buffer, sizeof(buffer), "S %016" PRIx64 " %d %d",
                  record.job_id, record.attempt, record.rung);
  } else {
    std::snprintf(buffer, sizeof(buffer),
                  "F %016" PRIx64 " %d %d %d %d %" PRId64, record.job_id,
                  static_cast<int>(record.code), record.accepted ? 1 : 0,
                  record.attempts, record.rung, record.steps);
  }
  return buffer;
}

Result<BatchRecord> DecodeBatchRecord(std::string_view payload) {
  // Reject embedded NULs before handing the text to sscanf.
  if (payload.find('\0') != std::string_view::npos) {
    return InvalidArgument("batch record contains NUL bytes");
  }
  std::string text(payload);
  BatchRecord record;
  char tag = 0;
  if (std::sscanf(text.c_str(), "%c", &tag) != 1) {
    return InvalidArgument("empty batch record");
  }
  if (tag == 'S') {
    std::uint64_t id = 0;
    int attempt = 0, rung = 0;
    char trailing = 0;
    if (std::sscanf(text.c_str(), "S %" SCNx64 " %d %d %c", &id, &attempt,
                    &rung, &trailing) != 3 ||
        attempt < 0 || rung < 0) {
      return InvalidArgument("malformed kJobStarted record: " + text);
    }
    record.type = BatchRecord::Type::kJobStarted;
    record.job_id = id;
    record.attempt = attempt;
    record.rung = rung;
    return record;
  }
  if (tag == 'F') {
    std::uint64_t id = 0;
    long code = 0;
    int accepted = 0, attempts = 0, rung = 0;
    long long steps = 0;
    char trailing = 0;
    if (std::sscanf(text.c_str(), "F %" SCNx64 " %ld %d %d %d %lld %c", &id,
                    &code, &accepted, &attempts, &rung, &steps,
                    &trailing) != 6 ||
        !ValidStatusCode(code) || (accepted != 0 && accepted != 1) ||
        attempts < 0 || rung < 0 || steps < 0) {
      return InvalidArgument("malformed kJobFinished record: " + text);
    }
    record.type = BatchRecord::Type::kJobFinished;
    record.job_id = id;
    record.code = static_cast<StatusCode>(code);
    record.accepted = accepted == 1;
    record.attempts = attempts;
    record.rung = rung;
    record.steps = steps;
    return record;
  }
  return InvalidArgument(std::string("unknown batch record tag '") + tag +
                         "'");
}

Result<ResumePlan> BuildResumePlan(const JournalContents& contents) {
  ResumePlan plan;
  plan.torn = contents.torn;
  std::unordered_set<std::uint64_t> finished_once;
  for (const std::string& payload : contents.records) {
    TREEWALK_ASSIGN_OR_RETURN(BatchRecord record,
                              DecodeBatchRecord(payload));
    ++plan.records;
    if (record.type == BatchRecord::Type::kJobStarted) {
      if (plan.completed.count(record.job_id) == 0) {
        plan.in_flight.insert(record.job_id);
      }
      continue;
    }
    if (record.code == StatusCode::kCancelled) {
      // A drained/cancelled job never ran to a verdict: resume reruns
      // it, and a later terminal finish is expected, not a duplicate.
      plan.in_flight.insert(record.job_id);
      continue;
    }
    if (!finished_once.insert(record.job_id).second) {
      plan.duplicate_finishes.push_back(record.job_id);
    }
    plan.completed.insert(record.job_id);
    plan.in_flight.erase(record.job_id);
  }
  return plan;
}

Result<ResumePlan> LoadResumePlan(const std::string& path) {
  TREEWALK_ASSIGN_OR_RETURN(JournalContents contents, ReadJournal(path));
  return BuildResumePlan(contents);
}

Result<BatchJournal> BatchJournal::Open(const std::string& path,
                                        int sync_every_finishes) {
  TREEWALK_ASSIGN_OR_RETURN(JournalWriter writer, JournalWriter::Open(path));
  BatchJournal journal(std::move(writer));
  journal.sync_every_finishes_ = sync_every_finishes;
  return journal;
}

void BatchJournal::Append(const BatchRecord& record, bool is_finish) {
  std::lock_guard<std::mutex> lock(*mu_);
  if (!first_error_.ok()) return;
  Status status = writer_.Append(EncodeBatchRecord(record));
  if (status.ok() && is_finish && sync_every_finishes_ > 0 &&
      ++finishes_since_sync_ >= sync_every_finishes_) {
    finishes_since_sync_ = 0;
    status = writer_.Sync();
  }
  if (!status.ok()) first_error_ = status;
}

void BatchJournal::RecordStarted(std::uint64_t job_id, int attempt,
                                 int rung) {
  BatchRecord record;
  record.type = BatchRecord::Type::kJobStarted;
  record.job_id = job_id;
  record.attempt = attempt;
  record.rung = rung;
  Append(record, /*is_finish=*/false);
}

void BatchJournal::RecordFinished(std::uint64_t job_id, StatusCode code,
                                  bool accepted, int attempts, int rung,
                                  std::int64_t steps) {
  BatchRecord record;
  record.type = BatchRecord::Type::kJobFinished;
  record.job_id = job_id;
  record.code = code;
  record.accepted = accepted;
  record.attempts = attempts;
  record.rung = rung;
  record.steps = steps;
  Append(record, /*is_finish=*/true);
}

Status BatchJournal::Flush() {
  std::lock_guard<std::mutex> lock(*mu_);
  if (!first_error_.ok()) return first_error_;
  Status status = writer_.Sync();
  if (!status.ok()) first_error_ = status;
  return status;
}

Status BatchJournal::first_error() const {
  std::lock_guard<std::mutex> lock(*mu_);
  return first_error_;
}

}  // namespace treewalk
