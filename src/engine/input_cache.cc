#include "src/engine/input_cache.h"

#include <cstdio>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/common/crc32c.h"

namespace treewalk {

std::string SnapshotCache::EntryPathFor(std::string_view contents) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.twsnap",
                static_cast<unsigned long long>(Fnv1a64(contents)));
  return dir_ + "/" + name;
}

Result<Tree> SnapshotCache::LoadOrParse(
    const std::string& path,
    const std::function<Result<Tree>(std::string_view contents)>& parse,
    ResourceGovernor* governor) const {
  TREEWALK_ASSIGN_OR_RETURN(std::string contents, ReadFileBytes(path));
  const std::string entry = EntryPathFor(contents);
  Result<Tree> snap = LoadTreeSnapshot(entry, governor);
  if (snap.ok()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return snap;
  }
  if (snap.status().code() == StatusCode::kNotFound) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  TREEWALK_ASSIGN_OR_RETURN(Tree tree, parse(contents));
  // Best-effort persist: a full disk or injected fault costs only the
  // next cold start, and WriteTreeSnapshot's tmp+rename discipline
  // means no failure mode leaves a torn entry behind.
  if (WriteTreeSnapshot(tree, entry).ok()) {
    stats_.stores.fetch_add(1, std::memory_order_relaxed);
  }
  return tree;
}

}  // namespace treewalk
