#include "src/engine/input_cache.h"

#include <cstdio>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/common/crc32c.h"
#include "src/common/metrics.h"
#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Resident-cache instrument family (docs/OBSERVABILITY.md).
struct CacheMetrics {
  Counter* evictions;
  Gauge* resident_bytes;
  Gauge* resident_trees;

  static CacheMetrics& Get() {
    static CacheMetrics* metrics = [] {
      auto* m = new CacheMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      m->evictions = r.FindOrCreateCounter(
          "treewalk_input_cache_evictions_total",
          "Resident corpus trees evicted by the byte-capped LRU");
      m->resident_bytes = r.FindOrCreateGauge(
          "treewalk_input_cache_resident_bytes",
          "Approximate bytes of corpus trees held by the resident cache");
      m->resident_trees = r.FindOrCreateGauge(
          "treewalk_input_cache_resident_trees",
          "Corpus trees currently held by the resident cache");
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

std::string SnapshotCache::EntryPathFor(std::string_view contents) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.twsnap",
                static_cast<unsigned long long>(Fnv1a64(contents)));
  return dir_ + "/" + name;
}

Result<Tree> SnapshotCache::LoadOrParse(
    const std::string& path,
    const std::function<Result<Tree>(std::string_view contents)>& parse,
    ResourceGovernor* governor) const {
  TREEWALK_ASSIGN_OR_RETURN(std::string contents, ReadFileBytes(path));
  const std::string entry = EntryPathFor(contents);
  Result<Tree> snap = LoadTreeSnapshot(entry, governor);
  if (snap.ok()) {
    stats_.hits.fetch_add(1, std::memory_order_relaxed);
    return snap;
  }
  if (snap.status().code() == StatusCode::kNotFound) {
    stats_.misses.fetch_add(1, std::memory_order_relaxed);
  } else {
    stats_.fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  TREEWALK_ASSIGN_OR_RETURN(Tree tree, parse(contents));
  // Best-effort persist: a full disk or injected fault costs only the
  // next cold start, and WriteTreeSnapshot's tmp+rename discipline
  // means no failure mode leaves a torn entry behind.
  if (WriteTreeSnapshot(tree, entry).ok()) {
    stats_.stores.fetch_add(1, std::memory_order_relaxed);
  }
  return tree;
}

ResidentTreeCache::ResidentTreeCache(std::int64_t capacity_bytes,
                                     std::uint64_t generation)
    : capacity_bytes_(capacity_bytes),
      generation_(generation),
      accountant_(capacity_bytes) {}

std::int64_t ResidentTreeCache::ApproxTreeBytes(const Tree& tree) {
  const auto nodes = static_cast<std::int64_t>(tree.size());
  // ~64 B of shape per node (the Node record plus vector slack) and one
  // 8-byte DataValue per attribute column entry, over a 1 KiB floor for
  // interner pools and map bookkeeping.  Approximate on purpose — the
  // governor contract is an enforced O(budget) ceiling, not malloc
  // accounting (docs/ROBUSTNESS.md).
  return 1024 +
         nodes * (64 + 8 * static_cast<std::int64_t>(tree.num_attributes()));
}

void ResidentTreeCache::EvictLockedUntilFits(std::int64_t incoming_bytes) {
  if (capacity_bytes_ <= 0) return;
  CacheMetrics& metrics = CacheMetrics::Get();
  while (!lru_.empty() &&
         accountant_.used() + incoming_bytes > capacity_bytes_) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    accountant_.Release(MemoryCategory::kResidentTree,
                        it->second.prepared->approx_bytes);
    // The shared_ptr keeps an in-flight query's tree alive; only the
    // cache's reference dies here.
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    metrics.evictions->Increment();
  }
  metrics.resident_bytes->Set(accountant_.used());
  metrics.resident_trees->Set(static_cast<std::int64_t>(entries_.size()));
}

Result<std::shared_ptr<const ResidentTreeCache::Prepared>>
ResidentTreeCache::GetOrLoad(const std::string& name,
                             const std::function<Result<Tree>()>& load) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.prepared;
  }
  // Load under the lock: GetOrLoad is the (serial) preload path; the
  // concurrent query path is Lookup(), which never loads.
  TREEWALK_ASSIGN_OR_RETURN(Tree source, load());
  if (source.empty()) {
    return InvalidArgument("corpus tree '" + name + "' is empty");
  }
  auto prepared = std::make_shared<Prepared>();
  prepared->name = name;
  prepared->source_nodes = source.size();
  prepared->delimited = std::move(Delimit(source).tree);
  prepared->approx_bytes = ApproxTreeBytes(prepared->delimited);
  EvictLockedUntilFits(prepared->approx_bytes);
  Status charge =
      accountant_.Charge(MemoryCategory::kResidentTree, prepared->approx_bytes);
  if (!charge.ok()) {
    // Even an empty cache cannot admit it: refuse rather than blow the
    // cap (the tree itself dies with `prepared` here).
    return charge;
  }
  lru_.push_front(name);
  entries_[name] = Entry{prepared, lru_.begin()};
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.resident_bytes->Set(accountant_.used());
  metrics.resident_trees->Set(static_cast<std::int64_t>(entries_.size()));
  return std::shared_ptr<const Prepared>(std::move(prepared));
}

std::shared_ptr<const ResidentTreeCache::Prepared> ResidentTreeCache::Lookup(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.prepared;
}

std::int64_t ResidentTreeCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accountant_.used();
}

std::int64_t ResidentTreeCache::resident_trees() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(entries_.size());
}

std::int64_t ResidentTreeCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::int64_t ResidentTreeCache::peak_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return accountant_.peak(MemoryCategory::kResidentTree);
}

}  // namespace treewalk
