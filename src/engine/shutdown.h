#ifndef TREEWALK_ENGINE_SHUTDOWN_H_
#define TREEWALK_ENGINE_SHUTDOWN_H_

namespace treewalk {

/// Cooperative SIGINT/SIGTERM handling for batch front ends
/// (docs/ROBUSTNESS.md, "Graceful shutdown").  Purely atomic-flag
/// based — no self-pipe, no signalfd, nothing allocated in the
/// handler — so it is async-signal-safe by construction:
///
///   first signal    latches `requested()`; the driver polls the flag,
///                   cancels the batch cooperatively, drains the
///                   workers, flushes the journal, and exits with
///                   kExitInterrupted (75, sysexits' EX_TEMPFAIL: the
///                   run is resumable with --resume).
///   second signal   the handler itself calls _exit(128 + signo) —
///                   immediate abort, no draining, no flush beyond what
///                   already reached the kernel (the journal's framing
///                   makes the torn tail recoverable).
class GracefulShutdown {
 public:
  /// Documented exit code of a drained, journal-flushed, resumable run.
  static constexpr int kExitInterrupted = 75;

  /// Installs the SIGINT and SIGTERM handlers.  Idempotent.
  static void Install();

  /// A signal arrived since Install() (or the last ResetForTest()).
  static bool requested();

  /// The first signal's number, or 0.
  static int signal_number();

  /// Clears the latched state so one process can host several tests.
  /// Not for production use: a concurrently arriving signal may still
  /// count against the pre-reset total.
  static void ResetForTest();
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_SHUTDOWN_H_
