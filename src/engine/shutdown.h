#ifndef TREEWALK_ENGINE_SHUTDOWN_H_
#define TREEWALK_ENGINE_SHUTDOWN_H_

namespace treewalk {

/// Cooperative SIGINT/SIGTERM handling for batch front ends and the
/// resident daemon (docs/ROBUSTNESS.md, "Graceful shutdown").  Purely
/// atomic-flag based — no self-pipe, no signalfd, nothing allocated in
/// the handler — so it is async-signal-safe by construction:
///
///   first signal    latches `requested()`; the driver polls the flag,
///                   cancels the batch cooperatively (or drains the
///                   server's in-flight requests), flushes the journal,
///                   and exits with kExitInterrupted (75, sysexits'
///                   EX_TEMPFAIL: a batch run is resumable with
///                   --resume; a drained daemon is restartable).
///   second signal   the handler itself calls _exit(128 + signo) —
///                   immediate abort, no draining, no flush beyond what
///                   already reached the kernel (the journal's framing
///                   makes the torn tail recoverable).
///   SIGHUP          latched in `reload_requests()`; never fatal.  The
///                   resident daemon's driver polls the counter and
///                   performs a live corpus reload for each request:
///                   build a fresh ResidentTreeCache generation from
///                   the (possibly changed) corpus directory off the
///                   signal path, then atomically swap it into the
///                   server while in-flight queries finish on the old
///                   generation (docs/SERVER.md, "Live corpus
///                   reload").  The handler itself only counts — the
///                   signal context does no I/O and kills no in-flight
///                   work.
///
/// Install()/Uninstall() are re-entrant (install-counted): a resident
/// server and a library caller hosted in one process can each install
/// and uninstall independently, and the original handlers are restored
/// only when the last user uninstalls.  One-shot batch drivers may
/// still call Install() alone, exactly as before.
class GracefulShutdown {
 public:
  /// Documented exit code of a drained, journal-flushed, resumable run.
  static constexpr int kExitInterrupted = 75;

  /// Installs the SIGINT, SIGTERM, and SIGHUP handlers (saving the
  /// previously installed actions on the first call) and increments the
  /// install count.  Safe to call repeatedly.
  static void Install();

  /// Decrements the install count; at zero, restores the handlers saved
  /// by the first Install().  Extra calls (below zero) are no-ops, so a
  /// driver pairing every Install() with an Uninstall() is always safe.
  static void Uninstall();

  /// A SIGINT/SIGTERM arrived since Install() (or the last
  /// ResetForTest()).
  static bool requested();

  /// The first signal's number, or 0.
  static int signal_number();

  /// SIGHUPs received since Install() (or the last ResetForTest()).
  /// The handler only counts (async-signal-safe); the driver loop that
  /// polls this is what actually rebuilds and swaps the corpus
  /// generation.  A supervisor's HUP never terminates in-flight work.
  static int reload_requests();

  /// Clears the latched state so one process can host several tests.
  /// Not for production use: a concurrently arriving signal may still
  /// count against the pre-reset total.
  static void ResetForTest();
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_SHUTDOWN_H_
