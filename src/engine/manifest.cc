#include "src/engine/manifest.h"

#include <fstream>
#include <map>
#include <sstream>
#include <string_view>
#include <utility>

namespace treewalk {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void FnvMix(std::uint64_t& h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  // Field separator that no path or file content can forge (paths come
  // from whitespace-split manifest fields, so they contain no '\n').
  h ^= 0xff;
  h *= kFnvPrime;
}

bool ReadFileDefault(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

std::uint64_t ManifestJobId(const std::string& program_path,
                            const std::string& tree_path,
                            const std::string* program_content,
                            const std::string* tree_content) {
  std::uint64_t h = kFnvOffset;
  FnvMix(h, program_path);
  FnvMix(h, tree_path);
  FnvMix(h, program_content != nullptr ? *program_content : "<unreadable>");
  FnvMix(h, tree_content != nullptr ? *tree_content : "<unreadable>");
  // 0 is the "unjournaled job" sentinel in BatchJob; dodge it.
  return h == 0 ? 1 : h;
}

Result<Manifest> ParseManifest(const std::string& text,
                               const ManifestFileReader& reader) {
  Manifest manifest;
  // Contents are read once per distinct path; a second<->first map
  // catches duplicate (program, tree) pairs with both line numbers.
  std::map<std::string, std::pair<bool, std::string>> contents;
  auto content_of = [&](const std::string& path) -> const std::string* {
    auto it = contents.find(path);
    if (it == contents.end()) {
      std::string data;
      bool ok = reader(path, data);
      it = contents.emplace(path, std::make_pair(ok, std::move(data))).first;
    }
    return it->second.first ? &it->second.second : nullptr;
  };
  std::map<std::pair<std::string, std::string>, int> first_line;

  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    std::istringstream fields(line);
    std::string program_path, tree_path, extra;
    if (!(fields >> program_path) || program_path[0] == '#') continue;
    if (!(fields >> tree_path) || fields >> extra) {
      return InvalidArgument("manifest line " + std::to_string(line_number) +
                             ": expected '<program.twp> <tree>'");
    }
    auto [it, inserted] = first_line.emplace(
        std::make_pair(program_path, tree_path), line_number);
    if (!inserted) {
      return InvalidArgument(
          "manifest lines " + std::to_string(it->second) + " and " +
          std::to_string(line_number) + " both name '" + program_path + " " +
          tree_path + "' — duplicate job ids cannot key a journal");
    }
    ManifestEntry entry;
    entry.program_path = program_path;
    entry.tree_path = tree_path;
    entry.line_number = line_number;
    entry.job_id = ManifestJobId(program_path, tree_path,
                                 content_of(program_path),
                                 content_of(tree_path));
    manifest.entries.push_back(std::move(entry));
  }
  return manifest;
}

Result<Manifest> LoadManifestFile(const std::string& path) {
  std::string text;
  if (!ReadFileDefault(path, text)) {
    return NotFound("cannot read manifest '" + path + "'");
  }
  return ParseManifest(text, ReadFileDefault);
}

}  // namespace treewalk
