#ifndef TREEWALK_ENGINE_MANIFEST_H_
#define TREEWALK_ENGINE_MANIFEST_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/result.h"

namespace treewalk {

/// One `<program.twp> <tree>` line of a batch manifest, plus the stable
/// job id journal entries key on.
struct ManifestEntry {
  std::string program_path;
  std::string tree_path;
  /// 1-based manifest line.
  int line_number = 0;
  /// Content-derived job id: FNV-1a over both paths and both files'
  /// bytes, never 0.  Stable across runs while the inputs are
  /// unchanged, so a resumed batch skips exactly the work that was
  /// journaled as complete; editing a program or tree changes the id
  /// and the job reruns (stale journal entries are simply never
  /// matched).  An unreadable file hashes as a marker, keeping the id
  /// stable so the load failure itself is reproducible under resume.
  std::uint64_t job_id = 0;
};

struct Manifest {
  std::vector<ManifestEntry> entries;
};

/// Reads `path` into `out`; false when unreadable.  Injected into
/// ParseManifest so tests can fabricate file contents.
using ManifestFileReader =
    std::function<bool(const std::string& path, std::string& out)>;

/// The job id ParseManifest assigns (exposed for journal tooling).
std::uint64_t ManifestJobId(const std::string& program_path,
                            const std::string& tree_path,
                            const std::string* program_content,
                            const std::string* tree_content);

/// Parses manifest text: one `<program> <tree>` pair per line, blank
/// lines and `#` comments skipped.  Errors (all kInvalidArgument, with
/// line numbers):
///   - a line with one or three-plus fields;
///   - two lines naming the same (program, tree) pair — their job ids
///     would collide, and journal keys must be unique; the message
///     names both line numbers.
/// File contents are read once per distinct path, only to derive ids —
/// parse failures inside the files are the caller's concern.
Result<Manifest> ParseManifest(const std::string& text,
                               const ManifestFileReader& reader);

/// ParseManifest over the file at `path` with the real filesystem
/// reader (kNotFound when the manifest itself is unreadable).
Result<Manifest> LoadManifestFile(const std::string& path);

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_MANIFEST_H_
