#ifndef TREEWALK_ENGINE_INPUT_CACHE_H_
#define TREEWALK_ENGINE_INPUT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/tree/snapshot.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Content-addressed snapshot cache for batch tree inputs: the cold-start
/// eliminator behind `twq --snapshot-cache DIR`.  Keyed by the FNV-1a
/// hash of the input file's *bytes* — edit the file and the key moves,
/// so stale entries are structurally impossible to serve; they just
/// strand until the directory is cleaned.
///
///   hit   `<dir>/<hex>.twsnap` mmaps in with zero parsing and zero
///         re-numbering (src/tree/snapshot.h);
///   miss  the caller-supplied parser runs and the result is persisted
///         best-effort for next time;
///   fallback  a corrupt/truncated/injected-fault entry is counted and
///         re-parsed — degraded startup, never a wrong tree.
///
/// Thread-safe: entries are immutable, written atomically, and the
/// counters are atomics; concurrent workers may share one instance.
class SnapshotCache {
 public:
  struct Stats {
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> stores{0};
    /// Entries present but rejected by validation (plus injected
    /// faults); each one cost a parse that a healthy cache would have
    /// saved.
    std::atomic<std::int64_t> fallbacks{0};
  };

  explicit SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  const Stats& stats() const { return stats_; }

  /// Cache path for input bytes (exposed for tests and `twq snapshot`).
  std::string EntryPathFor(std::string_view contents) const;

  /// Reads `path`, serves its tree from the cache or by running
  /// `parse` on the file's contents (persisting the result).  `parse`
  /// failures propagate verbatim; cache failures never do.
  Result<Tree> LoadOrParse(
      const std::string& path,
      const std::function<Result<Tree>(std::string_view contents)>& parse,
      ResourceGovernor* governor = nullptr) const;

 private:
  std::string dir_;
  mutable Stats stats_;
};

/// Byte-capped LRU of daemon-resident, already-delimited corpus trees —
/// what makes `twq serve` safe to point at a corpus bigger than RAM.
/// The cap is enforced through a MemoryAccountant (category
/// kResidentTree), the same machinery that bounds per-run structures,
/// so a resident corpus shows up in the standard breakdown and high
/// water (treewalk_governor_memory_peak_bytes{category="resident-tree"})
/// instead of being invisibly "free".
///
/// Entries are handed out as shared_ptr<const Prepared>: eviction drops
/// the cache's reference, never the tree under an in-flight query.  The
/// accountant's books therefore track *cache-held* bytes; pinned bytes
/// of evicted-but-running entries drain as those queries finish.
///
/// A single tree larger than the whole cap is refused with
/// kResourceExhausted (loading it could never be admitted), and every
/// eviction increments treewalk_input_cache_evictions_total.
///
/// Live reload (docs/SERVER.md): the daemon treats one cache instance
/// as one immutable corpus *generation*.  A SIGHUP builds a fresh
/// generation off-thread and swaps it in under the server's shared_ptr;
/// queries pin the generation they started on, so the old instance —
/// and its accountant's books — dies exactly when its last pin drops.
/// `generation()` labels which build a cache came from.
///
/// Thread-safe; one instance serves all connection threads.
class ResidentTreeCache {
 public:
  /// One resident corpus entry, immutable after load.
  struct Prepared {
    std::string name;
    Tree delimited;             ///< Delimit() image, ready for RunDelimited
    std::size_t source_nodes;   ///< node count before delimiting
    std::int64_t approx_bytes;  ///< accounting charge for this entry
  };

  /// `capacity_bytes <= 0` means unlimited (tracked, never evicted).
  /// `generation` labels a reload cycle (0 = the startup corpus).
  explicit ResidentTreeCache(std::int64_t capacity_bytes,
                             std::uint64_t generation = 0);

  /// The entry for `name`, loading (and delimiting) it via `load` on a
  /// miss.  Eviction of least-recently-used entries makes room; a load
  /// too large for the cap fails with kResourceExhausted, and `load`
  /// failures propagate verbatim (nothing is cached).
  Result<std::shared_ptr<const Prepared>> GetOrLoad(
      const std::string& name, const std::function<Result<Tree>()>& load);

  /// The entry for `name`, or null — never loads (the server's query
  /// path over a fixed preloaded corpus).
  std::shared_ptr<const Prepared> Lookup(const std::string& name);

  /// Approximate accounting bytes of `tree` (nodes + attribute columns
  /// + interner pools).  Exposed so tests can predict eviction points.
  static std::int64_t ApproxTreeBytes(const Tree& tree);

  std::int64_t capacity_bytes() const { return capacity_bytes_; }
  std::uint64_t generation() const { return generation_; }
  std::int64_t resident_bytes() const;
  std::int64_t resident_trees() const;
  std::int64_t evictions() const;
  /// High-water cache-held bytes since construction.
  std::int64_t peak_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const Prepared> prepared;
    std::list<std::string>::iterator lru_it;  // position in lru_
  };

  void EvictLockedUntilFits(std::int64_t incoming_bytes);

  const std::int64_t capacity_bytes_;
  const std::uint64_t generation_;
  mutable std::mutex mu_;
  MemoryAccountant accountant_;        // guarded by mu_
  std::list<std::string> lru_;         // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  std::int64_t evictions_ = 0;
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_INPUT_CACHE_H_
