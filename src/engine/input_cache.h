#ifndef TREEWALK_ENGINE_INPUT_CACHE_H_
#define TREEWALK_ENGINE_INPUT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/tree/snapshot.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Content-addressed snapshot cache for batch tree inputs: the cold-start
/// eliminator behind `twq --snapshot-cache DIR`.  Keyed by the FNV-1a
/// hash of the input file's *bytes* — edit the file and the key moves,
/// so stale entries are structurally impossible to serve; they just
/// strand until the directory is cleaned.
///
///   hit   `<dir>/<hex>.twsnap` mmaps in with zero parsing and zero
///         re-numbering (src/tree/snapshot.h);
///   miss  the caller-supplied parser runs and the result is persisted
///         best-effort for next time;
///   fallback  a corrupt/truncated/injected-fault entry is counted and
///         re-parsed — degraded startup, never a wrong tree.
///
/// Thread-safe: entries are immutable, written atomically, and the
/// counters are atomics; concurrent workers may share one instance.
class SnapshotCache {
 public:
  struct Stats {
    std::atomic<std::int64_t> hits{0};
    std::atomic<std::int64_t> misses{0};
    std::atomic<std::int64_t> stores{0};
    /// Entries present but rejected by validation (plus injected
    /// faults); each one cost a parse that a healthy cache would have
    /// saved.
    std::atomic<std::int64_t> fallbacks{0};
  };

  explicit SnapshotCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }
  const Stats& stats() const { return stats_; }

  /// Cache path for input bytes (exposed for tests and `twq snapshot`).
  std::string EntryPathFor(std::string_view contents) const;

  /// Reads `path`, serves its tree from the cache or by running
  /// `parse` on the file's contents (persisting the result).  `parse`
  /// failures propagate verbatim; cache failures never do.
  Result<Tree> LoadOrParse(
      const std::string& path,
      const std::function<Result<Tree>(std::string_view contents)>& parse,
      ResourceGovernor* governor = nullptr) const;

 private:
  std::string dir_;
  mutable Stats stats_;
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_INPUT_CACHE_H_
