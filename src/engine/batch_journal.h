#ifndef TREEWALK_ENGINE_BATCH_JOURNAL_H_
#define TREEWALK_ENGINE_BATCH_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/common/journal.h"
#include "src/common/result.h"

namespace treewalk {

/// One journal record of a batch run (docs/ENGINE.md, "Crash-consistent
/// batches").  The engine streams a kJobStarted record before every
/// attempt and exactly one kJobFinished record per job with its final
/// status, so a journal replayer can tell completed work (finished,
/// not cancelled) from in-flight work (started or cancelled, never
/// finished terminally).
struct BatchRecord {
  enum class Type { kJobStarted, kJobFinished };

  Type type = Type::kJobStarted;
  /// Stable content-derived job key (src/engine/manifest.h); never 0
  /// for journaled jobs.
  std::uint64_t job_id = 0;
  /// kJobStarted: 0-based attempt ordinal and its degradation rung.
  int attempt = 0;
  int rung = 0;
  /// kJobFinished: final status code, verdict, total attempts, rung of
  /// the last attempt, and the successful run's step count.
  StatusCode code = StatusCode::kOk;
  bool accepted = false;
  int attempts = 0;
  std::int64_t steps = 0;

  friend bool operator==(const BatchRecord&, const BatchRecord&) = default;
};

/// Space-separated text payload, versioned by the journal header:
///   "S <job-id-hex16> <attempt> <rung>"
///   "F <job-id-hex16> <code> <accepted> <attempts> <rung> <steps>"
std::string EncodeBatchRecord(const BatchRecord& record);
Result<BatchRecord> DecodeBatchRecord(std::string_view payload);

/// What a journal says about a manifest's jobs.  `completed` jobs
/// finished with a terminal status (OK or a deterministic failure) and
/// are skipped on resume; `in_flight` jobs were started but never
/// finished — or finished with kCancelled — and are re-enqueued.
struct ResumePlan {
  std::unordered_set<std::uint64_t> completed;
  std::unordered_set<std::uint64_t> in_flight;
  /// Job ids with more than one *terminal* (non-cancelled) kJobFinished
  /// record — an exactly-once violation a healthy engine never produces
  /// (a cancelled finish followed by a terminal one on resume is the
  /// normal drain-then-resume pattern, not a duplicate).
  std::vector<std::uint64_t> duplicate_finishes;
  std::int64_t records = 0;
  /// The journal ended in a torn tail (normal after a crash; the tail
  /// is truncated when the journal is reopened for appending).
  bool torn = false;
};

/// Builds a resume plan from parsed journal contents.  A record whose
/// CRC frame is intact but whose payload does not decode is
/// kInvalidArgument — that indicates version skew or foreign data, not
/// a crash.
Result<ResumePlan> BuildResumePlan(const JournalContents& contents);

/// Reads the journal at `path` and builds its resume plan (kNotFound
/// when the journal does not exist).
Result<ResumePlan> LoadResumePlan(const std::string& path);

/// Thread-safe batch-record sink over a JournalWriter, shared by every
/// engine worker of a batch.  Journal I/O failures never fail jobs:
/// the first error is latched (`first_error()`) for the caller to
/// surface after the batch, and later writes become no-ops — results
/// are still returned, the journal is just incomplete (and says so on
/// the next resume, which simply reruns the unrecorded jobs).
class BatchJournal {
 public:
  /// Opens (creating or repairing) the journal at `path` for appending.
  /// `sync_every_finishes` > 0 fsyncs after every n-th kJobFinished
  /// record — a power-loss durability knob; process crashes never lose
  /// appended records regardless (they live in the page cache).
  static Result<BatchJournal> Open(const std::string& path,
                                   int sync_every_finishes = 0);

  BatchJournal(BatchJournal&&) = default;
  BatchJournal& operator=(BatchJournal&&) = default;

  void RecordStarted(std::uint64_t job_id, int attempt, int rung);
  void RecordFinished(std::uint64_t job_id, StatusCode code, bool accepted,
                      int attempts, int rung, std::int64_t steps);

  /// fsyncs the journal; call once after the batch (and before exiting
  /// on graceful shutdown).
  Status Flush();

  /// First append/fsync error, or OK.  Latched; inspect after RunBatch.
  Status first_error() const;

  const std::string& path() const { return writer_.path(); }

 private:
  explicit BatchJournal(JournalWriter writer) : writer_(std::move(writer)) {}

  void Append(const BatchRecord& record, bool is_finish);

  // unique_ptr keeps the class movable while workers hold a stable
  // pointer to the mutex.
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  JournalWriter writer_;
  Status first_error_;
  int sync_every_finishes_ = 0;
  int finishes_since_sync_ = 0;
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_BATCH_JOURNAL_H_
