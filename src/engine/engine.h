#ifndef TREEWALK_ENGINE_ENGINE_H_
#define TREEWALK_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/program.h"
#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// One (program, document) evaluation request.  The engine delimits the
/// tree itself (once per distinct Tree pointer — jobs may share inputs).
/// `program` and `tree` are borrowed: they must outlive the RunBatch()
/// call and are accessed read-only (see docs/ENGINE.md for the full
/// thread-safety contract).  `options.cancel` is overwritten with the
/// engine's batch-wide flag.
struct BatchJob {
  const Program* program = nullptr;
  const Tree* tree = nullptr;
  RunOptions options;
};

/// Outcome of one job.  `status` is non-OK when the run aborted (budget
/// exhausted, cancelled, precondition violated); `run` is meaningful
/// only when `status.ok()`.
struct JobResult {
  Status status;
  RunResult run;
};

/// Aggregate instrumentation over a batch, summed over jobs in job
/// order (deterministic regardless of thread count).  Counter
/// definitions are in docs/ENGINE.md.
struct EngineStats {
  std::int64_t jobs = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  /// Jobs with a non-OK status (includes cancelled).
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t steps = 0;
  std::int64_t subcomputations = 0;
  std::int64_t atp_calls = 0;
  std::int64_t selector_cache_hits = 0;
  std::int64_t selector_cache_misses = 0;
  std::int64_t compiled_selector_evals = 0;
  std::int64_t store_updates = 0;

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

struct BatchResult {
  /// Index-aligned with the submitted jobs.
  std::vector<JobResult> results;
  EngineStats stats;
};

struct EngineOptions {
  /// Worker threads; 1 runs the batch inline on the calling thread.
  /// Results are identical for every value (see docs/ENGINE.md).
  int num_threads = 1;
};

/// Fixed-size thread-pool batch evaluator: N workers drain a shared work
/// queue of jobs, each running the deterministic interpreter on its own
/// per-job state.  Guarantees:
///
///   - Deterministic results: results[i] depends only on jobs[i], so the
///     result vector (verdicts, reject reasons, step counts, traces) is
///     byte-identical to serial execution regardless of num_threads.
///   - Shared inputs stay read-only: one Program or Tree may back many
///     jobs.  String constants of every job's formulas are pre-interned
///     in job order before workers start, so value handles do not depend
///     on scheduling (the one mutable corner of a Tree; docs/ENGINE.md).
///   - Cooperative cancellation: RequestCancel() makes running jobs
///     abort with kCancelled at the next transition and unstarted jobs
///     fail immediately; RunBatch still returns a fully populated,
///     index-aligned result vector.
class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  /// Runs all jobs and blocks until every one finished (or was
  /// cancelled).  Errors on malformed jobs (null program/tree, empty
  /// tree) are reported per-job in JobResult::status, not as a batch
  /// error; the batch itself only fails on invalid EngineOptions.
  /// Clears any cancellation left over from a previous batch.
  Result<BatchResult> RunBatch(const std::vector<BatchJob>& jobs);

  /// Requests cooperative cancellation of the in-flight batch.  Safe to
  /// call from any thread, including concurrently with RunBatch.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  EngineOptions options_;
  std::atomic<bool> cancel_{false};
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_ENGINE_H_
