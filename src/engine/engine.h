#ifndef TREEWALK_ENGINE_ENGINE_H_
#define TREEWALK_ENGINE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/automata/interpreter.h"
#include "src/automata/program.h"
#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

class BatchJournal;

/// Retry behavior for one job.  A failed attempt whose status is
/// retryable (kDeadlineExceeded, kResourceExhausted, kInternal) is rerun
/// up to `max_attempts` times total, sleeping a randomized ("full
/// jitter") backoff between attempts: retry k draws uniformly from
/// [0, min(initial_backoff_ms · 2^k, max_backoff_ms)], using a
/// deterministic per-job RNG seeded from EngineOptions::backoff_seed —
/// so simultaneous retry storms across jobs desynchronize instead of
/// thundering in lockstep.  The sleep polls the batch's cancel flag
/// every few milliseconds; cancellation during backoff does not hang
/// the worker.  With `degrade` set, each retry also steps
/// down a degradation ladder that trades evaluation features for
/// footprint, in order:
///
///   rung 0  as submitted
///   rung 1  compile_selectors off (no axis index / bitset matrices)
///   rung 2  + cache_selectors off (no per-run selector cache)
///   rung 3  + detect_cycles off, max_steps capped at degraded_max_steps
///
/// A success on rung > 0 is still an exact result — the toggled options
/// are all semantically invisible except the rung-3 cycle policy, where
/// a looping run reports kResourceExhausted (step cap) instead of
/// rejecting with kCycle.  The rung of every attempt is recorded in
/// JobResult::attempts.
struct RetryPolicy {
  /// Total attempts (1 = no retries).
  int max_attempts = 1;
  /// Upper bound of the first retry's jitter window; doubles each
  /// further retry up to `max_backoff_ms`.  0 disables backoff sleeps.
  std::int64_t initial_backoff_ms = 1;
  /// Cap on the exponential window — without one, a long retry ladder
  /// sleeps unboundedly (2^k growth) instead of retrying.
  std::int64_t max_backoff_ms = 1000;
  /// Walk the degradation ladder on retries (off = retry as submitted).
  bool degrade = true;
  /// Step cap applied at rung 3, replacing cycle detection as the
  /// termination guarantee.
  std::int64_t degraded_max_steps = 1 << 20;
};

/// One (program, document) evaluation request.  The engine delimits the
/// tree itself (once per distinct Tree pointer — jobs may share inputs).
/// `program` and `tree` are borrowed: they must outlive the RunBatch()
/// call and are accessed read-only (see docs/ENGINE.md for the full
/// thread-safety contract).  `options.cancel` and `options.governor`
/// are overwritten by the engine (the batch-wide flag and a per-attempt
/// governor built from `deadline_ms` / `memory_budget_bytes`).
struct BatchJob {
  const Program* program = nullptr;
  const Tree* tree = nullptr;
  RunOptions options;
  /// Per-attempt wall-clock deadline in milliseconds; 0 = none.  A trip
  /// fails the attempt with kDeadlineExceeded.
  std::int64_t deadline_ms = 0;
  /// Memory budget in bytes for the run's tracked structures; 0 =
  /// unlimited.  A trip fails the attempt with kResourceExhausted.
  std::int64_t memory_budget_bytes = 0;
  RetryPolicy retry;
  /// Stable key for write-ahead journaling (src/engine/manifest.h
  /// derives it from the job's file contents).  0 = unjournaled: the
  /// job is run but never recorded, even when RunBatch has a journal.
  std::uint64_t job_id = 0;
};

/// Outcome of one job.  `status` is non-OK when the run aborted (budget
/// exhausted, cancelled, precondition violated); `run` is meaningful
/// only when `status.ok()`.
struct JobResult {
  /// One entry per attempt, in order; the last entry's status equals
  /// `status`.  `rung` is the degradation-ladder rung the attempt ran
  /// at; `memory_tripped` records whether its memory budget rejected a
  /// charge.
  struct Attempt {
    int rung = 0;
    Status status;
    bool memory_tripped = false;
  };

  Status status;
  RunResult run;
  std::vector<Attempt> attempts;
};

/// Aggregate instrumentation over a batch, summed over jobs in job
/// order (deterministic regardless of thread count).  Counter
/// definitions are in docs/ENGINE.md.
struct EngineStats {
  std::int64_t jobs = 0;
  std::int64_t accepted = 0;
  std::int64_t rejected = 0;
  /// Jobs with a non-OK status (includes cancelled).
  std::int64_t failed = 0;
  std::int64_t cancelled = 0;
  std::int64_t steps = 0;
  std::int64_t subcomputations = 0;
  std::int64_t atp_calls = 0;
  std::int64_t selector_cache_hits = 0;
  std::int64_t selector_cache_misses = 0;
  std::int64_t compiled_selector_evals = 0;
  /// compiled_selector_evals split by matrix representation
  /// (RunOptions::axis_repr).
  std::int64_t interval_selector_evals = 0;
  std::int64_t dense_selector_evals = 0;
  /// Cost-based planner strategy picks under PlanMode::kAuto (one per
  /// distinct selector per run; all zero under kFixed).
  std::int64_t planner_picks_reference = 0;
  std::int64_t planner_picks_dense = 0;
  std::int64_t planner_picks_interval = 0;
  std::int64_t store_updates = 0;
  /// Attempts that failed with kDeadlineExceeded.
  std::int64_t deadline_hits = 0;
  /// Attempts whose memory budget rejected a charge.
  std::int64_t memory_trips = 0;
  /// Re-run attempts beyond each job's first (sum over jobs).
  std::int64_t retries = 0;
  /// Jobs that ultimately succeeded on a degradation rung > 0.
  std::int64_t degraded_successes = 0;

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

struct BatchResult {
  /// Index-aligned with the submitted jobs.
  std::vector<JobResult> results;
  EngineStats stats;
  /// Process-global registry snapshot taken as the batch returns
  /// (docs/OBSERVABILITY.md).  The engine-family counters are
  /// incremented by the exact rules that build `stats`, so on a
  /// fresh registry the two reconcile exactly; unlike `stats`, the
  /// snapshot also counts the work of *failed* attempts and carries
  /// latency histograms.  Empty when built with -DTREEWALK_METRICS=OFF.
  MetricsSnapshot metrics;
};

struct EngineOptions {
  /// Worker threads; 1 runs the batch inline on the calling thread.
  /// Results are identical for every value (see docs/ENGINE.md).
  int num_threads = 1;
  /// Seeds the per-job backoff-jitter RNG (see RetryPolicy).  Only
  /// sleep durations depend on it — results never do.
  std::uint64_t backoff_seed = 0;
};

/// Fixed-size thread-pool batch evaluator: N workers drain a shared work
/// queue of jobs, each running the deterministic interpreter on its own
/// per-job state.  Guarantees:
///
///   - Deterministic results: results[i] depends only on jobs[i], so the
///     result vector (verdicts, reject reasons, step counts, traces) is
///     byte-identical to serial execution regardless of num_threads.
///   - Shared inputs stay read-only: one Program or Tree may back many
///     jobs.  String constants of every job's formulas are pre-interned
///     in job order before workers start, so value handles do not depend
///     on scheduling (the one mutable corner of a Tree; docs/ENGINE.md).
///   - Cooperative cancellation: RequestCancel() makes running jobs
///     abort with kCancelled at the next transition and unstarted jobs
///     fail immediately; RunBatch still returns a fully populated,
///     index-aligned result vector.
/// Runs one job's full retry ladder — degradation rungs, jittered
/// backoff, per-attempt governor, the engine metric family — against an
/// already-delimited tree, on the calling thread.  This is the resident
/// daemon's execution path (src/server): the tree was delimited once at
/// corpus load, so per-request cost is the run itself, and many requests
/// may execute concurrently against one tree (interning is the only
/// mutation and is internally synchronized).  `job.tree` is ignored;
/// `delimited_tree` must be the Delimit() image.  `cancel` is polled
/// cooperatively (the server's drain flag).  Shares its attempt executor
/// with BatchEngine::RunBatch, so semantics cannot drift between the
/// two front ends.
JobResult RunResidentJob(const BatchJob& job, const Tree& delimited_tree,
                         const std::atomic<bool>& cancel,
                         std::uint64_t backoff_seed = 0);

class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  /// Runs all jobs and blocks until every one finished (or was
  /// cancelled).  Errors on malformed jobs (null program/tree, empty
  /// tree) are reported per-job in JobResult::status, not as a batch
  /// error; the batch itself only fails on invalid EngineOptions.
  /// Clears any cancellation left over from a previous batch.
  ///
  /// With a non-null `journal`, every job whose `job_id` is non-zero
  /// streams a kJobStarted record per attempt and exactly one terminal
  /// kJobFinished record into it (src/engine/batch_journal.h) — except
  /// jobs cancelled before their first attempt, which stay unrecorded
  /// so a resume reruns them.  Journal I/O failures never fail jobs;
  /// check journal->first_error() after the batch.
  Result<BatchResult> RunBatch(const std::vector<BatchJob>& jobs,
                               BatchJournal* journal = nullptr);

  /// Requests cooperative cancellation of the in-flight batch.  Safe to
  /// call from any thread, including concurrently with RunBatch.
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }

  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  EngineOptions options_;
  std::atomic<bool> cancel_{false};
};

}  // namespace treewalk

#endif  // TREEWALK_ENGINE_ENGINE_H_
