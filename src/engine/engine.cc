#include "src/engine/engine.h"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <thread>
#include <utility>

#include "src/common/failpoint.h"
#include "src/common/governor.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/engine/batch_journal.h"
#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Engine instrument family (docs/OBSERVABILITY.md).  The job/attempt
/// counters are incremented in real time on the worker threads by the
/// same predicates that later build EngineStats in job order, so a
/// snapshot over a fresh registry reconciles exactly with the batch's
/// EngineStats (asserted in tests/observability_test.cc).
struct EngineMetrics {
  Counter* jobs_accepted;
  Counter* jobs_rejected;
  Counter* jobs_failed;
  Counter* jobs_cancelled;
  Counter* attempts;
  Counter* retries;
  Counter* deadline_hits;
  Counter* memory_trips;
  Counter* degraded_successes;
  Counter* governor_polls;
  Counter* governor_clock_reads;
  Gauge* jobs_running;
  Gauge* workers;
  Gauge* memory_peak[kNumMemoryCategories];
  Histogram* job_latency_ms;
  Histogram* queue_wait_ms;
  Histogram* backoff_ms;

  static EngineMetrics& Get() {
    static EngineMetrics* metrics = [] {
      auto* m = new EngineMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      const char* jobs_help = "Batch jobs finished, by outcome (failed "
                              "includes cancelled, as in EngineStats)";
      m->jobs_accepted = r.FindOrCreateCounter(
          "treewalk_engine_jobs_total", jobs_help, {{"status", "accepted"}});
      m->jobs_rejected = r.FindOrCreateCounter(
          "treewalk_engine_jobs_total", jobs_help, {{"status", "rejected"}});
      m->jobs_failed = r.FindOrCreateCounter(
          "treewalk_engine_jobs_total", jobs_help, {{"status", "failed"}});
      m->jobs_cancelled = r.FindOrCreateCounter(
          "treewalk_engine_jobs_total", jobs_help, {{"status", "cancelled"}});
      m->attempts = r.FindOrCreateCounter("treewalk_engine_attempts_total",
                                          "Job attempts started");
      m->retries = r.FindOrCreateCounter(
          "treewalk_engine_retries_total",
          "Attempts beyond each job's first (RetryPolicy re-runs)");
      m->deadline_hits = r.FindOrCreateCounter(
          "treewalk_engine_deadline_hits_total",
          "Attempts that failed with kDeadlineExceeded");
      m->memory_trips = r.FindOrCreateCounter(
          "treewalk_engine_memory_trips_total",
          "Attempts whose memory budget rejected a charge");
      m->degraded_successes = r.FindOrCreateCounter(
          "treewalk_engine_degraded_successes_total",
          "Jobs that succeeded on a degradation rung > 0");
      m->governor_polls = r.FindOrCreateCounter(
          "treewalk_governor_deadline_polls_total",
          "Strided deadline polls at transition boundaries");
      m->governor_clock_reads = r.FindOrCreateCounter(
          "treewalk_governor_deadline_clock_reads_total",
          "Deadline polls that actually read the steady clock");
      m->jobs_running = r.FindOrCreateGauge(
          "treewalk_engine_jobs_running",
          "Jobs currently executing on a worker (worker utilization)");
      m->workers = r.FindOrCreateGauge(
          "treewalk_engine_workers",
          "Worker threads of the most recent/current batch");
      for (int c = 0; c < kNumMemoryCategories; ++c) {
        m->memory_peak[c] = r.FindOrCreateGauge(
            "treewalk_governor_memory_peak_bytes",
            "High-water governor-tracked bytes per category (max over "
            "attempts)",
            {{"category", MemoryCategoryName(static_cast<MemoryCategory>(c))}});
      }
      m->job_latency_ms = r.FindOrCreateHistogram(
          "treewalk_engine_job_latency_ms",
          "Per-job wall time on a worker, retries and backoff included",
          LatencyBucketsMs());
      m->queue_wait_ms = r.FindOrCreateHistogram(
          "treewalk_engine_queue_wait_ms",
          "Time from batch start to a job's first attempt",
          LatencyBucketsMs());
      m->backoff_ms = r.FindOrCreateHistogram(
          "treewalk_engine_backoff_ms",
          "Retry backoff sleeps actually taken", LatencyBucketsMs());
      return m;
    }();
    return *metrics;
  }
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// splitmix64, the backoff-jitter generator: deterministic across
/// standard libraries (results never depend on it, only sleep lengths).
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Full-jitter backoff for retry `retry_no` (0-based): uniform in
/// [0, min(initial << retry_no, max)].
std::int64_t JitteredBackoffMs(const RetryPolicy& retry, int retry_no,
                               std::uint64_t& rng_state) {
  std::int64_t initial = std::max<std::int64_t>(0, retry.initial_backoff_ms);
  std::int64_t cap = std::max<std::int64_t>(0, retry.max_backoff_ms);
  if (initial == 0 || cap == 0) return 0;
  int shift = std::min(retry_no, 62);
  std::int64_t window = initial > (std::int64_t{1} << (62 - shift))
                            ? cap
                            : std::min(initial << shift, cap);
  rng_state = Mix64(rng_state);
  return static_cast<std::int64_t>(rng_state %
                                   static_cast<std::uint64_t>(window + 1));
}

/// Sleeps up to `ms`, polling `cancel` every few milliseconds so
/// Ctrl-C / batch cancellation during backoff releases the worker
/// promptly instead of hanging it for the whole window.
void SleepUnlessCancelled(std::int64_t ms,
                          const std::atomic<bool>& cancel) {
  using Clock = std::chrono::steady_clock;
  constexpr std::chrono::milliseconds kPollInterval(5);
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(ms);
  while (!cancel.load(std::memory_order_relaxed)) {
    Clock::time_point now = Clock::now();
    if (now >= deadline) return;
    std::this_thread::sleep_for(std::min<Clock::duration>(
        kPollInterval, deadline - now));
  }
}

/// Collects the string constants of a formula in syntax order.
void CollectStrings(const Formula& f, std::vector<std::string>& out) {
  if (!f.valid()) return;
  const FormulaNode& n = f.node();
  for (const Term& t : n.terms) {
    if (t.kind == Term::Kind::kStrConst) out.push_back(t.text);
  }
  for (const Formula& c : n.children) CollectStrings(c, out);
}

/// Interns every string constant of `program`'s formulas into `tree`'s
/// value interner.  Evaluation would intern them lazily; doing it here,
/// serially and in job order, pins the handle assignment before workers
/// race, which keeps results independent of scheduling.
void PreInternConstants(const Program& program, const Tree& tree) {
  std::vector<std::string> strings;
  for (const Rule& rule : program.rules()) {
    CollectStrings(rule.guard, strings);
    CollectStrings(rule.action.update, strings);
    CollectStrings(rule.action.selector, strings);
  }
  for (const std::string& s : strings) tree.values().ValueFor(s);
}

Status ValidateJob(const BatchJob& job) {
  if (job.program == nullptr) return InvalidArgument("job has null program");
  if (job.tree == nullptr) return InvalidArgument("job has null tree");
  if (job.tree->empty()) return InvalidArgument("job has empty tree");
  if (job.retry.max_attempts < 1) {
    return InvalidArgument("retry.max_attempts must be >= 1, got " +
                           std::to_string(job.retry.max_attempts));
  }
  return Status::Ok();
}

bool IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return true;
    default:
      return false;
  }
}

/// Applies degradation rung `rung` (see RetryPolicy) to `options`.
void ApplyRung(int rung, const RetryPolicy& retry, RunOptions& options) {
  if (rung >= 1) options.compile_selectors = false;
  if (rung >= 2) options.cache_selectors = false;
  if (rung >= 3) {
    options.detect_cycles = false;
    options.max_steps = std::min(options.max_steps,
                                 retry.degraded_max_steps);
  }
}

/// One attempt of `job` on degradation rung `rung`, against an
/// already-delimited tree.  Shared verbatim by the batch workers and by
/// RunResidentJob, so the daemon's per-request execution (governor
/// setup, failpoint site, metric flushes) cannot drift from the batch
/// path.  `span_id` only labels trace spans.
void RunAttemptOnce(const BatchJob& job, const Tree& delimited_tree,
                    const std::atomic<bool>& cancel, int rung,
                    std::uint64_t span_id, EngineMetrics& metrics,
                    JobResult::Attempt& attempt, RunResult& run) {
  ScopedSpan attempt_span("attempt", "\"job\":" + std::to_string(span_id) +
                                         ",\"rung\":" + std::to_string(rung));
  metrics.attempts->Increment();
  RunOptions options = job.options;
  options.cancel = &cancel;
  ApplyRung(rung, job.retry, options);
  // The governor is per-attempt: a retry gets a fresh deadline and an
  // empty accountant (it is also single-threaded state, so it cannot
  // be shared across the batch).
  ResourceGovernor governor;
  if (job.deadline_ms > 0) {
    governor.set_deadline_after(std::chrono::milliseconds(job.deadline_ms));
  }
  if (job.memory_budget_bytes > 0) {
    governor.set_memory_budget(job.memory_budget_bytes);
  }
  options.governor = &governor;

  Status status;
  if (FailpointRegistry::armed()) {
    status = FailpointRegistry::Global().Check("engine/worker");
  }
  if (status.ok()) {
    Interpreter interpreter(*job.program, options);
    Result<RunResult> r = interpreter.RunDelimited(delimited_tree);
    if (r.ok()) {
      run = std::move(r).value();
    } else {
      status = r.status();
    }
  }
  attempt.rung = rung;
  attempt.status = status;
  attempt.memory_tripped =
      governor.accountant() != nullptr && governor.accountant()->tripped();
  // Per-attempt governor flush: the governor itself stays counter-free
  // (it sits on the per-transition hot path), the engine folds its
  // totals into the registry once the attempt is over.
  metrics.governor_polls->Increment(governor.deadline_polls());
  metrics.governor_clock_reads->Increment(governor.deadline_clock_reads());
  if (const MemoryAccountant* accountant = governor.accountant()) {
    for (int c = 0; c < kNumMemoryCategories; ++c) {
      metrics.memory_peak[c]->UpdateMax(
          accountant->peak(static_cast<MemoryCategory>(c)));
    }
  }
}

/// The full retry ladder of one job: attempts, degradation rungs,
/// jittered backoff, cooperative cancellation.  `record_started`, when
/// non-null, is invoked before each attempt (the batch journal's
/// write-ahead record); `rng_state` is the already-seeded jitter state.
/// On exit `out.status`/`out.attempts` are final; `out.run` is set only
/// on success.
void RunRetryLadder(const BatchJob& job, const Tree& delimited_tree,
                    const std::atomic<bool>& cancel, std::uint64_t rng_state,
                    std::uint64_t span_id, EngineMetrics& metrics,
                    const std::function<void(int, int)>& record_started,
                    JobResult& out) {
  const RetryPolicy& retry = job.retry;
  for (int attempt_no = 0; attempt_no < retry.max_attempts; ++attempt_no) {
    if (cancel.load(std::memory_order_relaxed)) {
      out.status = Cancelled("job " + std::to_string(span_id) +
                             " cancelled before it started");
      return;
    }
    int rung = retry.degrade ? std::min(attempt_no, 3) : 0;
    if (record_started) record_started(attempt_no, rung);
    if (attempt_no > 0) metrics.retries->Increment();
    JobResult::Attempt attempt;
    RunResult run;
    RunAttemptOnce(job, delimited_tree, cancel, rung, span_id, metrics,
                   attempt, run);
    if (attempt.status.code() == StatusCode::kDeadlineExceeded) {
      metrics.deadline_hits->Increment();
    }
    if (attempt.memory_tripped) metrics.memory_trips->Increment();
    out.attempts.push_back(attempt);
    out.status = attempt.status;
    if (attempt.status.ok()) {
      out.run = std::move(run);
      return;
    }
    if (!IsRetryable(attempt.status) ||
        attempt_no + 1 >= retry.max_attempts) {
      return;
    }
    std::int64_t backoff_ms = JitteredBackoffMs(retry, attempt_no, rng_state);
    if (backoff_ms > 0) {
      metrics.backoff_ms->Observe(static_cast<double>(backoff_ms));
      ScopedSpan backoff_span("backoff", "\"job\":" + std::to_string(span_id) +
                                             ",\"ms\":" +
                                             std::to_string(backoff_ms));
      SleepUnlessCancelled(backoff_ms, cancel);
    }
  }
}

/// Mirrors the EngineStats aggregation predicates into the registry's
/// outcome counters, so a snapshot over a fresh registry reconciles
/// exactly with the batch's EngineStats (BatchResult contract).
void RecordJobOutcome(const JobResult& out, EngineMetrics& metrics) {
  if (!out.status.ok()) {
    metrics.jobs_failed->Increment();
    if (out.status.code() == StatusCode::kCancelled) {
      metrics.jobs_cancelled->Increment();
    }
  } else if (out.run.accepted) {
    metrics.jobs_accepted->Increment();
  } else {
    metrics.jobs_rejected->Increment();
  }
  if (out.status.ok() && !out.attempts.empty() &&
      out.attempts.back().rung > 0) {
    metrics.degraded_successes->Increment();
  }
}

}  // namespace

JobResult RunResidentJob(const BatchJob& job, const Tree& delimited_tree,
                         const std::atomic<bool>& cancel,
                         std::uint64_t backoff_seed) {
  EngineMetrics& metrics = EngineMetrics::Get();
  JobResult out;
  if (job.program == nullptr) {
    out.status = InvalidArgument("job has null program");
    return out;
  }
  if (delimited_tree.empty()) {
    out.status = InvalidArgument("job has empty tree");
    return out;
  }
  if (job.retry.max_attempts < 1) {
    out.status = InvalidArgument("retry.max_attempts must be >= 1, got " +
                                 std::to_string(job.retry.max_attempts));
    return out;
  }
  // Interning is internally synchronized (src/common/interner.h), so
  // unlike the batch prologue this need not run serially — concurrent
  // requests against one resident tree are safe; only handle values
  // depend on arrival order, never results.
  PreInternConstants(*job.program, delimited_tree);
  metrics.jobs_running->Add(1);
  const auto job_start = std::chrono::steady_clock::now();
  std::uint64_t rng_state =
      Mix64(backoff_seed ^ (0x9e3779b97f4a7c15ULL * (job.job_id + 1)));
  {
    ScopedSpan job_span("job", "\"job\":" + std::to_string(job.job_id));
    RunRetryLadder(job, delimited_tree, cancel, rng_state, job.job_id,
                   metrics, nullptr, out);
  }
  RecordJobOutcome(out, metrics);
  metrics.job_latency_ms->Observe(MillisSince(job_start));
  metrics.jobs_running->Add(-1);
  return out;
}

BatchEngine::BatchEngine(EngineOptions options) : options_(options) {}

Result<BatchResult> BatchEngine::RunBatch(const std::vector<BatchJob>& jobs,
                                          BatchJournal* journal) {
  if (options_.num_threads < 1) {
    return InvalidArgument("num_threads must be >= 1, got " +
                           std::to_string(options_.num_threads));
  }
  cancel_.store(false, std::memory_order_relaxed);

  EngineMetrics& metrics = EngineMetrics::Get();
  Tracer& tracer = Tracer::Global();
  ScopedSpan batch_span("batch", "\"jobs\":" + std::to_string(jobs.size()));
  const auto batch_start = std::chrono::steady_clock::now();
  const std::uint64_t batch_start_us = tracer.NowMicros();

  BatchResult batch;
  batch.results.resize(jobs.size());

  // Serial prologue, in job order (determinism): validate, pre-intern
  // string constants, and delimit each distinct input once.
  std::vector<Status> prechecks(jobs.size());
  std::map<const Tree*, DelimitedTree> delimited;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    prechecks[i] = ValidateJob(jobs[i]);
    if (!prechecks[i].ok()) continue;
    PreInternConstants(*jobs[i].program, *jobs[i].tree);
    if (delimited.find(jobs[i].tree) == delimited.end()) {
      delimited.emplace(jobs[i].tree, Delimit(*jobs[i].tree));
    }
  }

  std::atomic<std::size_t> next{0};
  auto run_job_impl = [&](std::size_t i) {
    JobResult& out = batch.results[i];
    // Journal sink for this job (write-ahead: started before each
    // attempt, one terminal finished after the last).  Jobs without a
    // stable id are run but never recorded.
    const bool journaled = journal != nullptr && jobs[i].job_id != 0;
    auto journal_finished = [&]() {
      if (!journaled) return;
      ScopedSpan span("journal-append", "\"job\":" + std::to_string(i));
      int final_rung = out.attempts.empty() ? 0 : out.attempts.back().rung;
      journal->RecordFinished(jobs[i].job_id, out.status.code(),
                              out.status.ok() && out.run.accepted,
                              static_cast<int>(out.attempts.size()),
                              final_rung,
                              out.status.ok() ? out.run.stats.steps : 0);
    };
    if (!prechecks[i].ok()) {
      // A precheck failure is deterministic: journal it as terminal so
      // a resume does not re-submit a job that can never run.
      out.status = prechecks[i];
      journal_finished();
      return;
    }
    std::uint64_t rng_state =
        Mix64(options_.backoff_seed ^ (0x9e3779b97f4a7c15ULL *
                                       (static_cast<std::uint64_t>(i) + 1)));
    std::function<void(int, int)> record_started;
    if (journaled) {
      record_started = [&](int attempt_no, int rung) {
        ScopedSpan span("journal-append", "\"job\":" + std::to_string(i));
        journal->RecordStarted(jobs[i].job_id, attempt_no, rung);
      };
    }
    RunRetryLadder(jobs[i], delimited.at(jobs[i].tree).tree, cancel_,
                   rng_state, static_cast<std::uint64_t>(i), metrics,
                   record_started, out);
    // Cancelled before the first attempt: leave no journal trace, so a
    // resume treats the job as simply not run yet.  Every other exit —
    // including cancellation between attempts — records the terminal
    // state (the resume plan reruns cancelled jobs either way).
    if (!out.attempts.empty() ||
        out.status.code() != StatusCode::kCancelled) {
      journal_finished();
    }
  };
  auto run_job = [&](std::size_t i) {
    metrics.jobs_running->Add(1);
    const auto job_start = std::chrono::steady_clock::now();
    metrics.queue_wait_ms->Observe(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
            job_start - batch_start)
            .count());
    if (tracer.enabled()) {
      tracer.RecordComplete("queue-wait", "\"job\":" + std::to_string(i),
                            batch_start_us,
                            tracer.NowMicros() - batch_start_us);
    }
    {
      ScopedSpan job_span("job", "\"job\":" + std::to_string(i));
      run_job_impl(i);
    }
    RecordJobOutcome(batch.results[i], metrics);
    metrics.job_latency_ms->Observe(MillisSince(job_start));
    metrics.jobs_running->Add(-1);
  };
  auto worker = [&]() {
    while (true) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      run_job(i);
    }
  };

  int num_threads = options_.num_threads;
  if (static_cast<std::size_t>(num_threads) > jobs.size()) {
    num_threads = static_cast<int>(jobs.size());
  }
  metrics.workers->Set(num_threads);
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Aggregate in job order so the totals are scheduling-independent.
  for (const JobResult& r : batch.results) {
    ++batch.stats.jobs;
    for (const JobResult::Attempt& a : r.attempts) {
      if (a.status.code() == StatusCode::kDeadlineExceeded) {
        ++batch.stats.deadline_hits;
      }
      if (a.memory_tripped) ++batch.stats.memory_trips;
    }
    if (r.attempts.size() > 1) {
      batch.stats.retries +=
          static_cast<std::int64_t>(r.attempts.size()) - 1;
    }
    if (r.status.ok() && !r.attempts.empty() && r.attempts.back().rung > 0) {
      ++batch.stats.degraded_successes;
    }
    if (!r.status.ok()) {
      ++batch.stats.failed;
      if (r.status.code() == StatusCode::kCancelled) ++batch.stats.cancelled;
      continue;
    }
    if (r.run.accepted) {
      ++batch.stats.accepted;
    } else {
      ++batch.stats.rejected;
    }
    batch.stats.steps += r.run.stats.steps;
    batch.stats.subcomputations += r.run.stats.subcomputations;
    batch.stats.atp_calls += r.run.stats.atp_calls;
    batch.stats.selector_cache_hits += r.run.stats.selector_cache_hits;
    batch.stats.selector_cache_misses += r.run.stats.selector_cache_misses;
    batch.stats.compiled_selector_evals += r.run.stats.compiled_selector_evals;
    batch.stats.interval_selector_evals += r.run.stats.interval_selector_evals;
    batch.stats.dense_selector_evals += r.run.stats.dense_selector_evals;
    batch.stats.planner_picks_reference += r.run.stats.planner_picks_reference;
    batch.stats.planner_picks_dense += r.run.stats.planner_picks_dense;
    batch.stats.planner_picks_interval += r.run.stats.planner_picks_interval;
    batch.stats.store_updates += r.run.stats.store_updates;
  }
  batch.metrics = MetricsRegistry::Global().Snapshot();
  return batch;
}

}  // namespace treewalk
