#include "src/engine/engine.h"

#include <cstddef>
#include <map>
#include <thread>
#include <utility>

#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Collects the string constants of a formula in syntax order.
void CollectStrings(const Formula& f, std::vector<std::string>& out) {
  if (!f.valid()) return;
  const FormulaNode& n = f.node();
  for (const Term& t : n.terms) {
    if (t.kind == Term::Kind::kStrConst) out.push_back(t.text);
  }
  for (const Formula& c : n.children) CollectStrings(c, out);
}

/// Interns every string constant of `program`'s formulas into `tree`'s
/// value interner.  Evaluation would intern them lazily; doing it here,
/// serially and in job order, pins the handle assignment before workers
/// race, which keeps results independent of scheduling.
void PreInternConstants(const Program& program, const Tree& tree) {
  std::vector<std::string> strings;
  for (const Rule& rule : program.rules()) {
    CollectStrings(rule.guard, strings);
    CollectStrings(rule.action.update, strings);
    CollectStrings(rule.action.selector, strings);
  }
  for (const std::string& s : strings) tree.values().ValueFor(s);
}

Status ValidateJob(const BatchJob& job) {
  if (job.program == nullptr) return InvalidArgument("job has null program");
  if (job.tree == nullptr) return InvalidArgument("job has null tree");
  if (job.tree->empty()) return InvalidArgument("job has empty tree");
  return Status::Ok();
}

}  // namespace

BatchEngine::BatchEngine(EngineOptions options) : options_(options) {}

Result<BatchResult> BatchEngine::RunBatch(const std::vector<BatchJob>& jobs) {
  if (options_.num_threads < 1) {
    return InvalidArgument("num_threads must be >= 1, got " +
                           std::to_string(options_.num_threads));
  }
  cancel_.store(false, std::memory_order_relaxed);

  BatchResult batch;
  batch.results.resize(jobs.size());

  // Serial prologue, in job order (determinism): validate, pre-intern
  // string constants, and delimit each distinct input once.
  std::vector<Status> prechecks(jobs.size());
  std::map<const Tree*, DelimitedTree> delimited;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    prechecks[i] = ValidateJob(jobs[i]);
    if (!prechecks[i].ok()) continue;
    PreInternConstants(*jobs[i].program, *jobs[i].tree);
    if (delimited.find(jobs[i].tree) == delimited.end()) {
      delimited.emplace(jobs[i].tree, Delimit(*jobs[i].tree));
    }
  }

  std::atomic<std::size_t> next{0};
  auto run_job = [&](std::size_t i) {
    JobResult& out = batch.results[i];
    if (!prechecks[i].ok()) {
      out.status = prechecks[i];
      return;
    }
    if (cancel_.load(std::memory_order_relaxed)) {
      out.status = Cancelled("job " + std::to_string(i) +
                             " cancelled before it started");
      return;
    }
    RunOptions options = jobs[i].options;
    options.cancel = &cancel_;
    Interpreter interpreter(*jobs[i].program, options);
    Result<RunResult> r =
        interpreter.RunDelimited(delimited.at(jobs[i].tree).tree);
    if (!r.ok()) {
      out.status = r.status();
      return;
    }
    out.run = std::move(r).value();
  };
  auto worker = [&]() {
    while (true) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      run_job(i);
    }
  };

  int num_threads = options_.num_threads;
  if (static_cast<std::size_t>(num_threads) > jobs.size()) {
    num_threads = static_cast<int>(jobs.size());
  }
  if (num_threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(num_threads));
    for (int t = 0; t < num_threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Aggregate in job order so the totals are scheduling-independent.
  for (const JobResult& r : batch.results) {
    ++batch.stats.jobs;
    if (!r.status.ok()) {
      ++batch.stats.failed;
      if (r.status.code() == StatusCode::kCancelled) ++batch.stats.cancelled;
      continue;
    }
    if (r.run.accepted) {
      ++batch.stats.accepted;
    } else {
      ++batch.stats.rejected;
    }
    batch.stats.steps += r.run.stats.steps;
    batch.stats.subcomputations += r.run.stats.subcomputations;
    batch.stats.atp_calls += r.run.stats.atp_calls;
    batch.stats.selector_cache_hits += r.run.stats.selector_cache_hits;
    batch.stats.selector_cache_misses += r.run.stats.selector_cache_misses;
    batch.stats.compiled_selector_evals += r.run.stats.compiled_selector_evals;
    batch.stats.store_updates += r.run.stats.store_updates;
  }
  return batch;
}

}  // namespace treewalk
