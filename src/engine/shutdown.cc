#include "src/engine/shutdown.h"

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <mutex>

namespace treewalk {

namespace {

// Everything the handlers touch is a lock-free atomic; fetch_add and
// store on std::atomic<int> are async-signal-safe when lock-free
// (guaranteed for int on the supported platforms).
std::atomic<int> g_signal_count{0};
std::atomic<int> g_first_signal{0};
std::atomic<int> g_reload_count{0};

// Install bookkeeping (never touched from a handler): the install
// count plus the sigactions displaced by the first Install(), restored
// by the last Uninstall().
std::mutex g_install_mu;
int g_install_count = 0;
struct sigaction g_saved_int;
struct sigaction g_saved_term;
struct sigaction g_saved_hup;

void Handler(int signo) {
  int count = g_signal_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count == 1) {
    g_first_signal.store(signo, std::memory_order_relaxed);
    return;  // the driver polls requested() and drains cooperatively
  }
  // Second signal: the operator wants out *now*.  _exit is
  // async-signal-safe; the journal's CRC framing makes whatever was
  // mid-write a cleanly truncatable torn tail.
  _exit(128 + signo);
}

void HupHandler(int) {
  // Reload is driver-polled: the handler only counts.  Critically, the
  // process neither exits (SIGHUP's default) nor drains — a supervisor
  // HUP-ing its children on config rollout must not kill in-flight
  // work.
  g_reload_count.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void GracefulShutdown::Install() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_install_count++ > 0) return;
  struct sigaction action = {};
  action.sa_handler = Handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a driver blocked in a slow syscall should see EINTR
  // and reach its cancellation poll promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, &g_saved_int);
  sigaction(SIGTERM, &action, &g_saved_term);
  struct sigaction hup = {};
  hup.sa_handler = HupHandler;
  sigemptyset(&hup.sa_mask);
  // SA_RESTART here: a reload poll is not urgent, and an interrupted
  // read in a connection thread must not surface as a client error.
  hup.sa_flags = SA_RESTART;
  sigaction(SIGHUP, &hup, &g_saved_hup);
}

void GracefulShutdown::Uninstall() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_install_count == 0) return;
  if (--g_install_count > 0) return;
  sigaction(SIGINT, &g_saved_int, nullptr);
  sigaction(SIGTERM, &g_saved_term, nullptr);
  sigaction(SIGHUP, &g_saved_hup, nullptr);
}

bool GracefulShutdown::requested() {
  return g_signal_count.load(std::memory_order_relaxed) > 0;
}

int GracefulShutdown::signal_number() {
  return g_first_signal.load(std::memory_order_relaxed);
}

int GracefulShutdown::reload_requests() {
  return g_reload_count.load(std::memory_order_relaxed);
}

void GracefulShutdown::ResetForTest() {
  g_signal_count.store(0, std::memory_order_relaxed);
  g_first_signal.store(0, std::memory_order_relaxed);
  g_reload_count.store(0, std::memory_order_relaxed);
}

}  // namespace treewalk
