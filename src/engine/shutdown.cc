#include "src/engine/shutdown.h"

#include <unistd.h>

#include <atomic>
#include <csignal>

namespace treewalk {

namespace {

// Everything the handler touches is a lock-free atomic; fetch_add and
// store on std::atomic<int> are async-signal-safe when lock-free
// (guaranteed for int on the supported platforms).
std::atomic<int> g_signal_count{0};
std::atomic<int> g_first_signal{0};

void Handler(int signo) {
  int count = g_signal_count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (count == 1) {
    g_first_signal.store(signo, std::memory_order_relaxed);
    return;  // the driver polls requested() and drains cooperatively
  }
  // Second signal: the operator wants out *now*.  _exit is
  // async-signal-safe; the journal's CRC framing makes whatever was
  // mid-write a cleanly truncatable torn tail.
  _exit(128 + signo);
}

}  // namespace

void GracefulShutdown::Install() {
  struct sigaction action = {};
  action.sa_handler = Handler;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: a batch driver blocked in a slow syscall should see
  // EINTR and reach its cancellation poll promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool GracefulShutdown::requested() {
  return g_signal_count.load(std::memory_order_relaxed) > 0;
}

int GracefulShutdown::signal_number() {
  return g_first_signal.load(std::memory_order_relaxed);
}

void GracefulShutdown::ResetForTest() {
  g_signal_count.store(0, std::memory_order_relaxed);
  g_first_signal.store(0, std::memory_order_relaxed);
}

}  // namespace treewalk
