#ifndef TREEWALK_CATERPILLAR_CATERPILLAR_H_
#define TREEWALK_CATERPILLAR_CATERPILLAR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Caterpillar expressions (Brueggemann-Klein & Wood), the first
/// tree-walking XML formalism the paper's introduction cites: regular
/// expressions over atomic *moves* and *tests*.  An expression matches a
/// walk through the tree; the tree language of an expression is the set
/// of trees on which some matching walk exists from the root.
///
/// Atoms:
///   moves:  up, down (first child), left, right
///   tests:  isroot, isleaf, isfirst, islast, "label" (current label)
///
/// Syntax (ParseCaterpillar):
///   expr   := alt
///   alt    := seq ('|' seq)*
///   seq    := factor+
///   factor := atom '*'? | '(' expr ')' '*'?
///   atom   := 'up' | 'down' | 'left' | 'right' | 'isroot' | 'isleaf'
///           | 'isfirst' | 'islast' | NAME  (a label test)
///
/// Example — "some leaf is labeled b":
///   (down | right)* isleaf b
///
/// Caterpillars run on the *raw* tree (no delimiters): the tests supply
/// the positional information delimiters would.
struct CaterpillarAtom {
  enum class Kind {
    kUp,
    kDown,
    kLeft,
    kRight,
    kIsRoot,
    kIsLeaf,
    kIsFirst,
    kIsLast,
    kLabel,
  };
  Kind kind = Kind::kIsRoot;
  std::string label;  ///< kLabel only
};

/// Expression AST.
class Caterpillar {
 public:
  enum class Kind { kAtom, kSeq, kAlt, kStar, kEpsilon };

  static Caterpillar Epsilon();
  static Caterpillar Atom(CaterpillarAtom atom);
  static Caterpillar Seq(Caterpillar a, Caterpillar b);
  static Caterpillar Alt(Caterpillar a, Caterpillar b);
  static Caterpillar Star(Caterpillar inner);

  Kind kind() const { return node_->kind; }
  const CaterpillarAtom& atom() const { return node_->atom; }
  const Caterpillar& left() const { return node_->children[0]; }
  const Caterpillar& right() const { return node_->children[1]; }
  const Caterpillar& inner() const { return node_->children[0]; }

  std::string ToString() const;

 private:
  struct Node {
    Kind kind;
    CaterpillarAtom atom;
    std::vector<Caterpillar> children;
  };
  explicit Caterpillar(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}
  static Caterpillar Make(Node node);

  std::shared_ptr<const Node> node_;
};

/// Parses the syntax above.
Result<Caterpillar> ParseCaterpillar(std::string_view source);

struct CaterpillarRunStats {
  /// (node, NFA-state) pairs explored.
  std::size_t pairs_explored = 0;
};

/// True iff some walk from the root matches the expression.  Evaluated
/// by product reachability: BFS over (node, NFA state) pairs — the
/// nondeterministic counterpart of the deterministic tw interpreter, in
/// O(|t| * |expr|) time.
Result<bool> CaterpillarAccepts(const Tree& tree,
                                const Caterpillar& expression,
                                CaterpillarRunStats* stats = nullptr);

/// Walks from `origin`: all nodes where a matching walk can end — the
/// caterpillar analogue of a selector (useful as a query primitive).
Result<std::vector<NodeId>> CaterpillarSelect(const Tree& tree,
                                              const Caterpillar& expression,
                                              NodeId origin);

}  // namespace treewalk

#endif  // TREEWALK_CATERPILLAR_CATERPILLAR_H_
