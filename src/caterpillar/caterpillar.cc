#include "src/caterpillar/caterpillar.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <set>

namespace treewalk {

Caterpillar Caterpillar::Make(Node node) {
  return Caterpillar(std::make_shared<const Node>(std::move(node)));
}

Caterpillar Caterpillar::Epsilon() {
  Node n;
  n.kind = Kind::kEpsilon;
  return Make(std::move(n));
}

Caterpillar Caterpillar::Atom(CaterpillarAtom atom) {
  Node n;
  n.kind = Kind::kAtom;
  n.atom = std::move(atom);
  return Make(std::move(n));
}

Caterpillar Caterpillar::Seq(Caterpillar a, Caterpillar b) {
  Node n;
  n.kind = Kind::kSeq;
  n.children = {std::move(a), std::move(b)};
  return Make(std::move(n));
}

Caterpillar Caterpillar::Alt(Caterpillar a, Caterpillar b) {
  Node n;
  n.kind = Kind::kAlt;
  n.children = {std::move(a), std::move(b)};
  return Make(std::move(n));
}

Caterpillar Caterpillar::Star(Caterpillar inner) {
  Node n;
  n.kind = Kind::kStar;
  n.children = {std::move(inner)};
  return Make(std::move(n));
}

namespace {

std::string AtomToString(const CaterpillarAtom& atom) {
  switch (atom.kind) {
    case CaterpillarAtom::Kind::kUp:
      return "up";
    case CaterpillarAtom::Kind::kDown:
      return "down";
    case CaterpillarAtom::Kind::kLeft:
      return "left";
    case CaterpillarAtom::Kind::kRight:
      return "right";
    case CaterpillarAtom::Kind::kIsRoot:
      return "isroot";
    case CaterpillarAtom::Kind::kIsLeaf:
      return "isleaf";
    case CaterpillarAtom::Kind::kIsFirst:
      return "isfirst";
    case CaterpillarAtom::Kind::kIsLast:
      return "islast";
    case CaterpillarAtom::Kind::kLabel:
      return atom.label;
  }
  return "?";
}

}  // namespace

std::string Caterpillar::ToString() const {
  switch (kind()) {
    case Kind::kEpsilon:
      return "()";
    case Kind::kAtom:
      return AtomToString(atom());
    case Kind::kSeq:
      return left().ToString() + " " + right().ToString();
    case Kind::kAlt:
      return "(" + left().ToString() + " | " + right().ToString() + ")";
    case Kind::kStar: {
      const Caterpillar& in = inner();
      if (in.kind() == Kind::kAtom) return in.ToString() + "*";
      return "(" + in.ToString() + ")*";
    }
  }
  return "?";
}

namespace {

class CaterpillarParser {
 public:
  explicit CaterpillarParser(std::string_view source) : src_(source) {}

  Result<Caterpillar> Parse() {
    TREEWALK_ASSIGN_OR_RETURN(Caterpillar e, ParseAlt());
    SkipSpace();
    if (pos_ != src_.size()) return Err("trailing input");
    return e;
  }

 private:
  Result<Caterpillar> ParseAlt() {
    TREEWALK_ASSIGN_OR_RETURN(Caterpillar left, ParseSeq());
    while (true) {
      SkipSpace();
      if (Peek() != '|') break;
      ++pos_;
      TREEWALK_ASSIGN_OR_RETURN(Caterpillar right, ParseSeq());
      left = Caterpillar::Alt(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Caterpillar> ParseSeq() {
    TREEWALK_ASSIGN_OR_RETURN(Caterpillar left, ParseFactor());
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '\0' || c == ')' || c == '|') break;
      TREEWALK_ASSIGN_OR_RETURN(Caterpillar right, ParseFactor());
      left = Caterpillar::Seq(std::move(left), std::move(right));
    }
    return left;
  }

  Result<Caterpillar> ParseFactor() {
    SkipSpace();
    Caterpillar base = Caterpillar::Epsilon();
    if (Peek() == '(') {
      ++pos_;
      SkipSpace();
      if (Peek() == ')') {
        ++pos_;  // "()" is epsilon
      } else {
        TREEWALK_ASSIGN_OR_RETURN(base, ParseAlt());
        SkipSpace();
        if (Peek() != ')') return Err("expected ')'");
        ++pos_;
      }
    } else {
      TREEWALK_ASSIGN_OR_RETURN(base, ParseAtomExpr());
    }
    SkipSpace();
    while (Peek() == '*') {
      ++pos_;
      base = Caterpillar::Star(std::move(base));
      SkipSpace();
    }
    return base;
  }

  Result<Caterpillar> ParseAtomExpr() {
    SkipSpace();
    std::size_t start = pos_;
    auto is_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '#' || c == '-';
    };
    while (pos_ < src_.size() && is_char(src_[pos_])) ++pos_;
    if (pos_ == start) return Err("expected an atom");
    std::string word(src_.substr(start, pos_ - start));

    CaterpillarAtom atom;
    if (word == "up") {
      atom.kind = CaterpillarAtom::Kind::kUp;
    } else if (word == "down") {
      atom.kind = CaterpillarAtom::Kind::kDown;
    } else if (word == "left") {
      atom.kind = CaterpillarAtom::Kind::kLeft;
    } else if (word == "right") {
      atom.kind = CaterpillarAtom::Kind::kRight;
    } else if (word == "isroot") {
      atom.kind = CaterpillarAtom::Kind::kIsRoot;
    } else if (word == "isleaf") {
      atom.kind = CaterpillarAtom::Kind::kIsLeaf;
    } else if (word == "isfirst") {
      atom.kind = CaterpillarAtom::Kind::kIsFirst;
    } else if (word == "islast") {
      atom.kind = CaterpillarAtom::Kind::kIsLast;
    } else {
      atom.kind = CaterpillarAtom::Kind::kLabel;
      atom.label = std::move(word);
    }
    return Caterpillar::Atom(std::move(atom));
  }

  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  Status Err(std::string message) const {
    return InvalidArgument(message + " at offset " + std::to_string(pos_));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

/// Thompson NFA over caterpillar atoms; -1 edges are epsilon, others
/// index into the atom table.
struct CatNfa {
  struct State {
    std::vector<std::pair<int, int>> edges;  // (atom index or -1, target)
  };
  std::vector<State> states;
  std::vector<CaterpillarAtom> atoms;
  int start = 0;
  int accept = 0;

  int AddState() {
    states.emplace_back();
    return static_cast<int>(states.size()) - 1;
  }

  std::pair<int, int> Build(const Caterpillar& e) {
    switch (e.kind()) {
      case Caterpillar::Kind::kEpsilon: {
        int s = AddState(), t = AddState();
        states[static_cast<std::size_t>(s)].edges.emplace_back(-1, t);
        return {s, t};
      }
      case Caterpillar::Kind::kAtom: {
        int s = AddState(), t = AddState();
        atoms.push_back(e.atom());
        states[static_cast<std::size_t>(s)].edges.emplace_back(
            static_cast<int>(atoms.size()) - 1, t);
        return {s, t};
      }
      case Caterpillar::Kind::kSeq: {
        auto [s1, t1] = Build(e.left());
        auto [s2, t2] = Build(e.right());
        states[static_cast<std::size_t>(t1)].edges.emplace_back(-1, s2);
        return {s1, t2};
      }
      case Caterpillar::Kind::kAlt: {
        auto [s1, t1] = Build(e.left());
        auto [s2, t2] = Build(e.right());
        int s = AddState(), t = AddState();
        states[static_cast<std::size_t>(s)].edges.emplace_back(-1, s1);
        states[static_cast<std::size_t>(s)].edges.emplace_back(-1, s2);
        states[static_cast<std::size_t>(t1)].edges.emplace_back(-1, t);
        states[static_cast<std::size_t>(t2)].edges.emplace_back(-1, t);
        return {s, t};
      }
      case Caterpillar::Kind::kStar: {
        auto [s1, t1] = Build(e.inner());
        int s = AddState(), t = AddState();
        states[static_cast<std::size_t>(s)].edges.emplace_back(-1, s1);
        states[static_cast<std::size_t>(s)].edges.emplace_back(-1, t);
        states[static_cast<std::size_t>(t1)].edges.emplace_back(-1, s1);
        states[static_cast<std::size_t>(t1)].edges.emplace_back(-1, t);
        return {s, t};
      }
    }
    return {0, 0};
  }
};

/// Applies one atom at a tree node: returns the resulting node (same
/// node for tests), or kNoNode if the move/test fails.
NodeId ApplyAtom(const Tree& tree, const CaterpillarAtom& atom, NodeId u,
                 Symbol label_symbol) {
  switch (atom.kind) {
    case CaterpillarAtom::Kind::kUp:
      return tree.Parent(u);
    case CaterpillarAtom::Kind::kDown:
      return tree.FirstChild(u);
    case CaterpillarAtom::Kind::kLeft:
      return tree.PrevSibling(u);
    case CaterpillarAtom::Kind::kRight:
      return tree.NextSibling(u);
    case CaterpillarAtom::Kind::kIsRoot:
      return tree.IsRoot(u) ? u : kNoNode;
    case CaterpillarAtom::Kind::kIsLeaf:
      return tree.IsLeaf(u) ? u : kNoNode;
    case CaterpillarAtom::Kind::kIsFirst:
      return tree.IsFirstChild(u) ? u : kNoNode;
    case CaterpillarAtom::Kind::kIsLast:
      return tree.IsLastChild(u) ? u : kNoNode;
    case CaterpillarAtom::Kind::kLabel:
      return label_symbol >= 0 && tree.label(u) == label_symbol ? u : kNoNode;
  }
  return kNoNode;
}

/// Product reachability from (origin, nfa start); fills `final_nodes`
/// with the nodes where the accept state is reachable.
Status ProductSearch(const Tree& tree, const Caterpillar& expression,
                     NodeId origin, std::vector<NodeId>& final_nodes,
                     CaterpillarRunStats* stats) {
  if (tree.empty()) return InvalidArgument("empty tree");
  if (!tree.Valid(origin)) return InvalidArgument("invalid origin");
  CatNfa nfa;
  auto [start, accept] = nfa.Build(expression);
  nfa.start = start;
  nfa.accept = accept;

  // Resolve label tests once.
  std::vector<Symbol> label_symbols(nfa.atoms.size(), -1);
  for (std::size_t i = 0; i < nfa.atoms.size(); ++i) {
    if (nfa.atoms[i].kind == CaterpillarAtom::Kind::kLabel) {
      label_symbols[i] = tree.FindLabel(nfa.atoms[i].label);
    }
  }

  const std::size_t num_nfa = nfa.states.size();
  std::vector<bool> visited(tree.size() * num_nfa, false);
  auto index = [num_nfa](NodeId u, int q) {
    return static_cast<std::size_t>(u) * num_nfa +
           static_cast<std::size_t>(q);
  };
  std::deque<std::pair<NodeId, int>> queue;
  auto push = [&](NodeId u, int q) {
    if (!visited[index(u, q)]) {
      visited[index(u, q)] = true;
      queue.emplace_back(u, q);
    }
  };
  push(origin, nfa.start);

  std::set<NodeId> finals;
  std::size_t explored = 0;
  while (!queue.empty()) {
    auto [u, q] = queue.front();
    queue.pop_front();
    ++explored;
    if (q == nfa.accept) finals.insert(u);
    for (const auto& [atom_index, target] :
         nfa.states[static_cast<std::size_t>(q)].edges) {
      if (atom_index < 0) {
        push(u, target);
        continue;
      }
      NodeId v = ApplyAtom(tree, nfa.atoms[static_cast<std::size_t>(atom_index)],
                           u, label_symbols[static_cast<std::size_t>(atom_index)]);
      if (v != kNoNode) push(v, target);
    }
  }
  if (stats != nullptr) stats->pairs_explored = explored;
  final_nodes.assign(finals.begin(), finals.end());
  return Status::Ok();
}

}  // namespace

Result<Caterpillar> ParseCaterpillar(std::string_view source) {
  return CaterpillarParser(source).Parse();
}

Result<bool> CaterpillarAccepts(const Tree& tree,
                                const Caterpillar& expression,
                                CaterpillarRunStats* stats) {
  std::vector<NodeId> finals;
  TREEWALK_RETURN_IF_ERROR(ProductSearch(
      tree, expression, tree.empty() ? kNoNode : tree.root(), finals, stats));
  return !finals.empty();
}

Result<std::vector<NodeId>> CaterpillarSelect(const Tree& tree,
                                              const Caterpillar& expression,
                                              NodeId origin) {
  std::vector<NodeId> finals;
  TREEWALK_RETURN_IF_ERROR(
      ProductSearch(tree, expression, origin, finals, nullptr));
  return finals;
}

}  // namespace treewalk
