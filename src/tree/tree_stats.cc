#include "src/tree/tree_stats.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace treewalk {

std::int64_t TreeStats::MaxLabelCount() const {
  std::int64_t best = 0;
  for (std::int64_t c : label_counts) best = std::max(best, c);
  return best;
}

TreeStats ComputeTreeStats(const Tree& tree) {
  TreeStats stats;
  const std::size_t n = tree.size();
  stats.nodes = static_cast<std::int64_t>(n);
  if (n == 0) return stats;
  stats.edges = stats.nodes - 1;
  stats.label_counts.assign(tree.labels().size(), 0);

  // One pre-order pass: parents precede children in the arena, so
  // depth[u] = depth[parent(u)] + 1 resolves in document order.
  std::vector<std::int32_t> depth(n, 0);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    const NodeId p = tree.Parent(u);
    if (p != kNoNode) {
      depth[static_cast<std::size_t>(u)] =
          depth[static_cast<std::size_t>(p)] + 1;
    }
    const std::int64_t d = depth[static_cast<std::size_t>(u)];
    stats.sum_depths += d;
    stats.max_depth = std::max(stats.max_depth, d);
    ++stats.label_counts[static_cast<std::size_t>(tree.label(u))];
    const std::int64_t k = tree.ChildCount(u);
    if (k == 0) {
      ++stats.leaves;
    } else {
      ++stats.parents;
      stats.max_fanout = std::max(stats.max_fanout, k);
      stats.sib_pairs += k * (k - 1) / 2;
      stats.succ_pairs += k - 1;
    }
  }

  stats.attr_distinct.assign(tree.num_attributes(), 0);
  std::vector<DataValue> column;
  for (AttrId a = 0; a < static_cast<AttrId>(tree.num_attributes()); ++a) {
    column.clear();
    column.reserve(n);
    for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
      column.push_back(tree.attr(a, u));
    }
    std::sort(column.begin(), column.end());
    stats.attr_distinct[static_cast<std::size_t>(a)] =
        static_cast<std::int64_t>(
            std::unique(column.begin(), column.end()) - column.begin());
  }
  return stats;
}

const TreeStats* GetOrComputeTreeStats(const Tree& tree, TreeStats& scratch) {
  if (const TreeStats* preloaded = tree.snapshot_stats()) return preloaded;
  scratch = ComputeTreeStats(tree);
  return &scratch;
}

}  // namespace treewalk
