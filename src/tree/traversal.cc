#include "src/tree/traversal.h"

#include <algorithm>

namespace treewalk {

NodeId DocumentNext(const Tree& tree, NodeId u) {
  if (tree.FirstChild(u) != kNoNode) return tree.FirstChild(u);
  for (NodeId v = u; v != kNoNode; v = tree.Parent(v)) {
    if (tree.NextSibling(v) != kNoNode) return tree.NextSibling(v);
  }
  return kNoNode;
}

NodeId DocumentPrev(const Tree& tree, NodeId u) {
  NodeId left = tree.PrevSibling(u);
  if (left == kNoNode) return tree.Parent(u);
  while (tree.LastChild(left) != kNoNode) left = tree.LastChild(left);
  return left;
}

std::vector<NodeId> PostOrder(const Tree& tree) {
  std::vector<NodeId> out;
  out.reserve(tree.size());
  if (tree.empty()) return out;
  // Iterative post-order via document order of mirrored tree: simplest is
  // explicit stack.
  std::vector<std::pair<NodeId, bool>> stack = {{tree.root(), false}};
  while (!stack.empty()) {
    auto [u, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      out.push_back(u);
      continue;
    }
    stack.emplace_back(u, true);
    // Push children right-to-left so leftmost is processed first.
    for (NodeId c = tree.LastChild(u); c != kNoNode; c = tree.PrevSibling(c)) {
      stack.emplace_back(c, false);
    }
  }
  return out;
}

std::vector<NodeId> CollectWhere(const Tree& tree,
                                 const std::function<bool(NodeId)>& pred) {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    if (pred(u)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> Leaves(const Tree& tree) {
  return CollectWhere(tree, [&](NodeId u) { return tree.IsLeaf(u); });
}

int Height(const Tree& tree) {
  int height = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    height = std::max(height, tree.Depth(u));
  }
  return height;
}

}  // namespace treewalk
