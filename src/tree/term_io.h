#ifndef TREEWALK_TREE_TERM_IO_H_
#define TREEWALK_TREE_TERM_IO_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Maximum tree depth the term parser accepts.  Deeper input returns
/// kInvalidArgument instead of overflowing the recursive-descent stack
/// (docs/ROBUSTNESS.md).
inline constexpr int kMaxTermNestingDepth = 2000;

/// Parses the compact term syntax for attributed trees:
///
///   tree     := node
///   node     := LABEL attrs? children?
///   attrs    := '[' attr (',' attr)* ']'
///   attr     := NAME '=' (INT | STRING)
///   children := '(' node (',' node)* ')'
///
/// Example: `a[id=0](b[id=1, name="x"], c[id=2](d[id=3]))`.
/// Labels and names match [A-Za-z_#][A-Za-z0-9_#-]*; STRING is
/// double-quoted.  Whitespace is insignificant.
Result<Tree> ParseTerm(std::string_view source);

/// Renders `tree` in the syntax accepted by ParseTerm().  Attributes with
/// value 0 everywhere in a node are still printed (attributes are total);
/// pass `skip_zero_attrs` to omit zero-valued entries for readability.
std::string PrintTerm(const Tree& tree, bool skip_zero_attrs = true);

/// Convenience for monadic trees (the "strings" of Section 4): builds the
/// chain sigma(sigma(...)) whose attribute `attr` carries `values`
/// top-down.  `values` must be non-empty.
Tree StringTree(const std::vector<DataValue>& values,
                std::string_view label = "s", std::string_view attr = "a");

/// Inverse of StringTree: reads attribute `attr` down the leftmost chain.
std::vector<DataValue> StringValues(const Tree& tree,
                                    std::string_view attr = "a");

}  // namespace treewalk

#endif  // TREEWALK_TREE_TERM_IO_H_
