#ifndef TREEWALK_TREE_TREE_STATS_H_
#define TREEWALK_TREE_TREE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/tree/tree.h"

namespace treewalk {

/// Cheap whole-tree summary statistics for the cost-based planner
/// (src/logic/planner.h).  Every field is exact, not sampled: the axis
/// atoms of the tree vocabulary have closed-form cardinalities in these
/// terms (desc = sum_depths, E = edges, sib = sib_pairs, succ =
/// succ_pairs), which is what makes the planner's per-operator
/// estimates exact at the leaves.
///
/// Computed in one O(n) pass (plus O(n log n) per attribute column for
/// distinct-value counts) by ComputeTreeStats(), or preloaded from a
/// `.twsnap` stats section so snapshot-backed trees skip the scan
/// entirely (Tree::snapshot_stats(), docs/SNAPSHOT.md).
struct TreeStats {
  std::int64_t nodes = 0;
  /// Edges = nodes - 1 (kept explicit so an empty tree reads 0).
  std::int64_t edges = 0;
  /// Maximum node depth; the root has depth 0.
  std::int64_t max_depth = 0;
  /// Sum of Depth(u) over all nodes == |{(u, v) : desc(u, v)}|.
  std::int64_t sum_depths = 0;
  std::int64_t leaves = 0;
  /// Nodes with at least one child.
  std::int64_t parents = 0;
  std::int64_t max_fanout = 0;
  /// |{(u, v) : sib(u, v)}| = sum over families of k*(k-1)/2.
  std::int64_t sib_pairs = 0;
  /// |{(u, v) : succ(u, v)}| = sum over families of k-1.
  std::int64_t succ_pairs = 0;
  /// Nodes per label, indexed by the tree's label Symbol.
  std::vector<std::int64_t> label_counts;
  /// Distinct values per attribute column, indexed by AttrId.
  std::vector<std::int64_t> attr_distinct;

  /// Count for a label symbol; 0 for out-of-range (unknown label).
  std::int64_t LabelCount(std::int64_t symbol) const {
    return symbol >= 0 &&
                   symbol < static_cast<std::int64_t>(label_counts.size())
               ? label_counts[static_cast<std::size_t>(symbol)]
               : 0;
  }
  /// Largest single-label population (selectivity floor for lab atoms).
  std::int64_t MaxLabelCount() const;
  /// Mean children per internal node; 0 for a single-node tree.
  double AvgFanout() const {
    return parents > 0 ? static_cast<double>(edges) / parents : 0.0;
  }

  friend bool operator==(const TreeStats&, const TreeStats&) = default;
};

/// Scans `tree` and returns its exact statistics.  O(n) time and O(n)
/// transient memory for the depth pass; attribute distinct counts sort
/// a copy of each column (O(n log n) per attribute).
TreeStats ComputeTreeStats(const Tree& tree);

/// Stats for planning: the snapshot-preloaded view when `tree` carries
/// one, else a fresh scan.  `scratch` receives the computed copy in the
/// scan case and must outlive the returned pointer.
const TreeStats* GetOrComputeTreeStats(const Tree& tree, TreeStats& scratch);

}  // namespace treewalk

#endif  // TREEWALK_TREE_TREE_STATS_H_
