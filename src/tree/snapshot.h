#ifndef TREEWALK_TREE_SNAPSHOT_H_
#define TREEWALK_TREE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Versioned, CRC-checked, mmap-able on-disk tree snapshots
/// ("TWSNAP01"; format layout and invalidation rules in
/// docs/SNAPSHOT.md).  A snapshot persists the arena exactly as the
/// evaluator consumes it — raw node records, interned label/attr/value
/// pools, attribute columns, and the post-order ranks AxisIndex would
/// otherwise recompute — so loading is zero-parse: the node records and
/// attribute columns are *viewed in place* in the mapped file (the Tree
/// holds the mapping alive), only the tiny string pools are rebuilt.
///
/// Robustness contract: a truncated, bit-flipped, or foreign file loads
/// as a clean non-OK Status, never a crash and never a silently wrong
/// tree — every section is CRC32C-checked and every node record is
/// bounds-validated before a view is handed out (the snapshot fuzz
/// harness and tests/snapshot_test.cc hold this line).  Callers are
/// expected to fall back to parsing on any load error
/// (src/engine/input_cache.h counts those fallbacks).

inline constexpr char kSnapshotMagic[8] = {'T', 'W', 'S', 'N', 'A', 'P',
                                           '0', '1'};
/// v2 added the tree-stats section (planner statistics preloaded at
/// load time); v1 files are rejected and callers fall back to parsing.
inline constexpr std::uint32_t kSnapshotVersion = 2;
inline constexpr std::size_t kSnapshotHeaderBytes = 64;

/// One section-table entry, surfaced by inspect.
struct SnapshotSectionInfo {
  std::uint32_t kind = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// "nodes", "label-pool", ... ("?" for an unknown kind).
const char* SnapshotSectionName(std::uint32_t kind);

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t nodes = 0;
  std::uint64_t labels = 0;
  std::uint64_t attrs = 0;
  std::uint64_t values = 0;
  /// FNV-1a 64 over the shape/label/attribute payload; the tree half of
  /// a selector-cache key (src/logic/selector_cache.h).
  std::uint64_t content_hash = 0;
  std::uint64_t file_bytes = 0;
  std::vector<SnapshotSectionInfo> sections;
};

/// Content hash of a live tree: equals the content_hash recorded in a
/// snapshot of it (and survives a snapshot round trip).  O(n).
std::uint64_t TreeContentHash(const Tree& tree);

/// Serializes `tree` to an in-memory snapshot image (tests, fuzzing).
std::string EncodeTreeSnapshot(const Tree& tree);

/// Writes a snapshot of `tree` at `path` via the atomic tmp+rename
/// discipline: a crash or injected fault leaves the old file or the
/// complete new one, never a torn snapshot.
Result<SnapshotInfo> WriteTreeSnapshot(const Tree& tree,
                                       const std::string& path);

/// Validates `image` and returns a Tree whose node records and
/// attribute columns alias the image's bytes (`image` is retained by
/// the Tree; no copies).  The zero-copy core of LoadTreeSnapshot, split
/// out so tests and the fuzz harness can drive it on arbitrary bytes.
Result<Tree> TreeFromSnapshotImage(std::shared_ptr<const std::string> image,
                                   SnapshotInfo* info = nullptr);

/// mmaps the snapshot at `path`, validates it, and returns the
/// zero-copy Tree.  The mapped region is charged to `governor` (when
/// given) under MemoryCategory::kMappedSnapshot and released when the
/// last Tree sharing the mapping dies — the governor must outlive those
/// trees.  Failpoint: snapshot/load.
Result<Tree> LoadTreeSnapshot(const std::string& path,
                              ResourceGovernor* governor = nullptr,
                              SnapshotInfo* info = nullptr);

/// Reads and validates `path`, returning header/section metadata
/// without keeping the tree (`twq snapshot inspect`).
Result<SnapshotInfo> InspectTreeSnapshot(const std::string& path);

}  // namespace treewalk

#endif  // TREEWALK_TREE_SNAPSHOT_H_
