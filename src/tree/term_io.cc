#include "src/tree/term_io.h"

#include <cctype>
#include <cstdlib>

namespace treewalk {

namespace {

/// Hand-rolled recursive-descent parser over the term grammar.
class TermParser {
 public:
  explicit TermParser(std::string_view source) : src_(source) {}

  Result<Tree> Parse() {
    SkipSpace();
    TREEWALK_RETURN_IF_ERROR(ParseNode(/*parent=*/-1, /*depth=*/0));
    SkipSpace();
    if (pos_ != src_.size()) {
      return InvalidArgument(Where("trailing input after tree term"));
    }
    return builder_.Build();
  }

 private:
  Status ParseNode(TreeBuilder::Ref parent, int depth) {
    if (depth > kMaxTermNestingDepth) {
      // Reject instead of overflowing the recursive-descent stack.
      return InvalidArgument(
          Where("term nesting exceeds depth limit " +
                std::to_string(kMaxTermNestingDepth)));
    }
    TREEWALK_ASSIGN_OR_RETURN(std::string label, ParseIdent("label"));
    TreeBuilder::Ref ref = parent < 0 ? builder_.AddRoot(label)
                                      : builder_.AddChild(parent, label);
    SkipSpace();
    if (Peek() == '[') {
      TREEWALK_RETURN_IF_ERROR(ParseAttrs(ref));
      SkipSpace();
    }
    if (Peek() == '(') {
      ++pos_;
      while (true) {
        SkipSpace();
        TREEWALK_RETURN_IF_ERROR(ParseNode(ref, depth + 1));
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (Peek() != ')') return InvalidArgument(Where("expected ')'"));
      ++pos_;
    }
    return Status::Ok();
  }

  Status ParseAttrs(TreeBuilder::Ref ref) {
    ++pos_;  // consume '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return Status::Ok();
    }
    while (true) {
      SkipSpace();
      TREEWALK_ASSIGN_OR_RETURN(std::string name, ParseIdent("attribute"));
      SkipSpace();
      if (Peek() != '=') return InvalidArgument(Where("expected '='"));
      ++pos_;
      SkipSpace();
      if (Peek() == '"') {
        TREEWALK_ASSIGN_OR_RETURN(std::string text, ParseString());
        builder_.SetAttrString(ref, name, text);
      } else {
        TREEWALK_ASSIGN_OR_RETURN(DataValue value, ParseInt());
        builder_.SetAttr(ref, name, value);
      }
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (Peek() != ']') return InvalidArgument(Where("expected ']'"));
    ++pos_;
    return Status::Ok();
  }

  static bool IsIdentStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '#';
  }
  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '#' || c == '-';
  }

  Result<std::string> ParseIdent(const char* what) {
    if (pos_ >= src_.size() || !IsIdentStart(src_[pos_])) {
      return InvalidArgument(Where(std::string("expected ") + what));
    }
    std::size_t start = pos_;
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) ++pos_;
    return std::string(src_.substr(start, pos_ - start));
  }

  Result<std::string> ParseString() {
    ++pos_;  // consume opening quote
    std::string out;
    while (pos_ < src_.size() && src_[pos_] != '"') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
      out.push_back(src_[pos_++]);
    }
    if (pos_ >= src_.size()) return InvalidArgument(Where("unclosed string"));
    ++pos_;  // closing quote
    return out;
  }

  Result<DataValue> ParseInt() {
    std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < src_.size() &&
           std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && src_[start] == '-')) {
      return InvalidArgument(Where("expected integer or string value"));
    }
    return static_cast<DataValue>(
        std::strtoll(std::string(src_.substr(start, pos_ - start)).c_str(),
                     nullptr, 10));
  }

  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  std::string Where(std::string message) const {
    return message + " at offset " + std::to_string(pos_);
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  TreeBuilder builder_;
};

void PrintNode(const Tree& tree, NodeId u, bool skip_zero_attrs,
               std::string& out) {
  out += tree.LabelName(tree.label(u));
  std::string attrs;
  for (AttrId a = 0; a < static_cast<AttrId>(tree.num_attributes()); ++a) {
    DataValue v = tree.attr(a, u);
    if (skip_zero_attrs && v == 0) continue;
    if (!attrs.empty()) attrs += ", ";
    attrs += tree.attributes().NameOf(a);
    attrs += '=';
    if (ValueInterner::IsString(v) || v == kBottom) {
      attrs += '"';
      attrs += tree.values().Render(v);
      attrs += '"';
    } else {
      attrs += std::to_string(v);
    }
  }
  if (!attrs.empty()) {
    out += '[';
    out += attrs;
    out += ']';
  }
  if (!tree.IsLeaf(u)) {
    out += '(';
    for (NodeId c = tree.FirstChild(u); c != kNoNode; c = tree.NextSibling(c)) {
      if (c != tree.FirstChild(u)) out += ", ";
      PrintNode(tree, c, skip_zero_attrs, out);
    }
    out += ')';
  }
}

}  // namespace

Result<Tree> ParseTerm(std::string_view source) {
  return TermParser(source).Parse();
}

std::string PrintTerm(const Tree& tree, bool skip_zero_attrs) {
  if (tree.empty()) return "";
  std::string out;
  PrintNode(tree, tree.root(), skip_zero_attrs, out);
  return out;
}

Tree StringTree(const std::vector<DataValue>& values, std::string_view label,
                std::string_view attr) {
  TreeBuilder builder;
  TreeBuilder::Ref node = builder.AddRoot(label);
  builder.SetAttr(node, attr, values.empty() ? 0 : values.front());
  for (std::size_t i = 1; i < values.size(); ++i) {
    node = builder.AddChild(node, label);
    builder.SetAttr(node, attr, values[i]);
  }
  return builder.Build();
}

std::vector<DataValue> StringValues(const Tree& tree, std::string_view attr) {
  std::vector<DataValue> out;
  AttrId a = tree.FindAttribute(attr);
  if (a == kNoAttr || tree.empty()) return out;
  for (NodeId u = tree.root(); u != kNoNode; u = tree.FirstChild(u)) {
    out.push_back(tree.attr(a, u));
  }
  return out;
}

}  // namespace treewalk
