#ifndef TREEWALK_TREE_TRAVERSAL_H_
#define TREEWALK_TREE_TRAVERSAL_H_

#include <functional>
#include <vector>

#include "src/tree/tree.h"

namespace treewalk {

/// Successor of `u` in document (pre-)order using only local moves, or
/// kNoNode past the last node.  This is the order the Section 7 pebble
/// arithmetic counts in.
NodeId DocumentNext(const Tree& tree, NodeId u);

/// Predecessor of `u` in document order, or kNoNode at the root.
NodeId DocumentPrev(const Tree& tree, NodeId u);

/// All nodes in post-order.
std::vector<NodeId> PostOrder(const Tree& tree);

/// Nodes satisfying `pred`, in document order.
std::vector<NodeId> CollectWhere(const Tree& tree,
                                 const std::function<bool(NodeId)>& pred);

/// All leaves, in document order.
std::vector<NodeId> Leaves(const Tree& tree);

/// Height of the tree (a single node has height 0).
int Height(const Tree& tree);

}  // namespace treewalk

#endif  // TREEWALK_TREE_TRAVERSAL_H_
