#ifndef TREEWALK_TREE_INTERVAL_MATRIX_H_
#define TREEWALK_TREE_INTERVAL_MATRIX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/tree/axis_index.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Half-open run of pre-order node ids.
struct NodeSpan {
  NodeId begin = 0;
  NodeId end = 0;  ///< exclusive
  friend bool operator==(const NodeSpan&, const NodeSpan&) = default;
};

/// Interval-encoded binary relation over Dom(t) x Dom(t): row u is a
/// sorted list of disjoint, non-adjacent pre-order spans instead of an
/// n-bit row.  Because the arena stores nodes in pre-order, the axis
/// relations of the tau vocabulary compress to O(n) total spans —
/// desc(u) is the single range (u, SubtreeEnd(u)), succ(u) a point,
/// sib(u) a suffix of the parent's child runs — so a relation that
/// costs n^2/8 bytes as a NodeMatrix costs O(n) bytes here.
///
/// Representation: a CSR-style layout of shared span pools.  Each row
/// descriptor names a pool slice plus
///
///   - a clip window [clip_begin, clip_end): the slice is intersected
///     with the window on read, so "row ∧ single span" is O(log) and
///     allocates nothing (rows alias the operand's pool);
///   - a complement flag: the row is Dom(t) minus the clipped slice,
///     so negation flips a bit per row and shares every pool.
///
/// Pools are immutable and shared (shared_ptr), which is what makes
/// broadcast rows (every row = one set), transpose snapshots (runs of
/// columns share one active-set image), and clip aliases O(1) space
/// per row.  All logical row contents are produced in normalized form
/// (sorted, disjoint, non-adjacent spans).
///
/// The algebra below mirrors what the compiled evaluator
/// (src/logic/bitset_eval.h) needs from NodeMatrix; operations that can
/// grow data-dependent pools take an optional ScopedMemoryCharge and
/// charge it in chunks *before* growing, mirroring the governor
/// discipline of the dense path.  A null charge never fails.
class IntervalMatrix {
 public:
  struct Row {
    std::uint32_t pool = 0;
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
    NodeId clip_begin = 0;
    NodeId clip_end = 0;
    bool complemented = false;
  };

  IntervalMatrix() = default;
  /// All rows empty over a domain of `n` nodes.
  explicit IntervalMatrix(std::size_t n);

  std::size_t size() const { return n_; }

  bool test(NodeId u, NodeId v) const;
  /// Logical spans of row u: clip and complement applied, normalized.
  std::vector<NodeSpan> RowSpans(NodeId u) const;
  /// Number of set bits in row u; O(spans).
  std::int64_t RowWidth(NodeId u) const;
  /// Row u as a dense bitset / as sorted node ids.
  NodeSet RowSet(NodeId u) const;
  std::vector<NodeId> RowVector(NodeId u) const;

  /// {u : exists v R(u, v)} / {u : forall v R(u, v)}; O(total spans).
  NodeSet AnyPerRow() const;
  NodeSet AllPerRow() const;

  /// Dense materialization (tests and differential oracles only; this
  /// is exactly the O(n^2) object the representation avoids).
  NodeMatrix ToDense() const;

  /// Sum of logical row widths; the "member count" compose orientation
  /// is chosen by.
  std::int64_t TotalWidth() const;
  /// Stored spans across all pools (shared pools counted once).
  std::size_t StoredSpans() const;
  /// Approximate heap footprint: row descriptors plus pools.  Pools
  /// shared with another matrix are counted in full here too — the
  /// accounting is deliberately conservative per holder.
  std::int64_t ApproxBytes() const;

  /// Complement of every row: O(n), shares all pools with `a`.
  static IntervalMatrix Not(const IntervalMatrix& a);
  /// Row-wise intersection / union.  Cost per row is
  /// O(min log max + output) via clip-aliasing and small-side-driven
  /// merges; identical operand row pairs are computed once.
  static Result<IntervalMatrix> And(const IntervalMatrix& a,
                                    const IntervalMatrix& b,
                                    ScopedMemoryCharge* charge);
  static Result<IntervalMatrix> Or(const IntervalMatrix& a,
                                   const IntervalMatrix& b,
                                   ScopedMemoryCharge* charge);
  /// T[v][u] = M[u][v], by a column sweep over span events; runs of
  /// columns between events alias one snapshot slice.
  static Result<IntervalMatrix> Transposed(const IntervalMatrix& a,
                                           ScopedMemoryCharge* charge);
  /// R[u][v] = exists w: P[u][w] & Q[v][w] & (guard == nullptr ||
  /// guard[w]).  Evaluated as R_u = union of Q^T rows over the members
  /// of P_u, iterating whichever operand has the smaller total width
  /// and transposing the result back if the roles were swapped;
  /// repeated P rows are computed once.
  static Result<IntervalMatrix> Compose(const IntervalMatrix& p,
                                        const IntervalMatrix& q,
                                        const NodeSet* guard,
                                        ScopedMemoryCharge* charge);

  /// M[u][v] = s[u]: rows are full or empty; one shared 1-span pool.
  static IntervalMatrix RowBroadcast(const NodeSet& s);
  /// M[u][v] = s[v]: every row aliases one shared image of `s`.
  static Result<IntervalMatrix> ColBroadcast(const NodeSet& s,
                                             ScopedMemoryCharge* charge);

 private:
  friend class IntervalMatrixBuilder;
  // src/logic/selector_cache.cc: serializes pools once plus row
  // descriptors, so pool sharing survives a cache round trip.
  friend class SelectorCacheCodec;
  using Pool = std::vector<NodeSpan>;

  /// Shared body of And/Or (the four complement-flag cases are duals).
  static Result<IntervalMatrix> Combine(const IntervalMatrix& a,
                                        const IntervalMatrix& b,
                                        bool conjunction,
                                        ScopedMemoryCharge* charge);
  /// Appends row u's logical spans to `out` (RowSpans without the
  /// per-call allocation; hot in Compose/Transposed).
  void AppendLogicalRow(NodeId u, std::vector<NodeSpan>& out) const;

  std::size_t n_ = 0;
  std::vector<Row> rows_;
  std::vector<std::shared_ptr<const Pool>> pools_;
};

/// Row-at-a-time construction of an IntervalMatrix with one owned pool.
/// Spans are added in ascending order per row (adjacent runs merge);
/// rows may be committed in any order, each at most once, and may alias
/// a previously committed row — verbatim or narrowed to a window, which
/// is how the sibling axis shares one span list per child family.
/// Pool growth is charged against `charge` in chunks before allocating;
/// with a null charge the builder never fails.
class IntervalMatrixBuilder {
 public:
  explicit IntervalMatrixBuilder(std::size_t n,
                                 ScopedMemoryCharge* charge = nullptr);

  std::size_t size() const { return n_; }

  /// Appends [begin, end) to the pending row; `begin` must be >= the
  /// pending row's last end.
  Status AddSpan(NodeId begin, NodeId end);
  /// Commits the pending spans as row u (complemented: row = Dom \ spans).
  Status CommitRow(NodeId u, bool complemented = false);
  /// Row u = committed row v (O(1), shares the slice).
  Status AliasRow(NodeId u, NodeId v);
  /// Row u = committed row v intersected with [begin, end).
  Status AliasRowWindow(NodeId u, NodeId v, NodeId begin, NodeId end);
  /// Narrows already-committed row u to [begin, end) in place; how the
  /// first child of a family sheds itself from the shared sibling-run
  /// list it anchors.
  Status ReclipRow(NodeId u, NodeId begin, NodeId end);

  Result<IntervalMatrix> Finish() &&;

 private:
  Status ChargeSpans(std::size_t additional);

  std::size_t n_;
  ScopedMemoryCharge* charge_;
  Status status_;
  std::vector<NodeSpan> pending_;
  std::vector<NodeSpan> pool_;
  std::size_t charged_spans_ = 0;
  IntervalMatrix out_;
  std::vector<bool> committed_;
};

}  // namespace treewalk

#endif  // TREEWALK_TREE_INTERVAL_MATRIX_H_
