#include "src/tree/delimited.h"

#include <cassert>

namespace treewalk {

bool IsDelimiterLabel(std::string_view label) {
  return label == kTopLabel || label == kOpenLabel || label == kCloseLabel ||
         label == kLeafLabel;
}

DelimitedTree Delimit(const Tree& tree) {
  assert(!tree.empty());
  TreeBuilder wrapped;
  std::vector<TreeBuilder::Ref> refs(tree.size(), -1);
  TreeBuilder::Ref wtop = wrapped.AddRoot(kTopLabel);
  wrapped.AddChild(wtop, kOpenLabel);

  // Recursive copy keeping #open before and #close after child blocks.
  struct Copier {
    const Tree& tree;
    TreeBuilder& out;
    std::vector<TreeBuilder::Ref>& refs;

    TreeBuilder::Ref Copy(NodeId u, TreeBuilder::Ref parent) {
      TreeBuilder::Ref ref = out.AddChild(parent, tree.LabelName(tree.label(u)));
      refs[static_cast<std::size_t>(u)] = ref;
      for (AttrId a = 0; a < static_cast<AttrId>(tree.num_attributes()); ++a) {
        out.SetAttr(ref, tree.attributes().NameOf(a), tree.attr(a, u));
      }
      if (tree.IsLeaf(u)) {
        out.AddChild(ref, kLeafLabel);
      } else {
        out.AddChild(ref, kOpenLabel);
        for (NodeId c = tree.FirstChild(u); c != kNoNode;
             c = tree.NextSibling(c)) {
          Copy(c, ref);
        }
        out.AddChild(ref, kCloseLabel);
      }
      return ref;
    }
  };
  Copier copier{tree, wrapped, refs};
  copier.Copy(tree.root(), wtop);
  wrapped.AddChild(wtop, kCloseLabel);

  std::vector<NodeId> ref_to_node;
  DelimitedTree result;
  result.tree = wrapped.Build(&ref_to_node);
  result.tree.AdoptValues(tree);

  // Delimiters carry kBottom in every attribute column.
  result.to_delimited.assign(tree.size(), kNoNode);
  result.to_original.assign(result.tree.size(), kNoNode);
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    NodeId d = ref_to_node[static_cast<std::size_t>(
        refs[static_cast<std::size_t>(u)])];
    result.to_delimited[static_cast<std::size_t>(u)] = d;
    result.to_original[static_cast<std::size_t>(d)] = u;
  }
  for (NodeId d = 0; d < static_cast<NodeId>(result.tree.size()); ++d) {
    if (result.to_original[static_cast<std::size_t>(d)] != kNoNode) continue;
    for (AttrId a = 0; a < static_cast<AttrId>(result.tree.num_attributes());
         ++a) {
      result.tree.set_attr(a, d, kBottom);
    }
  }
  return result;
}

}  // namespace treewalk
