#include "src/tree/interval_matrix.h"

#include <algorithm>
#include <array>
#include <map>
#include <utility>

namespace treewalk {
namespace {

using Pool = std::vector<NodeSpan>;
using PoolList = std::vector<std::shared_ptr<const Pool>>;

/// Spans per charge step: 32768 spans = 256KiB.  Coarse enough that a
/// million-span pool makes ~32 governor calls, fine enough that a
/// budget trip happens within 256KiB of the ceiling.
constexpr std::size_t kSpanChargeChunk = 32768;

/// Clipped, read-only window onto a row's stored slice.  Only the
/// first and last visible spans can be cut by the clip window, so
/// ViewAt's two clamps are exact for every index.
struct SliceView {
  const NodeSpan* spans = nullptr;
  std::size_t count = 0;
  NodeId cb = 0;
  NodeId ce = 0;
};

NodeSpan ViewAt(const SliceView& v, std::size_t i) {
  NodeSpan s = v.spans[i];
  if (s.begin < v.cb) s.begin = v.cb;
  if (s.end > v.ce) s.end = v.ce;
  return s;
}

SliceView MakeView(const PoolList& pools, const IntervalMatrix::Row& r) {
  SliceView v;
  if (r.count == 0 || r.clip_begin >= r.clip_end) return v;
  const NodeSpan* base = pools[r.pool]->data() + r.offset;
  const NodeSpan* lo = std::partition_point(
      base, base + r.count,
      [&](const NodeSpan& s) { return s.end <= r.clip_begin; });
  const NodeSpan* hi = std::partition_point(
      lo, base + r.count,
      [&](const NodeSpan& s) { return s.begin < r.clip_end; });
  v.spans = lo;
  v.count = static_cast<std::size_t>(hi - lo);
  v.cb = r.clip_begin;
  v.ce = r.clip_end;
  return v;
}

void AppendView(const SliceView& v, std::vector<NodeSpan>& out) {
  for (std::size_t i = 0; i < v.count; ++i) out.push_back(ViewAt(v, i));
}

/// out = [0, n) \ a, for normalized `a`.
void ComplementInto(const std::vector<NodeSpan>& a, NodeId n,
                    std::vector<NodeSpan>& out) {
  NodeId cur = 0;
  for (const NodeSpan& s : a) {
    if (cur < s.begin) out.push_back({cur, s.begin});
    cur = s.end;
  }
  if (cur < n) out.push_back({cur, n});
}

/// out = a ∩ b.  Iterates the shorter list, jumping into the longer
/// with a rolling binary search: O(min·log max + |out|).
void IntersectInto(const std::vector<NodeSpan>& a,
                   const std::vector<NodeSpan>& b,
                   std::vector<NodeSpan>& out) {
  const std::vector<NodeSpan>* small = &a;
  const std::vector<NodeSpan>* big = &b;
  if (small->size() > big->size()) std::swap(small, big);
  std::size_t j = 0;
  for (const NodeSpan& s : *small) {
    j = static_cast<std::size_t>(
        std::partition_point(
            big->begin() + static_cast<std::ptrdiff_t>(j), big->end(),
            [&](const NodeSpan& t) { return t.end <= s.begin; }) -
        big->begin());
    for (std::size_t k = j; k < big->size() && (*big)[k].begin < s.end; ++k) {
      NodeId lo = std::max(s.begin, (*big)[k].begin);
      NodeId hi = std::min(s.end, (*big)[k].end);
      if (lo < hi) out.push_back({lo, hi});
    }
  }
}

/// out = a \ b: each span of `a` with the overlapping holes of `b`
/// cut out.  O(|a| + overlap + log); |out| >= |a| - |b| keeps it
/// output-bounded.
void SubtractInto(const std::vector<NodeSpan>& a,
                  const std::vector<NodeSpan>& b,
                  std::vector<NodeSpan>& out) {
  std::size_t j = 0;
  for (const NodeSpan& s : a) {
    j = static_cast<std::size_t>(
        std::partition_point(
            b.begin() + static_cast<std::ptrdiff_t>(j), b.end(),
            [&](const NodeSpan& t) { return t.end <= s.begin; }) -
        b.begin());
    NodeId cur = s.begin;
    std::size_t k = j;
    while (cur < s.end) {
      if (k < b.size() && b[k].begin < s.end) {
        if (b[k].begin > cur) out.push_back({cur, b[k].begin});
        cur = std::max(cur, b[k].end);
        if (b[k].end <= s.end) {
          ++k;
        } else {
          break;
        }
      } else {
        out.push_back({cur, s.end});
        cur = s.end;
      }
    }
  }
}

/// out = a ∪ b; linear merge, coalescing overlap and adjacency.
void UnionInto(const std::vector<NodeSpan>& a, const std::vector<NodeSpan>& b,
               std::vector<NodeSpan>& out) {
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    NodeSpan s;
    if (j >= b.size() || (i < a.size() && a[i].begin <= b[j].begin)) {
      s = a[i++];
    } else {
      s = b[j++];
    }
    if (!out.empty() && s.begin <= out.back().end) {
      out.back().end = std::max(out.back().end, s.end);
    } else {
      out.push_back(s);
    }
  }
}

std::array<std::uint64_t, 3> PackRow(const IntervalMatrix::Row& r) {
  return {(std::uint64_t{r.pool} << 32) | r.offset,
          (std::uint64_t{r.count} << 32) |
              static_cast<std::uint32_t>(r.clip_begin),
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r.clip_end))
           << 32) |
              (r.complemented ? 1u : 0u)};
}

/// Chunk-charged append-only span pool: Reserve() charges rounded-up
/// capacity *before* the vector grows, so a budget trip happens before
/// the allocation, not after.
class ChargedSpanPool {
 public:
  explicit ChargedSpanPool(ScopedMemoryCharge* charge) : charge_(charge) {}

  Status Reserve(std::size_t additional) {
    std::size_t need = spans.size() + additional;
    if (need <= charged_) return Status::Ok();
    std::size_t target =
        ((need + kSpanChargeChunk - 1) / kSpanChargeChunk) * kSpanChargeChunk;
    if (charge_ != nullptr) {
      TREEWALK_RETURN_IF_ERROR(charge_->Add(
          static_cast<std::int64_t>((target - charged_) * sizeof(NodeSpan))));
    }
    charged_ = target;
    return Status::Ok();
  }

  std::vector<NodeSpan> spans;

 private:
  ScopedMemoryCharge* charge_;
  std::size_t charged_ = 0;
};

/// Deduplicating importer of foreign pools into a result matrix, so an
/// aliased row costs one shared_ptr no matter how many rows alias it.
class PoolImporter {
 public:
  explicit PoolImporter(PoolList& pools) : pools_(pools) {}

  std::uint32_t Import(const std::shared_ptr<const Pool>& pool) {
    auto [it, fresh] = index_.try_emplace(pool.get(), 0);
    if (fresh) {
      pools_.push_back(pool);
      it->second = static_cast<std::uint32_t>(pools_.size() - 1);
    }
    return it->second;
  }

 private:
  PoolList& pools_;
  std::map<const Pool*, std::uint32_t> index_;
};

/// Merged-run active set for the transpose sweep: insert/erase one
/// point, keeping runs sorted, disjoint, and non-adjacent.
void AddPoint(std::map<NodeId, NodeId>& runs, NodeId u) {
  NodeId b = u, e = u + 1;
  auto it = runs.lower_bound(u);
  if (it != runs.end() && it->first == e) {
    e = it->second;
    it = runs.erase(it);
  }
  if (it != runs.begin()) {
    auto prev = std::prev(it);
    if (prev->second == u) {
      b = prev->first;
      runs.erase(prev);
    }
  }
  runs[b] = e;
}

void RemovePoint(std::map<NodeId, NodeId>& runs, NodeId u) {
  auto it = runs.upper_bound(u);
  TREEWALK_CHECK(it != runs.begin(), "RemovePoint: node not active");
  --it;
  NodeId b = it->first, e = it->second;
  TREEWALK_CHECK(b <= u && u < e, "RemovePoint: node not active");
  runs.erase(it);
  if (b < u) runs[b] = u;
  if (u + 1 < e) runs[u + 1] = e;
}

/// Maximal runs of set bits, normalized.
std::vector<NodeSpan> SetToSpans(const NodeSet& s) {
  std::vector<NodeSpan> out;
  const NodeId n = static_cast<NodeId>(s.size());
  bool in = false;
  NodeId start = 0;
  for (NodeId u = 0; u < n; ++u) {
    bool bit = s.test(u);
    if (bit && !in) {
      start = u;
      in = true;
    } else if (!bit && in) {
      out.push_back({start, u});
      in = false;
    }
  }
  if (in) out.push_back({start, n});
  return out;
}

}  // namespace

IntervalMatrix::IntervalMatrix(std::size_t n) : n_(n), rows_(n) {}

void IntervalMatrix::AppendLogicalRow(NodeId u,
                                      std::vector<NodeSpan>& out) const {
  const Row& r = rows_[static_cast<std::size_t>(u)];
  if (!r.complemented) {
    if (r.count > 0) AppendView(MakeView(pools_, r), out);
    return;
  }
  std::vector<NodeSpan> pos;
  if (r.count > 0) AppendView(MakeView(pools_, r), pos);
  ComplementInto(pos, static_cast<NodeId>(n_), out);
}

bool IntervalMatrix::test(NodeId u, NodeId v) const {
  const Row& r = rows_[static_cast<std::size_t>(u)];
  bool in = false;
  if (r.count > 0 && v >= r.clip_begin && v < r.clip_end) {
    const NodeSpan* base = pools_[r.pool]->data() + r.offset;
    const NodeSpan* it = std::partition_point(
        base, base + r.count, [&](const NodeSpan& s) { return s.end <= v; });
    in = it != base + r.count && it->begin <= v;
  }
  return r.complemented ? !in : in;
}

std::vector<NodeSpan> IntervalMatrix::RowSpans(NodeId u) const {
  std::vector<NodeSpan> out;
  AppendLogicalRow(u, out);
  return out;
}

std::int64_t IntervalMatrix::RowWidth(NodeId u) const {
  const Row& r = rows_[static_cast<std::size_t>(u)];
  std::int64_t w = 0;
  if (r.count > 0) {
    SliceView v = MakeView(pools_, r);
    for (std::size_t i = 0; i < v.count; ++i) {
      NodeSpan s = ViewAt(v, i);
      w += s.end - s.begin;
    }
  }
  return r.complemented ? static_cast<std::int64_t>(n_) - w : w;
}

NodeSet IntervalMatrix::RowSet(NodeId u) const {
  NodeSet s(n_);
  std::vector<NodeSpan> spans;
  AppendLogicalRow(u, spans);
  for (const NodeSpan& sp : spans) s.SetRange(sp.begin, sp.end);
  return s;
}

std::vector<NodeId> IntervalMatrix::RowVector(NodeId u) const {
  std::vector<NodeId> out;
  std::vector<NodeSpan> spans;
  AppendLogicalRow(u, spans);
  for (const NodeSpan& sp : spans)
    for (NodeId v = sp.begin; v < sp.end; ++v) out.push_back(v);
  return out;
}

NodeSet IntervalMatrix::AnyPerRow() const {
  NodeSet s(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u)
    if (RowWidth(u) > 0) s.set(u);
  return s;
}

NodeSet IntervalMatrix::AllPerRow() const {
  NodeSet s(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u)
    if (RowWidth(u) == static_cast<std::int64_t>(n_)) s.set(u);
  return s;
}

NodeMatrix IntervalMatrix::ToDense() const {
  NodeMatrix m(n_);
  std::vector<NodeSpan> spans;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    spans.clear();
    AppendLogicalRow(u, spans);
    for (const NodeSpan& sp : spans) m.SetRowRange(u, sp.begin, sp.end);
  }
  return m;
}

std::int64_t IntervalMatrix::TotalWidth() const {
  std::int64_t w = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) w += RowWidth(u);
  return w;
}

std::size_t IntervalMatrix::StoredSpans() const {
  std::size_t total = 0;
  for (const auto& pool : pools_)
    if (pool != nullptr) total += pool->size();
  return total;
}

std::int64_t IntervalMatrix::ApproxBytes() const {
  std::int64_t bytes = static_cast<std::int64_t>(sizeof(IntervalMatrix)) +
                       static_cast<std::int64_t>(rows_.size() * sizeof(Row));
  for (const auto& pool : pools_) {
    bytes += static_cast<std::int64_t>(sizeof(Pool));
    if (pool != nullptr)
      bytes += static_cast<std::int64_t>(pool->size() * sizeof(NodeSpan));
  }
  return bytes;
}

IntervalMatrix IntervalMatrix::Not(const IntervalMatrix& a) {
  IntervalMatrix m = a;
  for (Row& r : m.rows_) r.complemented = !r.complemented;
  return m;
}

Result<IntervalMatrix> IntervalMatrix::And(const IntervalMatrix& a,
                                           const IntervalMatrix& b,
                                           ScopedMemoryCharge* charge) {
  return Combine(a, b, /*conjunction=*/true, charge);
}

Result<IntervalMatrix> IntervalMatrix::Or(const IntervalMatrix& a,
                                          const IntervalMatrix& b,
                                          ScopedMemoryCharge* charge) {
  return Combine(a, b, /*conjunction=*/false, charge);
}

Result<IntervalMatrix> IntervalMatrix::Combine(const IntervalMatrix& a,
                                               const IntervalMatrix& b,
                                               bool conjunction,
                                               ScopedMemoryCharge* charge) {
  TREEWALK_CHECK(a.n_ == b.n_, "IntervalMatrix::Combine: size mismatch");
  const std::size_t n = a.n_;
  const NodeId nn = static_cast<NodeId>(n);
  IntervalMatrix m(n);
  if (charge != nullptr) {
    TREEWALK_RETURN_IF_ERROR(
        charge->Add(static_cast<std::int64_t>(n * sizeof(Row))));
  }
  m.pools_.push_back(nullptr);  // slot 0: owned pool, installed at the end
  PoolImporter importer(m.pools_);
  ChargedSpanPool owned(charge);
  std::map<std::array<std::uint64_t, 6>, Row> memo;
  std::vector<NodeSpan> bufa, bufb, out;

  auto alias_of = [&](const IntervalMatrix& src, const Row& r) {
    Row copy = r;
    if (copy.count > 0) copy.pool = importer.Import(src.pools_[r.pool]);
    return copy;
  };
  const Row kEmptyRow{};
  Row full_row;
  full_row.complemented = true;

  for (NodeId u = 0; u < nn; ++u) {
    const Row& ra = a.rows_[static_cast<std::size_t>(u)];
    const Row& rb = b.rows_[static_cast<std::size_t>(u)];
    std::array<std::uint64_t, 6> key;
    {
      auto ka = PackRow(ra);
      auto kb = PackRow(rb);
      std::copy(ka.begin(), ka.end(), key.begin());
      std::copy(kb.begin(), kb.end(), key.begin() + 3);
    }
    auto found = memo.find(key);
    if (found != memo.end()) {
      m.rows_[static_cast<std::size_t>(u)] = found->second;
      continue;
    }

    SliceView va = MakeView(a.pools_, ra);
    SliceView vb = MakeView(b.pools_, rb);
    const bool fa = ra.complemented, fb = rb.complemented;
    const bool ea = va.count == 0, eb = vb.count == 0;

    Row result;
    bool computed = false;
    if (conjunction) {
      if ((ea && !fa) || (eb && !fb)) {  // one side logically empty
        result = kEmptyRow;
        computed = true;
      } else if (ea && fa) {  // a is full
        result = alias_of(b, rb);
        computed = true;
      } else if (eb && fb) {  // b is full
        result = alias_of(a, ra);
        computed = true;
      }
    } else {
      if ((ea && fa) || (eb && fb)) {  // one side logically full
        result = full_row;
        computed = true;
      } else if (ea && !fa) {  // a is empty
        result = alias_of(b, rb);
        computed = true;
      } else if (eb && !fb) {  // b is empty
        result = alias_of(a, ra);
        computed = true;
      }
    }
    if (!computed && fa == fb && ra.count > 0 && rb.count > 0 &&
        a.pools_[ra.pool].get() == b.pools_[rb.pool].get() &&
        ra.offset == rb.offset && ra.count == rb.count &&
        ra.clip_begin == rb.clip_begin && ra.clip_end == rb.clip_end) {
      result = alias_of(a, ra);  // identical operand rows; idempotent op
      computed = true;
    }
    if (!computed && conjunction && !fa && !fb) {
      // Single-span ∧ positive row: narrow the other row's clip window
      // and alias its pool — the desc/anc ∧ broadcast workhorse.
      if (va.count == 1) {
        NodeSpan s = ViewAt(va, 0);
        result = alias_of(b, rb);
        result.clip_begin = std::max(result.clip_begin, s.begin);
        result.clip_end = std::min(result.clip_end, s.end);
        computed = true;
      } else if (vb.count == 1) {
        NodeSpan s = ViewAt(vb, 0);
        result = alias_of(a, ra);
        result.clip_begin = std::max(result.clip_begin, s.begin);
        result.clip_end = std::min(result.clip_end, s.end);
        computed = true;
      }
    }
    if (!computed) {
      bufa.clear();
      bufb.clear();
      out.clear();
      AppendView(va, bufa);
      AppendView(vb, bufb);
      bool complemented;
      if (conjunction) {
        if (!fa && !fb) {
          IntersectInto(bufa, bufb, out);
          complemented = false;
        } else if (!fa && fb) {
          SubtractInto(bufa, bufb, out);
          complemented = false;
        } else if (fa && !fb) {
          SubtractInto(bufb, bufa, out);
          complemented = false;
        } else {
          UnionInto(bufa, bufb, out);
          complemented = true;
        }
      } else {
        if (!fa && !fb) {
          UnionInto(bufa, bufb, out);
          complemented = false;
        } else if (!fa && fb) {
          SubtractInto(bufb, bufa, out);
          complemented = true;
        } else if (fa && !fb) {
          SubtractInto(bufa, bufb, out);
          complemented = true;
        } else {
          IntersectInto(bufa, bufb, out);
          complemented = true;
        }
      }
      TREEWALK_RETURN_IF_ERROR(owned.Reserve(out.size()));
      result.pool = 0;
      result.offset = static_cast<std::uint32_t>(owned.spans.size());
      result.count = static_cast<std::uint32_t>(out.size());
      result.clip_begin = 0;
      result.clip_end = nn;
      result.complemented = complemented;
      owned.spans.insert(owned.spans.end(), out.begin(), out.end());
    }
    m.rows_[static_cast<std::size_t>(u)] = result;
    memo.emplace(key, result);
  }
  m.pools_[0] = std::make_shared<Pool>(std::move(owned.spans));
  return m;
}

Result<IntervalMatrix> IntervalMatrix::Transposed(const IntervalMatrix& a,
                                                  ScopedMemoryCharge* charge) {
  const std::size_t n = a.n_;
  const NodeId nn = static_cast<NodeId>(n);
  IntervalMatrix m(n);
  if (charge != nullptr) {
    TREEWALK_RETURN_IF_ERROR(
        charge->Add(static_cast<std::int64_t>(n * sizeof(Row))));
  }
  // Column sweep: +u where row u's spans open, -u where they close;
  // between events the active row set is constant and every column in
  // the gap aliases one snapshot of it.
  std::vector<std::pair<NodeId, std::int64_t>> events;
  {
    std::vector<NodeSpan> buf;
    for (NodeId u = 0; u < nn; ++u) {
      buf.clear();
      a.AppendLogicalRow(u, buf);
      for (const NodeSpan& s : buf) {
        events.emplace_back(s.begin, u + 1);
        if (s.end < nn) events.emplace_back(s.end, -static_cast<std::int64_t>(u + 1));
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  m.pools_.push_back(nullptr);
  ChargedSpanPool owned(charge);
  std::map<NodeId, NodeId> runs;
  auto snapshot = [&](NodeId from, NodeId to) -> Status {
    if (from >= to) return Status::Ok();
    TREEWALK_RETURN_IF_ERROR(owned.Reserve(runs.size()));
    Row r;
    r.pool = 0;
    r.offset = static_cast<std::uint32_t>(owned.spans.size());
    r.count = static_cast<std::uint32_t>(runs.size());
    r.clip_begin = 0;
    r.clip_end = nn;
    for (const auto& [b, e] : runs) owned.spans.push_back({b, e});
    for (NodeId v = from; v < to; ++v) m.rows_[static_cast<std::size_t>(v)] = r;
    return Status::Ok();
  };
  NodeId cur = 0;
  std::size_t i = 0;
  while (i < events.size()) {
    NodeId p = events[i].first;
    TREEWALK_RETURN_IF_ERROR(snapshot(cur, p));
    for (; i < events.size() && events[i].first == p; ++i) {
      std::int64_t ev = events[i].second;
      if (ev > 0) {
        AddPoint(runs, static_cast<NodeId>(ev - 1));
      } else {
        RemovePoint(runs, static_cast<NodeId>(-ev - 1));
      }
    }
    cur = p;
  }
  TREEWALK_RETURN_IF_ERROR(snapshot(cur, nn));
  m.pools_[0] = std::make_shared<Pool>(std::move(owned.spans));
  return m;
}

Result<IntervalMatrix> IntervalMatrix::Compose(const IntervalMatrix& p,
                                               const IntervalMatrix& q,
                                               const NodeSet* guard,
                                               ScopedMemoryCharge* charge) {
  TREEWALK_CHECK(p.n_ == q.n_, "IntervalMatrix::Compose: size mismatch");
  const std::size_t n = p.n_;
  const NodeId nn = static_cast<NodeId>(n);
  // R[u][v] = ∃w P[u][w] ∧ Q[v][w] ∧ G[w] is symmetric in (P, Q) up to
  // transposing R, so drive the join from whichever side has fewer
  // members to iterate and flip the result back if roles were swapped.
  const bool swapped = p.TotalWidth() > q.TotalWidth();
  const IntervalMatrix& drv = swapped ? q : p;
  const IntervalMatrix& oth = swapped ? p : q;
  auto qt_result = Transposed(oth, charge);
  if (!qt_result.ok()) return qt_result.status();
  IntervalMatrix qt = std::move(qt_result).value();

  IntervalMatrix m(n);
  if (charge != nullptr) {
    TREEWALK_RETURN_IF_ERROR(
        charge->Add(static_cast<std::int64_t>(n * sizeof(Row))));
  }
  m.pools_.push_back(nullptr);
  PoolImporter importer(m.pools_);
  ChargedSpanPool owned(charge);
  std::map<std::array<std::uint64_t, 3>, Row> memo;
  std::vector<NodeSpan> rowbuf, concat, out;

  for (NodeId u = 0; u < nn; ++u) {
    const Row& ru = drv.rows_[static_cast<std::size_t>(u)];
    auto key = PackRow(ru);
    auto found = memo.find(key);
    if (found != memo.end()) {
      m.rows_[static_cast<std::size_t>(u)] = found->second;
      continue;
    }
    rowbuf.clear();
    drv.AppendLogicalRow(u, rowbuf);
    concat.clear();
    std::size_t contributors = 0;
    Row last_contrib{};
    for (const NodeSpan& s : rowbuf) {
      for (NodeId w = s.begin; w < s.end; ++w) {
        if (guard != nullptr && !guard->test(w)) continue;
        const Row& rw = qt.rows_[static_cast<std::size_t>(w)];
        SliceView vw = MakeView(qt.pools_, rw);  // transpose rows: positive
        if (vw.count == 0) continue;
        ++contributors;
        last_contrib = rw;
        AppendView(vw, concat);
      }
    }
    Row result;
    if (contributors == 1) {
      result = last_contrib;
      result.pool = importer.Import(qt.pools_[last_contrib.pool]);
    } else if (contributors > 1) {
      std::sort(concat.begin(), concat.end(),
                [](const NodeSpan& x, const NodeSpan& y) {
                  return x.begin < y.begin;
                });
      out.clear();
      for (const NodeSpan& s : concat) {
        if (!out.empty() && s.begin <= out.back().end) {
          out.back().end = std::max(out.back().end, s.end);
        } else {
          out.push_back(s);
        }
      }
      TREEWALK_RETURN_IF_ERROR(owned.Reserve(out.size()));
      result.pool = 0;
      result.offset = static_cast<std::uint32_t>(owned.spans.size());
      result.count = static_cast<std::uint32_t>(out.size());
      result.clip_begin = 0;
      result.clip_end = nn;
      owned.spans.insert(owned.spans.end(), out.begin(), out.end());
    }
    m.rows_[static_cast<std::size_t>(u)] = result;
    memo.emplace(key, result);
  }
  m.pools_[0] = std::make_shared<Pool>(std::move(owned.spans));
  if (swapped) return Transposed(m, charge);
  return m;
}

IntervalMatrix IntervalMatrix::RowBroadcast(const NodeSet& s) {
  const std::size_t n = s.size();
  const NodeId nn = static_cast<NodeId>(n);
  IntervalMatrix m(n);
  auto pool = std::make_shared<Pool>();
  if (n > 0) pool->push_back({0, nn});
  m.pools_.push_back(std::move(pool));
  Row full;
  full.pool = 0;
  full.offset = 0;
  full.count = 1;
  full.clip_begin = 0;
  full.clip_end = nn;
  for (NodeId u = 0; u < nn; ++u)
    if (s.test(u)) m.rows_[static_cast<std::size_t>(u)] = full;
  return m;
}

Result<IntervalMatrix> IntervalMatrix::ColBroadcast(const NodeSet& s,
                                                    ScopedMemoryCharge* charge) {
  const std::size_t n = s.size();
  const NodeId nn = static_cast<NodeId>(n);
  IntervalMatrix m(n);
  if (charge != nullptr) {
    TREEWALK_RETURN_IF_ERROR(
        charge->Add(static_cast<std::int64_t>(n * sizeof(Row))));
  }
  std::vector<NodeSpan> spans = SetToSpans(s);
  if (charge != nullptr) {
    TREEWALK_RETURN_IF_ERROR(charge->Add(
        static_cast<std::int64_t>(spans.size() * sizeof(NodeSpan))));
  }
  Row shared;
  shared.pool = 0;
  shared.offset = 0;
  shared.count = static_cast<std::uint32_t>(spans.size());
  shared.clip_begin = 0;
  shared.clip_end = nn;
  if (shared.count > 0) {
    for (NodeId u = 0; u < nn; ++u) m.rows_[static_cast<std::size_t>(u)] = shared;
  }
  m.pools_.push_back(std::make_shared<Pool>(std::move(spans)));
  return m;
}

IntervalMatrixBuilder::IntervalMatrixBuilder(std::size_t n,
                                             ScopedMemoryCharge* charge)
    : n_(n), charge_(charge), out_(n), committed_(n, false) {
  if (charge_ != nullptr) {
    status_ = charge_->Add(
        static_cast<std::int64_t>(n * sizeof(IntervalMatrix::Row)));
  }
}

Status IntervalMatrixBuilder::ChargeSpans(std::size_t additional) {
  std::size_t need = pool_.size() + additional;
  if (need <= charged_spans_) return Status::Ok();
  std::size_t target =
      ((need + kSpanChargeChunk - 1) / kSpanChargeChunk) * kSpanChargeChunk;
  if (charge_ != nullptr) {
    TREEWALK_RETURN_IF_ERROR(charge_->Add(static_cast<std::int64_t>(
        (target - charged_spans_) * sizeof(NodeSpan))));
  }
  charged_spans_ = target;
  return Status::Ok();
}

Status IntervalMatrixBuilder::AddSpan(NodeId begin, NodeId end) {
  if (!status_.ok()) return status_;
  if (begin < 0 || begin >= end || end > static_cast<NodeId>(n_)) {
    return status_ = Internal("IntervalMatrixBuilder::AddSpan: bad span");
  }
  if (!pending_.empty()) {
    if (begin < pending_.back().end) {
      return status_ = Internal("IntervalMatrixBuilder::AddSpan: not sorted");
    }
    if (begin == pending_.back().end) {  // adjacent: coalesce
      pending_.back().end = end;
      return Status::Ok();
    }
  }
  pending_.push_back({begin, end});
  return Status::Ok();
}

Status IntervalMatrixBuilder::CommitRow(NodeId u, bool complemented) {
  if (!status_.ok()) return status_;
  if (u < 0 || u >= static_cast<NodeId>(n_) ||
      committed_[static_cast<std::size_t>(u)]) {
    return status_ = Internal("IntervalMatrixBuilder::CommitRow: bad row");
  }
  Status charged = ChargeSpans(pending_.size());
  if (!charged.ok()) return status_ = charged;
  IntervalMatrix::Row r;
  r.pool = 0;
  r.offset = static_cast<std::uint32_t>(pool_.size());
  r.count = static_cast<std::uint32_t>(pending_.size());
  r.clip_begin = 0;
  r.clip_end = static_cast<NodeId>(n_);
  r.complemented = complemented;
  pool_.insert(pool_.end(), pending_.begin(), pending_.end());
  pending_.clear();
  out_.rows_[static_cast<std::size_t>(u)] = r;
  committed_[static_cast<std::size_t>(u)] = true;
  return Status::Ok();
}

Status IntervalMatrixBuilder::AliasRow(NodeId u, NodeId v) {
  if (!status_.ok()) return status_;
  if (u < 0 || u >= static_cast<NodeId>(n_) || v < 0 ||
      v >= static_cast<NodeId>(n_) ||
      committed_[static_cast<std::size_t>(u)] ||
      !committed_[static_cast<std::size_t>(v)]) {
    return status_ = Internal("IntervalMatrixBuilder::AliasRow: bad rows");
  }
  out_.rows_[static_cast<std::size_t>(u)] =
      out_.rows_[static_cast<std::size_t>(v)];
  committed_[static_cast<std::size_t>(u)] = true;
  return Status::Ok();
}

Status IntervalMatrixBuilder::AliasRowWindow(NodeId u, NodeId v, NodeId begin,
                                             NodeId end) {
  if (!status_.ok()) return status_;
  if (u < 0 || u >= static_cast<NodeId>(n_) || v < 0 ||
      v >= static_cast<NodeId>(n_) ||
      committed_[static_cast<std::size_t>(u)] ||
      !committed_[static_cast<std::size_t>(v)]) {
    return status_ =
               Internal("IntervalMatrixBuilder::AliasRowWindow: bad rows");
  }
  IntervalMatrix::Row r = out_.rows_[static_cast<std::size_t>(v)];
  if (r.complemented) {
    // Clip applies to the stored slice, not the complement: a windowed
    // complemented row is not representable by clip narrowing.
    return status_ =
               Internal("IntervalMatrixBuilder::AliasRowWindow: complemented");
  }
  r.clip_begin = std::max(r.clip_begin, begin);
  r.clip_end = std::min(r.clip_end, end);
  out_.rows_[static_cast<std::size_t>(u)] = r;
  committed_[static_cast<std::size_t>(u)] = true;
  return Status::Ok();
}

Status IntervalMatrixBuilder::ReclipRow(NodeId u, NodeId begin, NodeId end) {
  if (!status_.ok()) return status_;
  if (u < 0 || u >= static_cast<NodeId>(n_) ||
      !committed_[static_cast<std::size_t>(u)]) {
    return status_ = Internal("IntervalMatrixBuilder::ReclipRow: bad row");
  }
  IntervalMatrix::Row& r = out_.rows_[static_cast<std::size_t>(u)];
  if (r.complemented) {
    return status_ = Internal("IntervalMatrixBuilder::ReclipRow: complemented");
  }
  r.clip_begin = std::max(r.clip_begin, begin);
  r.clip_end = std::min(r.clip_end, end);
  return Status::Ok();
}

Result<IntervalMatrix> IntervalMatrixBuilder::Finish() && {
  if (!status_.ok()) return status_;
  out_.pools_.push_back(std::make_shared<Pool>(std::move(pool_)));
  return std::move(out_);
}

}  // namespace treewalk
