#include "src/tree/tree.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

// The view pointers (nodes_view_, attr_views_) alias this object's own
// vectors when the storage is owned, so the compiler-generated copy
// would leave them dangling at the source's buffers; copies rebind each
// view that pointed into the source's owned storage and keep mapped
// views (plus the mapping_ owner) verbatim.
Tree::Tree(const Tree& other)
    : nodes_(other.nodes_),
      labels_(other.labels_),
      attrs_(other.attrs_),
      attr_values_(other.attr_values_),
      nodes_view_(other.nodes_view_),
      node_count_(other.node_count_),
      attr_views_(other.attr_views_),
      postorder_view_(other.postorder_view_),
      mapping_(other.mapping_),
      snapshot_stats_(other.snapshot_stats_),
      values_(other.values_) {
  RebindOwnedViews(other);
}

Tree& Tree::operator=(const Tree& other) {
  if (this != &other) {
    Tree copy(other);
    *this = std::move(copy);
  }
  return *this;
}

Tree::Tree(Tree&& other) noexcept { *this = std::move(other); }

Tree& Tree::operator=(Tree&& other) noexcept {
  if (this == &other) return *this;
  // Ownedness must be read before the vectors move out of `other`.
  const bool nodes_owned = other.nodes_view_ == other.nodes_.data();
  std::vector<bool> column_owned(other.attr_views_.size());
  for (std::size_t a = 0; a < column_owned.size(); ++a) {
    column_owned[a] = other.attr_views_[a] == other.attr_values_[a].data();
  }
  nodes_ = std::move(other.nodes_);
  labels_ = std::move(other.labels_);
  attrs_ = std::move(other.attrs_);
  attr_values_ = std::move(other.attr_values_);
  node_count_ = other.node_count_;
  attr_views_ = std::move(other.attr_views_);
  postorder_view_ = other.postorder_view_;
  mapping_ = std::move(other.mapping_);
  snapshot_stats_ = std::move(other.snapshot_stats_);
  values_ = std::move(other.values_);
  // Vector moves keep heap buffers, so rebinding is a no-op for data
  // that was on the heap; it matters for empty/SSO-free edge cases and
  // keeps the invariant "owned views point at own storage" literal.
  nodes_view_ = nodes_owned ? nodes_.data() : other.nodes_view_;
  for (std::size_t a = 0; a < attr_views_.size(); ++a) {
    if (column_owned[a]) attr_views_[a] = attr_values_[a].data();
  }
  other.nodes_view_ = nullptr;
  other.node_count_ = 0;
  other.postorder_view_ = nullptr;
  return *this;
}

void Tree::RebindOwnedViews(const Tree& other) {
  if (other.nodes_view_ == other.nodes_.data()) nodes_view_ = nodes_.data();
  for (std::size_t a = 0; a < attr_views_.size(); ++a) {
    if (other.attr_views_[a] == other.attr_values_[a].data()) {
      attr_views_[a] = attr_values_[a].data();
    }
  }
}

DataValue* Tree::MutableColumn(AttrId a) {
  auto& owned = attr_values_[static_cast<std::size_t>(a)];
  const DataValue*& view = attr_views_[static_cast<std::size_t>(a)];
  if (view != owned.data()) {
    // Snapshot-mapped column: detach copy-on-write.  Other trees (and
    // the file) sharing the mapping are unaffected.
    owned.assign(view, view + node_count_);
    view = owned.data();
  }
  return owned.data();
}

int Tree::Depth(NodeId u) const {
  int depth = 0;
  for (NodeId p = Parent(u); p != kNoNode; p = Parent(p)) ++depth;
  return depth;
}

AttrId Tree::AddAttribute(std::string_view name) {
  std::int64_t existing = attrs_.Find(name);
  if (existing >= 0) return existing;
  AttrId id = attrs_.Intern(name);
  attr_values_.emplace_back(node_count_, DataValue{0});
  attr_views_.push_back(attr_values_.back().data());
  return id;
}

std::vector<DataValue> Tree::ActiveDomain() const {
  std::vector<DataValue> out;
  for (const DataValue* column : attr_views_) {
    out.insert(out.end(), column, column + node_count_);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

AttrId AssignUniqueIds(Tree& tree, std::string_view name) {
  AttrId id = tree.AddAttribute(name);
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    tree.set_attr(id, u, u);
  }
  return id;
}

TreeBuilder::Ref TreeBuilder::AddRoot(std::string_view label) {
  assert(protos_.empty() && "AddRoot called twice");
  protos_.push_back(Proto{std::string(label), {}, {}});
  return 0;
}

TreeBuilder::Ref TreeBuilder::AddChild(Ref parent, std::string_view label) {
  assert(parent >= 0 && parent < static_cast<Ref>(protos_.size()));
  Ref ref = static_cast<Ref>(protos_.size());
  protos_.push_back(Proto{std::string(label), {}, {}});
  protos_[static_cast<std::size_t>(parent)].children.push_back(ref);
  return ref;
}

void TreeBuilder::SetAttr(Ref node, std::string_view name, DataValue value) {
  assert(node >= 0 && node < static_cast<Ref>(protos_.size()));
  protos_[static_cast<std::size_t>(node)].attrs.emplace_back(std::string(name),
                                                             value);
}

void TreeBuilder::SetAttrString(Ref node, std::string_view name,
                                std::string_view text) {
  SetAttr(node, name, values_->ValueFor(text));
}

Tree TreeBuilder::Build(std::vector<NodeId>* ref_to_node) const {
  Tree tree;
  tree.values_ = values_;
  if (protos_.empty()) return tree;

  // Lay nodes out in document order with an explicit DFS.
  std::vector<NodeId> mapping(protos_.size(), kNoNode);
  tree.nodes_.reserve(protos_.size());

  struct Frame {
    Ref ref;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;

  auto emit = [&](Ref ref, NodeId parent) {
    NodeId id = static_cast<NodeId>(tree.nodes_.size());
    mapping[static_cast<std::size_t>(ref)] = id;
    Tree::Node node;
    node.label = tree.labels_.Intern(protos_[static_cast<std::size_t>(ref)].label);
    node.parent = parent;
    if (parent != kNoNode) {
      Tree::Node& p = tree.nodes_[static_cast<std::size_t>(parent)];
      node.child_index = p.num_children;
      node.prev_sibling = p.last_child;
      if (p.last_child != kNoNode) {
        tree.nodes_[static_cast<std::size_t>(p.last_child)].next_sibling = id;
      } else {
        p.first_child = id;
      }
      p.last_child = id;
      ++p.num_children;
    }
    tree.nodes_.push_back(node);
    return id;
  };

  emit(0, kNoNode);
  stack.push_back(Frame{0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Proto& proto = protos_[static_cast<std::size_t>(frame.ref)];
    if (frame.next_child < proto.children.size()) {
      Ref child = proto.children[frame.next_child++];
      emit(child, mapping[static_cast<std::size_t>(frame.ref)]);
      stack.push_back(Frame{child});
    } else {
      NodeId id = mapping[static_cast<std::size_t>(frame.ref)];
      tree.nodes_[static_cast<std::size_t>(id)].subtree_end =
          static_cast<NodeId>(tree.nodes_.size());
      stack.pop_back();
    }
  }
  // The shape is final: bind the views (AddAttribute below sizes
  // columns off node_count_).
  tree.node_count_ = tree.nodes_.size();
  tree.nodes_view_ = tree.nodes_.data();

  // Attribute columns.
  for (std::size_t ref = 0; ref < protos_.size(); ++ref) {
    for (const auto& [name, value] : protos_[ref].attrs) {
      AttrId a = tree.AddAttribute(name);
      tree.set_attr(a, mapping[ref], value);
    }
  }

  if (ref_to_node != nullptr) *ref_to_node = std::move(mapping);
  return tree;
}

}  // namespace treewalk
