#include "src/tree/tree.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

int Tree::Depth(NodeId u) const {
  int depth = 0;
  for (NodeId p = Parent(u); p != kNoNode; p = Parent(p)) ++depth;
  return depth;
}

AttrId Tree::AddAttribute(std::string_view name) {
  std::int64_t existing = attrs_.Find(name);
  if (existing >= 0) return existing;
  AttrId id = attrs_.Intern(name);
  attr_values_.emplace_back(nodes_.size(), DataValue{0});
  return id;
}

std::vector<DataValue> Tree::ActiveDomain() const {
  std::vector<DataValue> out;
  for (const auto& column : attr_values_) {
    out.insert(out.end(), column.begin(), column.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

AttrId AssignUniqueIds(Tree& tree, std::string_view name) {
  AttrId id = tree.AddAttribute(name);
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    tree.set_attr(id, u, u);
  }
  return id;
}

TreeBuilder::Ref TreeBuilder::AddRoot(std::string_view label) {
  assert(protos_.empty() && "AddRoot called twice");
  protos_.push_back(Proto{std::string(label), {}, {}});
  return 0;
}

TreeBuilder::Ref TreeBuilder::AddChild(Ref parent, std::string_view label) {
  assert(parent >= 0 && parent < static_cast<Ref>(protos_.size()));
  Ref ref = static_cast<Ref>(protos_.size());
  protos_.push_back(Proto{std::string(label), {}, {}});
  protos_[static_cast<std::size_t>(parent)].children.push_back(ref);
  return ref;
}

void TreeBuilder::SetAttr(Ref node, std::string_view name, DataValue value) {
  assert(node >= 0 && node < static_cast<Ref>(protos_.size()));
  protos_[static_cast<std::size_t>(node)].attrs.emplace_back(std::string(name),
                                                             value);
}

void TreeBuilder::SetAttrString(Ref node, std::string_view name,
                                std::string_view text) {
  SetAttr(node, name, values_->ValueFor(text));
}

Tree TreeBuilder::Build(std::vector<NodeId>* ref_to_node) const {
  Tree tree;
  tree.values_ = values_;
  if (protos_.empty()) return tree;

  // Lay nodes out in document order with an explicit DFS.
  std::vector<NodeId> mapping(protos_.size(), kNoNode);
  tree.nodes_.reserve(protos_.size());

  struct Frame {
    Ref ref;
    std::size_t next_child = 0;
  };
  std::vector<Frame> stack;

  auto emit = [&](Ref ref, NodeId parent) {
    NodeId id = static_cast<NodeId>(tree.nodes_.size());
    mapping[static_cast<std::size_t>(ref)] = id;
    Tree::Node node;
    node.label = tree.labels_.Intern(protos_[static_cast<std::size_t>(ref)].label);
    node.parent = parent;
    if (parent != kNoNode) {
      Tree::Node& p = tree.nodes_[static_cast<std::size_t>(parent)];
      node.child_index = p.num_children;
      node.prev_sibling = p.last_child;
      if (p.last_child != kNoNode) {
        tree.nodes_[static_cast<std::size_t>(p.last_child)].next_sibling = id;
      } else {
        p.first_child = id;
      }
      p.last_child = id;
      ++p.num_children;
    }
    tree.nodes_.push_back(node);
    return id;
  };

  emit(0, kNoNode);
  stack.push_back(Frame{0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    const Proto& proto = protos_[static_cast<std::size_t>(frame.ref)];
    if (frame.next_child < proto.children.size()) {
      Ref child = proto.children[frame.next_child++];
      emit(child, mapping[static_cast<std::size_t>(frame.ref)]);
      stack.push_back(Frame{child});
    } else {
      NodeId id = mapping[static_cast<std::size_t>(frame.ref)];
      tree.nodes_[static_cast<std::size_t>(id)].subtree_end =
          static_cast<NodeId>(tree.nodes_.size());
      stack.pop_back();
    }
  }

  // Attribute columns.
  for (std::size_t ref = 0; ref < protos_.size(); ++ref) {
    for (const auto& [name, value] : protos_[ref].attrs) {
      AttrId a = tree.AddAttribute(name);
      tree.set_attr(a, mapping[ref], value);
    }
  }

  if (ref_to_node != nullptr) *ref_to_node = std::move(mapping);
  return tree;
}

}  // namespace treewalk
