#include "src/tree/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/crc32c.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/tree/traversal.h"
#include "src/tree/tree_stats.h"

namespace treewalk {
namespace {

// Section kinds, in file order.  docs/SNAPSHOT.md is the normative
// description; keep the two in sync.
constexpr std::uint32_t kSecNodes = 1;      // raw Tree::Node records
constexpr std::uint32_t kSecLabels = 2;     // label interner pool
constexpr std::uint32_t kSecAttrs = 3;      // attribute-name interner pool
constexpr std::uint32_t kSecValues = 4;     // value interner pool
constexpr std::uint32_t kSecColumns = 5;    // attr columns, [attr][node]
constexpr std::uint32_t kSecPostorder = 6;  // post-order rank per node
constexpr std::uint32_t kSecStats = 7;      // whole-tree planner statistics
constexpr std::uint32_t kNumSections = 7;

constexpr std::size_t kSectionEntryBytes = 24;
constexpr std::size_t kTableBytes = kNumSections * kSectionEntryBytes;
constexpr std::uint32_t kFlagLittleEndian = 1;

// Caps on header counts, checked before any multiplication so section
// size arithmetic cannot overflow (2^31 nodes * 2^20 attrs * 8 bytes
// still fits u64 with room to spare).
constexpr std::uint64_t kMaxNodes =
    static_cast<std::uint64_t>(std::numeric_limits<NodeId>::max());
constexpr std::uint64_t kMaxPoolEntries = std::uint64_t{1} << 20;

std::size_t AlignUp8(std::size_t n) { return (n + 7) & ~std::size_t{7}; }

std::string_view RawView(const void* base, std::size_t bytes) {
  return {static_cast<const char*>(base), bytes};
}

// Pool encoding: u64 count | u32 length per entry | entry bytes.
std::string EncodePoolStrings(std::size_t count,
                              const std::function<std::string(std::int64_t)>&
                                  name_at) {
  std::string out;
  PutU64Le(count, out);
  std::vector<std::string> names;
  names.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    names.push_back(name_at(static_cast<std::int64_t>(i)));
    PutU32Le(static_cast<std::uint32_t>(names.back().size()), out);
  }
  for (const std::string& name : names) out += name;
  return out;
}

Result<std::vector<std::string>> DecodePool(std::string_view sec,
                                            std::uint64_t expected_count,
                                            const char* what) {
  const std::string err = std::string("snapshot ") + what + " pool corrupt";
  if (sec.size() < 8) return InvalidArgument(err);
  const std::uint64_t count = GetU64Le(sec, 0);
  if (count != expected_count || count > kMaxPoolEntries) {
    return InvalidArgument(err);
  }
  if ((sec.size() - 8) / 4 < count) return InvalidArgument(err);
  std::size_t at = 8 + static_cast<std::size_t>(count) * 4;
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint32_t len = GetU32Le(sec, 8 + static_cast<std::size_t>(i) * 4);
    if (len > sec.size() - at) return InvalidArgument(err);
    out.emplace_back(sec.substr(at, len));
    at += len;
  }
  if (at != sec.size()) return InvalidArgument(err);
  return out;
}

struct SnapshotMetrics {
  Counter* loads;
  Counter* load_failures;
  Counter* writes;

  static SnapshotMetrics& Get() {
    static SnapshotMetrics m{
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_snapshot_loads_total",
            "Tree snapshots loaded (mmap or image) successfully"),
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_snapshot_load_failures_total",
            "Snapshot loads rejected (missing, truncated, corrupt, or "
            "injected fault); callers fall back to parsing"),
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_snapshot_writes_total",
            "Tree snapshots written via the atomic tmp+rename path"),
    };
    return m;
  }
};

}  // namespace

const char* SnapshotSectionName(std::uint32_t kind) {
  switch (kind) {
    case kSecNodes:
      return "nodes";
    case kSecLabels:
      return "label-pool";
    case kSecAttrs:
      return "attr-pool";
    case kSecValues:
      return "value-pool";
    case kSecColumns:
      return "attr-columns";
    case kSecPostorder:
      return "postorder-ranks";
    case kSecStats:
      return "tree-stats";
    default:
      return "?";
  }
}

/// Friend of Tree (tree.h): the only code that sees Node's raw layout on
/// both sides of the disk boundary.
class SnapshotCodec {
 public:
  static std::uint64_t ContentHash(const Tree& tree) {
    // Node records are persisted as raw bytes, so the record layout is
    // part of the format; any change here must bump kSnapshotVersion.
    static_assert(std::is_trivially_copyable_v<Tree::Node>);
    static_assert(sizeof(Tree::Node) == 40,
                  "Tree::Node layout changed: bump kSnapshotVersion");
    static_assert(offsetof(Tree::Node, label) == 0);
    static_assert(offsetof(Tree::Node, parent) == 8);
    static_assert(offsetof(Tree::Node, subtree_end) == 28);
    static_assert(offsetof(Tree::Node, num_children) == 36);
    static_assert(sizeof(DataValue) == 8);

    const std::size_t n = tree.node_count_;
    // FNV is byte-serial, so chaining over the section payloads equals
    // hashing their concatenation; no buffers are materialized for the
    // two big sections.
    std::uint64_t h = Fnv1a64(std::string_view(kSnapshotMagic, 8));
    if (n > 0) {
      h = Fnv1a64(RawView(tree.nodes_view_, n * sizeof(Tree::Node)), h);
    }
    h = Fnv1a64(EncodeLabelPool(tree), h);
    h = Fnv1a64(EncodeAttrPool(tree), h);
    h = Fnv1a64(EncodeValuePool(tree), h);
    if (n > 0) {
      for (const DataValue* column : tree.attr_views_) {
        h = Fnv1a64(RawView(column, n * sizeof(DataValue)), h);
      }
    }
    return h;
  }

  static std::string Encode(const Tree& tree, SnapshotInfo* info) {
    const std::size_t n = tree.node_count_;
    std::array<std::string, kNumSections> sections;
    if (n > 0) {
      sections[0].assign(RawView(tree.nodes_view_, n * sizeof(Tree::Node)));
    }
    sections[1] = EncodeLabelPool(tree);
    sections[2] = EncodeAttrPool(tree);
    sections[3] = EncodeValuePool(tree);
    if (n > 0) {
      for (const DataValue* column : tree.attr_views_) {
        sections[4].append(RawView(column, n * sizeof(DataValue)));
      }
    }
    sections[5] = EncodePostorder(tree);
    sections[6] = EncodeStats(tree);

    const std::uint64_t content_hash = ContentHash(tree);

    struct Entry {
      std::uint32_t crc;
      std::uint64_t offset;
      std::uint64_t length;
    };
    std::array<Entry, kNumSections> entries;
    std::size_t off = kSnapshotHeaderBytes + kTableBytes;
    for (std::uint32_t i = 0; i < kNumSections; ++i) {
      off = AlignUp8(off);
      entries[i] = Entry{Crc32c(sections[i]), off, sections[i].size()};
      off += sections[i].size();
    }

    std::string out;
    out.reserve(off);
    out.append(kSnapshotMagic, sizeof(kSnapshotMagic));
    PutU32Le(kSnapshotVersion, out);
    PutU32Le(kNumSections, out);
    PutU64Le(n, out);
    PutU64Le(tree.labels_.size(), out);
    PutU64Le(tree.attr_views_.size(), out);
    PutU64Le(tree.values_->size(), out);
    PutU64Le(content_hash, out);
    PutU32Le(kFlagLittleEndian, out);
    PutU32Le(Crc32c(out), out);  // header CRC over the first 60 bytes

    for (std::uint32_t i = 0; i < kNumSections; ++i) {
      PutU32Le(i + 1, out);  // kind
      PutU32Le(entries[i].crc, out);
      PutU64Le(entries[i].offset, out);
      PutU64Le(entries[i].length, out);
    }
    for (std::uint32_t i = 0; i < kNumSections; ++i) {
      out.resize(static_cast<std::size_t>(entries[i].offset), '\0');
      out += sections[i];
    }

    if (info != nullptr) {
      info->version = kSnapshotVersion;
      info->nodes = n;
      info->labels = tree.labels_.size();
      info->attrs = tree.attr_views_.size();
      info->values = tree.values_->size();
      info->content_hash = content_hash;
      info->file_bytes = out.size();
      info->sections.clear();
      for (std::uint32_t i = 0; i < kNumSections; ++i) {
        info->sections.push_back(SnapshotSectionInfo{
            i + 1, entries[i].crc, entries[i].offset, entries[i].length});
      }
    }
    return out;
  }

  static Result<Tree> Decode(std::shared_ptr<const void> owner,
                             std::string_view bytes, SnapshotInfo* info) {
    if (std::endian::native != std::endian::little) {
      return InvalidArgument("snapshot loading requires a little-endian host");
    }
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % 8 != 0) {
      return InvalidArgument("snapshot image base is not 8-byte aligned");
    }
    if (bytes.size() < kSnapshotHeaderBytes + kTableBytes) {
      return InvalidArgument("snapshot truncated: no room for header");
    }
    if (bytes.substr(0, 8) != std::string_view(kSnapshotMagic, 8)) {
      return InvalidArgument("not a tree snapshot (bad magic)");
    }
    // Header CRC before trusting any header field.
    if (GetU32Le(bytes, 60) != Crc32c(bytes.substr(0, 60))) {
      return InvalidArgument("snapshot header CRC mismatch");
    }
    const std::uint32_t version = GetU32Le(bytes, 8);
    if (version != kSnapshotVersion) {
      return InvalidArgument("unsupported snapshot version " +
                             std::to_string(version));
    }
    if (GetU32Le(bytes, 12) != kNumSections) {
      return InvalidArgument("snapshot section count mismatch");
    }
    const std::uint64_t node_count = GetU64Le(bytes, 16);
    const std::uint64_t label_count = GetU64Le(bytes, 24);
    const std::uint64_t attr_count = GetU64Le(bytes, 32);
    const std::uint64_t value_count = GetU64Le(bytes, 40);
    const std::uint64_t content_hash = GetU64Le(bytes, 48);
    if ((GetU32Le(bytes, 56) & kFlagLittleEndian) == 0) {
      return InvalidArgument("snapshot written on a big-endian host");
    }
    if (node_count > kMaxNodes || label_count > kMaxPoolEntries ||
        attr_count > kMaxPoolEntries || value_count > kMaxPoolEntries) {
      return InvalidArgument("snapshot header counts are implausible");
    }
    const std::size_t n = static_cast<std::size_t>(node_count);

    // Section table: one entry per kind, in bounds, aligned, CRC-clean.
    std::array<SnapshotSectionInfo, kNumSections> secs{};
    std::array<bool, kNumSections + 1> seen{};
    for (std::uint32_t i = 0; i < kNumSections; ++i) {
      const std::size_t at = kSnapshotHeaderBytes + i * kSectionEntryBytes;
      SnapshotSectionInfo e;
      e.kind = GetU32Le(bytes, at);
      e.crc = GetU32Le(bytes, at + 4);
      e.offset = GetU64Le(bytes, at + 8);
      e.length = GetU64Le(bytes, at + 16);
      if (e.kind < 1 || e.kind > kNumSections || seen[e.kind]) {
        return InvalidArgument("snapshot section table corrupt");
      }
      if (e.offset % 8 != 0 || e.offset > bytes.size() ||
          e.length > bytes.size() - e.offset) {
        return InvalidArgument(std::string("snapshot section ") +
                               SnapshotSectionName(e.kind) +
                               " out of bounds (truncated?)");
      }
      if (Crc32c(bytes.substr(static_cast<std::size_t>(e.offset),
                              static_cast<std::size_t>(e.length))) != e.crc) {
        return InvalidArgument(std::string("snapshot section ") +
                               SnapshotSectionName(e.kind) + " CRC mismatch");
      }
      seen[e.kind] = true;
      secs[e.kind - 1] = e;
    }

    auto section = [&](std::uint32_t kind) {
      const SnapshotSectionInfo& e = secs[kind - 1];
      return bytes.substr(static_cast<std::size_t>(e.offset),
                          static_cast<std::size_t>(e.length));
    };
    if (section(kSecNodes).size() != n * sizeof(Tree::Node) ||
        section(kSecColumns).size() !=
            static_cast<std::uint64_t>(attr_count) * n * sizeof(DataValue) ||
        section(kSecPostorder).size() != n * sizeof(NodeId)) {
      return InvalidArgument("snapshot section sizes disagree with header");
    }

    Tree tree;
    TREEWALK_ASSIGN_OR_RETURN(
        std::vector<std::string> labels,
        DecodePool(section(kSecLabels), label_count, "label"));
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // A fresh interner assigns handles densely from 0, so interning
      // the pool in order reproduces every persisted handle; a repeat
      // (impossible for writer output) would silently renumber.
      if (tree.labels_.Intern(labels[i]) != static_cast<std::int64_t>(i)) {
        return InvalidArgument("snapshot label pool has duplicates");
      }
    }
    TREEWALK_ASSIGN_OR_RETURN(
        std::vector<std::string> attrs,
        DecodePool(section(kSecAttrs), attr_count, "attribute"));
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (tree.attrs_.Intern(attrs[i]) != static_cast<std::int64_t>(i)) {
        return InvalidArgument("snapshot attribute pool has duplicates");
      }
    }
    TREEWALK_ASSIGN_OR_RETURN(
        std::vector<std::string> values,
        DecodePool(section(kSecValues), value_count, "value"));
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (tree.values_->ValueFor(values[i]) !=
          ValueInterner::kStringBase + static_cast<DataValue>(i)) {
        return InvalidArgument("snapshot value pool has duplicates");
      }
    }

    // Validate every node record before exposing the view.  The checks
    // guarantee memory safety of all O(1) accessors and termination of
    // parent walks (parent < u strictly decreases); they intentionally
    // do not prove full structural consistency — CRCs plus the writer
    // being the only producer cover that.
    const Tree::Node* nodes =
        n > 0 ? reinterpret_cast<const Tree::Node*>(
                    bytes.data() +
                    static_cast<std::size_t>(secs[kSecNodes - 1].offset))
              : nullptr;
    const NodeId limit = static_cast<NodeId>(n);
    for (NodeId u = 0; u < limit; ++u) {
      const Tree::Node& nd = nodes[static_cast<std::size_t>(u)];
      const bool bad_label =
          nd.label < 0 || nd.label >= static_cast<Symbol>(label_count);
      const bool bad_parent =
          u == 0 ? nd.parent != kNoNode
                 : (nd.parent < 0 || nd.parent >= u);
      auto bad_after = [&](NodeId x) {  // kNoNode or strictly below u
        return x != kNoNode && (x <= u || x >= limit);
      };
      const bool bad_children =
          bad_after(nd.first_child) || bad_after(nd.last_child) ||
          nd.num_children < 0 || nd.child_index < 0;
      const bool bad_siblings =
          bad_after(nd.next_sibling) ||
          (nd.prev_sibling != kNoNode &&
           (nd.prev_sibling < 0 || nd.prev_sibling >= u));
      const bool bad_subtree = nd.subtree_end <= u || nd.subtree_end > limit;
      if (bad_label || bad_parent || bad_children || bad_siblings ||
          bad_subtree) {
        return InvalidArgument("snapshot node record " + std::to_string(u) +
                               " fails validation");
      }
    }
    const NodeId* postorder =
        n > 0 ? reinterpret_cast<const NodeId*>(
                    bytes.data() +
                    static_cast<std::size_t>(secs[kSecPostorder - 1].offset))
              : nullptr;
    for (std::size_t u = 0; u < n; ++u) {
      if (postorder[u] < 0 || postorder[u] >= limit) {
        return InvalidArgument("snapshot post-order rank out of range");
      }
    }

    // Stats section: fixed scalars plus one u64 per label and per
    // attribute.  Validated against the header counts and basic tree
    // identities so a corrupt block can never feed the planner
    // nonsense; any inconsistency rejects the whole snapshot (callers
    // fall back to parsing, which recomputes stats from scratch).
    {
      const std::string_view sec = section(kSecStats);
      const std::string err = "snapshot tree-stats section corrupt";
      constexpr std::size_t kScalarBytes = 8 + 7 * 8;
      if (sec.size() != kScalarBytes + 8 +
                            static_cast<std::size_t>(label_count) * 8 + 8 +
                            static_cast<std::size_t>(attr_count) * 8) {
        return InvalidArgument(err);
      }
      if (GetU32Le(sec, 0) != 1) {
        return InvalidArgument("snapshot tree-stats format unsupported");
      }
      auto stats = std::make_shared<TreeStats>();
      stats->nodes = static_cast<std::int64_t>(n);
      stats->edges = n > 0 ? stats->nodes - 1 : 0;
      // Every persisted count is bounded by the pair count n*(n-1)/2
      // (depth sums, sibling pairs) or by n itself; n <= kMaxNodes, so
      // the u64 -> int64 casts below cannot go negative once the
      // per-field ceilings hold.
      const std::uint64_t pair_cap = node_count * node_count;
      auto scalar = [&](std::size_t i) { return GetU64Le(sec, 8 + i * 8); };
      const std::uint64_t raw[7] = {scalar(0), scalar(1), scalar(2), scalar(3),
                                    scalar(4), scalar(5), scalar(6)};
      for (std::uint64_t v : raw) {
        if (v > pair_cap) return InvalidArgument(err);
      }
      stats->max_depth = static_cast<std::int64_t>(raw[0]);
      stats->sum_depths = static_cast<std::int64_t>(raw[1]);
      stats->leaves = static_cast<std::int64_t>(raw[2]);
      stats->parents = static_cast<std::int64_t>(raw[3]);
      stats->max_fanout = static_cast<std::int64_t>(raw[4]);
      stats->sib_pairs = static_cast<std::int64_t>(raw[5]);
      stats->succ_pairs = static_cast<std::int64_t>(raw[6]);
      if (GetU64Le(sec, kScalarBytes) != label_count) {
        return InvalidArgument(err);
      }
      std::size_t at = kScalarBytes + 8;
      std::uint64_t label_total = 0;
      stats->label_counts.reserve(static_cast<std::size_t>(label_count));
      for (std::uint64_t i = 0; i < label_count; ++i, at += 8) {
        const std::uint64_t c = GetU64Le(sec, at);
        if (c > node_count) return InvalidArgument(err);
        label_total += c;
        stats->label_counts.push_back(static_cast<std::int64_t>(c));
      }
      if (GetU64Le(sec, at) != attr_count) return InvalidArgument(err);
      at += 8;
      stats->attr_distinct.reserve(static_cast<std::size_t>(attr_count));
      for (std::uint64_t i = 0; i < attr_count; ++i, at += 8) {
        const std::uint64_t c = GetU64Le(sec, at);
        if (c > node_count) return InvalidArgument(err);
        stats->attr_distinct.push_back(static_cast<std::int64_t>(c));
      }
      // Identities every real tree satisfies: labels partition the
      // nodes, and every node is a leaf xor a parent.
      if (label_total != node_count ||
          static_cast<std::uint64_t>(stats->leaves + stats->parents) !=
              node_count) {
        return InvalidArgument(err);
      }
      tree.snapshot_stats_ = std::move(stats);
    }

    tree.node_count_ = n;
    tree.nodes_view_ = nodes;
    tree.postorder_view_ = postorder;
    tree.attr_values_.resize(static_cast<std::size_t>(attr_count));
    tree.attr_views_.reserve(static_cast<std::size_t>(attr_count));
    const char* columns_base =
        bytes.data() + static_cast<std::size_t>(secs[kSecColumns - 1].offset);
    for (std::uint64_t a = 0; a < attr_count; ++a) {
      tree.attr_views_.push_back(reinterpret_cast<const DataValue*>(
          columns_base + static_cast<std::size_t>(a) * n * sizeof(DataValue)));
    }
    tree.mapping_ = std::move(owner);

    if (info != nullptr) {
      info->version = version;
      info->nodes = node_count;
      info->labels = label_count;
      info->attrs = attr_count;
      info->values = value_count;
      info->content_hash = content_hash;
      info->file_bytes = bytes.size();
      info->sections.assign(secs.begin(), secs.end());
    }
    return tree;
  }

 private:
  static std::string EncodeLabelPool(const Tree& tree) {
    return EncodePoolStrings(tree.labels_.size(), [&](std::int64_t i) {
      return tree.labels_.NameOf(i);
    });
  }
  static std::string EncodeAttrPool(const Tree& tree) {
    return EncodePoolStrings(tree.attrs_.size(), [&](std::int64_t i) {
      return tree.attrs_.NameOf(i);
    });
  }
  static std::string EncodeValuePool(const Tree& tree) {
    return EncodePoolStrings(tree.values_->size(), [&](std::int64_t i) {
      return tree.values_->NameAt(i);
    });
  }
  /// Stats payload: u32 stats-format (1) | u32 pad | seven u64 scalars
  /// (max_depth, sum_depths, leaves, parents, max_fanout, sib_pairs,
  /// succ_pairs) | u64 label count + per-label u64 node counts | u64
  /// attr count + per-attribute u64 distinct-value counts.  `nodes` and
  /// `edges` are derived from the header node count at decode.  Always
  /// recomputed at encode time (never copied from a preloaded block) so
  /// copy-on-write attribute mutations cannot persist stale
  /// distinct-value counts.  Deliberately excluded from ContentHash:
  /// stats are derived data, and the hash keys the selector disk cache.
  static std::string EncodeStats(const Tree& tree) {
    TreeStats s = ComputeTreeStats(tree);
    // ComputeTreeStats leaves the vectors empty for an empty tree; the
    // format pins their lengths to the header label/attr counts.
    s.label_counts.resize(tree.labels_.size(), 0);
    s.attr_distinct.resize(tree.attr_views_.size(), 0);
    std::string out;
    PutU32Le(1, out);  // stats format version
    PutU32Le(0, out);  // pad to 8 bytes
    PutU64Le(static_cast<std::uint64_t>(s.max_depth), out);
    PutU64Le(static_cast<std::uint64_t>(s.sum_depths), out);
    PutU64Le(static_cast<std::uint64_t>(s.leaves), out);
    PutU64Le(static_cast<std::uint64_t>(s.parents), out);
    PutU64Le(static_cast<std::uint64_t>(s.max_fanout), out);
    PutU64Le(static_cast<std::uint64_t>(s.sib_pairs), out);
    PutU64Le(static_cast<std::uint64_t>(s.succ_pairs), out);
    PutU64Le(s.label_counts.size(), out);
    for (std::int64_t c : s.label_counts) {
      PutU64Le(static_cast<std::uint64_t>(c), out);
    }
    PutU64Le(s.attr_distinct.size(), out);
    for (std::int64_t c : s.attr_distinct) {
      PutU64Le(static_cast<std::uint64_t>(c), out);
    }
    return out;
  }

  static std::string EncodePostorder(const Tree& tree) {
    const std::size_t n = tree.node_count_;
    std::string out;
    if (n == 0) return out;
    if (tree.postorder_view_ != nullptr) {
      out.assign(RawView(tree.postorder_view_, n * sizeof(NodeId)));
      return out;
    }
    std::vector<NodeId> ranks(n);
    const std::vector<NodeId> order = PostOrder(tree);
    for (std::size_t i = 0; i < order.size(); ++i) {
      ranks[static_cast<std::size_t>(order[i])] = static_cast<NodeId>(i);
    }
    out.assign(RawView(ranks.data(), n * sizeof(NodeId)));
    return out;
  }
};

std::uint64_t TreeContentHash(const Tree& tree) {
  return SnapshotCodec::ContentHash(tree);
}

std::string EncodeTreeSnapshot(const Tree& tree) {
  return SnapshotCodec::Encode(tree, nullptr);
}

Result<SnapshotInfo> WriteTreeSnapshot(const Tree& tree,
                                       const std::string& path) {
  SnapshotInfo info;
  const std::string image = SnapshotCodec::Encode(tree, &info);
  TREEWALK_RETURN_IF_ERROR(WriteFileAtomic(path, image));
  SnapshotMetrics::Get().writes->Increment();
  return info;
}

Result<Tree> TreeFromSnapshotImage(std::shared_ptr<const std::string> image,
                                   SnapshotInfo* info) {
  if (image == nullptr) return InvalidArgument("null snapshot image");
  const std::string_view bytes = *image;
  Result<Tree> tree = SnapshotCodec::Decode(std::move(image), bytes, info);
  if (tree.ok()) {
    SnapshotMetrics::Get().loads->Increment();
  } else {
    SnapshotMetrics::Get().load_failures->Increment();
  }
  return tree;
}

namespace {

/// Owner object threaded into the decoded Tree's `mapping_`: unmaps and
/// releases the governor charge when the last aliasing Tree dies.
class MappedRegion {
 public:
  MappedRegion(void* base, std::size_t length, ResourceGovernor* governor)
      : base_(base), length_(length), governor_(governor) {}
  // Sole owner of the mapping: a copy would double-munmap.
  MappedRegion(const MappedRegion&) = delete;
  MappedRegion& operator=(const MappedRegion&) = delete;

  ~MappedRegion() {
    ::munmap(base_, length_);
    GovernorRelease(governor_, MemoryCategory::kMappedSnapshot,
                    static_cast<std::int64_t>(length_));
  }

 private:
  void* base_;
  std::size_t length_;
  ResourceGovernor* governor_;
};

Result<Tree> LoadTreeSnapshotImpl(const std::string& path,
                                  ResourceGovernor* governor,
                                  SnapshotInfo* info) {
  TREEWALK_FAILPOINT("snapshot/load");
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return NotFound("no snapshot at '" + path + "'");
    return ErrnoStatus("open", path);
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoStatus("fstat", path);
    ::close(fd);
    return status;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return InvalidArgument("snapshot file '" + path + "' is empty");
  }
  const Status charge = GovernorCharge(
      governor, MemoryCategory::kMappedSnapshot, static_cast<std::int64_t>(size));
  if (!charge.ok()) {
    ::close(fd);
    return charge;
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    GovernorRelease(governor, MemoryCategory::kMappedSnapshot,
                    static_cast<std::int64_t>(size));
    return ErrnoStatus("mmap", path);
  }
  auto region = std::make_shared<MappedRegion>(base, size, governor);
  return SnapshotCodec::Decode(std::move(region), RawView(base, size), info);
}

}  // namespace

Result<Tree> LoadTreeSnapshot(const std::string& path,
                              ResourceGovernor* governor, SnapshotInfo* info) {
  Result<Tree> tree = LoadTreeSnapshotImpl(path, governor, info);
  if (tree.ok()) {
    SnapshotMetrics::Get().loads->Increment();
  } else {
    SnapshotMetrics::Get().load_failures->Increment();
  }
  return tree;
}

Result<SnapshotInfo> InspectTreeSnapshot(const std::string& path) {
  TREEWALK_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  auto image = std::make_shared<const std::string>(std::move(bytes));
  SnapshotInfo info;
  TREEWALK_ASSIGN_OR_RETURN(Tree tree, TreeFromSnapshotImage(image, &info));
  (void)tree;
  return info;
}

}  // namespace treewalk
