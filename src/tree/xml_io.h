#ifndef TREEWALK_TREE_XML_IO_H_
#define TREEWALK_TREE_XML_IO_H_

#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Maximum element nesting depth the XML reader accepts.  Deeper input
/// returns kInvalidArgument instead of overflowing the recursive-descent
/// stack (docs/ROBUSTNESS.md).
inline constexpr int kMaxXmlNestingDepth = 2000;

/// Parses a small XML subset into an attributed tree: elements with
/// attributes, self-closing tags, comments (`<!-- -->`), and an optional
/// `<?xml ...?>` declaration.  Text content is not modeled (the paper
/// represents mixed content with dummy nodes, which a caller can add);
/// non-whitespace text is rejected.  Attribute values that parse as
/// decimal integers become numeric data values; all other values are
/// interned strings.  Entities supported: &lt; &gt; &amp; &quot; &apos;.
Result<Tree> ParseXml(std::string_view source);

/// Serializes `tree` as XML.  String-valued and kBottom attributes render
/// as text; numeric values as decimals.  Labels must be valid XML names
/// (delimiter labels like "#open" are therefore not serializable).
Result<std::string> WriteXml(const Tree& tree, bool indent = true);

}  // namespace treewalk

#endif  // TREEWALK_TREE_XML_IO_H_
