#ifndef TREEWALK_TREE_DELIMITED_H_
#define TREEWALK_TREE_DELIMITED_H_

#include <string_view>
#include <vector>

#include "src/tree/tree.h"

namespace treewalk {

/// Labels of the four tree delimiters of Section 3.  The paper draws them
/// as geometric glyphs; we spell them as reserved '#'-prefixed labels,
/// which ordinary alphabets cannot contain.
inline constexpr std::string_view kTopLabel = "#top";      // nabla (root cap)
inline constexpr std::string_view kOpenLabel = "#open";    // left delimiter
inline constexpr std::string_view kCloseLabel = "#close";  // right delimiter
inline constexpr std::string_view kLeafLabel = "#leaf";    // leaf cap

/// True if `label` names one of the four delimiters.
bool IsDelimiterLabel(std::string_view label);

/// Result of delimiting a tree: the transformed tree plus the node
/// correspondence in both directions.
struct DelimitedTree {
  Tree tree;
  /// original NodeId -> delimited NodeId.
  std::vector<NodeId> to_delimited;
  /// delimited NodeId -> original NodeId, or kNoNode for delimiters.
  std::vector<NodeId> to_original;

  /// True if node `u` of `tree` is a delimiter.
  bool IsDelimiter(NodeId u) const { return to_original[u] == kNoNode; }
};

/// Computes delim(t) per Section 3: a new root #top whose children are
/// #open, the original root, #close; every original node with children
/// gets #open / #close wrapped around them; every original leaf gets a
/// single #leaf child.  Every attribute of a delimiter holds kBottom.
///
/// The walk-visible consequences: a node is a (original) leaf iff its
/// first child is #leaf, first/last child tests become label tests on the
/// left/right sibling, and the root is the unique child between #open and
/// #close under #top.
DelimitedTree Delimit(const Tree& tree);

}  // namespace treewalk

#endif  // TREEWALK_TREE_DELIMITED_H_
