#include "src/tree/xml_io.h"

#include <cctype>
#include <charconv>
#include <vector>

namespace treewalk {

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view source) : src_(source) {}

  Result<Tree> Parse() {
    SkipMisc();
    if (Peek() != '<') return Error("expected root element");
    TREEWALK_RETURN_IF_ERROR(ParseElement(-1, /*depth=*/0));
    SkipMisc();
    if (pos_ != src_.size()) return Error("trailing content after root");
    return builder_.Build();
  }

 private:
  Status ParseElement(TreeBuilder::Ref parent, int depth) {
    if (depth > kMaxXmlNestingDepth) {
      // Reject instead of overflowing the recursive-descent stack.
      return Error("element nesting exceeds depth limit " +
                   std::to_string(kMaxXmlNestingDepth));
    }
    ++pos_;  // consume '<'
    TREEWALK_ASSIGN_OR_RETURN(std::string name, ParseName());
    TreeBuilder::Ref ref =
        parent < 0 ? builder_.AddRoot(name) : builder_.AddChild(parent, name);
    while (true) {
      SkipSpace();
      char c = Peek();
      if (c == '/') {
        ++pos_;
        if (Peek() != '>') return Error("expected '>' after '/'");
        ++pos_;
        return Status::Ok();
      }
      if (c == '>') {
        ++pos_;
        break;
      }
      TREEWALK_RETURN_IF_ERROR(ParseAttribute(ref));
    }
    // Children until matching close tag.
    while (true) {
      SkipMisc();
      if (pos_ >= src_.size()) return Error("unexpected end of input");
      if (Peek() != '<') return Error("text content is not supported");
      if (pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
        pos_ += 2;
        TREEWALK_ASSIGN_OR_RETURN(std::string close, ParseName());
        if (close != name) {
          return Error("mismatched close tag </" + close + "> for <" + name +
                       ">");
        }
        SkipSpace();
        if (Peek() != '>') return Error("expected '>' in close tag");
        ++pos_;
        return Status::Ok();
      }
      TREEWALK_RETURN_IF_ERROR(ParseElement(ref, depth + 1));
    }
  }

  Status ParseAttribute(TreeBuilder::Ref ref) {
    TREEWALK_ASSIGN_OR_RETURN(std::string name, ParseName());
    SkipSpace();
    if (Peek() != '=') return Error("expected '=' in attribute");
    ++pos_;
    SkipSpace();
    char quote = Peek();
    if (quote != '"' && quote != '\'') return Error("expected quoted value");
    ++pos_;
    std::string value;
    while (pos_ < src_.size() && src_[pos_] != quote) {
      if (src_[pos_] == '&') {
        TREEWALK_ASSIGN_OR_RETURN(char decoded, ParseEntity());
        value.push_back(decoded);
      } else {
        value.push_back(src_[pos_++]);
      }
    }
    if (pos_ >= src_.size()) return Error("unclosed attribute value");
    ++pos_;  // closing quote

    DataValue numeric = 0;
    auto [end, ec] = std::from_chars(value.data(), value.data() + value.size(),
                                     numeric);
    if (ec == std::errc() && end == value.data() + value.size() &&
        !value.empty()) {
      builder_.SetAttr(ref, name, numeric);
    } else {
      builder_.SetAttrString(ref, name, value);
    }
    return Status::Ok();
  }

  Result<char> ParseEntity() {
    static constexpr struct {
      std::string_view name;
      char value;
    } kEntities[] = {{"&lt;", '<'},
                     {"&gt;", '>'},
                     {"&amp;", '&'},
                     {"&quot;", '"'},
                     {"&apos;", '\''}};
    for (const auto& entity : kEntities) {
      if (src_.substr(pos_, entity.name.size()) == entity.name) {
        pos_ += entity.name.size();
        return entity.value;
      }
    }
    return Error("unknown entity");
  }

  Result<std::string> ParseName() {
    auto is_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '-' || c == '.' || c == ':';
    };
    if (pos_ >= src_.size() || !is_start(src_[pos_])) {
      return Error("expected name");
    }
    std::size_t start = pos_;
    while (pos_ < src_.size() && is_char(src_[pos_])) ++pos_;
    return std::string(src_.substr(start, pos_ - start));
  }

  /// Skips whitespace, comments, and processing instructions.
  void SkipMisc() {
    while (true) {
      SkipSpace();
      if (src_.substr(pos_, 4) == "<!--") {
        std::size_t end = src_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? src_.size() : end + 3;
        continue;
      }
      if (src_.substr(pos_, 2) == "<?") {
        std::size_t end = src_.find("?>", pos_ + 2);
        pos_ = end == std::string_view::npos ? src_.size() : end + 2;
        continue;
      }
      break;
    }
  }

  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  Status Error(std::string message) const {
    return InvalidArgument(message + " at offset " + std::to_string(pos_));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  TreeBuilder builder_;
};

void EscapeInto(std::string_view text, std::string& out) {
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
}

Status WriteNode(const Tree& tree, NodeId u, bool indent, int depth,
                 std::string& out) {
  const std::string& label = tree.LabelName(tree.label(u));
  if (label.empty() || label[0] == '#') {
    return InvalidArgument("label not serializable as XML: " + label);
  }
  if (indent) out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += '<';
  out += label;
  for (AttrId a = 0; a < static_cast<AttrId>(tree.num_attributes()); ++a) {
    out += ' ';
    out += tree.attributes().NameOf(a);
    out += "=\"";
    EscapeInto(tree.values().Render(tree.attr(a, u)), out);
    out += '"';
  }
  if (tree.IsLeaf(u)) {
    out += "/>";
    if (indent) out += '\n';
    return Status::Ok();
  }
  out += '>';
  if (indent) out += '\n';
  for (NodeId c = tree.FirstChild(u); c != kNoNode; c = tree.NextSibling(c)) {
    TREEWALK_RETURN_IF_ERROR(WriteNode(tree, c, indent, depth + 1, out));
  }
  if (indent) out.append(static_cast<std::size_t>(2 * depth), ' ');
  out += "</";
  out += label;
  out += '>';
  if (indent) out += '\n';
  return Status::Ok();
}

}  // namespace

Result<Tree> ParseXml(std::string_view source) {
  return XmlParser(source).Parse();
}

Result<std::string> WriteXml(const Tree& tree, bool indent) {
  if (tree.empty()) return std::string();
  std::string out;
  TREEWALK_RETURN_IF_ERROR(WriteNode(tree, tree.root(), indent, 0, out));
  return out;
}

}  // namespace treewalk
