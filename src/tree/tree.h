#ifndef TREEWALK_TREE_TREE_H_
#define TREEWALK_TREE_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/data_value.h"
#include "src/common/interner.h"

namespace treewalk {

/// Index of a node in a Tree.  Nodes are stored in document order
/// (pre-order), so comparing NodeIds compares document positions.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Handle of a node label in a tree's label interner.
using Symbol = std::int64_t;
/// Handle of an attribute name in a tree's attribute interner.
using AttrId = std::int64_t;
inline constexpr AttrId kNoAttr = -1;

/// An attributed unranked Sigma-tree (Definition 2.1 of the paper): every
/// node carries a label from a finite alphabet Sigma and, for each
/// attribute name in a finite set A, a value from the data domain D.
///
/// Storage is a pre-order arena: NodeId 0 is the root and ids increase in
/// document order.  Navigation (parent / first child / last child /
/// next & previous sibling) is O(1), matching the moves available to
/// tree-walking automata (Section 3).
///
/// Trees are immutable after construction except for attribute values,
/// which may be overwritten in place (labels and shape are fixed).
/// Build trees with TreeBuilder, ParseTerm(), ParseXml(), or load a
/// snapshot (src/tree/snapshot.h).
///
/// Storage is indirected through views: an ordinary tree owns its node
/// records and attribute columns (the views point at them), while a
/// tree loaded from a snapshot aliases the mapped file (`mapping_`
/// keeps the region alive) with zero copying.  Mutating an attribute of
/// a mapped tree detaches that one column copy-on-write; node records
/// never need detaching because shape and labels are immutable.
class Tree {
 public:
  Tree() = default;

  Tree(const Tree& other);
  Tree& operator=(const Tree& other);
  Tree(Tree&& other) noexcept;
  Tree& operator=(Tree&& other) noexcept;

  bool empty() const { return node_count_ == 0; }
  /// Number of nodes, |Dom(t)|.
  std::size_t size() const { return node_count_; }

  NodeId root() const { return empty() ? kNoNode : 0; }
  bool Valid(NodeId u) const {
    return u >= 0 && u < static_cast<NodeId>(node_count_);
  }

  // --- Shape navigation (all O(1)). ---------------------------------

  Symbol label(NodeId u) const { return node(u).label; }
  NodeId Parent(NodeId u) const { return node(u).parent; }
  NodeId FirstChild(NodeId u) const { return node(u).first_child; }
  NodeId LastChild(NodeId u) const { return node(u).last_child; }
  NodeId NextSibling(NodeId u) const { return node(u).next_sibling; }
  NodeId PrevSibling(NodeId u) const { return node(u).prev_sibling; }
  /// 0-based position of `u` among its siblings (0 for the root).
  std::int32_t ChildIndex(NodeId u) const { return node(u).child_index; }
  std::int32_t ChildCount(NodeId u) const { return node(u).num_children; }

  bool IsRoot(NodeId u) const { return u == 0; }
  bool IsLeaf(NodeId u) const { return node(u).first_child == kNoNode; }
  bool IsFirstChild(NodeId u) const { return node(u).prev_sibling == kNoNode; }
  bool IsLastChild(NodeId u) const { return node(u).next_sibling == kNoNode; }

  /// The paper's descendant relation u -< v: true iff `v` is a *strict*
  /// descendant of `u`.  O(1) via pre-order subtree intervals.
  bool IsStrictAncestor(NodeId u, NodeId v) const {
    return u < v && v < node(u).subtree_end;
  }

  /// One past the last node of u's subtree in document order.
  NodeId SubtreeEnd(NodeId u) const { return node(u).subtree_end; }

  /// Depth of a node (root has depth 0).  O(depth).
  int Depth(NodeId u) const;

  // --- Labels and attributes. ----------------------------------------

  /// Interner for label names.  Automata and formulas refer to labels by
  /// string; resolve them once per tree with LabelOf()/FindLabel().
  const Interner& labels() const { return labels_; }
  const Interner& attributes() const { return attrs_; }

  /// Handle of label `name`, or -1 if no node uses it.
  Symbol FindLabel(std::string_view name) const { return labels_.Find(name); }
  /// Handle of attribute `name`, or kNoAttr if the tree has no such
  /// attribute column.
  AttrId FindAttribute(std::string_view name) const {
    return attrs_.Find(name);
  }
  const std::string& LabelName(Symbol s) const { return labels_.NameOf(s); }

  std::size_t num_attributes() const { return attr_values_.size(); }

  /// Value of attribute `a` at node `u`.  Every attribute is total
  /// (Definition 2.1); unset values default to 0.
  DataValue attr(AttrId a, NodeId u) const {
    return attr_views_[static_cast<std::size_t>(a)][static_cast<std::size_t>(u)];
  }
  void set_attr(AttrId a, NodeId u, DataValue v) {
    MutableColumn(a)[static_cast<std::size_t>(u)] = v;
  }

  /// Adds an attribute column named `name` (all values 0) if absent;
  /// returns its id either way.
  AttrId AddAttribute(std::string_view name);

  /// Interner mapping textual attribute values into D.  Shared by parsing
  /// and rendering; mutable because rendering-side interning of new
  /// strings does not change tree semantics.
  ValueInterner& values() const { return *values_; }

  /// Shares `other`'s value interner (dropping this tree's own), so
  /// interned-string attribute values copied from `other` keep their
  /// meaning.  Used by Delimit(): delim(t) carries t's raw attribute
  /// values and must resolve them in the same handle space.
  void AdoptValues(const Tree& other) { values_ = other.values_; }

  /// All distinct attribute values occurring in the tree (D_active of
  /// Section 3), sorted.
  std::vector<DataValue> ActiveDomain() const;

  /// Post-order ranks preloaded from a snapshot (one NodeId per node),
  /// or nullptr for a parsed/built tree.  AxisIndex adopts these
  /// instead of re-running its numbering DFS (src/tree/snapshot.h).
  const NodeId* snapshot_postorder() const { return postorder_view_; }

  /// Whole-tree statistics preloaded from a snapshot's stats section,
  /// or nullptr for a parsed/built tree.  The cost-based planner
  /// (src/logic/planner.h) uses these instead of re-scanning the tree;
  /// GetOrComputeTreeStats (src/tree/tree_stats.h) is the one caller.
  const struct TreeStats* snapshot_stats() const {
    return snapshot_stats_.get();
  }

 private:
  friend class TreeBuilder;
  friend class SnapshotCodec;  // src/tree/snapshot.cc: (de)serialization

  struct Node {
    Symbol label = 0;
    NodeId parent = kNoNode;
    NodeId first_child = kNoNode;
    NodeId last_child = kNoNode;
    NodeId next_sibling = kNoNode;
    NodeId prev_sibling = kNoNode;
    NodeId subtree_end = kNoNode;
    std::int32_t child_index = 0;
    std::int32_t num_children = 0;
  };

  const Node& node(NodeId u) const {
    return nodes_view_[static_cast<std::size_t>(u)];
  }
  /// Column `a` for writing; detaches a snapshot-mapped column into
  /// owned storage first (copy-on-write), so mutation never touches the
  /// shared mapped region.
  DataValue* MutableColumn(AttrId a);
  /// Points the node/column views at the owned vectors (after a copy).
  void RebindOwnedViews(const Tree& other);

  // Owned storage.  For a snapshot-backed tree, `nodes_` (and any
  // column never written to) stays empty and the views below alias the
  // mapped region instead.
  std::vector<Node> nodes_;
  Interner labels_;
  Interner attrs_;
  std::vector<std::vector<DataValue>> attr_values_;  // [attr][node]

  // Views: always valid for u < node_count_, whether the bytes are
  // owned or mapped.
  const Node* nodes_view_ = nullptr;
  std::size_t node_count_ = 0;
  std::vector<const DataValue*> attr_views_;  // [attr] -> column base
  const NodeId* postorder_view_ = nullptr;    // snapshot post-order ranks

  /// Keeps a mapped snapshot region (or an in-memory image) alive for
  /// as long as any view above aliases it; null for owned trees.
  std::shared_ptr<const void> mapping_;

  /// Decoded stats section of a snapshot-backed tree (immutable, shared
  /// by copies); null for parsed/built trees.
  std::shared_ptr<const struct TreeStats> snapshot_stats_;

  std::shared_ptr<ValueInterner> values_ =
      std::make_shared<ValueInterner>();
};

/// Assigns document-order ranks (0 for the root) as the values of
/// attribute `name`, creating it if needed.  This realizes the Section 7
/// assumption of a unique ID attribute.  Returns the attribute id.
AttrId AssignUniqueIds(Tree& tree, std::string_view name = "id");

/// Incremental tree constructor.  Children may be appended to any node in
/// any order; Build() lays the result out in document order.
///
///   TreeBuilder b;
///   auto r = b.AddRoot("a");
///   auto c = b.AddChild(r, "b");
///   b.SetAttr(c, "id", 7);
///   Tree t = b.Build();
class TreeBuilder {
 public:
  /// Opaque builder-side node handle (not a Tree NodeId).
  using Ref = std::int32_t;

  TreeBuilder() = default;

  /// Creates the root; must be called first and exactly once.
  Ref AddRoot(std::string_view label);
  /// Appends a new last child under `parent`.
  Ref AddChild(Ref parent, std::string_view label);
  /// Sets attribute `name` at `node` to a numeric data value.
  void SetAttr(Ref node, std::string_view name, DataValue value);
  /// Sets attribute `name` at `node` to (the interned handle of) `text`.
  void SetAttrString(Ref node, std::string_view name, std::string_view text);

  std::size_t size() const { return protos_.size(); }

  /// Produces the tree.  `ref_to_node`, if non-null, receives the mapping
  /// from builder Refs to document-order NodeIds.
  Tree Build(std::vector<NodeId>* ref_to_node = nullptr) const;

 private:
  struct Proto {
    std::string label;
    std::vector<Ref> children;
    std::vector<std::pair<std::string, DataValue>> attrs;
  };
  std::vector<Proto> protos_;
  std::shared_ptr<ValueInterner> values_ =
      std::make_shared<ValueInterner>();
};

}  // namespace treewalk

#endif  // TREEWALK_TREE_TREE_H_
