#ifndef TREEWALK_TREE_AXIS_INDEX_H_
#define TREEWALK_TREE_AXIS_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "src/common/data_value.h"
#include "src/common/governor.h"
#include "src/common/result.h"
#include "src/tree/tree.h"

namespace treewalk {

class IntervalMatrix;  // src/tree/interval_matrix.h

/// How axis relations and compiled-selector matrices are represented.
///
///   - kDense: n-by-n bitset NodeMatrix rows (O(n^2) bytes, O(1) bit
///     tests, word-parallel row algebra) — unbeatable at small n.
///   - kInterval: pre-order span lists per row (O(n) bytes for every
///     tau axis, range algebra) — the only representation that reaches
///     the million-node target.
///   - kAuto: pick per tree size (ResolveAxisRepr).
enum class AxisRepr {
  kAuto = 0,
  kInterval,
  kDense,
};

/// "auto" / "interval" / "dense".
const char* AxisReprName(AxisRepr repr);
/// Inverse of AxisReprName; nullopt for unknown spellings.
std::optional<AxisRepr> ParseAxisRepr(std::string_view name);

/// Trees at or below this node count stay dense under kAuto: the whole
/// matrix fits in ~2MiB, word-parallel ops win, and existing small-tree
/// behavior (and perf baselines) are preserved.
inline constexpr std::size_t kDenseAxisNodeLimit = 4096;

/// Resolves kAuto against the tree size; returns the request verbatim
/// otherwise.
AxisRepr ResolveAxisRepr(AxisRepr requested, std::size_t n);

/// Dense bitset over Dom(t): one bit per NodeId, packed 64 per word.
/// Because nodes are stored in document order, iterating set bits from
/// word 0 upward yields nodes in document order for free.
class NodeSet {
 public:
  NodeSet() = default;
  /// All-zero set over a domain of `n` nodes.
  explicit NodeSet(std::size_t n) : n_(n), words_((n + 63) / 64, 0) {}

  static NodeSet Full(std::size_t n) {
    NodeSet s(n);
    for (auto& w : s.words_) w = ~std::uint64_t{0};
    s.MaskTail();
    return s;
  }

  /// Domain size (number of addressable bits), not the popcount.
  std::size_t size() const { return n_; }
  std::size_t num_words() const { return words_.size(); }

  bool test(NodeId u) const {
    return (words_[static_cast<std::size_t>(u) >> 6] >>
            (static_cast<std::size_t>(u) & 63)) &
           1;
  }
  void set(NodeId u) {
    words_[static_cast<std::size_t>(u) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(u) & 63);
  }
  /// Sets every bit in [begin, end).
  void SetRange(NodeId begin, NodeId end);

  bool any() const;
  bool all() const;
  std::size_t count() const;

  void Union(const NodeSet& o);
  void Intersect(const NodeSet& o);
  /// Flips all bits (complement relative to Dom(t)).
  void Complement();

  /// Set bits in ascending NodeId order = document order.
  std::vector<NodeId> ToVector() const;

  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t* words() { return words_.data(); }

  friend bool operator==(const NodeSet&, const NodeSet&) = default;

 private:
  void MaskTail();

  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Dense n-by-n bit matrix over Dom(t) x Dom(t): row u is the bitset
/// {v : R(u, v)} of a binary relation R.  Rows are word-aligned, so
/// row-wise set algebra runs 64 node pairs per instruction.
class NodeMatrix {
 public:
  NodeMatrix() = default;
  explicit NodeMatrix(std::size_t n)
      : n_(n), words_per_row_((n + 63) / 64),
        words_(n * ((n + 63) / 64), 0) {}

  std::size_t size() const { return n_; }
  std::size_t words_per_row() const { return words_per_row_; }

  std::uint64_t* Row(NodeId u) {
    return words_.data() + static_cast<std::size_t>(u) * words_per_row_;
  }
  const std::uint64_t* Row(NodeId u) const {
    return words_.data() + static_cast<std::size_t>(u) * words_per_row_;
  }

  bool test(NodeId u, NodeId v) const {
    return (Row(u)[static_cast<std::size_t>(v) >> 6] >>
            (static_cast<std::size_t>(v) & 63)) &
           1;
  }
  void set(NodeId u, NodeId v) {
    Row(u)[static_cast<std::size_t>(v) >> 6] |=
        std::uint64_t{1} << (static_cast<std::size_t>(v) & 63);
  }
  /// Sets row u's bits in [begin, end).
  void SetRowRange(NodeId u, NodeId begin, NodeId end);
  /// ORs `s` into row u.
  void RowUnion(NodeId u, const NodeSet& s);

  void Union(const NodeMatrix& o);
  void Intersect(const NodeMatrix& o);
  /// Flips every bit (complement relative to Dom(t) x Dom(t)).
  void Complement();

  NodeMatrix Transposed() const;

  /// Row copied out as a NodeSet.
  NodeSet RowSet(NodeId u) const;
  /// Set of rows with at least one bit: {u : exists v R(u, v)}.
  NodeSet AnyPerRow() const;
  /// Set of full rows: {u : forall v R(u, v)}.
  NodeSet AllPerRow() const;

  friend bool operator==(const NodeMatrix&, const NodeMatrix&) = default;

 private:
  void MaskTails();

  std::size_t n_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Per-tree index of the tau_{Sigma,A} vocabulary as set-valued views,
/// computed once and shared by every compiled formula over one tree
/// (src/logic/compile.h).  The scalar navigation arrays (parent,
/// first/last child, successor, document-order rank = NodeId) stay on
/// the Tree itself; the index adds what set-at-a-time evaluation needs:
///
///   - unary predicate bitsets: root(x), leaf(x), first(x), last(x);
///   - label -> node-set and attribute-value -> node-set maps;
///   - memoized axis relation matrices: E (child), desc (strict
///     descendant, a contiguous pre-order range per row), sib (later
///     siblings, children-of-parent masked to ids > u), succ.
///
/// Construction is O(n) plus O(|Sigma| + #distinct-values) bitsets;
/// each matrix is materialized on first use and cached.  Not
/// thread-safe: use one AxisIndex per run (the interpreter owns one per
/// Runner).  The tree must outlive the index.
class AxisIndex {
 public:
  /// With a governor, every materialization (base bitsets, relation
  /// matrices, attribute-value indexes) is charged against its memory
  /// budget under MemoryCategory::kAxisIndex *before* allocating, and
  /// the Try* accessors surface kResourceExhausted instead of growing
  /// without bound.  Without one (the default) behavior is unchanged.
  explicit AxisIndex(const Tree& tree, ResourceGovernor* governor = nullptr);
  ~AxisIndex();  // out of line: interval slots hold an incomplete type here

  const Tree& tree() const { return *tree_; }
  std::size_t size() const { return n_; }
  ResourceGovernor* governor() const { return governor_; }
  /// Non-OK when already the construction-time bitsets blew the budget;
  /// check after constructing with a governor.
  const Status& status() const { return status_; }

  const NodeSet& Empty() const { return empty_; }
  const NodeSet& Full() const { return full_; }
  const NodeSet& Roots() const { return roots_; }
  const NodeSet& Leaves() const { return leaves_; }
  const NodeSet& FirstChildren() const { return first_children_; }
  const NodeSet& LastChildren() const { return last_children_; }

  /// Nodes labeled `name`; the empty set when no node carries it (the
  /// lab(x, sigma) semantics: an unknown label is false everywhere).
  const NodeSet& LabelSet(std::string_view name) const;

  /// Nodes whose attribute `a` has value `v` (empty set when none).
  /// `a` must be a valid attribute id of the tree.
  const NodeSet& AttrValueSet(AttrId a, DataValue v) const;
  /// Distinct values of attribute `a`, ascending.
  const std::vector<DataValue>& AttrValues(AttrId a) const;

  /// E(u, v): v is a child of u.
  const NodeMatrix& EdgeMatrix() const;
  /// desc(u, v): v is a strict descendant of u.
  const NodeMatrix& DescendantMatrix() const;
  /// sib(u, v): same parent, u before v.
  const NodeMatrix& SiblingMatrix() const;
  /// succ(u, v): v is the right sibling of u.
  const NodeMatrix& SuccMatrix() const;
  /// u = v.
  const NodeMatrix& IdentityMatrix() const;

  /// Governed variants of the lazy accessors: charge the governor's
  /// memory budget before materializing (a cached matrix re-charges
  /// nothing) and fail with kResourceExhausted instead of allocating
  /// past the budget.  The compiler (src/logic/compile.cc) uses these;
  /// the reference accessors above stay for ungoverned callers.
  Result<const NodeMatrix*> TryEdgeMatrix() const;
  Result<const NodeMatrix*> TryDescendantMatrix() const;
  Result<const NodeMatrix*> TrySiblingMatrix() const;
  Result<const NodeMatrix*> TrySuccMatrix() const;
  Result<const NodeMatrix*> TryIdentityMatrix() const;
  Result<const NodeSet*> TryAttrValueSet(AttrId a, DataValue v) const;
  Result<const std::vector<DataValue>*> TryAttrValues(AttrId a) const;

  /// Bytes a dense n-by-n NodeMatrix over this domain occupies; what
  /// the Try* accessors charge per materialized relation.
  std::int64_t MatrixBytes() const;

  /// Interval-encoded axis relations: the same five relations as the
  /// Try*Matrix accessors, as O(n)-byte IntervalMatrix objects.  The
  /// pre-order arena makes every one span-sparse — desc(u) is the
  /// single range (u, SubtreeEnd(u)), succ(u) one point, sib(u) a
  /// suffix window onto one shared child-run list per family.  Each is
  /// materialized on first use with an *exact* pre-charge (a span-count
  /// prepass, not the dense MatrixBytes worst case) under
  /// MemoryCategory::kAxisIndex, and cached.
  Result<const IntervalMatrix*> TryEdgeIntervals() const;
  Result<const IntervalMatrix*> TryDescendantIntervals() const;
  Result<const IntervalMatrix*> TrySiblingIntervals() const;
  Result<const IntervalMatrix*> TrySuccIntervals() const;
  Result<const IntervalMatrix*> TryIdentityIntervals() const;

  /// rank[u] = position of u in post-order (pre-order rank is the
  /// NodeId itself).  desc(u, v) iff u < v and rank[v] < rank[u]: the
  /// interval-numbering invariant the metamorphic suite checks.
  /// Lazy, cached, charged under kAxisIndex.
  Result<const std::vector<NodeId>*> TryPostorderRanks() const;
  /// Ungoverned variant (materializes unconditionally).
  const std::vector<NodeId>& PostorderRanks() const;

 private:
  struct AttrIndex {
    std::map<DataValue, NodeSet> sets;
    std::vector<DataValue> values;
  };
  const AttrIndex& AttrIndexFor(AttrId a) const;
  Status EnsureAttrIndex(AttrId a) const;
  /// Charges + materializes `slot` via `fill`; OK and cached on reuse.
  Status EnsureMatrix(std::optional<NodeMatrix>& slot,
                      void (AxisIndex::*fill)(NodeMatrix&) const) const;
  void FillEdge(NodeMatrix& m) const;
  void FillDescendant(NodeMatrix& m) const;
  void FillSibling(NodeMatrix& m) const;
  void FillSucc(NodeMatrix& m) const;
  void FillIdentity(NodeMatrix& m) const;

  /// Charges exactly (prepassed span count) + builds `slot` via
  /// `build`; OK and cached on reuse.
  Status EnsureIntervals(std::unique_ptr<IntervalMatrix>& slot,
                         Result<IntervalMatrix> (AxisIndex::*build)()
                             const) const;
  Result<IntervalMatrix> BuildEdgeIntervals() const;
  Result<IntervalMatrix> BuildDescendantIntervals() const;
  Result<IntervalMatrix> BuildSiblingIntervals() const;
  Result<IntervalMatrix> BuildSuccIntervals() const;
  Result<IntervalMatrix> BuildIdentityIntervals() const;

  const Tree* tree_;
  std::size_t n_;
  ResourceGovernor* governor_ = nullptr;
  Status status_;
  NodeSet empty_, full_, roots_, leaves_, first_children_, last_children_;
  std::vector<NodeSet> label_sets_;  // indexed by Symbol
  mutable std::vector<std::optional<AttrIndex>> attr_index_;
  mutable std::optional<NodeMatrix> edge_, desc_, sib_, succ_, identity_;
  mutable std::unique_ptr<IntervalMatrix> iedge_, idesc_, isib_, isucc_,
      iidentity_;
  mutable std::optional<std::vector<NodeId>> post_ranks_;
};

}  // namespace treewalk

#endif  // TREEWALK_TREE_AXIS_INDEX_H_
