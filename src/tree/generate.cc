#include "src/tree/generate.h"

#include <cassert>

#include "src/tree/traversal.h"

namespace treewalk {

Tree RandomTree(std::mt19937& rng, const RandomTreeOptions& options) {
  assert(options.num_nodes >= 1);
  assert(!options.labels.empty());
  TreeBuilder builder;
  std::uniform_int_distribution<std::size_t> label_dist(
      0, options.labels.size() - 1);

  std::vector<TreeBuilder::Ref> open;  // nodes that may still take children
  std::vector<int> child_count;
  TreeBuilder::Ref root = builder.AddRoot(options.labels[label_dist(rng)]);
  open.push_back(root);
  child_count.push_back(0);

  for (int i = 1; i < options.num_nodes; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, open.size() - 1);
    std::size_t slot = pick(rng);
    TreeBuilder::Ref parent = open[slot];
    TreeBuilder::Ref child =
        builder.AddChild(parent, options.labels[label_dist(rng)]);
    if (++child_count[slot] >= options.max_children) {
      open[slot] = open.back();
      child_count[slot] = child_count.back();
      open.pop_back();
      child_count.pop_back();
    }
    open.push_back(child);
    child_count.push_back(0);
  }

  Tree tree = builder.Build();
  std::uniform_int_distribution<DataValue> value_dist(0,
                                                      options.value_range - 1);
  for (const std::string& attr : options.attributes) {
    AttrId a = tree.AddAttribute(attr);
    for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
      tree.set_attr(a, u, value_dist(rng));
    }
  }
  return tree;
}

namespace {

void FullTreeRec(TreeBuilder& builder, TreeBuilder::Ref node, int arity,
                 int depth, std::string_view label) {
  if (depth == 0) return;
  for (int i = 0; i < arity; ++i) {
    FullTreeRec(builder, builder.AddChild(node, label), arity, depth - 1,
                label);
  }
}

}  // namespace

Tree FullTree(int arity, int depth, std::string_view label) {
  TreeBuilder builder;
  FullTreeRec(builder, builder.AddRoot(label), arity, depth, label);
  return builder.Build();
}

Tree RandomString(std::mt19937& rng, int n, DataValue value_range,
                  std::string_view label, std::string_view attr) {
  assert(n >= 1);
  std::uniform_int_distribution<DataValue> dist(0, value_range - 1);
  std::vector<DataValue> values(static_cast<std::size_t>(n));
  for (DataValue& v : values) v = dist(rng);
  TreeBuilder builder;
  TreeBuilder::Ref node = builder.AddRoot(label);
  builder.SetAttr(node, attr, values[0]);
  for (int i = 1; i < n; ++i) {
    node = builder.AddChild(node, label);
    builder.SetAttr(node, attr, values[static_cast<std::size_t>(i)]);
  }
  return builder.Build();
}

namespace {

/// All forests (ordered sequences of trees) with exactly `n` nodes
/// total, as lists of builder-subtree blueprints.  A blueprint is a
/// label index plus child blueprints.
struct Blueprint {
  std::size_t label;
  std::vector<Blueprint> children;
};

void BuildBlueprint(const Blueprint& bp, TreeBuilder& builder,
                    TreeBuilder::Ref parent,
                    const std::vector<std::string>& labels) {
  TreeBuilder::Ref node = parent < 0
                              ? builder.AddRoot(labels[bp.label])
                              : builder.AddChild(parent, labels[bp.label]);
  for (const Blueprint& child : bp.children) {
    BuildBlueprint(child, builder, node, labels);
  }
}

std::vector<std::vector<Blueprint>> EnumerateForests(int n,
                                                     std::size_t num_labels);

std::vector<Blueprint> EnumerateBlueprints(int n, std::size_t num_labels) {
  std::vector<Blueprint> out;
  if (n < 1) return out;
  for (const std::vector<Blueprint>& children :
       EnumerateForests(n - 1, num_labels)) {
    for (std::size_t label = 0; label < num_labels; ++label) {
      out.push_back(Blueprint{label, children});
    }
  }
  return out;
}

std::vector<std::vector<Blueprint>> EnumerateForests(int n,
                                                     std::size_t num_labels) {
  std::vector<std::vector<Blueprint>> out;
  if (n == 0) {
    out.push_back({});
    return out;
  }
  // First tree takes k nodes, the rest form a forest of n - k.
  for (int k = 1; k <= n; ++k) {
    std::vector<Blueprint> firsts = EnumerateBlueprints(k, num_labels);
    std::vector<std::vector<Blueprint>> rests =
        EnumerateForests(n - k, num_labels);
    for (const Blueprint& first : firsts) {
      for (const std::vector<Blueprint>& rest : rests) {
        std::vector<Blueprint> forest = {first};
        forest.insert(forest.end(), rest.begin(), rest.end());
        out.push_back(std::move(forest));
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Tree> EnumerateTrees(int num_nodes,
                                 const std::vector<std::string>& labels) {
  std::vector<Tree> out;
  for (const Blueprint& bp : EnumerateBlueprints(num_nodes, labels.size())) {
    TreeBuilder builder;
    BuildBlueprint(bp, builder, -1, labels);
    out.push_back(builder.Build());
  }
  return out;
}

Tree Example32Tree(std::mt19937& rng, int num_nodes, bool uniform) {
  assert(num_nodes >= 3);
  // Random attach process with the root forced to "delta" and the last
  // node forced under the root, so the root always has >= 2 leaf
  // descendants and the non-uniform case is always realizable.
  TreeBuilder builder;
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<TreeBuilder::Ref> nodes;
  nodes.push_back(builder.AddRoot("delta"));
  for (int i = 1; i < num_nodes; ++i) {
    TreeBuilder::Ref parent;
    if (i == num_nodes - 1) {
      parent = nodes.front();
    } else {
      std::uniform_int_distribution<std::size_t> pick(0, nodes.size() - 1);
      parent = nodes[pick(rng)];
    }
    nodes.push_back(
        builder.AddChild(parent, coin(rng) != 0 ? "delta" : "sigma"));
  }
  Tree tree = builder.Build();
  AttrId a = tree.AddAttribute("a");
  Symbol delta = tree.FindLabel("delta");

  // Make the property hold: every leaf under any delta node gets the
  // common value of the top-most delta ancestor's region.
  std::vector<DataValue> region(tree.size(), -1);
  std::uniform_int_distribution<DataValue> value_dist(0, 63);
  for (NodeId u = 0; u < static_cast<NodeId>(tree.size()); ++u) {
    NodeId p = tree.Parent(u);
    if (p != kNoNode && region[static_cast<std::size_t>(p)] >= 0) {
      region[static_cast<std::size_t>(u)] =
          region[static_cast<std::size_t>(p)];
    } else if (tree.label(u) == delta) {
      region[static_cast<std::size_t>(u)] = value_dist(rng);
    }
    if (tree.IsLeaf(u) && region[static_cast<std::size_t>(u)] >= 0) {
      tree.set_attr(a, u, region[static_cast<std::size_t>(u)]);
    }
  }

  if (!uniform) {
    // Poison: the root is a delta node with >= 2 leaf descendants by
    // construction; flip its last leaf to a fresh value.
    std::vector<NodeId> leaves = Leaves(tree);
    assert(leaves.size() >= 2);
    tree.set_attr(a, leaves.back(), tree.attr(a, leaves.back()) + 1000);
  }
  return tree;
}

Tree XmlLikeTree(std::mt19937& rng, int num_nodes) {
  assert(num_nodes >= 1);
  static constexpr const char* kTags[] = {"doc",  "section", "para",
                                          "item", "ref",     "text"};
  TreeBuilder builder;
  // Stack of open elements: children go to the innermost one; a
  // weighted coin closes elements, which is what produces the long
  // flat sibling runs characteristic of documents.
  std::vector<TreeBuilder::Ref> open;
  open.push_back(builder.AddRoot(kTags[0]));
  std::uniform_int_distribution<int> tag(1, 5);
  std::uniform_int_distribution<int> action(0, 9);
  for (int i = 1; i < num_nodes; ++i) {
    int roll = action(rng);
    if (roll < 2 && open.size() > 1) {
      open.pop_back();  // close the innermost element
    }
    TreeBuilder::Ref child =
        builder.AddChild(open.back(), kTags[tag(rng)]);
    // Descend into ~1/3 of new elements, depth-capped so the tree stays
    // document-shallow no matter how large it grows.
    if (roll >= 7 && open.size() < 12) open.push_back(child);
  }
  return builder.Build();
}

Tree TreeFromBytes(const std::uint8_t* data, std::size_t size,
                   int max_nodes) {
  assert(max_nodes >= 1);
  static constexpr const char* kLabels[] = {"a", "b", "c"};
  TreeBuilder builder;
  std::vector<TreeBuilder::Ref> path;  // root .. current node
  path.push_back(builder.AddRoot(kLabels[0]));
  int nodes = 1;
  for (std::size_t i = 0; i < size && nodes < max_nodes; ++i) {
    std::uint8_t byte = data[i];
    const char* label = kLabels[byte % 3];
    switch ((byte >> 2) % 3) {
      case 0: {  // child of the current node; descend
        path.push_back(builder.AddChild(path.back(), label));
        ++nodes;
        break;
      }
      case 1: {  // sibling: child of the current node's parent
        TreeBuilder::Ref parent =
            path.size() > 1 ? path[path.size() - 2] : path[0];
        if (path.size() > 1) path.pop_back();
        path.push_back(builder.AddChild(parent, label));
        ++nodes;
        break;
      }
      default: {  // pop toward the root (no node added)
        if (path.size() > 1) path.pop_back();
        break;
      }
    }
  }
  return builder.Build();
}

}  // namespace treewalk
