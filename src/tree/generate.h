#ifndef TREEWALK_TREE_GENERATE_H_
#define TREEWALK_TREE_GENERATE_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "src/tree/tree.h"

namespace treewalk {

/// Parameters for random attributed trees.
struct RandomTreeOptions {
  /// Exact number of nodes to generate.
  int num_nodes = 16;
  /// Maximum children per node; the shape is a uniformly random attach-
  /// to-random-node process truncated by this bound.
  int max_children = 4;
  /// Labels to draw uniformly from (Sigma).
  std::vector<std::string> labels = {"a", "b"};
  /// Attribute columns to create (A).
  std::vector<std::string> attributes = {"a"};
  /// Attribute values are drawn uniformly from [0, value_range).
  DataValue value_range = 8;
};

/// Generates a random attributed tree.  Deterministic given `rng` state.
Tree RandomTree(std::mt19937& rng, const RandomTreeOptions& options);

/// Complete `arity`-ary tree of the given depth (depth 0 = single node),
/// all nodes labeled `label`, no attributes.
Tree FullTree(int arity, int depth, std::string_view label = "a");

/// Random string (monadic tree) of length `n` with attribute values drawn
/// from [0, value_range).
Tree RandomString(std::mt19937& rng, int n, DataValue value_range,
                  std::string_view label = "s", std::string_view attr = "a");

/// All attribute-free trees with exactly `num_nodes` nodes and labels
/// drawn from `labels` — Catalan(num_nodes - 1) shapes times
/// |labels|^num_nodes labelings, so keep inputs tiny (num_nodes <= 5
/// with two labels is ~2k trees).  Used by exhaustive equivalence tests
/// (Proposition 7.2).
std::vector<Tree> EnumerateTrees(int num_nodes,
                                 const std::vector<std::string>& labels);

/// The paper's Example 3.2 workload: a tree with sigma/delta labels where
/// for every delta node all leaf descendants carry the same value of
/// attribute "a" iff `uniform` (one leaf is poisoned otherwise).
Tree Example32Tree(std::mt19937& rng, int num_nodes, bool uniform);

/// Document-shaped tree: a handful of element tags nested to a bounded
/// depth with wide sibling runs (element children attach to the most
/// recent open ancestor, closing elements randomly), the shape XML
/// workloads stress — long child families and shallow recursion, as
/// opposed to RandomTree's uniform attach.  Exactly `num_nodes` nodes,
/// no attributes.
Tree XmlLikeTree(std::mt19937& rng, int num_nodes);

/// Deterministic tree from an arbitrary byte string (fuzz driver):
/// each byte decides, from the current node, whether to add a child and
/// descend, add a sibling, or pop toward the root.  Always yields a
/// valid tree with between 1 and max_nodes nodes; every byte sequence
/// is a valid input, and every tree shape up to max_nodes is reachable.
Tree TreeFromBytes(const std::uint8_t* data, std::size_t size,
                   int max_nodes);

}  // namespace treewalk

#endif  // TREEWALK_TREE_GENERATE_H_
