#include "src/tree/axis_index.h"

#include <bit>
#include <cassert>

#include "src/common/failpoint.h"
#include "src/tree/interval_matrix.h"
#include "src/tree/traversal.h"

namespace treewalk {

const char* AxisReprName(AxisRepr repr) {
  switch (repr) {
    case AxisRepr::kAuto:
      return "auto";
    case AxisRepr::kInterval:
      return "interval";
    case AxisRepr::kDense:
      return "dense";
  }
  return "auto";
}

std::optional<AxisRepr> ParseAxisRepr(std::string_view name) {
  if (name == "auto") return AxisRepr::kAuto;
  if (name == "interval") return AxisRepr::kInterval;
  if (name == "dense") return AxisRepr::kDense;
  return std::nullopt;
}

AxisRepr ResolveAxisRepr(AxisRepr requested, std::size_t n) {
  if (requested != AxisRepr::kAuto) return requested;
  return n <= kDenseAxisNodeLimit ? AxisRepr::kDense : AxisRepr::kInterval;
}

namespace {

/// Word-level mask helpers shared by NodeSet and NodeMatrix rows.
inline void SetBitRange(std::uint64_t* words, NodeId begin, NodeId end) {
  if (begin >= end) return;
  std::size_t first = static_cast<std::size_t>(begin) >> 6;
  std::size_t last = static_cast<std::size_t>(end - 1) >> 6;
  std::uint64_t head = ~std::uint64_t{0}
                       << (static_cast<std::size_t>(begin) & 63);
  std::uint64_t tail =
      ~std::uint64_t{0} >> (63 - (static_cast<std::size_t>(end - 1) & 63));
  if (first == last) {
    words[first] |= head & tail;
    return;
  }
  words[first] |= head;
  for (std::size_t w = first + 1; w < last; ++w) words[w] = ~std::uint64_t{0};
  words[last] |= tail;
}

inline void MaskTailWords(std::uint64_t* words, std::size_t num_words,
                          std::size_t n) {
  if (num_words == 0) return;
  std::size_t used = n & 63;
  if (used != 0) words[num_words - 1] &= (~std::uint64_t{0}) >> (64 - used);
}

inline void AppendBits(std::vector<NodeId>& out, const std::uint64_t* words,
                       std::size_t num_words) {
  for (std::size_t w = 0; w < num_words; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      int b = std::countr_zero(bits);
      out.push_back(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)));
      bits &= bits - 1;
    }
  }
}

}  // namespace

// --- NodeSet. ----------------------------------------------------------

void NodeSet::SetRange(NodeId begin, NodeId end) {
  SetBitRange(words_.data(), begin, end);
}

bool NodeSet::any() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

bool NodeSet::all() const { return count() == n_; }

std::size_t NodeSet::count() const {
  std::size_t c = 0;
  for (std::uint64_t w : words_) c += static_cast<std::size_t>(std::popcount(w));
  return c;
}

void NodeSet::Union(const NodeSet& o) {
  assert(o.n_ == n_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
}

void NodeSet::Intersect(const NodeSet& o) {
  assert(o.n_ == n_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
}

void NodeSet::Complement() {
  for (auto& w : words_) w = ~w;
  MaskTail();
}

std::vector<NodeId> NodeSet::ToVector() const {
  std::vector<NodeId> out;
  out.reserve(count());
  AppendBits(out, words_.data(), words_.size());
  return out;
}

void NodeSet::MaskTail() { MaskTailWords(words_.data(), words_.size(), n_); }

// --- NodeMatrix. -------------------------------------------------------

void NodeMatrix::SetRowRange(NodeId u, NodeId begin, NodeId end) {
  SetBitRange(Row(u), begin, end);
}

void NodeMatrix::RowUnion(NodeId u, const NodeSet& s) {
  assert(s.size() == n_);
  std::uint64_t* row = Row(u);
  for (std::size_t w = 0; w < words_per_row_; ++w) row[w] |= s.words()[w];
}

void NodeMatrix::Union(const NodeMatrix& o) {
  assert(o.n_ == n_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
}

void NodeMatrix::Intersect(const NodeMatrix& o) {
  assert(o.n_ == n_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= o.words_[w];
}

void NodeMatrix::Complement() {
  for (auto& w : words_) w = ~w;
  MaskTails();
}

NodeMatrix NodeMatrix::Transposed() const {
  NodeMatrix t(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    const std::uint64_t* row = Row(u);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      std::uint64_t bits = row[w];
      while (bits != 0) {
        int b = std::countr_zero(bits);
        t.set(static_cast<NodeId>(w * 64 + static_cast<std::size_t>(b)), u);
        bits &= bits - 1;
      }
    }
  }
  return t;
}

NodeSet NodeMatrix::RowSet(NodeId u) const {
  NodeSet s(n_);
  const std::uint64_t* row = Row(u);
  for (std::size_t w = 0; w < words_per_row_; ++w) s.words()[w] = row[w];
  return s;
}

NodeSet NodeMatrix::AnyPerRow() const {
  NodeSet s(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    const std::uint64_t* row = Row(u);
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if (row[w] != 0) {
        s.set(u);
        break;
      }
    }
  }
  return s;
}

NodeSet NodeMatrix::AllPerRow() const {
  NodeSet s(n_);
  if (n_ == 0) return s;
  std::size_t used = n_ & 63;
  std::uint64_t tail_full =
      used == 0 ? ~std::uint64_t{0} : (~std::uint64_t{0}) >> (64 - used);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    const std::uint64_t* row = Row(u);
    bool full = true;
    for (std::size_t w = 0; w + 1 < words_per_row_; ++w) {
      if (row[w] != ~std::uint64_t{0}) {
        full = false;
        break;
      }
    }
    if (full && row[words_per_row_ - 1] == tail_full) s.set(u);
  }
  return s;
}

void NodeMatrix::MaskTails() {
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    MaskTailWords(Row(u), words_per_row_, n_);
  }
}

// --- AxisIndex. --------------------------------------------------------

namespace {

/// Approximate heap footprint of one NodeSet over n nodes (words plus
/// small-object overhead); the unit of axis-index memory accounting.
std::int64_t SetBytes(std::size_t n) {
  return static_cast<std::int64_t>((n + 63) / 64) * 8 + 48;
}

}  // namespace

AxisIndex::AxisIndex(const Tree& tree, ResourceGovernor* governor)
    : tree_(&tree),
      n_(tree.size()),
      governor_(governor),
      empty_(n_),
      full_(NodeSet::Full(n_)),
      roots_(n_),
      leaves_(n_),
      first_children_(n_),
      last_children_(n_) {
  // The base bitsets (6 predicates + one set per label) are charged as
  // one construction-time block; a failed charge latches status() and
  // the index stays usable only for its error report.
  status_ = GovernorCharge(
      governor_, MemoryCategory::kAxisIndex,
      static_cast<std::int64_t>(6 + tree.labels().size()) * SetBytes(n_));
  if (!status_.ok()) return;
  label_sets_.resize(tree.labels().size(), NodeSet(n_));
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    if (tree.IsRoot(u)) roots_.set(u);
    if (tree.IsLeaf(u)) leaves_.set(u);
    if (tree.IsFirstChild(u)) first_children_.set(u);
    if (tree.IsLastChild(u)) last_children_.set(u);
    label_sets_[static_cast<std::size_t>(tree.label(u))].set(u);
  }
  attr_index_.resize(tree.num_attributes());
}

std::int64_t AxisIndex::MatrixBytes() const {
  return static_cast<std::int64_t>(n_) *
             static_cast<std::int64_t>((n_ + 63) / 64) * 8 +
         64;
}

const NodeSet& AxisIndex::LabelSet(std::string_view name) const {
  Symbol s = tree_->FindLabel(name);
  if (s < 0) return empty_;
  return label_sets_[static_cast<std::size_t>(s)];
}

Status AxisIndex::EnsureAttrIndex(AttrId a) const {
  auto& slot = attr_index_[static_cast<std::size_t>(a)];
  if (slot.has_value()) return Status::Ok();
  TREEWALK_FAILPOINT("axis_index/alloc");
  slot.emplace();
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    DataValue v = tree_->attr(a, u);
    auto [it, inserted] = slot->sets.try_emplace(v, n_);
    it->second.set(u);
    if (inserted) {
      // Charged per distinct value, as the sets appear: the index can
      // hold up to n sets, and pre-charging the worst case would
      // reject harmless trees.
      Status charge = GovernorCharge(governor_, MemoryCategory::kAxisIndex,
                                     SetBytes(n_) + 32);
      if (!charge.ok()) {
        slot.reset();
        return charge;
      }
    }
  }
  slot->values.reserve(slot->sets.size());
  for (const auto& [v, set] : slot->sets) slot->values.push_back(v);
  return Status::Ok();
}

const AxisIndex::AttrIndex& AxisIndex::AttrIndexFor(AttrId a) const {
  auto& slot = attr_index_[static_cast<std::size_t>(a)];
  if (!slot.has_value()) {
    // Ungoverned reference path; a charge rejection can only happen via
    // the Try* accessors, which callers with a governor use instead.
    ResourceGovernor* saved = governor_;
    const_cast<AxisIndex*>(this)->governor_ = nullptr;
    (void)EnsureAttrIndex(a);
    const_cast<AxisIndex*>(this)->governor_ = saved;
  }
  return *slot;
}

const NodeSet& AxisIndex::AttrValueSet(AttrId a, DataValue v) const {
  const AttrIndex& index = AttrIndexFor(a);
  auto it = index.sets.find(v);
  if (it == index.sets.end()) return empty_;
  return it->second;
}

const std::vector<DataValue>& AxisIndex::AttrValues(AttrId a) const {
  return AttrIndexFor(a).values;
}

Result<const NodeSet*> AxisIndex::TryAttrValueSet(AttrId a,
                                                  DataValue v) const {
  TREEWALK_RETURN_IF_ERROR(EnsureAttrIndex(a));
  const AttrIndex& index = *attr_index_[static_cast<std::size_t>(a)];
  auto it = index.sets.find(v);
  if (it == index.sets.end()) return &empty_;
  return &it->second;
}

Result<const std::vector<DataValue>*> AxisIndex::TryAttrValues(
    AttrId a) const {
  TREEWALK_RETURN_IF_ERROR(EnsureAttrIndex(a));
  return &attr_index_[static_cast<std::size_t>(a)]->values;
}

Status AxisIndex::EnsureMatrix(std::optional<NodeMatrix>& slot,
                               void (AxisIndex::*fill)(NodeMatrix&)
                                   const) const {
  if (slot.has_value()) return Status::Ok();
  TREEWALK_FAILPOINT("axis_index/alloc");
  TREEWALK_RETURN_IF_ERROR(
      GovernorCharge(governor_, MemoryCategory::kAxisIndex, MatrixBytes()));
  slot.emplace(n_);
  (this->*fill)(*slot);
  return Status::Ok();
}

void AxisIndex::FillEdge(NodeMatrix& m) const {
  for (NodeId v = 0; v < static_cast<NodeId>(n_); ++v) {
    NodeId p = tree_->Parent(v);
    if (p != kNoNode) m.set(p, v);
  }
}

void AxisIndex::FillDescendant(NodeMatrix& m) const {
  // Pre-order layout: the strict descendants of u are exactly the
  // contiguous id range (u, SubtreeEnd(u)).
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    m.SetRowRange(u, u + 1, tree_->SubtreeEnd(u));
  }
}

void AxisIndex::FillSibling(NodeMatrix& m) const {
  // Later siblings of u have larger pre-order ids, so row u is the
  // parent's child set masked to ids > u; walking the sibling chain
  // directly sets exactly those bits.
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    for (NodeId v = tree_->NextSibling(u); v != kNoNode;
         v = tree_->NextSibling(v)) {
      m.set(u, v);
    }
  }
}

void AxisIndex::FillSucc(NodeMatrix& m) const {
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId v = tree_->NextSibling(u);
    if (v != kNoNode) m.set(u, v);
  }
}

void AxisIndex::FillIdentity(NodeMatrix& m) const {
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) m.set(u, u);
}

/// The ungoverned reference accessors materialize unconditionally (the
/// charge cannot fire without a governor, and existing callers keep
/// their infallible signatures).
const NodeMatrix& AxisIndex::EdgeMatrix() const {
  if (!edge_.has_value()) {
    edge_.emplace(n_);
    FillEdge(*edge_);
  }
  return *edge_;
}

const NodeMatrix& AxisIndex::DescendantMatrix() const {
  if (!desc_.has_value()) {
    desc_.emplace(n_);
    FillDescendant(*desc_);
  }
  return *desc_;
}

const NodeMatrix& AxisIndex::SiblingMatrix() const {
  if (!sib_.has_value()) {
    sib_.emplace(n_);
    FillSibling(*sib_);
  }
  return *sib_;
}

const NodeMatrix& AxisIndex::SuccMatrix() const {
  if (!succ_.has_value()) {
    succ_.emplace(n_);
    FillSucc(*succ_);
  }
  return *succ_;
}

const NodeMatrix& AxisIndex::IdentityMatrix() const {
  if (!identity_.has_value()) {
    identity_.emplace(n_);
    FillIdentity(*identity_);
  }
  return *identity_;
}

Result<const NodeMatrix*> AxisIndex::TryEdgeMatrix() const {
  TREEWALK_RETURN_IF_ERROR(EnsureMatrix(edge_, &AxisIndex::FillEdge));
  return &*edge_;
}
Result<const NodeMatrix*> AxisIndex::TryDescendantMatrix() const {
  TREEWALK_RETURN_IF_ERROR(EnsureMatrix(desc_, &AxisIndex::FillDescendant));
  return &*desc_;
}
Result<const NodeMatrix*> AxisIndex::TrySiblingMatrix() const {
  TREEWALK_RETURN_IF_ERROR(EnsureMatrix(sib_, &AxisIndex::FillSibling));
  return &*sib_;
}
Result<const NodeMatrix*> AxisIndex::TrySuccMatrix() const {
  TREEWALK_RETURN_IF_ERROR(EnsureMatrix(succ_, &AxisIndex::FillSucc));
  return &*succ_;
}
Result<const NodeMatrix*> AxisIndex::TryIdentityMatrix() const {
  TREEWALK_RETURN_IF_ERROR(EnsureMatrix(identity_, &AxisIndex::FillIdentity));
  return &*identity_;
}

// --- Interval-encoded axes. --------------------------------------------

AxisIndex::~AxisIndex() = default;

namespace {

/// Exact footprint of an interval axis with `spans` total spans: the
/// row-descriptor array plus the one shared span pool.
std::int64_t IntervalBytes(std::size_t n, std::size_t spans) {
  return static_cast<std::int64_t>(n) *
             static_cast<std::int64_t>(sizeof(IntervalMatrix::Row)) +
         static_cast<std::int64_t>(spans) *
             static_cast<std::int64_t>(sizeof(NodeSpan)) +
         64;
}

}  // namespace

Status AxisIndex::EnsureIntervals(std::unique_ptr<IntervalMatrix>& slot,
                                  Result<IntervalMatrix> (AxisIndex::*build)()
                                      const) const {
  if (slot != nullptr) return Status::Ok();
  TREEWALK_FAILPOINT("axis_index/alloc");
  auto built = (this->*build)();
  if (!built.ok()) return built.status();
  slot = std::make_unique<IntervalMatrix>(std::move(built).value());
  return Status::Ok();
}

Result<IntervalMatrix> AxisIndex::BuildEdgeIntervals() const {
  // Children of u sit at non-contiguous pre-order ids (each child is
  // followed by its own subtree), so row u is one span per maximal run
  // of adjacent children — adjacency happens exactly when the previous
  // child is a leaf.  Prepass counts the runs for an exact charge.
  std::size_t spans = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId prev_end = kNoNode;
    for (NodeId c = tree_->FirstChild(u); c != kNoNode;
         c = tree_->NextSibling(c)) {
      if (c != prev_end) ++spans;
      prev_end = tree_->SubtreeEnd(c);
    }
  }
  TREEWALK_RETURN_IF_ERROR(GovernorCharge(
      governor_, MemoryCategory::kAxisIndex, IntervalBytes(n_, spans)));
  IntervalMatrixBuilder builder(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId run_begin = kNoNode, run_end = kNoNode;
    for (NodeId c = tree_->FirstChild(u); c != kNoNode;
         c = tree_->NextSibling(c)) {
      if (c == run_end) {
        run_end = c + 1;
        continue;
      }
      if (run_begin != kNoNode)
        TREEWALK_RETURN_IF_ERROR(builder.AddSpan(run_begin, run_end));
      run_begin = c;
      run_end = c + 1;
    }
    if (run_begin != kNoNode)
      TREEWALK_RETURN_IF_ERROR(builder.AddSpan(run_begin, run_end));
    TREEWALK_RETURN_IF_ERROR(builder.CommitRow(u));
  }
  return std::move(builder).Finish();
}

Result<IntervalMatrix> AxisIndex::BuildDescendantIntervals() const {
  std::size_t spans = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u)
    if (tree_->SubtreeEnd(u) > u + 1) ++spans;
  TREEWALK_RETURN_IF_ERROR(GovernorCharge(
      governor_, MemoryCategory::kAxisIndex, IntervalBytes(n_, spans)));
  IntervalMatrixBuilder builder(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId end = tree_->SubtreeEnd(u);
    if (end > u + 1) TREEWALK_RETURN_IF_ERROR(builder.AddSpan(u + 1, end));
    TREEWALK_RETURN_IF_ERROR(builder.CommitRow(u));
  }
  return std::move(builder).Finish();
}

Result<IntervalMatrix> AxisIndex::BuildSiblingIntervals() const {
  // Later siblings of u are exactly the family members with id > u, so
  // one shared child-run list per family serves every child: the first
  // child commits it, then re-clips itself out, and each later child
  // aliases a [c+1, n) suffix window of it.  O(1) spans amortized per
  // node.
  std::size_t spans = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId prev_end = kNoNode;
    for (NodeId c = tree_->FirstChild(u); c != kNoNode;
         c = tree_->NextSibling(c)) {
      if (c != prev_end) ++spans;
      prev_end = tree_->SubtreeEnd(c);
    }
  }
  TREEWALK_RETURN_IF_ERROR(GovernorCharge(
      governor_, MemoryCategory::kAxisIndex, IntervalBytes(n_, spans)));
  IntervalMatrixBuilder builder(n_);
  const NodeId nn = static_cast<NodeId>(n_);
  auto commit_family = [&](NodeId first) -> Status {
    NodeId run_begin = kNoNode, run_end = kNoNode;
    for (NodeId c = first; c != kNoNode; c = tree_->NextSibling(c)) {
      if (c == run_end) {
        run_end = c + 1;
        continue;
      }
      if (run_begin != kNoNode)
        TREEWALK_RETURN_IF_ERROR(builder.AddSpan(run_begin, run_end));
      run_begin = c;
      run_end = c + 1;
    }
    if (run_begin != kNoNode)
      TREEWALK_RETURN_IF_ERROR(builder.AddSpan(run_begin, run_end));
    TREEWALK_RETURN_IF_ERROR(builder.CommitRow(first));
    TREEWALK_RETURN_IF_ERROR(builder.ReclipRow(first, first + 1, nn));
    for (NodeId c = tree_->NextSibling(first); c != kNoNode;
         c = tree_->NextSibling(c)) {
      TREEWALK_RETURN_IF_ERROR(builder.AliasRowWindow(c, first, c + 1, nn));
    }
    return Status::Ok();
  };
  for (NodeId u = 0; u < nn; ++u) {
    if (tree_->IsFirstChild(u)) TREEWALK_RETURN_IF_ERROR(commit_family(u));
  }
  return std::move(builder).Finish();
}

Result<IntervalMatrix> AxisIndex::BuildSuccIntervals() const {
  std::size_t spans = 0;
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u)
    if (tree_->NextSibling(u) != kNoNode) ++spans;
  TREEWALK_RETURN_IF_ERROR(GovernorCharge(
      governor_, MemoryCategory::kAxisIndex, IntervalBytes(n_, spans)));
  IntervalMatrixBuilder builder(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    NodeId v = tree_->NextSibling(u);
    if (v != kNoNode) TREEWALK_RETURN_IF_ERROR(builder.AddSpan(v, v + 1));
    TREEWALK_RETURN_IF_ERROR(builder.CommitRow(u));
  }
  return std::move(builder).Finish();
}

Result<IntervalMatrix> AxisIndex::BuildIdentityIntervals() const {
  TREEWALK_RETURN_IF_ERROR(GovernorCharge(
      governor_, MemoryCategory::kAxisIndex, IntervalBytes(n_, n_)));
  IntervalMatrixBuilder builder(n_);
  for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
    TREEWALK_RETURN_IF_ERROR(builder.AddSpan(u, u + 1));
    TREEWALK_RETURN_IF_ERROR(builder.CommitRow(u));
  }
  return std::move(builder).Finish();
}

Result<const IntervalMatrix*> AxisIndex::TryEdgeIntervals() const {
  TREEWALK_RETURN_IF_ERROR(
      EnsureIntervals(iedge_, &AxisIndex::BuildEdgeIntervals));
  return iedge_.get();
}
Result<const IntervalMatrix*> AxisIndex::TryDescendantIntervals() const {
  TREEWALK_RETURN_IF_ERROR(
      EnsureIntervals(idesc_, &AxisIndex::BuildDescendantIntervals));
  return idesc_.get();
}
Result<const IntervalMatrix*> AxisIndex::TrySiblingIntervals() const {
  TREEWALK_RETURN_IF_ERROR(
      EnsureIntervals(isib_, &AxisIndex::BuildSiblingIntervals));
  return isib_.get();
}
Result<const IntervalMatrix*> AxisIndex::TrySuccIntervals() const {
  TREEWALK_RETURN_IF_ERROR(
      EnsureIntervals(isucc_, &AxisIndex::BuildSuccIntervals));
  return isucc_.get();
}
Result<const IntervalMatrix*> AxisIndex::TryIdentityIntervals() const {
  TREEWALK_RETURN_IF_ERROR(
      EnsureIntervals(iidentity_, &AxisIndex::BuildIdentityIntervals));
  return iidentity_.get();
}

Result<const std::vector<NodeId>*> AxisIndex::TryPostorderRanks() const {
  if (!post_ranks_.has_value()) {
    TREEWALK_RETURN_IF_ERROR(GovernorCharge(
        governor_, MemoryCategory::kAxisIndex,
        static_cast<std::int64_t>(n_ * sizeof(NodeId)) + 48));
    if (const NodeId* snap = tree_->snapshot_postorder();
        snap != nullptr && n_ > 0) {
      // Snapshot-backed tree: adopt the persisted ranks instead of
      // re-running the numbering DFS (src/tree/snapshot.h).
      post_ranks_.emplace(snap, snap + n_);
    } else {
      std::vector<NodeId> order = PostOrder(*tree_);
      post_ranks_.emplace(n_);
      for (std::size_t i = 0; i < order.size(); ++i) {
        (*post_ranks_)[static_cast<std::size_t>(order[i])] =
            static_cast<NodeId>(i);
      }
    }
  }
  return &*post_ranks_;
}

const std::vector<NodeId>& AxisIndex::PostorderRanks() const {
  if (!post_ranks_.has_value()) {
    ResourceGovernor* saved = governor_;
    const_cast<AxisIndex*>(this)->governor_ = nullptr;
    (void)TryPostorderRanks();
    const_cast<AxisIndex*>(this)->governor_ = saved;
  }
  return *post_ranks_;
}

}  // namespace treewalk
