#ifndef TREEWALK_XPATH_XPATH_H_
#define TREEWALK_XPATH_XPATH_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/logic/formula.h"
#include "src/tree/tree.h"

namespace treewalk {

/// The XPath fragment of Section 2.3: union, child (/), descendant (//),
/// filters ([...]), element tests, wildcard — extended with the attribute
/// comparisons FO(exists*) supports (@a = @b, @a = literal).
///
///   xpath    := path ('|' path)*
///   path     := '/'? step (('/' | '//') step)*
///            |  '//' step (('/' | '//') step)*
///   step     := (NAME | '*') predicate*
///   predicate:= '[' (xpath | attrcmp) ']'
///   attrcmp  := '@' NAME '=' ('@' NAME | INT | STRING)
///
/// Semantics (standard, child-axis based): a path denotes a binary
/// relation between a context node and selected nodes.  A leading '/'
/// re-roots the context ("/a" selects the root if labeled a); a leading
/// '//' selects matching nodes anywhere below-or-at the root.  A relative
/// path's first step moves to children of the context ("a/b": children b
/// of children a).  A filter [p] keeps nodes from which the relative
/// path p selects at least one node; [@a = ...] tests attribute values.

/// One filter predicate.
struct XPathPredicate;

/// One location step.  Note: a *relative* path whose first step uses
/// the descendant axis is representable in the AST (and the evaluator
/// and compiler honor it) but has no concrete syntax — a leading '//'
/// is absolute, as in XPath — so ParseXPath never produces it and
/// XPathToString cannot round-trip it.
struct XPathStep {
  enum class Axis { kChild, kDescendant };
  Axis axis = Axis::kChild;
  /// Element test; empty string means wildcard '*'.
  std::string label;
  std::vector<XPathPredicate> predicates;
};

/// One '|'-branch: an optionally absolute chain of steps.
struct XPathPath {
  bool absolute = false;
  std::vector<XPathStep> steps;
};

/// A full expression: the union of its paths.
struct XPath {
  std::vector<XPathPath> paths;
};

struct XPathPredicate {
  enum class Kind { kPath, kAttrEqAttr, kAttrEqConst };
  Kind kind = Kind::kPath;
  /// kPath: the nested relative path (existential).
  std::shared_ptr<const XPath> path;
  /// kAttrEq*: left attribute name.
  std::string attr;
  /// kAttrEqAttr: right attribute name.
  std::string other_attr;
  /// kAttrEqConst: right literal.
  Term literal;
};

/// Parses the fragment grammar above.
Result<XPath> ParseXPath(std::string_view source);

/// Renders back to source syntax.
std::string XPathToString(const XPath& xpath);

/// Direct evaluator: all nodes selected from `context`, in document
/// order.
Result<std::vector<NodeId>> EvalXPath(const Tree& tree, const XPath& xpath,
                                      NodeId context);

/// Compiles into an FO(exists*) selector phi(x, y) over tau_{Sigma,A}
/// (Section 2.3's abstraction): for every tree, EvalXPath(t, p, u)
/// equals SelectNodes(t, CompileXPathToFo(p), u).  The result is
/// existential prenex with free variables {x, y} (x may be unused for
/// absolute paths).
Result<Formula> CompileXPathToFo(const XPath& xpath,
                                 const std::string& x = "x",
                                 const std::string& y = "y");

}  // namespace treewalk

#endif  // TREEWALK_XPATH_XPATH_H_
