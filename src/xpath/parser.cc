#include <cctype>
#include <cstdlib>

#include "src/xpath/xpath.h"

namespace treewalk {

namespace {

class XPathParser {
 public:
  explicit XPathParser(std::string_view source) : src_(source) {}

  Result<XPath> Parse() {
    TREEWALK_ASSIGN_OR_RETURN(XPath xpath, ParseUnion());
    SkipSpace();
    if (pos_ != src_.size()) return Err("trailing input");
    return xpath;
  }

 private:
  Result<XPath> ParseUnion() {
    XPath xpath;
    while (true) {
      TREEWALK_ASSIGN_OR_RETURN(XPathPath path, ParsePath());
      xpath.paths.push_back(std::move(path));
      SkipSpace();
      if (Peek() == '|') {
        ++pos_;
        continue;
      }
      break;
    }
    return xpath;
  }

  Result<XPathPath> ParsePath() {
    XPathPath path;
    SkipSpace();
    XPathStep::Axis next_axis = XPathStep::Axis::kChild;
    if (Peek() == '/') {
      path.absolute = true;
      ++pos_;
      if (Peek() == '/') {
        next_axis = XPathStep::Axis::kDescendant;
        ++pos_;
      }
    }
    while (true) {
      TREEWALK_ASSIGN_OR_RETURN(XPathStep step, ParseStep());
      step.axis = next_axis;
      path.steps.push_back(std::move(step));
      SkipSpace();
      if (Peek() != '/') break;
      ++pos_;
      if (Peek() == '/') {
        next_axis = XPathStep::Axis::kDescendant;
        ++pos_;
      } else {
        next_axis = XPathStep::Axis::kChild;
      }
    }
    return path;
  }

  Result<XPathStep> ParseStep() {
    SkipSpace();
    XPathStep step;
    if (Peek() == '*') {
      ++pos_;
      step.label.clear();
    } else {
      TREEWALK_ASSIGN_OR_RETURN(step.label, ParseName("element test"));
    }
    while (true) {
      SkipSpace();
      if (Peek() != '[') break;
      ++pos_;
      TREEWALK_ASSIGN_OR_RETURN(XPathPredicate pred, ParsePredicate());
      step.predicates.push_back(std::move(pred));
      SkipSpace();
      if (Peek() != ']') return Err("expected ']'");
      ++pos_;
    }
    return step;
  }

  Result<XPathPredicate> ParsePredicate() {
    SkipSpace();
    XPathPredicate pred;
    if (Peek() == '@') {
      ++pos_;
      TREEWALK_ASSIGN_OR_RETURN(pred.attr, ParseName("attribute"));
      SkipSpace();
      if (Peek() != '=') return Err("expected '=' in attribute predicate");
      ++pos_;
      SkipSpace();
      if (Peek() == '@') {
        ++pos_;
        pred.kind = XPathPredicate::Kind::kAttrEqAttr;
        TREEWALK_ASSIGN_OR_RETURN(pred.other_attr, ParseName("attribute"));
        return pred;
      }
      pred.kind = XPathPredicate::Kind::kAttrEqConst;
      char c = Peek();
      if (c == '"' || c == '\'') {
        ++pos_;
        std::string text;
        while (pos_ < src_.size() && src_[pos_] != c) {
          text.push_back(src_[pos_++]);
        }
        if (pos_ >= src_.size()) return Err("unclosed string literal");
        ++pos_;
        pred.literal = Term::Str(std::move(text));
        return pred;
      }
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        ++pos_;
      }
      if (pos_ == start || (c == '-' && pos_ == start + 1)) {
        return Err("expected literal after '='");
      }
      pred.literal = Term::Int(static_cast<DataValue>(std::strtoll(
          std::string(src_.substr(start, pos_ - start)).c_str(), nullptr,
          10)));
      return pred;
    }
    pred.kind = XPathPredicate::Kind::kPath;
    TREEWALK_ASSIGN_OR_RETURN(XPath nested, ParseUnion());
    pred.path = std::make_shared<const XPath>(std::move(nested));
    return pred;
  }

  Result<std::string> ParseName(const char* what) {
    SkipSpace();
    std::size_t start = pos_;
    auto is_start = [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
    };
    auto is_char = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '-' || c == '.';
    };
    if (pos_ >= src_.size() || !is_start(src_[pos_])) {
      return Err(std::string("expected ") + what);
    }
    while (pos_ < src_.size() && is_char(src_[pos_])) ++pos_;
    return std::string(src_.substr(start, pos_ - start));
  }

  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  Status Err(std::string message) const {
    return InvalidArgument(message + " at offset " + std::to_string(pos_));
  }

  std::string_view src_;
  std::size_t pos_ = 0;
};

void PathToString(const XPathPath& path, std::string& out);

void PredicateToString(const XPathPredicate& pred, std::string& out) {
  out += '[';
  switch (pred.kind) {
    case XPathPredicate::Kind::kPath:
      out += XPathToString(*pred.path);
      break;
    case XPathPredicate::Kind::kAttrEqAttr:
      out += '@';
      out += pred.attr;
      out += " = @";
      out += pred.other_attr;
      break;
    case XPathPredicate::Kind::kAttrEqConst:
      out += '@';
      out += pred.attr;
      out += " = ";
      if (pred.literal.kind == Term::Kind::kStrConst) {
        out += '"';
        out += pred.literal.text;
        out += '"';
      } else {
        out += std::to_string(pred.literal.value);
      }
      break;
  }
  out += ']';
}

void PathToString(const XPathPath& path, std::string& out) {
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const XPathStep& step = path.steps[i];
    bool descendant = step.axis == XPathStep::Axis::kDescendant;
    if (i == 0) {
      if (path.absolute) out += descendant ? "//" : "/";
    } else {
      out += descendant ? "//" : "/";
    }
    out += step.label.empty() ? "*" : step.label;
    for (const XPathPredicate& pred : step.predicates) {
      PredicateToString(pred, out);
    }
  }
}

}  // namespace

Result<XPath> ParseXPath(std::string_view source) {
  return XPathParser(source).Parse();
}

std::string XPathToString(const XPath& xpath) {
  std::string out;
  for (std::size_t i = 0; i < xpath.paths.size(); ++i) {
    if (i > 0) out += " | ";
    PathToString(xpath.paths[i], out);
  }
  return out;
}

}  // namespace treewalk
