#include <string>
#include <vector>

#include "src/xpath/xpath.h"

namespace treewalk {

namespace {

/// Accumulates the quantifier-free core and the auxiliary variables to be
/// existentially bound in front (Section 2.3's compilation shape:
/// "exists y2 exists y3 (x -< y & ... )").
class FoCompiler {
 public:
  std::string Fresh() { return "_v" + std::to_string(counter_++); }

  void Bind(const std::string& var) { bound_.push_back(var); }

  /// phi(from, to) for one step's axis.
  static Formula AxisAtom(XPathStep::Axis axis, const std::string& from,
                          const std::string& to) {
    return axis == XPathStep::Axis::kChild ? Formula::Edge(from, to)
                                           : Formula::Descendant(from, to);
  }

  Formula StepTests(const XPathStep& step, const std::string& var) {
    std::vector<Formula> parts;
    if (!step.label.empty()) {
      parts.push_back(Formula::Label(var, step.label));
    }
    for (const XPathPredicate& pred : step.predicates) {
      parts.push_back(Predicate(pred, var));
    }
    return Formula::AndAll(parts);
  }

  Formula Predicate(const XPathPredicate& pred, const std::string& var) {
    switch (pred.kind) {
      case XPathPredicate::Kind::kPath: {
        // Existence of a selected node: compile the nested union with a
        // fresh target variable; all of its variables join the prefix.
        std::string target = Fresh();
        Bind(target);
        return Union(*pred.path, var, target);
      }
      case XPathPredicate::Kind::kAttrEqAttr:
        return Formula::Eq(Term::AttrOf(pred.attr, var),
                           Term::AttrOf(pred.other_attr, var));
      case XPathPredicate::Kind::kAttrEqConst:
        return Formula::Eq(Term::AttrOf(pred.attr, var), pred.literal);
    }
    return Formula::False();
  }

  Formula Path(const XPathPath& path, const std::string& x,
               const std::string& y) {
    std::vector<Formula> parts;
    std::string prev = x;
    for (std::size_t i = 0; i < path.steps.size(); ++i) {
      const XPathStep& step = path.steps[i];
      bool is_last = i + 1 == path.steps.size();
      std::string var = is_last ? y : Fresh();
      if (!is_last) Bind(var);
      if (i == 0 && path.absolute) {
        // From the virtual document node: child = the root itself,
        // descendant = any node (no structural constraint).
        if (step.axis == XPathStep::Axis::kChild) {
          parts.push_back(Formula::Root(var));
        }
      } else {
        parts.push_back(AxisAtom(step.axis, prev, var));
      }
      parts.push_back(StepTests(step, var));
      prev = var;
    }
    return Formula::AndAll(parts);
  }

  Formula Union(const XPath& xpath, const std::string& x,
                const std::string& y) {
    std::vector<Formula> branches;
    branches.reserve(xpath.paths.size());
    for (const XPathPath& path : xpath.paths) {
      branches.push_back(Path(path, x, y));
    }
    return Formula::OrAll(branches);
  }

  const std::vector<std::string>& bound() const { return bound_; }

 private:
  int counter_ = 0;
  std::vector<std::string> bound_;
};

}  // namespace

Result<Formula> CompileXPathToFo(const XPath& xpath, const std::string& x,
                                 const std::string& y) {
  if (xpath.paths.empty()) return InvalidArgument("empty xpath");
  for (const XPathPath& path : xpath.paths) {
    if (path.steps.empty()) return InvalidArgument("empty path");
  }
  FoCompiler compiler;
  Formula core = compiler.Union(xpath, x, y);
  Formula out = core;
  // Wrap the collected auxiliaries; reverse order keeps the outermost
  // quantifier the first-allocated variable (cosmetic only).
  for (auto it = compiler.bound().rbegin(); it != compiler.bound().rend();
       ++it) {
    out = Formula::Exists(*it, out);
  }
  return out;
}

}  // namespace treewalk
