#include <algorithm>

#include "src/xpath/xpath.h"

namespace treewalk {

namespace {

Result<bool> PredicateHolds(const Tree& tree, NodeId node,
                            const XPathPredicate& pred);

Result<std::vector<NodeId>> EvalPath(const Tree& tree, const XPathPath& path,
                                     NodeId context) {
  std::vector<NodeId> frontier;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const XPathStep& step = path.steps[i];
    std::vector<NodeId> candidates;
    if (i == 0 && path.absolute) {
      // The virtual document node is the parent of the root: its children
      // are {root}; its strict descendants are all nodes.
      if (step.axis == XPathStep::Axis::kChild) {
        candidates.push_back(tree.root());
      } else {
        for (NodeId v = 0; v < static_cast<NodeId>(tree.size()); ++v) {
          candidates.push_back(v);
        }
      }
    } else {
      std::vector<NodeId> context_storage;
      const std::vector<NodeId>* sources = &frontier;
      if (i == 0) {
        context_storage.push_back(context);
        sources = &context_storage;
      }
      for (NodeId u : *sources) {
        if (step.axis == XPathStep::Axis::kChild) {
          for (NodeId c = tree.FirstChild(u); c != kNoNode;
               c = tree.NextSibling(c)) {
            candidates.push_back(c);
          }
        } else {
          for (NodeId v = u + 1; v < tree.SubtreeEnd(u); ++v) {
            candidates.push_back(v);
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
    }

    Symbol label =
        step.label.empty() ? -1 : tree.FindLabel(step.label);
    std::vector<NodeId> selected;
    for (NodeId v : candidates) {
      if (!step.label.empty() &&
          (label < 0 || tree.label(v) != label)) {
        continue;
      }
      bool keep = true;
      for (const XPathPredicate& pred : step.predicates) {
        TREEWALK_ASSIGN_OR_RETURN(bool holds, PredicateHolds(tree, v, pred));
        if (!holds) {
          keep = false;
          break;
        }
      }
      if (keep) selected.push_back(v);
    }
    frontier = std::move(selected);
    if (frontier.empty()) break;
  }
  return frontier;
}

Result<bool> PredicateHolds(const Tree& tree, NodeId node,
                            const XPathPredicate& pred) {
  switch (pred.kind) {
    case XPathPredicate::Kind::kPath: {
      TREEWALK_ASSIGN_OR_RETURN(std::vector<NodeId> hits,
                                EvalXPath(tree, *pred.path, node));
      return !hits.empty();
    }
    case XPathPredicate::Kind::kAttrEqAttr: {
      AttrId a = tree.FindAttribute(pred.attr);
      AttrId b = tree.FindAttribute(pred.other_attr);
      if (a == kNoAttr || b == kNoAttr) {
        return InvalidArgument("tree lacks attribute '" +
                               (a == kNoAttr ? pred.attr : pred.other_attr) +
                               "'");
      }
      return tree.attr(a, node) == tree.attr(b, node);
    }
    case XPathPredicate::Kind::kAttrEqConst: {
      AttrId a = tree.FindAttribute(pred.attr);
      if (a == kNoAttr) {
        return InvalidArgument("tree lacks attribute '" + pred.attr + "'");
      }
      DataValue want = pred.literal.kind == Term::Kind::kStrConst
                           ? tree.values().ValueFor(pred.literal.text)
                           : pred.literal.value;
      return tree.attr(a, node) == want;
    }
  }
  return Internal("unknown predicate kind");
}

}  // namespace

Result<std::vector<NodeId>> EvalXPath(const Tree& tree, const XPath& xpath,
                                      NodeId context) {
  if (!tree.Valid(context)) return InvalidArgument("invalid context node");
  std::vector<NodeId> out;
  for (const XPathPath& path : xpath.paths) {
    if (path.steps.empty()) return InvalidArgument("empty path");
    TREEWALK_ASSIGN_OR_RETURN(std::vector<NodeId> hits,
                              EvalPath(tree, path, context));
    out.insert(out.end(), hits.begin(), hits.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace treewalk
