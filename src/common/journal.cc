#include "src/common/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/common/atomic_file.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"

namespace treewalk {

namespace {

/// Journal instrument family, registered once per process
/// (docs/OBSERVABILITY.md).
struct JournalMetrics {
  Counter* records;
  Counter* bytes;
  Counter* fsyncs;
  Counter* errors;
  Histogram* fsync_us;

  static JournalMetrics& Get() {
    static JournalMetrics* metrics = [] {
      auto* m = new JournalMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      m->records = r.FindOrCreateCounter(
          "treewalk_journal_records_appended_total",
          "WAL records appended (frames written)");
      m->bytes = r.FindOrCreateCounter(
          "treewalk_journal_bytes_appended_total",
          "WAL bytes appended, including frame headers");
      m->fsyncs = r.FindOrCreateCounter("treewalk_journal_fsyncs_total",
                                        "Explicit and cadenced fsync calls");
      m->errors = r.FindOrCreateCounter("treewalk_journal_fsync_errors_total",
                                        "fsync calls that returned an error");
      m->fsync_us = r.FindOrCreateHistogram(
          "treewalk_journal_fsync_us", "fsync latency in microseconds",
          LatencyBucketsUs());
      return m;
    }();
    return *metrics;
  }
};

std::string HeaderBytes() {
  std::string header(kJournalMagic, sizeof(kJournalMagic));
  PutU32Le(kJournalVersion, header);
  PutU32Le(0, header);
  return header;
}

/// fsync with the journal's durability-barrier failpoint; the raw
/// syscall wrappers live in src/common/atomic_file.h.
Status FsyncJournalFd(int fd, const std::string& path) {
  TREEWALK_FAILPOINT("journal/fsync");
  return FsyncFd(fd, path);
}

/// Creates `path` with a valid empty-journal header via tmp+rename, so a
/// crash at any point leaves no half-written header behind.
Status CreateJournalFile(const std::string& path) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ErrnoStatus("create", tmp);
  Status status = WriteAllFd(fd, tmp, HeaderBytes());
  if (status.ok()) status = FsyncJournalFd(fd, tmp);
  ::close(fd);
  if (status.ok()) {
    status = [&]() -> Status {
      TREEWALK_FAILPOINT("journal/rename");
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        return ErrnoStatus("rename", tmp);
      }
      return Status::Ok();
    }();
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  FsyncParentDir(path);
  return Status::Ok();
}

}  // namespace

Result<JournalContents> ParseJournal(std::string_view bytes) {
  if (bytes.size() < kJournalHeaderBytes) {
    return InvalidArgument("journal shorter than its header (" +
                           std::to_string(bytes.size()) + " bytes)");
  }
  if (bytes.substr(0, sizeof(kJournalMagic)) !=
      std::string_view(kJournalMagic, sizeof(kJournalMagic))) {
    return InvalidArgument("journal has bad magic");
  }
  std::uint32_t version = GetU32Le(bytes, sizeof(kJournalMagic));
  if (version != kJournalVersion) {
    return InvalidArgument("journal version " + std::to_string(version) +
                           " unsupported (expected " +
                           std::to_string(kJournalVersion) + ")");
  }

  JournalContents contents;
  std::size_t at = kJournalHeaderBytes;
  contents.valid_bytes = at;
  while (at < bytes.size()) {
    if (bytes.size() - at < 8) {
      contents.torn = true;
      contents.tail_error = "short frame header at byte " + std::to_string(at);
      break;
    }
    std::uint32_t length = GetU32Le(bytes, at);
    std::uint32_t crc = GetU32Le(bytes, at + 4);
    if (length > kMaxJournalRecordBytes) {
      contents.torn = true;
      contents.tail_error = "oversized record (" + std::to_string(length) +
                            " bytes) at byte " + std::to_string(at);
      break;
    }
    if (bytes.size() - at - 8 < length) {
      contents.torn = true;
      contents.tail_error = "short payload at byte " + std::to_string(at);
      break;
    }
    std::string_view payload = bytes.substr(at + 8, length);
    if (Crc32c(payload) != crc) {
      contents.torn = true;
      contents.tail_error = "crc mismatch at byte " + std::to_string(at);
      break;
    }
    contents.records.emplace_back(payload);
    at += 8 + length;
    contents.valid_bytes = at;
  }
  return contents;
}

Result<JournalContents> ReadJournal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot read journal '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJournal(buffer.str());
}

Result<JournalWriter> JournalWriter::Open(const std::string& path) {
  if (::access(path.c_str(), F_OK) != 0) {
    TREEWALK_RETURN_IF_ERROR(CreateJournalFile(path));
  }
  Result<JournalContents> contents = ReadJournal(path);
  if (!contents.ok()) return contents.status();

  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  // Truncate a torn tail (crash mid-append) back to the intact prefix,
  // then append from there.
  if (::ftruncate(fd, static_cast<off_t>(contents->valid_bytes)) != 0) {
    Status status = ErrnoStatus("ftruncate", path);
    ::close(fd);
    return status;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status status = ErrnoStatus("lseek", path);
    ::close(fd);
    return status;
  }
  return JournalWriter(fd, path);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      sync_every_(other.sync_every_),
      since_sync_(other.since_sync_),
      appended_(other.appended_) {
  other.fd_ = -1;
}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    sync_every_ = other.sync_every_;
    since_sync_ = other.since_sync_;
    appended_ = other.appended_;
    other.fd_ = -1;
  }
  return *this;
}

JournalWriter::~JournalWriter() { Close(); }

void JournalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status JournalWriter::Append(std::string_view payload) {
  TREEWALK_FAILPOINT("journal/append");
  if (fd_ < 0) return FailedPrecondition("journal writer is closed");
  if (payload.size() > kMaxJournalRecordBytes) {
    return InvalidArgument("journal record of " +
                           std::to_string(payload.size()) +
                           " bytes exceeds the frame cap");
  }
  // One frame, one write(2): an interrupted append tears at most this
  // record, which the reader truncates on the next open.
  std::string frame;
  frame.reserve(8 + payload.size());
  PutU32Le(static_cast<std::uint32_t>(payload.size()), frame);
  PutU32Le(Crc32c(payload), frame);
  frame.append(payload);
  TREEWALK_RETURN_IF_ERROR(WriteAllFd(fd_, path_, frame));
  ++appended_;
  JournalMetrics& metrics = JournalMetrics::Get();
  metrics.records->Increment();
  metrics.bytes->Increment(static_cast<std::int64_t>(frame.size()));
  if (sync_every_ > 0 && ++since_sync_ >= sync_every_) return Sync();
  return Status::Ok();
}

Status JournalWriter::Sync() {
  if (fd_ < 0) return FailedPrecondition("journal writer is closed");
  since_sync_ = 0;
  auto start = std::chrono::steady_clock::now();
  Status status = FsyncJournalFd(fd_, path_);
  JournalMetrics& metrics = JournalMetrics::Get();
  metrics.fsyncs->Increment();
  metrics.fsync_us->Observe(
      std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (!status.ok()) metrics.errors->Increment();
  return status;
}

}  // namespace treewalk
