#ifndef TREEWALK_COMMON_JOURNAL_H_
#define TREEWALK_COMMON_JOURNAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/crc32c.h"  // journal frames are CRC32C-checked
#include "src/common/result.h"

namespace treewalk {

/// Append-only write-ahead journal with CRC-framed records
/// (docs/ROBUSTNESS.md, "Durability & recovery").
///
/// File layout:
///
///   header   16 bytes: magic "TWJRNL01", u32-LE version, u32-LE zero
///   record*  u32-LE payload length | u32-LE CRC32C(payload) | payload
///
/// The header is created atomically (written to `<path>.tmp`, fsynced,
/// renamed over `path`), so a crash during creation leaves either no
/// journal or a valid empty one — never a half-written header.  Records
/// are appended in place; a crash mid-append leaves a *torn tail* that
/// the reader detects (short frame, oversized length, or CRC mismatch)
/// and reports as the byte offset of the last intact frame, which
/// reopening for append truncates away.
inline constexpr char kJournalMagic[8] = {'T', 'W', 'J', 'R', 'N', 'L',
                                          '0', '1'};
inline constexpr std::size_t kJournalHeaderBytes = 16;
inline constexpr std::uint32_t kJournalVersion = 1;
/// Frames claiming a longer payload are treated as torn, bounding what a
/// corrupt length prefix can make the reader allocate.
inline constexpr std::uint32_t kMaxJournalRecordBytes = 1u << 20;

/// Result of parsing a journal image: every intact record in order, the
/// byte length of the intact prefix (header + whole frames), and
/// whether parsing stopped at a torn/corrupt tail.
struct JournalContents {
  std::vector<std::string> records;
  std::uint64_t valid_bytes = 0;
  bool torn = false;
  /// Why parsing stopped, when `torn` ("short frame", "crc mismatch",
  /// "oversized record").
  std::string tail_error;
};

/// Parses an in-memory journal image.  A missing or malformed header is
/// kInvalidArgument; a torn tail is NOT an error (contents.torn is set
/// and the intact prefix is returned).
Result<JournalContents> ParseJournal(std::string_view bytes);

/// Reads and parses the journal at `path` (kNotFound if absent).
Result<JournalContents> ReadJournal(const std::string& path);

/// Appends CRC-framed records to a journal file.  Not thread-safe; wrap
/// in a mutex to share (src/engine/batch_journal.h does).
class JournalWriter {
 public:
  /// Opens `path` for appending.  Creates it (atomic tmp+rename header
  /// write) when absent; otherwise validates the header and truncates
  /// any torn tail back to the last intact frame.
  static Result<JournalWriter> Open(const std::string& path);

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Appends one framed record.  The write is pushed to the kernel
  /// (surviving a crash of this process) but not fsynced unless the
  /// auto-sync interval says so — call Sync() for a power-loss barrier.
  Status Append(std::string_view payload);

  /// fsyncs the journal file: everything appended so far survives power
  /// loss, not just process death.
  Status Sync();

  /// Auto-Sync after every `n` appends; 0 (the default) syncs only on
  /// explicit Sync() calls.
  void set_sync_every(int n) { sync_every_ = n; }

  /// Records appended through this writer (not counting pre-existing
  /// records in a reopened journal).
  std::int64_t appended() const { return appended_; }

  const std::string& path() const { return path_; }

  /// Closes the file descriptor (no implicit fsync).  Idempotent; the
  /// destructor calls it.
  void Close();

 private:
  JournalWriter(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
  int sync_every_ = 0;
  int since_sync_ = 0;
  std::int64_t appended_ = 0;
};

}  // namespace treewalk

#endif  // TREEWALK_COMMON_JOURNAL_H_
