#ifndef TREEWALK_COMMON_RESULT_H_
#define TREEWALK_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "src/common/status.h"

namespace treewalk {

/// Either a value of type T or a non-OK Status.  Minimal StatusOr-style
/// wrapper; C++20 has no std::expected yet.
///
/// Usage:
///   Result<Tree> r = ParseTerm("a(b,c)");
///   if (!r.ok()) return r.status();
///   Tree t = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Constructs an errored result.  `status` must be non-OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    TREEWALK_CHECK(!status_.ok(), "Result constructed from OK status");
  }
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Value accessors abort (in every build mode) with the carried
  /// status when called on an errored result — accessing a value that
  /// does not exist is a caller bug, and silently reading an invalid
  /// object would be worse than dying loudly.
  const T& value() const& {
    CheckHasValue();
    return *value_;
  }
  T& value() & {
    CheckHasValue();
    return *value_;
  }
  T&& value() && {
    CheckHasValue();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckHasValue() const {
    TREEWALK_CHECK(ok(), "Result::value() on error: " + status_.ToString());
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace treewalk

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error Status.  `lhs` may be a declaration: TREEWALK_ASSIGN_OR_RETURN(
/// auto tree, ParseTerm(src));
#define TREEWALK_ASSIGN_OR_RETURN(lhs, expr)                \
  TREEWALK_ASSIGN_OR_RETURN_IMPL_(                          \
      TREEWALK_CONCAT_(_tw_result_, __LINE__), lhs, expr)

#define TREEWALK_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)     \
  auto tmp = (expr);                                        \
  if (!tmp.ok()) return tmp.status();                       \
  lhs = std::move(tmp).value()

#define TREEWALK_CONCAT_(a, b) TREEWALK_CONCAT_IMPL_(a, b)
#define TREEWALK_CONCAT_IMPL_(a, b) a##b

#endif  // TREEWALK_COMMON_RESULT_H_
