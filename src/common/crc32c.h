#ifndef TREEWALK_COMMON_CRC32C_H_
#define TREEWALK_COMMON_CRC32C_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace treewalk {

/// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) of `data`.
/// Software table implementation; stable across platforms.  Known-answer
/// vector (RFC 3720 B.4): Crc32c("123456789") == 0xE3069283.
///
/// Shared framing primitive of every on-disk format in the repo: the
/// write-ahead journal (src/common/journal.h) frames each record with
/// it, and tree snapshots / selector-cache entries (src/tree/snapshot.h,
/// src/logic/selector_cache.h) checksum each section with it.
std::uint32_t Crc32c(std::string_view data);

/// Continues a CRC computation: Crc32cExtend(Crc32c(a), b) ==
/// Crc32c(a + b).  Lets multi-section writers checksum without
/// concatenating.
std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data);

/// Little-endian integer framing helpers shared by the CRC-checked
/// formats.  Append to a buffer / read at a byte offset; the Get*
/// functions assume the caller has bounds-checked `at`.
void PutU32Le(std::uint32_t v, std::string& out);
void PutU64Le(std::uint64_t v, std::string& out);
std::uint32_t GetU32Le(std::string_view bytes, std::size_t at);
std::uint64_t GetU64Le(std::string_view bytes, std::size_t at);

/// FNV-1a 64-bit hash; process-independent (unlike std::hash), which is
/// what makes it usable in persistent cache keys.
std::uint64_t Fnv1a64(std::string_view data,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

}  // namespace treewalk

#endif  // TREEWALK_COMMON_CRC32C_H_
