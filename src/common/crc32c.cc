#include "src/common/crc32c.h"

#include <cstddef>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#define TREEWALK_CRC32C_X86 1
#include <cpuid.h>
#endif

namespace treewalk {

namespace {

/// Slicing-by-8 tables for the reflected polynomial 0x82F63B78:
/// table[0] is the classic byte-at-a-time table; table[k][b] advances a
/// byte sitting k positions deeper in the message, so eight bytes fold
/// with no loop-carried table dependency (~5x over byte-at-a-time —
/// snapshot loads checksum megabytes per call).  Generated on first
/// use.
struct Crc32cTables {
  std::uint32_t slice[8][256];
};

const Crc32cTables& SlicingTables() {
  static const Crc32cTables& tables = *[] {
    auto* t = new Crc32cTables;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t->slice[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = t->slice[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = t->slice[0][crc & 0xff] ^ (crc >> 8);
        t->slice[k][i] = crc;
      }
    }
    return t;
  }();
  return tables;
}

std::uint32_t ExtendPortable(std::uint32_t crc, const unsigned char* p,
                             std::size_t n) {
  const auto& t = SlicingTables().slice;
#if __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // The 64-bit fold XORs the running crc into the low word, which is
  // only the first four message bytes on little-endian hosts.
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;
    crc = t[7][word & 0xff] ^ t[6][(word >> 8) & 0xff] ^
          t[5][(word >> 16) & 0xff] ^ t[4][(word >> 24) & 0xff] ^
          t[3][(word >> 32) & 0xff] ^ t[2][(word >> 40) & 0xff] ^
          t[1][(word >> 48) & 0xff] ^ t[0][word >> 56];
    p += 8;
    n -= 8;
  }
#endif
  while (n--) {
    crc = t[0][(crc ^ *p++) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

#if TREEWALK_CRC32C_X86

/// Hardware path: the SSE4.2 crc32 instruction implements exactly this
/// polynomial.  Compiled with a per-function target attribute so the
/// translation unit itself needs no -msse4.2, and only called after a
/// cpuid check.
__attribute__((target("sse4.2"))) std::uint32_t ExtendHw(
    std::uint32_t crc, const unsigned char* p, std::size_t n) {
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (n--) {
    c32 = __builtin_ia32_crc32qi(c32, *p++);
  }
  return c32;
}

bool HaveSse42() {
  static const bool have = [] {
    unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
    if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
    return (ecx & bit_SSE4_2) != 0;
  }();
  return have;
}

#endif  // TREEWALK_CRC32C_X86

}  // namespace

std::uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data);
}

std::uint32_t Crc32cExtend(std::uint32_t crc, std::string_view data) {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  crc ^= 0xFFFFFFFFu;
#if TREEWALK_CRC32C_X86
  if (HaveSse42()) {
    return ExtendHw(crc, p, data.size()) ^ 0xFFFFFFFFu;
  }
#endif
  return ExtendPortable(crc, p, data.size()) ^ 0xFFFFFFFFu;
}

void PutU32Le(std::uint32_t v, std::string& out) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void PutU64Le(std::uint64_t v, std::string& out) {
  PutU32Le(static_cast<std::uint32_t>(v & 0xFFFFFFFFu), out);
  PutU32Le(static_cast<std::uint32_t>(v >> 32), out);
}

std::uint32_t GetU32Le(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 1]))
             << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[at + 3]))
             << 24;
}

std::uint64_t GetU64Le(std::string_view bytes, std::size_t at) {
  return static_cast<std::uint64_t>(GetU32Le(bytes, at)) |
         static_cast<std::uint64_t>(GetU32Le(bytes, at + 4)) << 32;
}

std::uint64_t Fnv1a64(std::string_view data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace treewalk
