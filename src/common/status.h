#ifndef TREEWALK_COMMON_STATUS_H_
#define TREEWALK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace treewalk {

/// Error codes used across the library.  The library does not throw
/// exceptions across its public API; fallible operations return `Status`
/// or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  /// Malformed input: unparsable formula, ill-formed tree term, bad XML.
  kInvalidArgument,
  /// A lookup failed (unknown relation, attribute, state, ...).
  kNotFound,
  /// A program/machine violates the declared restriction class.
  kFailedPrecondition,
  /// A runtime budget (steps, configurations, recursion depth) ran out.
  kResourceExhausted,
  /// Two rules were simultaneously applicable in a deterministic program.
  kNondeterminism,
  /// The caller requested cooperative cancellation of a running job.
  kCancelled,
  /// Internal invariant violation; indicates a library bug.
  kInternal,
  /// A wall-clock deadline expired before the job finished.
  kDeadlineExceeded,
};

/// Human-readable name for a status code ("kOk" -> "OK").
const char* StatusCodeName(StatusCode code);

/// Value-type result of a fallible operation: a code plus a message.
/// A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Shorthand constructors, e.g. InvalidArgument("bad token").
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status FailedPrecondition(std::string message);
Status ResourceExhausted(std::string message);
Status Nondeterminism(std::string message);
Status Cancelled(std::string message);
Status Internal(std::string message);
Status DeadlineExceeded(std::string message);

namespace internal {
/// Prints "<file>:<line>: CHECK failed: <expr>: <message>" to stderr and
/// aborts.  Backs TREEWALK_CHECK; never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

}  // namespace treewalk

/// Fatal invariant check that stays armed in release builds (unlike
/// assert): on violation it prints `message` — typically the Status a
/// Result carried — and aborts, instead of silently reading an invalid
/// value under NDEBUG.
#define TREEWALK_CHECK(cond, message)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::treewalk::internal::CheckFailed(__FILE__, __LINE__, #cond,        \
                                        (message));                      \
    }                                                                     \
  } while (false)

/// Propagates a non-OK Status to the caller.  Usable in functions that
/// return Status or Result<T> (Result is constructible from Status).
#define TREEWALK_RETURN_IF_ERROR(expr)                   \
  do {                                                   \
    ::treewalk::Status _tw_status = (expr);              \
    if (!_tw_status.ok()) return _tw_status;             \
  } while (false)

#endif  // TREEWALK_COMMON_STATUS_H_
