#include "src/common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace treewalk {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

namespace {

/// Shortest round-trippable-enough rendering for exposition formats;
/// "+Inf" is handled by callers.
std::string RenderDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

std::string EscapeLabelValue(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// {a="x",b="y"} with an optional extra label (the histogram `le`),
/// empty string when there are no labels at all.
std::string RenderLabels(const MetricLabels& labels,
                         std::string_view extra_key = {},
                         std::string_view extra_value = {}) {
  if (labels.empty() && extra_key.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\"";
  }
  if (!extra_key.empty()) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + std::string(extra_value) + "\"";
  }
  out += "}";
  return out;
}

std::string JsonEscape(std::string_view v) {
  std::string out;
  for (char c : v) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, rounded up).
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    if (seen + counts[b] >= rank) {
      double lo = b == 0 ? 0.0 : bounds[b - 1];
      double hi = bounds[b];
      double frac =
          counts[b] == 0
              ? 1.0
              : static_cast<double>(rank - seen) / counts[b];
      return lo + (hi - lo) * frac;
    }
    seen += counts[b];
  }
  // In the +Inf bucket: clamp to the largest finite bound (the standard
  // Prometheus convention for unbounded tails).
  return bounds.empty() ? 0 : bounds.back();
}

const MetricSample* MetricsSnapshot::Find(std::string_view name,
                                          std::string_view label_value) const {
  for (const MetricSample& s : samples) {
    if (s.name != name) continue;
    if (label_value.empty()) return &s;
    for (const auto& [k, v] : s.labels) {
      if (v == label_value) return &s;
    }
  }
  return nullptr;
}

std::int64_t MetricsSnapshot::Value(std::string_view name,
                                    std::string_view label_value) const {
  const MetricSample* s = Find(name, label_value);
  return s == nullptr ? 0 : s->value;
}

std::string MetricsSnapshot::ToPrometheusText() const {
  std::string out;
  std::string last_family;
  for (const MetricSample& s : samples) {
    // Samples are emitted in registration order, which keeps a family's
    // labeled instruments adjacent; HELP/TYPE go out once per family.
    if (s.name != last_family) {
      out += "# HELP " + s.name + " " + s.help + "\n";
      out += "# TYPE " + s.name + " " + MetricTypeName(s.type) + "\n";
      last_family = s.name;
    }
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      std::uint64_t cumulative = 0;
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        cumulative += h.counts[b];
        out += s.name + "_bucket" +
               RenderLabels(s.labels, "le", RenderDouble(h.bounds[b])) + " " +
               std::to_string(cumulative) + "\n";
      }
      cumulative += h.overflow;
      out += s.name + "_bucket" + RenderLabels(s.labels, "le", "+Inf") + " " +
             std::to_string(cumulative) + "\n";
      out += s.name + "_sum" + RenderLabels(s.labels) + " " +
             RenderDouble(h.sum) + "\n";
      out += s.name + "_count" + RenderLabels(s.labels) + " " +
             std::to_string(h.count) + "\n";
    } else {
      out += s.name + RenderLabels(s.labels) + " " + std::to_string(s.value) +
             "\n";
    }
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"metrics\": [";
  bool first = true;
  for (const MetricSample& s : samples) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": \"" + JsonEscape(s.name) + "\", \"type\": \"" +
           MetricTypeName(s.type) + "\"";
    if (!s.labels.empty()) {
      out += ", \"labels\": {";
      bool fl = true;
      for (const auto& [k, v] : s.labels) {
        if (!fl) out += ", ";
        fl = false;
        out += "\"" + JsonEscape(k) + "\": \"" + JsonEscape(v) + "\"";
      }
      out += "}";
    }
    if (s.type == MetricType::kHistogram) {
      const HistogramSnapshot& h = s.histogram;
      out += ", \"count\": " + std::to_string(h.count);
      out += ", \"sum\": " + RenderDouble(h.sum);
      out += ", \"p50\": " + RenderDouble(h.p50());
      out += ", \"p95\": " + RenderDouble(h.p95());
      out += ", \"p99\": " + RenderDouble(h.p99());
      out += ", \"buckets\": [";
      for (std::size_t b = 0; b < h.bounds.size(); ++b) {
        if (b > 0) out += ", ";
        out += "{\"le\": " + RenderDouble(h.bounds[b]) + ", \"count\": " +
               std::to_string(h.counts[b]) + "}";
      }
      if (!h.bounds.empty()) out += ", ";
      out += "{\"le\": \"+Inf\", \"count\": " + std::to_string(h.overflow) +
             "}]";
    } else {
      out += ", \"value\": " + std::to_string(s.value);
    }
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::vector<double> LatencyBucketsMs() {
  return {0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
          1024, 2048, 4096, 8192};
}

std::vector<double> LatencyBucketsUs() {
  return {1,    2,    4,     8,     16,    32,     64,     128,
          256,  512,  1024,  2048,  4096,  8192,   16384,  32768,
          65536, 131072, 262144, 524288, 1048576};
}

#ifndef TREEWALK_METRICS_DISABLED

std::size_t Counter::ShardIndex() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index % kShards;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(new std::atomic<std::uint64_t>[bounds_.size() + 1]) {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double v) {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.resize(bounds_.size());
  for (std::size_t b = 0; b < bounds_.size(); ++b) {
    snap.counts[b] = counts_[b].load(std::memory_order_relaxed);
  }
  snap.overflow = counts_[bounds_.size()].load(std::memory_order_relaxed);
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindEntry(std::string_view name,
                                                   MetricType type,
                                                   const MetricLabels& labels) {
  for (const std::unique_ptr<Entry>& e : entries_) {
    if (e->name == name && e->type == type && e->labels == labels) {
      return e.get();
    }
  }
  return nullptr;
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name,
                                              std::string_view help,
                                              MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindEntry(name, MetricType::kCounter, labels)) {
    return e->counter.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->type = MetricType::kCounter;
  e->labels = std::move(labels);
  e->counter = std::make_unique<Counter>();
  Counter* out = e->counter.get();
  entries_.push_back(std::move(e));
  return out;
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name,
                                          std::string_view help,
                                          MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindEntry(name, MetricType::kGauge, labels)) {
    return e->gauge.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->type = MetricType::kGauge;
  e->labels = std::move(labels);
  e->gauge = std::make_unique<Gauge>();
  Gauge* out = e->gauge.get();
  entries_.push_back(std::move(e));
  return out;
}

Histogram* MetricsRegistry::FindOrCreateHistogram(std::string_view name,
                                                  std::string_view help,
                                                  std::vector<double> bounds,
                                                  MetricLabels labels) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Entry* e = FindEntry(name, MetricType::kHistogram, labels)) {
    return e->histogram.get();
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->help = std::string(help);
  e->type = MetricType::kHistogram;
  e->labels = std::move(labels);
  e->histogram = std::make_unique<Histogram>(std::move(bounds));
  Histogram* out = e->histogram.get();
  entries_.push_back(std::move(e));
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.samples.reserve(entries_.size());
  for (const std::unique_ptr<Entry>& e : entries_) {
    MetricSample s;
    s.name = e->name;
    s.help = e->help;
    s.type = e->type;
    s.labels = e->labels;
    switch (e->type) {
      case MetricType::kCounter:
        s.value = e->counter->value();
        break;
      case MetricType::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricType::kHistogram:
        s.histogram = e->histogram->Snapshot();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::unique_ptr<Entry>& e : entries_) {
    switch (e->type) {
      case MetricType::kCounter:
        e->counter->Reset();
        break;
      case MetricType::kGauge:
        e->gauge->Reset();
        break;
      case MetricType::kHistogram:
        e->histogram->Reset();
        break;
    }
  }
}

#else  // TREEWALK_METRICS_DISABLED

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace treewalk
