#ifndef TREEWALK_COMMON_FAILPOINT_H_
#define TREEWALK_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace treewalk {

/// Deterministic, seedable fault injection for tests (docs/ROBUSTNESS.md
/// lists the site inventory).  Code marks fallible spots with
/// TREEWALK_FAILPOINT("module/site"); a disarmed registry costs one
/// relaxed atomic load and a never-taken branch per site, so the macro
/// can sit on hot paths.  Tests arm individual sites (Enable) or derive
/// a whole schedule from a seed (ArmRandomSchedule); the injected
/// failures are ordinary Status returns, so they exercise exactly the
/// error-propagation paths real faults would take.
class FailpointRegistry {
 public:
  struct Config {
    /// Status returned when the site fires.
    StatusCode code = StatusCode::kInternal;
    std::string message = "injected fault";
    /// The site fires on hits after the first `after` (0 = from the
    /// first hit on).
    std::int64_t after = 0;
    /// Stop firing after this many injections; 0 = keep firing.
    std::int64_t max_fires = 1;
  };

  /// Process-wide registry.  All mutation and Check() are mutex-guarded;
  /// `armed()` is the lock-free fast path.
  static FailpointRegistry& Global();

  static bool armed() {
    return armed_flag().load(std::memory_order_relaxed);
  }

  /// Arms `site` with `config` (resets its hit/fire counters).
  void Enable(const std::string& site, Config config);
  void Disable(const std::string& site);
  /// Disarms every site and clears all counters.
  void DisableAll();

  /// Arms a deterministic schedule over the known-site inventory: each
  /// site independently (given `seed`) is armed with probability
  /// `site_probability`, firing once after a small pseudo-random number
  /// of hits with a pseudo-random retryable status code.  Equal seeds
  /// produce equal schedules, including counter state.
  void ArmRandomSchedule(std::uint64_t seed, double site_probability = 0.5);

  /// Called by TREEWALK_FAILPOINT when the registry is armed.
  Status Check(const char* site);

  /// Hits observed at `site` since it was last (re-)enabled.
  std::int64_t hits(const std::string& site) const;

  /// The inventory of sites compiled into the library, for schedule
  /// generation and documentation.  Kept in one place so a new site is
  /// added here and in docs/ROBUSTNESS.md together.
  static const std::vector<std::string>& KnownSites();

 private:
  struct SiteState {
    Config config;
    std::int64_t hit_count = 0;
    std::int64_t fire_count = 0;
  };

  static std::atomic<bool>& armed_flag();

  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
};

}  // namespace treewalk

/// Fault-injection site: returns the injected Status out of the
/// enclosing function (which must return Status or Result<T>) when the
/// registry arms this site.  Compiles to a branch on a relaxed atomic
/// when nothing is armed.
#define TREEWALK_FAILPOINT(site)                                          \
  do {                                                                    \
    if (::treewalk::FailpointRegistry::armed()) {                         \
      ::treewalk::Status _tw_fp_status =                                  \
          ::treewalk::FailpointRegistry::Global().Check(site);            \
      if (!_tw_fp_status.ok()) return _tw_fp_status;                      \
    }                                                                     \
  } while (false)

#endif  // TREEWALK_COMMON_FAILPOINT_H_
