#include "src/common/trace.h"

#include <algorithm>
#include <utility>

namespace treewalk {

#ifndef TREEWALK_METRICS_DISABLED

namespace {

/// Enclosing-span stack of the current thread; the top is the parent of
/// the next span started here.
thread_local std::vector<std::uint64_t> t_span_stack;

struct BufferCache {
  std::uint64_t generation = ~std::uint64_t{0};
  std::shared_ptr<void> keepalive;  // owns the ThreadBuffer
  void* buffer = nullptr;
};
thread_local BufferCache t_buffer_cache;

std::string JsonEscape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

void Tracer::Enable(std::size_t per_thread_capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  next_tid_ = 0;
  capacity_.store(per_thread_capacity == 0 ? 1 : per_thread_capacity,
                  std::memory_order_relaxed);
  epoch_us_.store(std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count(),
                  std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_release); }

std::uint64_t Tracer::NowMicros() const {
  std::int64_t now_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return static_cast<std::uint64_t>(
      now_us - epoch_us_.load(std::memory_order_relaxed));
}

Tracer::ThreadBuffer* Tracer::BufferForThisThread() {
  std::uint64_t generation = generation_.load(std::memory_order_relaxed);
  if (t_buffer_cache.generation == generation &&
      t_buffer_cache.buffer != nullptr) {
    return static_cast<ThreadBuffer*>(t_buffer_cache.buffer);
  }
  auto buffer = std::make_shared<ThreadBuffer>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Enable() may have raced ahead; register in the current generation
    // either way — worst case the buffer belongs to the newer run,
    // which is the one that matters.
    buffer->tid = next_tid_++;
    buffer->events.reserve(std::min<std::size_t>(
        capacity_.load(std::memory_order_relaxed), 4096));
    buffers_.push_back(buffer);
  }
  t_buffer_cache.generation = generation;
  t_buffer_cache.keepalive = buffer;
  t_buffer_cache.buffer = buffer.get();
  return buffer.get();
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  if (buffer->events.size() >= capacity_.load(std::memory_order_relaxed)) {
    ++buffer->dropped;
    return;
  }
  event.tid = buffer->tid;
  buffer->events.push_back(std::move(event));
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const std::shared_ptr<ThreadBuffer>& b : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(b->mu);
    total += b->dropped;
  }
  return total;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::shared_ptr<ThreadBuffer>& b : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(b->mu);
      events.insert(events.end(), b->events.begin(), b->events.end());
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return events;
}

std::string Tracer::ChromeTraceJson() const {
  std::vector<TraceEvent> events = Collect();
  std::string out = "[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(e.name) +
           "\",\"cat\":\"treewalk\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(e.tid) + ",\"ts\":" + std::to_string(e.ts_us) +
           ",\"dur\":" + std::to_string(e.dur_us) + ",\"args\":{\"span\":" +
           std::to_string(e.id) + ",\"parent\":" + std::to_string(e.parent_id);
    if (!e.args.empty()) out += "," + e.args;
    out += "}}";
  }
  out += "\n]\n";
  return out;
}

void Tracer::RecordComplete(const char* name, std::string args,
                            std::uint64_t ts_us, std::uint64_t dur_us) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.args = std::move(args);
  event.id = next_span_id_.fetch_add(1, std::memory_order_relaxed);
  event.parent_id = t_span_stack.empty() ? 0 : t_span_stack.back();
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  Record(std::move(event));
}

ScopedSpan::ScopedSpan(const char* name, std::string args)
    : name_(name), args_(std::move(args)) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  active_ = true;
  start_us_ = tracer.NowMicros();
  id_ = tracer.next_span_id_.fetch_add(1, std::memory_order_relaxed);
  parent_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  t_span_stack.push_back(id_);
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  // Pop even if the tracer was disabled mid-span, else the stack leaks
  // a frame and later parents are wrong.
  if (!t_span_stack.empty() && t_span_stack.back() == id_) {
    t_span_stack.pop_back();
  }
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;
  TraceEvent event;
  event.name = name_;
  event.args = std::move(args_);
  event.id = id_;
  event.parent_id = parent_;
  event.ts_us = start_us_;
  event.dur_us = tracer.NowMicros() - start_us_;
  tracer.Record(std::move(event));
}

#else  // TREEWALK_METRICS_DISABLED

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace treewalk
