#include "src/common/interner.h"

#include <cassert>

namespace treewalk {

std::int64_t Interner::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  std::int64_t handle = static_cast<std::int64_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), handle);
  return handle;
}

std::int64_t Interner::Find(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? -1 : it->second;
}

const std::string& Interner::NameOf(std::int64_t handle) const {
  assert(Contains(handle));
  return names_[static_cast<std::size_t>(handle)];
}

std::string ValueInterner::Render(DataValue v) const {
  if (v == kBottom) return "_|_";
  if (IsString(v)) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::int64_t handle = v - kStringBase;
    if (interner_.Contains(handle)) return interner_.NameOf(handle);
    return "<str#" + std::to_string(handle) + ">";
  }
  return std::to_string(v);
}

}  // namespace treewalk
