#include "src/common/failpoint.h"

namespace treewalk {

namespace {

/// splitmix64: the schedule generator.  Deterministic and decoupled
/// from std::mt19937 so schedules are stable across standard libraries.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashSite(const std::string& site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::atomic<bool>& FailpointRegistry::armed_flag() {
  static std::atomic<bool> armed{false};
  return armed;
}

FailpointRegistry& FailpointRegistry::Global() {
  static FailpointRegistry& registry = *new FailpointRegistry();
  return registry;
}

const std::vector<std::string>& FailpointRegistry::KnownSites() {
  static const std::vector<std::string>& sites = *new std::vector<std::string>{
      "interpreter/step",    // main-walk transition boundary
      "interpreter/select",  // atp() selector evaluation entry
      "compiler/compile",    // selector compilation entry (forces fallback)
      "axis_index/alloc",    // relation-matrix materialization
      "engine/worker",       // engine worker loop, once per job attempt
      "journal/append",      // journal record write entry
      "journal/fsync",       // journal fsync barrier
      "journal/rename",      // atomic header tmp+rename at creation
      "atomic_file/write",        // atomic tmp-file creation + write
      "atomic_file/fsync",        // atomic-write fsync barrier
      "atomic_file/rename",       // atomic-write rename commit
      "snapshot/load",            // tree-snapshot open/map/validate entry
      "selector_cache/load",      // compiled-selector cache read entry
      "selector_cache/store",     // compiled-selector cache write entry
      "server/accept",            // twq serve: accepted connection setup
      "server/read",              // twq serve: request-frame read
      "server/write",             // twq serve: response-frame write
      "server/dispatch",          // twq serve: admission -> worker handoff
  };
  return sites;
}

void FailpointRegistry::Enable(const std::string& site, Config config) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site] = SiteState{std::move(config), 0, 0};
  armed_flag().store(true, std::memory_order_relaxed);
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  if (sites_.empty()) armed_flag().store(false, std::memory_order_relaxed);
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_flag().store(false, std::memory_order_relaxed);
}

void FailpointRegistry::ArmRandomSchedule(std::uint64_t seed,
                                          double site_probability) {
  // Retryable codes only: the schedule is meant to exercise recovery
  // (fallbacks, the engine's degradation ladder), not to assert on
  // caller bugs.
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInternal,
      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,
  };
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  for (const std::string& site : KnownSites()) {
    std::uint64_t h = Mix(seed ^ HashSite(site));
    double coin =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    if (coin >= site_probability) continue;
    Config config;
    std::uint64_t h2 = Mix(h);
    config.code = kCodes[h2 % (sizeof(kCodes) / sizeof(kCodes[0]))];
    config.after = static_cast<std::int64_t>(Mix(h2) % 8);
    config.max_fires = 1;
    config.message = "injected fault at " + site + " (seed " +
                     std::to_string(seed) + ")";
    sites_[site] = SiteState{std::move(config), 0, 0};
  }
  armed_flag().store(!sites_.empty(), std::memory_order_relaxed);
}

Status FailpointRegistry::Check(const char* site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return Status::Ok();
  SiteState& state = it->second;
  ++state.hit_count;
  if (state.hit_count <= state.config.after) return Status::Ok();
  if (state.config.max_fires > 0 &&
      state.fire_count >= state.config.max_fires) {
    return Status::Ok();
  }
  ++state.fire_count;
  return Status(state.config.code, state.config.message);
}

std::int64_t FailpointRegistry::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hit_count;
}

}  // namespace treewalk
