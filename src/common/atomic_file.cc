#include "src/common/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/failpoint.h"

namespace treewalk {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Internal(op + " '" + path + "': " + std::strerror(errno));
}

Status WriteAllFd(int fd, const std::string& path, std::string_view bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status FsyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) return ErrnoStatus("fsync", path);
  return Status::Ok();
}

void FsyncParentDir(const std::string& path) {
  std::string dir = ".";
  std::size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash + 1);
  int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  // Unique per (process, call) so two threads racing to cache one key
  // never scribble on each other's tmp file.
  static std::atomic<std::uint64_t> counter{0};
  std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  Status status = [&]() -> Status {
    TREEWALK_FAILPOINT("atomic_file/write");
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("create", tmp);
    Status s = WriteAllFd(fd, tmp, bytes);
    if (s.ok()) {
      s = [&]() -> Status {
        TREEWALK_FAILPOINT("atomic_file/fsync");
        return FsyncFd(fd, tmp);
      }();
    }
    ::close(fd);
    if (!s.ok()) return s;
    TREEWALK_FAILPOINT("atomic_file/rename");
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      return ErrnoStatus("rename", tmp);
    }
    return Status::Ok();
  }();
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  FsyncParentDir(path);
  return Status::Ok();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFound("cannot read '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace treewalk
