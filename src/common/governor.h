#ifndef TREEWALK_COMMON_GOVERNOR_H_
#define TREEWALK_COMMON_GOVERNOR_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>

#include "src/common/status.h"

namespace treewalk {

/// What a byte of tracked memory was spent on.  Categories are coarse on
/// purpose: the budget exists to stop an adversarial job from OOM-ing
/// the process, and the breakdown exists so the resulting
/// kResourceExhausted message says *which* structure blew up.
enum class MemoryCategory {
  kAxisIndex = 0,   ///< axis-index bitsets and memoized relation matrices
  kCompiledOps,     ///< compiler-derived matrices and op evaluation results
  kCycleMemo,       ///< cycle-detection configuration memo (per computation)
  kStore,           ///< register store tuple growth (peak, monotone)
  kTrace,           ///< recorded trace entries
  kSelectorCache,   ///< per-run atp() selector-result cache
  kMappedSnapshot,  ///< mmap-ed tree snapshot regions (src/tree/snapshot.h)
  kResidentTree,    ///< daemon-resident corpus trees (src/engine/input_cache.h)
};
inline constexpr int kNumMemoryCategories = 8;

const char* MemoryCategoryName(MemoryCategory category);

/// Byte-denominated memory budget with a per-category breakdown.
/// Charges are *approximations* of heap footprint (documented per call
/// site in docs/ROBUSTNESS.md); the point is an enforced O(budget)
/// ceiling with an attributable error message, not byte-exact malloc
/// accounting.  Single-threaded: one accountant per job attempt.
class MemoryAccountant {
 public:
  /// `budget_bytes <= 0` means unlimited (charges are tracked but never
  /// rejected).
  explicit MemoryAccountant(std::int64_t budget_bytes)
      : budget_(budget_bytes) {}

  /// Records `bytes` against `category`.  Returns kResourceExhausted
  /// with the full breakdown once the total would exceed the budget;
  /// a failed charge is not recorded, and `tripped()` latches.
  Status Charge(MemoryCategory category, std::int64_t bytes);
  /// Returns previously charged bytes (scope-exit of a memo, cache
  /// eviction).  Never fails; clamped at zero.
  void Release(MemoryCategory category, std::int64_t bytes);

  std::int64_t budget() const { return budget_; }
  std::int64_t used() const { return used_; }
  std::int64_t peak() const { return peak_; }
  std::int64_t used(MemoryCategory category) const {
    return by_category_[static_cast<int>(category)];
  }
  /// High-water mark of one category over the accountant's lifetime
  /// (exported as treewalk_governor_memory_peak_bytes{category=...}).
  std::int64_t peak(MemoryCategory category) const {
    return peak_by_category_[static_cast<int>(category)];
  }
  /// True once any charge was rejected.
  bool tripped() const { return tripped_; }

  /// "axis-index=12.3MiB cycle-memo=0B ..." — the message payload of the
  /// kResourceExhausted status.
  std::string Breakdown() const;

 private:
  std::int64_t budget_ = 0;
  std::int64_t used_ = 0;
  std::int64_t peak_ = 0;
  bool tripped_ = false;
  std::array<std::int64_t, kNumMemoryCategories> by_category_{};
  std::array<std::int64_t, kNumMemoryCategories> peak_by_category_{};
};

/// Per-job resource governor: a wall-clock deadline plus an optional
/// memory budget.  The interpreter polls `CheckDeadline()` at transition
/// boundaries (alongside the cooperative-cancel flag) and routes its
/// allocations through `Charge()`; the axis index and the selector
/// compiler do the same.  A default-constructed governor is unlimited
/// and every check is a no-op branch.
///
/// Not thread-safe; each job attempt owns one governor
/// (src/engine/engine.cc creates it on the worker thread).
class ResourceGovernor {
 public:
  ResourceGovernor() = default;

  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }
  void set_deadline_after(std::chrono::milliseconds budget) {
    deadline_ = std::chrono::steady_clock::now() + budget;
  }
  bool has_deadline() const { return deadline_.has_value(); }

  void set_memory_budget(std::int64_t bytes) {
    accountant_.emplace(bytes);
  }
  MemoryAccountant* accountant() {
    return accountant_.has_value() ? &*accountant_ : nullptr;
  }
  const MemoryAccountant* accountant() const {
    return accountant_.has_value() ? &*accountant_ : nullptr;
  }

  /// Cheap transition-boundary deadline poll: reads the steady clock
  /// only every kDeadlineStride calls, so the per-transition cost is an
  /// increment and a branch (E15 bounds the total overhead at <2%).
  Status CheckDeadline() {
    if (!deadline_.has_value()) return Status::Ok();
    if (++tick_ % kDeadlineStride != 0) return Status::Ok();
    return CheckDeadlineNow();
  }

  /// Forces a clock read; used at coarse boundaries (job start,
  /// selector compilation) where the stride would be too lazy.
  Status CheckDeadlineNow();

  /// Instrumentation: strided CheckDeadline() calls made while a
  /// deadline was set, and how many of them actually read the clock.
  /// The engine flushes these into the metrics registry per attempt
  /// (treewalk_governor_deadline_polls_total / _clock_reads_total).
  std::int64_t deadline_polls() const {
    return static_cast<std::int64_t>(tick_);
  }
  std::int64_t deadline_clock_reads() const { return clock_reads_; }

  /// Memory charge; OK when no budget is attached.
  Status Charge(MemoryCategory category, std::int64_t bytes) {
    if (!accountant_.has_value()) return Status::Ok();
    return accountant_->Charge(category, bytes);
  }
  void Release(MemoryCategory category, std::int64_t bytes) {
    if (accountant_.has_value()) accountant_->Release(category, bytes);
  }

 private:
  static constexpr std::uint64_t kDeadlineStride = 64;

  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::optional<MemoryAccountant> accountant_;
  std::uint64_t tick_ = 0;
  std::int64_t clock_reads_ = 0;
};

/// Null-safe helpers: the governor is optional nearly everywhere, and
/// `GovernorCharge(nullptr, ...)` reading as a no-op keeps call sites
/// single-line.
inline Status GovernorCharge(ResourceGovernor* governor,
                             MemoryCategory category, std::int64_t bytes) {
  if (governor == nullptr) return Status::Ok();
  return governor->Charge(category, bytes);
}
inline void GovernorRelease(ResourceGovernor* governor,
                            MemoryCategory category, std::int64_t bytes) {
  if (governor != nullptr) governor->Release(category, bytes);
}
inline Status GovernorCheckDeadline(ResourceGovernor* governor) {
  if (governor == nullptr) return Status::Ok();
  return governor->CheckDeadline();
}
inline Status GovernorCheckDeadlineNow(ResourceGovernor* governor) {
  if (governor == nullptr) return Status::Ok();
  return governor->CheckDeadlineNow();
}

/// RAII charge that releases on destruction: used for structures whose
/// lifetime is a scope (the per-computation cycle memo).  Add() both
/// charges the governor and remembers the amount for release.
class ScopedMemoryCharge {
 public:
  ScopedMemoryCharge(ResourceGovernor* governor, MemoryCategory category)
      : governor_(governor), category_(category) {}
  ~ScopedMemoryCharge() { GovernorRelease(governor_, category_, bytes_); }
  ScopedMemoryCharge(const ScopedMemoryCharge&) = delete;
  ScopedMemoryCharge& operator=(const ScopedMemoryCharge&) = delete;

  Status Add(std::int64_t bytes) {
    Status status = GovernorCharge(governor_, category_, bytes);
    if (status.ok()) bytes_ += bytes;
    return status;
  }

 private:
  ResourceGovernor* governor_;
  MemoryCategory category_;
  std::int64_t bytes_ = 0;
};

}  // namespace treewalk

#endif  // TREEWALK_COMMON_GOVERNOR_H_
