#ifndef TREEWALK_COMMON_INTERNER_H_
#define TREEWALK_COMMON_INTERNER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/data_value.h"

namespace treewalk {

/// Bidirectional map between strings and dense int handles.  Used for
/// tree labels (alphabet Sigma), attribute names (set A), and for
/// embedding textual XML attribute values into the data domain D.
///
/// Handles are assigned consecutively from 0 in insertion order, so they
/// can index vectors directly.
class Interner {
 public:
  Interner() = default;

  /// Returns the handle for `s`, inserting it if new.
  std::int64_t Intern(std::string_view s);

  /// Returns the handle for `s`, or -1 if `s` was never interned.
  std::int64_t Find(std::string_view s) const;

  /// Returns the string for a handle previously returned by Intern().
  const std::string& NameOf(std::int64_t handle) const;

  /// True if `handle` is a valid interned handle.
  bool Contains(std::int64_t handle) const {
    return handle >= 0 && handle < static_cast<std::int64_t>(names_.size());
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, std::int64_t> index_;
  std::vector<std::string> names_;
};

/// Embeds interned strings into D as data values.  Interner handles are
/// small non-negative ints, which would collide with numeric data values;
/// ValueInterner offsets them into a reserved high range of D so string
/// values and small integers coexist in one tree.
///
/// Internally synchronized: formula evaluation interns string constants
/// through the tree's shared ValueInterner, so concurrent runs over one
/// tree (src/engine) race on it without the lock.  Handle *values* still
/// depend on insertion order; the batch engine pre-interns all formula
/// constants in job order to keep them deterministic (docs/ENGINE.md).
class ValueInterner {
 public:
  /// First data value used for interned strings.
  static constexpr DataValue kStringBase = DataValue{1} << 62;

  /// Returns the data value representing string `s`.
  DataValue ValueFor(std::string_view s) {
    std::lock_guard<std::mutex> lock(mutex_);
    return kStringBase + interner_.Intern(s);
  }

  /// True if `v` denotes an interned string (as opposed to a number).
  static bool IsString(DataValue v) { return v >= kStringBase; }

  /// Renders a data value: the interned string if it is one, otherwise
  /// the decimal number, and "_|_" for kBottom.
  std::string Render(DataValue v) const;

  /// Number of interned strings; with NameAt() this enumerates the pool
  /// in handle order, which is how snapshots persist it
  /// (docs/SNAPSHOT.md) — re-interning the strings in that order on
  /// load reproduces every handle, so raw attribute values stay valid.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return interner_.size();
  }
  /// String of handle `i` (0 <= i < size()), by value: the lock cannot
  /// protect a returned reference.
  std::string NameAt(std::int64_t i) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return interner_.NameOf(i);
  }

 private:
  mutable std::mutex mutex_;
  Interner interner_;
};

}  // namespace treewalk

#endif  // TREEWALK_COMMON_INTERNER_H_
