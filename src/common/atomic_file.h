#ifndef TREEWALK_COMMON_ATOMIC_FILE_H_
#define TREEWALK_COMMON_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "src/common/result.h"

namespace treewalk {

/// Crash-consistent file creation, extracted from the journal's header
/// discipline (src/common/journal.cc) so every on-disk artifact — WAL
/// headers, tree snapshots, selector-cache entries — shares one audited
/// tmp+write+fsync+rename sequence.  See docs/ROBUSTNESS.md.

/// errno as a kInternal Status: "<op> '<path>': <strerror>".
Status ErrnoStatus(const std::string& op, const std::string& path);

/// write(2) until every byte landed (or a real error).
Status WriteAllFd(int fd, const std::string& path, std::string_view bytes);

/// fsync(2) as a Status.  No failpoint of its own; callers with a
/// durability barrier to test wrap it (the journal does).
Status FsyncFd(int fd, const std::string& path);

/// fsyncs the directory containing `path`, making a rename into it
/// durable.  Best-effort: some filesystems refuse O_RDONLY on dirs.
void FsyncParentDir(const std::string& path);

/// Atomically replaces `path` with `bytes`: writes to a unique
/// `<path>.tmp.*`, fsyncs, renames over `path`, fsyncs the parent dir.
/// A crash (or injected fault) at any point leaves either the old file
/// or the complete new one — never a torn write; the tmp file is
/// unlinked on failure.  Unique tmp names make concurrent writers of
/// one path safe (last rename wins with a complete file either way).
/// Failpoints: atomic_file/write, atomic_file/fsync, atomic_file/rename.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

/// Reads `path` fully into a string (kNotFound when unreadable).
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace treewalk

#endif  // TREEWALK_COMMON_ATOMIC_FILE_H_
