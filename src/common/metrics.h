#ifndef TREEWALK_COMMON_METRICS_H_
#define TREEWALK_COMMON_METRICS_H_

/// Engine-wide metrics registry (docs/OBSERVABILITY.md).
///
/// Three instrument kinds, all safe to update from any thread:
///
///   Counter    monotonic; sharded atomics so concurrent increments from
///              the thread pool do not bounce one cache line around.
///   Gauge      last-write or max-tracked level (single atomic).
///   Histogram  fixed upper-bound buckets + sum/count; quantiles are
///              interpolated from the bucket counts at snapshot time.
///
/// Instruments are registered once (first use) in the process-global
/// MetricsRegistry and updated lock-free on the hot path; Snapshot()
/// takes the registry mutex only to walk the instrument list, reading
/// each atomic with relaxed loads.  Snapshots export as Prometheus text
/// exposition v0.0.4 or JSON.
///
/// Configuring with -DTREEWALK_METRICS=OFF defines
/// TREEWALK_METRICS_DISABLED, which compiles every instrument update to
/// an empty inline function (the registry still exists so call sites
/// and the engine API keep their shapes; snapshots are empty).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace treewalk {

#ifdef TREEWALK_METRICS_DISABLED
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Label set attached to one instrument, e.g. {{"status", "accepted"}}.
/// Rendered as {status="accepted"} in Prometheus exposition.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// Point-in-time view of one histogram: cumulative-free per-bucket
/// counts aligned with `bounds` (upper bounds; an implicit +Inf bucket
/// holds `overflow`), plus sum and count for averages.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< size == bounds.size()
  std::uint64_t overflow = 0;         ///< observations above the last bound
  std::uint64_t count = 0;
  double sum = 0;

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// bucket holding the q-th observation; the +Inf bucket clamps to the
  /// largest finite bound.  0 when empty.
  double Quantile(double q) const;
  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

/// One exported instrument in a snapshot.
struct MetricSample {
  std::string name;  ///< family name, e.g. "treewalk_engine_jobs_total"
  std::string help;
  MetricType type = MetricType::kCounter;
  MetricLabels labels;
  std::int64_t value = 0;       ///< counters and gauges
  HistogramSnapshot histogram;  ///< histograms
};

/// Registry-wide snapshot; the exchange format between the engine, the
/// CLI exporters, and the progress reporter.
struct MetricsSnapshot {
  std::vector<MetricSample> samples;

  /// Prometheus text exposition v0.0.4: one HELP/TYPE pair per family,
  /// histograms as _bucket{le=...}/_sum/_count.
  std::string ToPrometheusText() const;
  /// JSON object {"metrics": [...]} with quantiles precomputed.
  std::string ToJson() const;

  /// First sample whose family name is `name` and (when `label_value`
  /// is non-empty) that carries some label with that value.
  const MetricSample* Find(std::string_view name,
                           std::string_view label_value = {}) const;
  /// Convenience: value of a counter/gauge sample, 0 when absent.
  std::int64_t Value(std::string_view name,
                     std::string_view label_value = {}) const;
};

#ifndef TREEWALK_METRICS_DISABLED

/// Monotonic counter.  Increments land on one of kShards cache-line-
/// padded atomics picked by a per-thread index, so the thread pool's
/// hottest counters do not serialize on one line; value() folds the
/// shards.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Increment(std::int64_t n = 1) {
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    std::int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// Zeroes the shards in place (pointers held by call sites stay
  /// valid).  Test-only; racing updates may be lost.
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> v{0};
  };
  static std::size_t ShardIndex();

  Shard shards_[kShards];
};

/// Level gauge: Set/Add for current values, UpdateMax for high-water
/// marks (compare-and-swap loop; monotone).
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void UpdateMax(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: Observe() is a linear scan over the (few)
/// bounds plus two relaxed atomic adds.  Bounds are set at registration
/// and never change.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  // bounds + overflow
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Process-global instrument registry.  FindOrCreate* registers on
/// first use (mutex-guarded) and returns a stable pointer that callers
/// cache for the process lifetime; instruments are never removed.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* FindOrCreateCounter(std::string_view name, std::string_view help,
                               MetricLabels labels = {});
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view help,
                           MetricLabels labels = {});
  /// `bounds` must be strictly increasing upper bounds; the +Inf bucket
  /// is implicit.  Bounds of an already-registered histogram win.
  Histogram* FindOrCreateHistogram(std::string_view name,
                                   std::string_view help,
                                   std::vector<double> bounds,
                                   MetricLabels labels = {});

  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered instrument (counters, gauges, histogram
  /// buckets).  Test-only: running batches must not race with it.
  void ResetForTest();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type;
    MetricLabels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindEntry(std::string_view name, MetricType type,
                   const MetricLabels& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

#else  // TREEWALK_METRICS_DISABLED

class Counter {
 public:
  void Increment(std::int64_t = 1) {}
  std::int64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(std::int64_t) {}
  void Add(std::int64_t) {}
  void UpdateMax(std::int64_t) {}
  std::int64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  void Observe(double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  void Reset() {}
};

/// No-op registry: hands out pointers to shared static no-op
/// instruments so call sites compile unchanged and updates vanish.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* FindOrCreateCounter(std::string_view, std::string_view,
                               MetricLabels = {}) {
    return &counter_;
  }
  Gauge* FindOrCreateGauge(std::string_view, std::string_view,
                           MetricLabels = {}) {
    return &gauge_;
  }
  Histogram* FindOrCreateHistogram(std::string_view, std::string_view,
                                   std::vector<double>, MetricLabels = {}) {
    return &histogram_;
  }

  MetricsSnapshot Snapshot() const { return {}; }
  void ResetForTest() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // TREEWALK_METRICS_DISABLED

/// Default latency bucket ladders (log-spaced).  Shared so related
/// histograms stay comparable across subsystems.
std::vector<double> LatencyBucketsMs();  ///< 0.25ms .. 8s
std::vector<double> LatencyBucketsUs();  ///< 1us .. 1s

#ifndef TREEWALK_METRICS_DISABLED

/// RAII microsecond timer: observes its scope's wall time into a
/// histogram.  Compiles away (no clock reads) when metrics are off.
class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram* histogram)
      : histogram_(histogram),
        start_(std::chrono::steady_clock::now()) {}
  ~ScopedLatencyUs() {
    histogram_->Observe(
        std::chrono::duration_cast<
            std::chrono::duration<double, std::micro>>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  ScopedLatencyUs(const ScopedLatencyUs&) = delete;
  ScopedLatencyUs& operator=(const ScopedLatencyUs&) = delete;

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
};

#else  // TREEWALK_METRICS_DISABLED

class ScopedLatencyUs {
 public:
  explicit ScopedLatencyUs(Histogram*) {}
};

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace treewalk

#endif  // TREEWALK_COMMON_METRICS_H_
