#include "src/common/status.h"

#include <cstdio>
#include <cstdlib>

namespace treewalk {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kNondeterminism:
      return "NONDETERMINISM";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

Status InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status Nondeterminism(std::string message) {
  return Status(StatusCode::kNondeterminism, std::move(message));
}
Status Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}
Status Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "%s:%d: CHECK failed: %s: %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

}  // namespace treewalk
