#ifndef TREEWALK_COMMON_DATA_VALUE_H_
#define TREEWALK_COMMON_DATA_VALUE_H_

#include <cstdint>
#include <limits>

namespace treewalk {

/// An element of the paper's infinite data domain D (Section 2.1).  The
/// paper only requires D to be countable with decidable equality, and
/// "for ease of presentation assumes D contains all natural numbers"; we
/// realize D as int64.  Textual values (XML attribute strings) are mapped
/// into D by an Interner.
using DataValue = std::int64_t;

/// The paper's bottom symbol: the attribute value carried by tree
/// delimiters, guaranteed not to occur in D_active.
inline constexpr DataValue kBottom = std::numeric_limits<DataValue>::min();

}  // namespace treewalk

#endif  // TREEWALK_COMMON_DATA_VALUE_H_
