#include "src/common/governor.h"

namespace treewalk {

namespace {

/// "12.3MiB" / "4.0KiB" / "97B" — breakdown messages stay readable for
/// budgets from bytes to gigabytes.
std::string HumanBytes(std::int64_t bytes) {
  if (bytes >= 1 << 20) {
    std::int64_t tenths = bytes * 10 / (1 << 20);
    return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
           "MiB";
  }
  if (bytes >= 1 << 10) {
    std::int64_t tenths = bytes * 10 / (1 << 10);
    return std::to_string(tenths / 10) + "." + std::to_string(tenths % 10) +
           "KiB";
  }
  return std::to_string(bytes) + "B";
}

}  // namespace

const char* MemoryCategoryName(MemoryCategory category) {
  switch (category) {
    case MemoryCategory::kAxisIndex:
      return "axis-index";
    case MemoryCategory::kCompiledOps:
      return "compiled-ops";
    case MemoryCategory::kCycleMemo:
      return "cycle-memo";
    case MemoryCategory::kStore:
      return "store";
    case MemoryCategory::kTrace:
      return "trace";
    case MemoryCategory::kSelectorCache:
      return "selector-cache";
    case MemoryCategory::kMappedSnapshot:
      return "mapped-snapshot";
    case MemoryCategory::kResidentTree:
      return "resident-tree";
  }
  return "?";
}

Status MemoryAccountant::Charge(MemoryCategory category, std::int64_t bytes) {
  if (bytes <= 0) return Status::Ok();
  if (budget_ > 0 && used_ + bytes > budget_) {
    tripped_ = true;
    return ResourceExhausted(
        "memory budget exceeded: charging " + HumanBytes(bytes) + " to " +
        MemoryCategoryName(category) + " would pass " + HumanBytes(budget_) +
        " (" + Breakdown() + ")");
  }
  used_ += bytes;
  std::int64_t& cat = by_category_[static_cast<int>(category)];
  cat += bytes;
  std::int64_t& cat_peak = peak_by_category_[static_cast<int>(category)];
  if (cat > cat_peak) cat_peak = cat;
  if (used_ > peak_) peak_ = used_;
  return Status::Ok();
}

void MemoryAccountant::Release(MemoryCategory category, std::int64_t bytes) {
  if (bytes <= 0) return;
  std::int64_t& cat = by_category_[static_cast<int>(category)];
  if (bytes > cat) bytes = cat;
  cat -= bytes;
  used_ -= bytes;
}

std::string MemoryAccountant::Breakdown() const {
  std::string out = "used=" + HumanBytes(used_);
  for (int c = 0; c < kNumMemoryCategories; ++c) {
    if (by_category_[static_cast<std::size_t>(c)] == 0) continue;
    out += " ";
    out += MemoryCategoryName(static_cast<MemoryCategory>(c));
    out += "=";
    out += HumanBytes(by_category_[static_cast<std::size_t>(c)]);
  }
  return out;
}

Status ResourceGovernor::CheckDeadlineNow() {
  if (!deadline_.has_value()) return Status::Ok();
  ++clock_reads_;
  auto now = std::chrono::steady_clock::now();
  if (now < *deadline_) return Status::Ok();
  auto over = std::chrono::duration_cast<std::chrono::milliseconds>(
      now - *deadline_);
  return DeadlineExceeded("wall-clock deadline exceeded by " +
                          std::to_string(over.count()) + "ms");
}

}  // namespace treewalk
