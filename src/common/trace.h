#ifndef TREEWALK_COMMON_TRACE_H_
#define TREEWALK_COMMON_TRACE_H_

/// Span-based tracer (docs/OBSERVABILITY.md).
///
/// A ScopedSpan records one complete span — name, thread, parent span,
/// steady-clock start, duration — into a bounded per-thread buffer when
/// the process-global Tracer is enabled.  Spans nest via a thread-local
/// stack, so every event carries its parent's span id and a trace
/// viewer can rebuild the tree.  When a thread's buffer is full, new
/// spans are counted as dropped instead of recorded (bounded memory
/// under any load; the drop count is exported).
///
/// The tracer is off by default and costs one relaxed atomic load per
/// span site while off.  ChromeTraceJson() renders the collected spans
/// in the Chrome trace-event JSON array format, loadable in
/// chrome://tracing or https://ui.perfetto.dev.
///
/// With -DTREEWALK_METRICS=OFF the tracer compiles to no-ops alongside
/// the metrics registry (one observability switch).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace treewalk {

/// One completed span.  Timestamps are microseconds since Enable().
struct TraceEvent {
  std::string name;
  /// Extra `"key":value` JSON members for the args object; empty or a
  /// comma-joined list like "\"job\":3,\"rung\":1".
  std::string args;
  std::uint64_t id = 0;         ///< span id, unique per process run
  std::uint64_t parent_id = 0;  ///< enclosing span on the same thread, 0=root
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;  ///< dense per-thread index, not the OS tid
};

#ifndef TREEWALK_METRICS_DISABLED

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  static Tracer& Global();

  /// Starts recording; resets the clock epoch and clears old events.
  /// `per_thread_capacity` bounds each thread's buffer.
  void Enable(std::size_t per_thread_capacity = kDefaultCapacity);
  /// Stops recording; collected events stay readable.
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Spans discarded because their thread's buffer was full.
  std::uint64_t dropped() const;

  /// Every recorded event across all threads (including exited ones),
  /// sorted by start timestamp.
  std::vector<TraceEvent> Collect() const;

  /// Chrome trace-event format: a JSON array of "X" (complete) events.
  std::string ChromeTraceJson() const;

  std::uint64_t NowMicros() const;

  /// Records an already-measured complete span (used where the start
  /// predates the recording site, e.g. per-job queue wait).  No-op when
  /// disabled.
  void RecordComplete(const char* name, std::string args,
                      std::uint64_t ts_us, std::uint64_t dur_us);

 private:
  friend class ScopedSpan;
  struct ThreadBuffer {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
    std::uint64_t dropped = 0;
    std::uint32_t tid = 0;
  };

  ThreadBuffer* BufferForThisThread();
  void Record(TraceEvent event);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_id_{1};
  /// Bumped by Enable(); stale thread-local buffer caches re-register.
  std::atomic<std::uint64_t> generation_{0};
  /// Steady-clock microseconds at Enable(); atomic so span sites can
  /// read it without the registration mutex.
  std::atomic<std::int64_t> epoch_us_{0};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
  mutable std::mutex mu_;  ///< guards buffers_ registration/collection
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
};

/// RAII span: records [construction, destruction) when the tracer is
/// enabled.  Cheap when disabled (one relaxed load, no clock read).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, std::string()) {}
  ScopedSpan(const char* name, std::string args);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::string args_;
  std::uint64_t start_us_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  bool active_ = false;
};

#else  // TREEWALK_METRICS_DISABLED

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;
  static Tracer& Global();
  void Enable(std::size_t = kDefaultCapacity) {}
  void Disable() {}
  bool enabled() const { return false; }
  std::uint64_t dropped() const { return 0; }
  std::vector<TraceEvent> Collect() const { return {}; }
  std::string ChromeTraceJson() const { return "[]\n"; }
  std::uint64_t NowMicros() const { return 0; }
  void RecordComplete(const char*, std::string, std::uint64_t,
                      std::uint64_t) {}
};

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*) {}
  ScopedSpan(const char*, std::string) {}
};

#endif  // TREEWALK_METRICS_DISABLED

}  // namespace treewalk

#endif  // TREEWALK_COMMON_TRACE_H_
