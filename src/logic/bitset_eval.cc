#include "src/logic/bitset_eval.h"

#include <cassert>
#include <cstring>
#include <numeric>
#include <utility>

namespace treewalk {

namespace {

std::vector<NodeId> AllNodes(std::size_t n) {
  std::vector<NodeId> out(n);
  std::iota(out.begin(), out.end(), NodeId{0});
  return out;
}

bool RowAny(const std::uint64_t* row, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if (row[w] != 0) return true;
  }
  return false;
}

/// Heap bytes the derived value of one op occupies (0 for consts,
/// loads, and booleans, which alias or copy nothing).
std::int64_t AllocBytes(OpKind kind, std::size_t n) {
  const std::int64_t set_bytes =
      static_cast<std::int64_t>((n + 63) / 64 * 8 + 48);
  const std::int64_t mat_bytes =
      static_cast<std::int64_t>(n * ((n + 63) / 64) * 8 + 64);
  switch (kind) {
    case OpKind::kNotSet:
    case OpKind::kAndSet:
    case OpKind::kOrSet:
    case OpKind::kBoolToSet:
    case OpKind::kAnyRow:
    case OpKind::kAllRow:
      return set_bytes;
    case OpKind::kNotMat:
    case OpKind::kAndMat:
    case OpKind::kOrMat:
    case OpKind::kSetToMatRow:
    case OpKind::kSetToMatCol:
    case OpKind::kCompose:
      return mat_bytes;
    default:
      return 0;
  }
}

}  // namespace

std::vector<OpValue> EvaluateOps(const std::vector<Op>& ops, std::size_t n) {
  // A null governor cannot fail a charge or a deadline check.
  return std::move(EvaluateOpsGoverned(ops, n, nullptr)).value();
}

Result<std::vector<OpValue>> EvaluateOpsGoverned(const std::vector<Op>& ops,
                                                 std::size_t n,
                                                 ResourceGovernor* governor) {
  ScopedMemoryCharge transient(governor, MemoryCategory::kCompiledOps);
  std::vector<OpValue> vals(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    OpValue& out = vals[i];
    if (governor != nullptr) {
      TREEWALK_RETURN_IF_ERROR(governor->CheckDeadlineNow());
      TREEWALK_RETURN_IF_ERROR(transient.Add(AllocBytes(op.kind, n)));
    }
    switch (op.kind) {
      case OpKind::kConstBool:
        out.b = op.literal;
        break;
      case OpKind::kLoadSet:
        assert(op.set != nullptr);
        out.set = op.set;
        break;
      case OpKind::kLoadMat:
        assert(op.mat != nullptr);
        out.mat = op.mat;
        break;
      case OpKind::kNotBool:
        out.b = !vals[op.a].b;
        break;
      case OpKind::kAndBool:
        out.b = vals[op.a].b && vals[op.b].b;
        break;
      case OpKind::kOrBool:
        out.b = vals[op.a].b || vals[op.b].b;
        break;
      case OpKind::kNotSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Complement();
        out.set = std::move(s);
        break;
      }
      case OpKind::kAndSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Intersect(*vals[op.b].set);
        out.set = std::move(s);
        break;
      }
      case OpKind::kOrSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Union(*vals[op.b].set);
        out.set = std::move(s);
        break;
      }
      case OpKind::kNotMat: {
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Complement();
        out.mat = std::move(m);
        break;
      }
      case OpKind::kAndMat: {
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Intersect(*vals[op.b].mat);
        out.mat = std::move(m);
        break;
      }
      case OpKind::kOrMat: {
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Union(*vals[op.b].mat);
        out.mat = std::move(m);
        break;
      }
      case OpKind::kBoolToSet:
        out.set = std::make_shared<NodeSet>(vals[op.a].b ? NodeSet::Full(n)
                                                         : NodeSet(n));
        break;
      case OpKind::kSetToMatRow: {
        const NodeSet& s = *vals[op.a].set;
        auto m = std::make_shared<NodeMatrix>(n);
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          if (s.test(u)) m->SetRowRange(u, 0, static_cast<NodeId>(n));
        }
        out.mat = std::move(m);
        break;
      }
      case OpKind::kSetToMatCol: {
        const NodeSet& s = *vals[op.a].set;
        auto m = std::make_shared<NodeMatrix>(n);
        const std::size_t wpr = m->words_per_row();
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          std::memcpy(m->Row(u), s.words(), wpr * sizeof(std::uint64_t));
        }
        out.mat = std::move(m);
        break;
      }
      case OpKind::kAnyRow:
        out.set = std::make_shared<NodeSet>(vals[op.a].mat->AnyPerRow());
        break;
      case OpKind::kAllRow:
        out.set = std::make_shared<NodeSet>(vals[op.a].mat->AllPerRow());
        break;
      case OpKind::kAnySet:
        out.b = vals[op.a].set->any();
        break;
      case OpKind::kAllSet:
        out.b = vals[op.a].set->all();
        break;
      case OpKind::kCompose: {
        const NodeMatrix& p = *vals[op.a].mat;
        const NodeMatrix& q = *vals[op.b].mat;
        auto r = std::make_shared<NodeMatrix>(n);
        const std::size_t wpr = p.words_per_row();
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          const std::uint64_t* pu = p.Row(u);
          if (!RowAny(pu, wpr)) continue;
          for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
            const std::uint64_t* qv = q.Row(v);
            for (std::size_t w = 0; w < wpr; ++w) {
              if ((pu[w] & qv[w]) != 0) {
                r->set(u, v);
                break;
              }
            }
          }
        }
        out.mat = std::move(r);
        break;
      }
    }
  }
  // `transient` releases the evaluation-scope charges here; the caller
  // re-charges whatever it copies out and keeps.
  return vals;
}

std::int64_t CompiledSelector::RetainedBytes() const {
  switch (shape_) {
    case Shape::kBool:
      return 0;
    case Shape::kSetX:
    case Shape::kSetY:
      return static_cast<std::int64_t>((n_ + 63) / 64 * 8 + 48);
    case Shape::kMat:
      return static_cast<std::int64_t>(n_ * ((n_ + 63) / 64) * 8 + 64);
  }
  return 0;
}

std::vector<NodeId> CompiledSelector::SelectFrom(NodeId origin) const {
  assert(origin >= 0 && origin < static_cast<NodeId>(n_));
  switch (shape_) {
    case Shape::kBool:
      return literal_ ? AllNodes(n_) : std::vector<NodeId>{};
    case Shape::kSetX:
      // phi mentions only x: every y qualifies iff phi(origin) holds.
      return set_->test(origin) ? AllNodes(n_) : std::vector<NodeId>{};
    case Shape::kSetY:
      return set_->ToVector();
    case Shape::kMat:
      return mat_->RowSet(origin).ToVector();
  }
  return {};
}

}  // namespace treewalk
