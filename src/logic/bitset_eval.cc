#include "src/logic/bitset_eval.h"

#include <cassert>
#include <cstring>
#include <numeric>
#include <utility>

namespace treewalk {

namespace {

std::vector<NodeId> AllNodes(std::size_t n) {
  std::vector<NodeId> out(n);
  std::iota(out.begin(), out.end(), NodeId{0});
  return out;
}

bool RowAny(const std::uint64_t* row, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if (row[w] != 0) return true;
  }
  return false;
}

/// Whether this op produces (or passes through) an interval-carried
/// Mat value.  Shape introductions (loads, broadcasts) read it off the
/// op; combinators inherit from their first operand — compilations are
/// representation-homogeneous.
bool OpIsInterval(const Op& op, const std::vector<OpValue>& vals) {
  switch (op.kind) {
    case OpKind::kLoadMat:
      return op.imat != nullptr;
    case OpKind::kSetToMatRow:
    case OpKind::kSetToMatCol:
      return op.interval;
    case OpKind::kNotMat:
    case OpKind::kAnyRow:
    case OpKind::kAllRow:
    case OpKind::kAndMat:
    case OpKind::kOrMat:
    case OpKind::kCompose:
      return vals[static_cast<std::size_t>(op.a)].imat != nullptr;
    default:
      return false;
  }
}

/// Heap bytes to pre-charge for one op (0 for consts, loads, and
/// booleans, which alias or copy nothing).  Interval ops whose output
/// size is data-dependent (And/Or/Compose/ColBroadcast) charge their
/// span pools internally in chunks as they grow and return 0 here; the
/// fixed-size interval ops (Not, RowBroadcast) pre-charge their O(n)
/// descriptor arrays like the dense ops pre-charge O(n^2).
std::int64_t AllocBytes(const Op& op, const std::vector<OpValue>& vals,
                        std::size_t n) {
  const std::int64_t set_bytes =
      static_cast<std::int64_t>((n + 63) / 64 * 8 + 48);
  const std::int64_t mat_bytes =
      static_cast<std::int64_t>(n * ((n + 63) / 64) * 8 + 64);
  const std::int64_t idesc_bytes =
      static_cast<std::int64_t>(n * sizeof(IntervalMatrix::Row)) + 64;
  switch (op.kind) {
    case OpKind::kNotSet:
    case OpKind::kAndSet:
    case OpKind::kOrSet:
    case OpKind::kBoolToSet:
    case OpKind::kAnyRow:
    case OpKind::kAllRow:
      return set_bytes;
    case OpKind::kNotMat:
    case OpKind::kSetToMatRow:
      return OpIsInterval(op, vals) ? idesc_bytes : mat_bytes;
    case OpKind::kAndMat:
    case OpKind::kOrMat:
    case OpKind::kSetToMatCol:
    case OpKind::kCompose:
      return OpIsInterval(op, vals) ? 0 : mat_bytes;
    default:
      return 0;
  }
}

}  // namespace

std::vector<OpValue> EvaluateOps(const std::vector<Op>& ops, std::size_t n) {
  // A null governor cannot fail a charge or a deadline check.
  return std::move(EvaluateOpsGoverned(ops, n, nullptr)).value();
}

Result<std::vector<OpValue>> EvaluateOpsGoverned(const std::vector<Op>& ops,
                                                 std::size_t n,
                                                 ResourceGovernor* governor) {
  ScopedMemoryCharge transient(governor, MemoryCategory::kCompiledOps);
  std::vector<OpValue> vals(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    OpValue& out = vals[i];
    if (governor != nullptr) {
      TREEWALK_RETURN_IF_ERROR(governor->CheckDeadlineNow());
      TREEWALK_RETURN_IF_ERROR(transient.Add(AllocBytes(op, vals, n)));
    }
    // Interval-carried Mat ops route through the IntervalMatrix
    // algebra; their data-dependent span pools charge `transient`
    // directly (chunked, before growing).
    const bool interval = OpIsInterval(op, vals);
    ScopedMemoryCharge* pool_charge = governor != nullptr ? &transient : nullptr;
    switch (op.kind) {
      case OpKind::kConstBool:
        out.b = op.literal;
        break;
      case OpKind::kLoadSet:
        assert(op.set != nullptr);
        out.set = op.set;
        break;
      case OpKind::kLoadMat:
        assert(op.mat != nullptr || op.imat != nullptr);
        out.mat = op.mat;
        out.imat = op.imat;
        break;
      case OpKind::kNotBool:
        out.b = !vals[op.a].b;
        break;
      case OpKind::kAndBool:
        out.b = vals[op.a].b && vals[op.b].b;
        break;
      case OpKind::kOrBool:
        out.b = vals[op.a].b || vals[op.b].b;
        break;
      case OpKind::kNotSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Complement();
        out.set = std::move(s);
        break;
      }
      case OpKind::kAndSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Intersect(*vals[op.b].set);
        out.set = std::move(s);
        break;
      }
      case OpKind::kOrSet: {
        auto s = std::make_shared<NodeSet>(*vals[op.a].set);
        s->Union(*vals[op.b].set);
        out.set = std::move(s);
        break;
      }
      case OpKind::kNotMat: {
        if (interval) {
          out.imat = std::make_shared<IntervalMatrix>(
              IntervalMatrix::Not(*vals[op.a].imat));
          break;
        }
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Complement();
        out.mat = std::move(m);
        break;
      }
      case OpKind::kAndMat: {
        if (interval) {
          assert(vals[op.b].imat != nullptr);
          auto r = IntervalMatrix::And(*vals[op.a].imat, *vals[op.b].imat,
                                       pool_charge);
          if (!r.ok()) return r.status();
          out.imat = std::make_shared<IntervalMatrix>(std::move(r).value());
          break;
        }
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Intersect(*vals[op.b].mat);
        out.mat = std::move(m);
        break;
      }
      case OpKind::kOrMat: {
        if (interval) {
          assert(vals[op.b].imat != nullptr);
          auto r = IntervalMatrix::Or(*vals[op.a].imat, *vals[op.b].imat,
                                      pool_charge);
          if (!r.ok()) return r.status();
          out.imat = std::make_shared<IntervalMatrix>(std::move(r).value());
          break;
        }
        auto m = std::make_shared<NodeMatrix>(*vals[op.a].mat);
        m->Union(*vals[op.b].mat);
        out.mat = std::move(m);
        break;
      }
      case OpKind::kBoolToSet:
        out.set = std::make_shared<NodeSet>(vals[op.a].b ? NodeSet::Full(n)
                                                         : NodeSet(n));
        break;
      case OpKind::kSetToMatRow: {
        const NodeSet& s = *vals[op.a].set;
        if (interval) {
          out.imat =
              std::make_shared<IntervalMatrix>(IntervalMatrix::RowBroadcast(s));
          break;
        }
        auto m = std::make_shared<NodeMatrix>(n);
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          if (s.test(u)) m->SetRowRange(u, 0, static_cast<NodeId>(n));
        }
        out.mat = std::move(m);
        break;
      }
      case OpKind::kSetToMatCol: {
        const NodeSet& s = *vals[op.a].set;
        if (interval) {
          auto r = IntervalMatrix::ColBroadcast(s, pool_charge);
          if (!r.ok()) return r.status();
          out.imat = std::make_shared<IntervalMatrix>(std::move(r).value());
          break;
        }
        auto m = std::make_shared<NodeMatrix>(n);
        const std::size_t wpr = m->words_per_row();
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          std::memcpy(m->Row(u), s.words(), wpr * sizeof(std::uint64_t));
        }
        out.mat = std::move(m);
        break;
      }
      case OpKind::kAnyRow:
        out.set = std::make_shared<NodeSet>(interval
                                                ? vals[op.a].imat->AnyPerRow()
                                                : vals[op.a].mat->AnyPerRow());
        break;
      case OpKind::kAllRow:
        out.set = std::make_shared<NodeSet>(interval
                                                ? vals[op.a].imat->AllPerRow()
                                                : vals[op.a].mat->AllPerRow());
        break;
      case OpKind::kAnySet:
        out.b = vals[op.a].set->any();
        break;
      case OpKind::kAllSet:
        out.b = vals[op.a].set->all();
        break;
      case OpKind::kCompose: {
        const NodeSet* guard =
            op.c >= 0 ? vals[static_cast<std::size_t>(op.c)].set.get()
                      : nullptr;
        if (interval) {
          assert(vals[op.b].imat != nullptr);
          auto ir = IntervalMatrix::Compose(*vals[op.a].imat, *vals[op.b].imat,
                                            guard, pool_charge);
          if (!ir.ok()) return ir.status();
          out.imat = std::make_shared<IntervalMatrix>(std::move(ir).value());
          break;
        }
        const NodeMatrix& p = *vals[op.a].mat;
        const NodeMatrix& q = *vals[op.b].mat;
        const std::uint64_t* gw = guard != nullptr ? guard->words() : nullptr;
        auto r = std::make_shared<NodeMatrix>(n);
        const std::size_t wpr = p.words_per_row();
        // The guard masks P's row once per u (R[u][v] = ∃w (P[u][w] ∧
        // C[w]) ∧ Q[v][w]), keeping the O(n²·wpr) inner loop at two
        // loads per word and preserving the empty-row skip when the
        // guard zeroes a row.
        std::vector<std::uint64_t> masked(gw != nullptr ? wpr : 0);
        for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
          const std::uint64_t* pu = p.Row(u);
          if (gw != nullptr) {
            std::uint64_t any = 0;
            for (std::size_t w = 0; w < wpr; ++w) {
              masked[w] = pu[w] & gw[w];
              any |= masked[w];
            }
            if (any == 0) continue;
            pu = masked.data();
          } else if (!RowAny(pu, wpr)) {
            continue;
          }
          for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
            const std::uint64_t* qv = q.Row(v);
            for (std::size_t w = 0; w < wpr; ++w) {
              if ((pu[w] & qv[w]) != 0) {
                r->set(u, v);
                break;
              }
            }
          }
        }
        out.mat = std::move(r);
        break;
      }
    }
  }
  // `transient` releases the evaluation-scope charges here; the caller
  // re-charges whatever it copies out and keeps.
  return vals;
}

std::int64_t CompiledSelector::RetainedBytes() const {
  switch (shape_) {
    case Shape::kBool:
      return 0;
    case Shape::kSetX:
    case Shape::kSetY:
      return static_cast<std::int64_t>((n_ + 63) / 64 * 8 + 48);
    case Shape::kMat:
      if (imat_ != nullptr) return imat_->ApproxBytes();
      return static_cast<std::int64_t>(n_ * ((n_ + 63) / 64) * 8 + 64);
  }
  return 0;
}

std::vector<NodeId> CompiledSelector::SelectFrom(NodeId origin) const {
  assert(origin >= 0 && origin < static_cast<NodeId>(n_));
  switch (shape_) {
    case Shape::kBool:
      return literal_ ? AllNodes(n_) : std::vector<NodeId>{};
    case Shape::kSetX:
      // phi mentions only x: every y qualifies iff phi(origin) holds.
      return set_->test(origin) ? AllNodes(n_) : std::vector<NodeId>{};
    case Shape::kSetY:
      return set_->ToVector();
    case Shape::kMat:
      if (imat_ != nullptr) return imat_->RowVector(origin);
      return mat_->RowSet(origin).ToVector();
  }
  return {};
}

}  // namespace treewalk
