#ifndef TREEWALK_LOGIC_TREE_EVAL_H_
#define TREEWALK_LOGIC_TREE_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/logic/formula.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Variable assignment for tree-formula evaluation: node variables to
/// nodes.
using NodeEnv = std::map<std::string, NodeId>;

/// Evaluates a tree formula under `env`, which must bind every free
/// variable.  Quantifiers range over Dom(t).  The evaluator is the
/// reference semantics of Section 2.2: straightforward recursive descent,
/// exponential in quantifier depth, intended for correctness rather than
/// speed.
///
/// Fails with kInvalidArgument on sort errors, unbound variables, and
/// references to attribute columns the tree lacks.  A *label* that no
/// node carries is not an error: lab(x, sigma) is simply false
/// everywhere.
Result<bool> EvalTreeFormula(const Tree& tree, const Formula& formula,
                             const NodeEnv& env = {});

/// Evaluates a sentence (no free variables).
Result<bool> EvalTreeSentence(const Tree& tree, const Formula& formula);

/// Evaluates a binary selector formula phi(x, y) with `x` bound to
/// `origin`: returns all nodes v with t |= phi(origin, v), in document
/// order.  This is the node-selection primitive behind atp(phi, q)
/// (Section 3) and the XPath abstraction (Section 2.3).
///
/// `formula` must have free variables a subset of {x, y}.
Result<std::vector<NodeId>> SelectNodes(const Tree& tree,
                                        const Formula& formula, NodeId origin,
                                        const std::string& x = "x",
                                        const std::string& y = "y");

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_TREE_EVAL_H_
