#ifndef TREEWALK_LOGIC_FORMULA_H_
#define TREEWALK_LOGIC_FORMULA_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/data_value.h"
#include "src/common/status.h"

namespace treewalk {

/// A term in a formula.  Terms are two-sorted:
///   - node-sorted: a variable in a tree formula;
///   - data-sorted: a variable in a store formula, an integer or string
///     constant, val(a, x) in a tree formula, or attr(a) — the value of
///     attribute a at the automaton's current node — in a store formula.
/// Sort-correct usage is checked by ValidateTreeFormula /
/// ValidateStoreFormula, not by the type system.
struct Term {
  enum class Kind {
    kVar,          ///< variable (node- or data-sorted by context)
    kIntConst,     ///< integer data constant
    kStrConst,     ///< string data constant (resolved via ValueInterner)
    kAttrOfVar,    ///< val(attr, var): attribute of a node variable
    kCurrentAttr,  ///< attr(name): attribute of the current node
  };

  static Term Var(std::string name);
  static Term Int(DataValue value);
  static Term Str(std::string text);
  static Term AttrOf(std::string attr, std::string var);
  static Term CurrentAttr(std::string attr);

  bool IsData() const { return kind != Kind::kVar; }

  Kind kind = Kind::kVar;
  std::string var;    ///< kVar, kAttrOfVar
  std::string attr;   ///< kAttrOfVar, kCurrentAttr
  DataValue value = 0;  ///< kIntConst
  std::string text;   ///< kStrConst

  friend bool operator==(const Term&, const Term&) = default;
};

enum class FormulaKind {
  kTrue,
  kFalse,
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kExists,
  kForall,
  kAtom,
};

/// Atom shapes.  The tree atoms realize the vocabulary tau_{Sigma,A} of
/// Section 2.2 plus the extra FO(exists*) predicates of Section 2.3; the
/// store atoms realize the register-manipulation logic of Section 3.
enum class AtomKind {
  kEdge,        ///< E(x, y): y is a child of x
  kSibling,     ///< sib(x, y): x before y among children of one parent
  kDescendant,  ///< desc(x, y): y is a strict descendant of x
  kLabel,       ///< lab(x, sigma)
  kRoot,        ///< root(x)
  kLeaf,        ///< leaf(x)
  kFirst,       ///< first(x): x is a first child
  kLast,        ///< last(x): x is a last child
  kSucc,        ///< succ(x, y): y is the right sibling of x
  kEq,          ///< t1 = t2 (node equality or data equality by sort)
  kRelation,    ///< X(t1, ..., tk): store relation membership
};

class Formula;
using FormulaPtr = std::shared_ptr<const class FormulaNode>;

/// Immutable AST node.  Build through the Formula factories.
class FormulaNode {
 public:
  FormulaKind kind;
  std::vector<Formula> children;  ///< 1 for kNot, 2 for binary connectives,
                                  ///< 1 for quantifiers
  std::string var;                ///< quantified variable
  AtomKind atom = AtomKind::kEq;
  std::string symbol;             ///< kLabel label name / kRelation name
  std::vector<Term> terms;        ///< atom arguments
};

/// Value-semantics handle to an immutable formula tree.
///
/// Construction:
///   Formula f = Formula::Exists("y",
///       Formula::And(Formula::Desc("x", "y"), Formula::Leaf("y")));
/// or via ParseFormula() in parser.h.
class Formula {
 public:
  /// An invalid (empty) handle; using it in evaluation is a bug.
  Formula() = default;

  bool valid() const { return node_ != nullptr; }
  const FormulaNode& node() const { return *node_; }

  // --- Constants and connectives. -----------------------------------
  static Formula True();
  static Formula False();
  static Formula Not(Formula f);
  static Formula And(Formula a, Formula b);
  static Formula Or(Formula a, Formula b);
  static Formula Implies(Formula a, Formula b);
  static Formula Iff(Formula a, Formula b);
  static Formula Exists(std::string var, Formula body);
  static Formula Forall(std::string var, Formula body);
  /// Conjunction of a list (True when empty).
  static Formula AndAll(const std::vector<Formula>& fs);
  /// Disjunction of a list (False when empty).
  static Formula OrAll(const std::vector<Formula>& fs);

  // --- Tree atoms. ---------------------------------------------------
  static Formula Edge(std::string x, std::string y);
  static Formula Sibling(std::string x, std::string y);
  static Formula Descendant(std::string x, std::string y);
  static Formula Label(std::string x, std::string label);
  static Formula Root(std::string x);
  static Formula Leaf(std::string x);
  static Formula First(std::string x);
  static Formula Last(std::string x);
  static Formula Succ(std::string x, std::string y);

  // --- Equality and store atoms. -------------------------------------
  static Formula Eq(Term a, Term b);
  /// Node equality shorthand.
  static Formula VarEq(std::string x, std::string y);
  static Formula Relation(std::string name, std::vector<Term> args);

  // --- Inspection. ----------------------------------------------------
  /// Free variables, sorted.
  std::set<std::string> FreeVariables() const;
  /// True if the formula is a (possibly empty) block of existential
  /// quantifiers over a quantifier-free body: the FO(exists*) fragment.
  bool IsExistentialPrenex() const;
  /// Number of AST nodes.
  std::size_t Size() const;
  /// Names of store relations mentioned in kRelation atoms, sorted.
  /// Tree-vocabulary formulas (all atp() selectors) mention none; the
  /// interpreter's selector cache uses this to fingerprint exactly the
  /// store slice a selector could observe.
  std::set<std::string> RelationNames() const;
  /// Order-insensitive-to-sharing structural hash: equal ASTs hash
  /// equally even when built from distinct nodes.  Stable within a
  /// process; used as a selector identity in caches.
  std::uint64_t StructuralHash() const;
  /// Renders in the syntax accepted by ParseFormula().
  std::string ToString() const;

  friend bool operator==(const Formula& a, const Formula& b) {
    return a.node_ == b.node_;
  }

 private:
  explicit Formula(FormulaPtr node) : node_(std::move(node)) {}
  static Formula Make(FormulaNode node);

  FormulaPtr node_;
};

/// Checks that `f` is a well-formed formula over the tree vocabulary: no
/// store-relation atoms, no attr(.) terms, equality only between two node
/// terms or two data terms.
Status ValidateTreeFormula(const Formula& f);

/// Checks that `f` is a well-formed store formula: only kRelation / kEq
/// atoms with data-sorted terms (variables, constants, attr(.)); relation
/// arities must match `arity(name)` (pass the store's lookup).  No tree
/// atoms.
Status ValidateStoreFormula(
    const Formula& f,
    const std::function<int(const std::string&)>& arity);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_FORMULA_H_
