#ifndef TREEWALK_LOGIC_BITSET_EVAL_H_
#define TREEWALK_LOGIC_BITSET_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tree/axis_index.h"
#include "src/tree/interval_matrix.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Set-at-a-time evaluation machine behind src/logic/compile.h: a
/// formula compiles into a DAG of operations over bitset satisfier
/// sets.  Each op produces one of three value shapes —
///
///   Bool          a closed subformula's truth value,
///   NodeSet       {u : t |= phi(u)} for a one-free-variable subformula,
///   NodeMatrix    {(u, v) : t |= phi(u, v)} for two free variables
///                 (rows = the variable with the smaller compile slot),
///
/// — so every connective and quantifier is an O(n/64) or O(n^2/64)
/// word-parallel pass (kCompose, the existential join, is O(n^3/64)
/// worst case).  Shapes and variable bookkeeping live entirely in the
/// compiler; the ops here are shape-correct by construction.
///
/// The Mat shape has two interchangeable carriers, chosen per
/// compilation by AxisRepr (src/tree/axis_index.h): dense NodeMatrix
/// rows, or span-compressed IntervalMatrix rows
/// (src/tree/interval_matrix.h) whose axis loads, range algebra, and
/// guarded joins stay O(n·spans) instead of O(n^2) — the representation
/// that reaches million-node trees.  A compilation is homogeneous: all
/// Mat-shaped ops of one program carry the same representation.
enum class OpKind : std::uint8_t {
  kConstBool,   ///< literal truth value
  kLoadSet,     ///< precomputed NodeSet (axis-index unary predicate)
  kLoadMat,     ///< precomputed NodeMatrix (axis relation)
  kNotBool,     ///< !a
  kAndBool,     ///< a && b
  kOrBool,      ///< a || b
  kNotSet,      ///< complement over Dom(t)
  kAndSet,      ///< intersection
  kOrSet,       ///< union
  kNotMat,      ///< complement over Dom(t)^2
  kAndMat,      ///< intersection
  kOrMat,       ///< union
  kBoolToSet,   ///< Bool -> full / empty NodeSet
  kSetToMatRow, ///< Set s -> Mat M with M[u][v] = s[u]
  kSetToMatCol, ///< Set s -> Mat M with M[u][v] = s[v]
  kAnyRow,      ///< Mat -> Set: {u : exists v M[u][v]} (exists on cols)
  kAllRow,      ///< Mat -> Set: {u : forall v M[u][v]} (forall on cols)
  kAnySet,      ///< Set -> Bool: nonempty
  kAllSet,      ///< Set -> Bool: full
  kCompose,     ///< Mats P, Q (opt. Set guard C) -> Mat R:
                ///< R[u][v] = exists w P[u][w] & Q[v][w] & (c < 0 || C[w])
};

struct Op {
  OpKind kind = OpKind::kConstBool;
  int a = -1;  ///< first operand op index
  int b = -1;  ///< second operand op index
  /// kCompose: op index of an optional Set-shaped guard on the joined
  /// variable w, or -1 for an unguarded join.  Folding the quantified
  /// variable's unary constraints here (instead of broadcasting them to
  /// a matrix and intersecting) is what keeps interval joins narrow.
  int c = -1;
  bool literal = false;  ///< kConstBool
  /// kSetToMatRow/kSetToMatCol: produce an IntervalMatrix broadcast
  /// instead of a dense one (the compiler sets this under kInterval).
  bool interval = false;
  std::shared_ptr<const NodeSet> set;     ///< kLoadSet
  std::shared_ptr<const NodeMatrix> mat;  ///< kLoadMat (dense repr)
  std::shared_ptr<const IntervalMatrix> imat;  ///< kLoadMat (interval repr)
};

/// One evaluated op result; exactly one field is active per the op's
/// shape (Mat-shaped values carry `mat` or `imat`, never both).  Loads
/// alias their precomputed payload, so evaluating a program allocates
/// only for derived ops.
struct OpValue {
  bool b = false;
  std::shared_ptr<const NodeSet> set;
  std::shared_ptr<const NodeMatrix> mat;
  std::shared_ptr<const IntervalMatrix> imat;
};

/// Evaluates `ops` (children always precede parents) over a domain of
/// `n` nodes and returns one value per op.  O(total op cost); cannot
/// fail on well-formed programs (the compiler guarantees shape
/// correctness, enforced here by assertions).
std::vector<OpValue> EvaluateOps(const std::vector<Op>& ops, std::size_t n);

/// Governed variant: each derived-op allocation is charged against the
/// governor's memory budget under MemoryCategory::kCompiledOps before
/// allocating, and the deadline is polled between ops (a single op is
/// at most O(n^3/64)).  The transient evaluation charges are released on
/// return — the caller deep-copies what it keeps and accounts for that
/// copy itself — so what this bounds is the peak footprint of one
/// evaluation.  With a null governor this is exactly EvaluateOps.
Result<std::vector<OpValue>> EvaluateOpsGoverned(const std::vector<Op>& ops,
                                                 std::size_t n,
                                                 ResourceGovernor* governor);

/// A binary FO selector phi(x, y) compiled and materialized against one
/// tree: the full relation {(u, v) : t |= phi(u, v)} is computed once
/// (set-at-a-time), after which SelectFrom is a row read — every origin
/// shares the one materialization, unlike the node-at-a-time reference
/// SelectNodes which restarts per origin.  Build with CompileSelector()
/// (src/logic/compile.h).
class CompiledSelector {
 public:
  /// All v with t |= phi(origin, v), in document order.  Equivalent to
  /// SelectNodes(tree, phi, origin); O(n/64 + |result|).  `origin` must
  /// be a valid node of the tree compiled against.
  std::vector<NodeId> SelectFrom(NodeId origin) const;

  /// Number of nodes of the tree this selector was compiled against.
  std::size_t tree_size() const { return n_; }

  /// Approximate heap bytes the materialized payload retains (0 for a
  /// constant, one bitset row for a set, n rows for a matrix, the
  /// descriptor+pool footprint for an interval matrix); what a caller
  /// keeping the selector alive charges its memory budget.
  std::int64_t RetainedBytes() const;

  /// Which matrix representation this selector was compiled under:
  /// kDense or kInterval (never kAuto — resolved at compile time),
  /// reported even when the result degenerated to a set or constant.
  AxisRepr repr() const { return repr_; }

 private:
  friend class Compiler;
  // src/logic/selector_cache.cc: persistent-cache (de)serialization of
  // the materialized payload.
  friend class SelectorCacheCodec;

  /// Which shape the materialized result took: a selector that ignores
  /// one of its variables materializes as a set or a constant.
  enum class Shape : std::uint8_t { kBool, kSetX, kSetY, kMat };

  std::size_t n_ = 0;
  Shape shape_ = Shape::kBool;
  AxisRepr repr_ = AxisRepr::kDense;
  bool literal_ = false;
  std::shared_ptr<const NodeSet> set_;
  std::shared_ptr<const NodeMatrix> mat_;       // rows = x, cols = y
  std::shared_ptr<const IntervalMatrix> imat_;  // same, interval repr
};

/// A sentence compiled and evaluated against one tree.  Build with
/// CompileSentence() (src/logic/compile.h).
class CompiledSentence {
 public:
  bool Eval() const { return value_; }

 private:
  friend class Compiler;
  bool value_ = false;
};

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_BITSET_EVAL_H_
