#ifndef TREEWALK_LOGIC_BITSET_EVAL_H_
#define TREEWALK_LOGIC_BITSET_EVAL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/tree/axis_index.h"
#include "src/tree/tree.h"

namespace treewalk {

/// Set-at-a-time evaluation machine behind src/logic/compile.h: a
/// formula compiles into a DAG of operations over bitset satisfier
/// sets.  Each op produces one of three value shapes —
///
///   Bool          a closed subformula's truth value,
///   NodeSet       {u : t |= phi(u)} for a one-free-variable subformula,
///   NodeMatrix    {(u, v) : t |= phi(u, v)} for two free variables
///                 (rows = the variable with the smaller compile slot),
///
/// — so every connective and quantifier is an O(n/64) or O(n^2/64)
/// word-parallel pass (kCompose, the existential join, is O(n^3/64)
/// worst case).  Shapes and variable bookkeeping live entirely in the
/// compiler; the ops here are shape-correct by construction.
enum class OpKind : std::uint8_t {
  kConstBool,   ///< literal truth value
  kLoadSet,     ///< precomputed NodeSet (axis-index unary predicate)
  kLoadMat,     ///< precomputed NodeMatrix (axis relation)
  kNotBool,     ///< !a
  kAndBool,     ///< a && b
  kOrBool,      ///< a || b
  kNotSet,      ///< complement over Dom(t)
  kAndSet,      ///< intersection
  kOrSet,       ///< union
  kNotMat,      ///< complement over Dom(t)^2
  kAndMat,      ///< intersection
  kOrMat,       ///< union
  kBoolToSet,   ///< Bool -> full / empty NodeSet
  kSetToMatRow, ///< Set s -> Mat M with M[u][v] = s[u]
  kSetToMatCol, ///< Set s -> Mat M with M[u][v] = s[v]
  kAnyRow,      ///< Mat -> Set: {u : exists v M[u][v]} (exists on cols)
  kAllRow,      ///< Mat -> Set: {u : forall v M[u][v]} (forall on cols)
  kAnySet,      ///< Set -> Bool: nonempty
  kAllSet,      ///< Set -> Bool: full
  kCompose,     ///< Mats P, Q -> Mat R: R[u][v] = exists w P[u][w] & Q[v][w]
};

struct Op {
  OpKind kind = OpKind::kConstBool;
  int a = -1;  ///< first operand op index
  int b = -1;  ///< second operand op index
  bool literal = false;                   ///< kConstBool
  std::shared_ptr<const NodeSet> set;     ///< kLoadSet
  std::shared_ptr<const NodeMatrix> mat;  ///< kLoadMat
};

/// One evaluated op result; exactly one field is active per the op's
/// shape.  Loads alias their precomputed payload, so evaluating a
/// program allocates only for derived ops.
struct OpValue {
  bool b = false;
  std::shared_ptr<const NodeSet> set;
  std::shared_ptr<const NodeMatrix> mat;
};

/// Evaluates `ops` (children always precede parents) over a domain of
/// `n` nodes and returns one value per op.  O(total op cost); cannot
/// fail on well-formed programs (the compiler guarantees shape
/// correctness, enforced here by assertions).
std::vector<OpValue> EvaluateOps(const std::vector<Op>& ops, std::size_t n);

/// Governed variant: each derived-op allocation is charged against the
/// governor's memory budget under MemoryCategory::kCompiledOps before
/// allocating, and the deadline is polled between ops (a single op is
/// at most O(n^3/64)).  The transient evaluation charges are released on
/// return — the caller deep-copies what it keeps and accounts for that
/// copy itself — so what this bounds is the peak footprint of one
/// evaluation.  With a null governor this is exactly EvaluateOps.
Result<std::vector<OpValue>> EvaluateOpsGoverned(const std::vector<Op>& ops,
                                                 std::size_t n,
                                                 ResourceGovernor* governor);

/// A binary FO selector phi(x, y) compiled and materialized against one
/// tree: the full relation {(u, v) : t |= phi(u, v)} is computed once
/// (set-at-a-time), after which SelectFrom is a row read — every origin
/// shares the one materialization, unlike the node-at-a-time reference
/// SelectNodes which restarts per origin.  Build with CompileSelector()
/// (src/logic/compile.h).
class CompiledSelector {
 public:
  /// All v with t |= phi(origin, v), in document order.  Equivalent to
  /// SelectNodes(tree, phi, origin); O(n/64 + |result|).  `origin` must
  /// be a valid node of the tree compiled against.
  std::vector<NodeId> SelectFrom(NodeId origin) const;

  /// Number of nodes of the tree this selector was compiled against.
  std::size_t tree_size() const { return n_; }

  /// Approximate heap bytes the materialized payload retains (0 for a
  /// constant, one bitset row for a set, n rows for a matrix); what a
  /// caller keeping the selector alive charges its memory budget.
  std::int64_t RetainedBytes() const;

 private:
  friend class Compiler;

  /// Which shape the materialized result took: a selector that ignores
  /// one of its variables materializes as a set or a constant.
  enum class Shape : std::uint8_t { kBool, kSetX, kSetY, kMat };

  std::size_t n_ = 0;
  Shape shape_ = Shape::kBool;
  bool literal_ = false;
  std::shared_ptr<const NodeSet> set_;
  std::shared_ptr<const NodeMatrix> mat_;  // rows = x, cols = y
};

/// A sentence compiled and evaluated against one tree.  Build with
/// CompileSentence() (src/logic/compile.h).
class CompiledSentence {
 public:
  bool Eval() const { return value_; }

 private:
  friend class Compiler;
  bool value_ = false;
};

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_BITSET_EVAL_H_
