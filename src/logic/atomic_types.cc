#include "src/logic/atomic_types.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

namespace {

std::int64_t OrderCode(std::size_t a, std::size_t b) {
  if (a == b) return static_cast<std::int64_t>(OrderRel::kEqual);
  if (a + 1 == b) return static_cast<std::int64_t>(OrderRel::kPredecessor);
  if (b + 1 == a) return static_cast<std::int64_t>(OrderRel::kSuccessor);
  return a < b ? static_cast<std::int64_t>(OrderRel::kFarLess)
               : static_cast<std::int64_t>(OrderRel::kFarGreater);
}

}  // namespace

AtomicType AtomicTypeOf(const std::vector<DataValue>& s,
                        const std::vector<DataValue>& domain,
                        const std::vector<std::size_t>& positions) {
  const std::size_t k = positions.size();
  AtomicType type;
  type.reserve(3 * k + k * (k - 1) / 2);

  for (std::size_t i = 0; i < k; ++i) {
    std::size_t p = positions[i];
    assert(p < s.size());
    // Value code: index into `domain` if present, otherwise
    // |domain| + index of the first tuple slot with an equal value.
    DataValue v = s[p];
    auto it = std::find(domain.begin(), domain.end(), v);
    std::int64_t code;
    if (it != domain.end()) {
      code = static_cast<std::int64_t>(it - domain.begin());
    } else {
      std::size_t first = i;
      for (std::size_t j = 0; j < i; ++j) {
        if (s[positions[j]] == v) {
          first = j;
          break;
        }
      }
      code = static_cast<std::int64_t>(domain.size() + first);
    }
    type.push_back(code);
    type.push_back(p == 0 ? 1 : 0);             // root / first position
    type.push_back(p + 1 == s.size() ? 1 : 0);  // leaf / last position
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 1; j < k; ++j) {
      type.push_back(OrderCode(positions[i], positions[j]));
    }
  }
  return type;
}

TypeSet AtomicTypeSet(const std::vector<DataValue>& s, int k,
                      const std::vector<DataValue>& domain,
                      const std::vector<std::size_t>& constants) {
  assert(k >= 0);
  TypeSet types;
  if (s.empty()) return types;

  std::vector<std::size_t> tuple(constants.begin(), constants.end());
  tuple.resize(constants.size() + static_cast<std::size_t>(k), 0);

  if (k == 0) {
    types.insert(AtomicTypeOf(s, domain, tuple));
    return types;
  }

  // Odometer over the k free positions.
  while (true) {
    types.insert(AtomicTypeOf(s, domain, tuple));
    std::size_t slot = tuple.size() - 1;
    while (true) {
      if (++tuple[slot] < s.size()) break;
      tuple[slot] = 0;
      if (slot == constants.size()) return types;  // full wrap-around
      --slot;
    }
  }
}

bool KEquivalent(const std::vector<DataValue>& s1,
                 const std::vector<DataValue>& s2, int k,
                 const std::vector<DataValue>& domain) {
  return AtomicTypeSet(s1, k, domain) == AtomicTypeSet(s2, k, domain);
}

std::uint64_t TypeSetFingerprint(const TypeSet& types) {
  // FNV-1a over a canonical serialization (the set iterates in sorted
  // order, so the fingerprint is deterministic).
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (v >> (8 * byte)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  for (const AtomicType& type : types) {
    mix(0xfeedface);  // type delimiter
    mix(type.size());
    for (std::int64_t v : type) mix(static_cast<std::uint64_t>(v));
  }
  return hash;
}

}  // namespace treewalk
