#ifndef TREEWALK_LOGIC_COMPILE_H_
#define TREEWALK_LOGIC_COMPILE_H_

#include <string>

#include "src/common/result.h"
#include "src/logic/bitset_eval.h"
#include "src/logic/formula.h"
#include "src/tree/axis_index.h"

namespace treewalk {

/// Set-at-a-time compilation of FO tree formulas (docs/EVALUATOR.md).
///
/// A formula is normalized (NNF via ToNegationNormalForm), variables are
/// assigned scope-ordered slots, and each subformula becomes one op in a
/// hash-consed DAG over bitset satisfier sets: atoms load unary
/// predicate sets and axis relation matrices from the AxisIndex,
/// connectives are word-parallel set algebra, and quantifiers are
/// OR/AND-reductions along the quantified axis (with miniscoping and a
/// guarded-join composition for the one extra existential variable the
/// width-2 representation cannot hold directly).  Evaluating the DAG
/// once materializes the full satisfier relation; SelectFrom(origin) is
/// then an O(n/64) row read per origin instead of an O(n^depth)
/// recursive scan.
///
/// Compilation is *partial*: formulas whose subformulas need three or
/// more simultaneous free variables (after miniscoping and the guarded
/// join), empty trees, and ill-formed inputs return a non-OK status.
/// Callers fall back to the reference SelectNodes / EvalTreeFormula,
/// which also reproduces the reference error behavior exactly; the
/// compiled path never diverges from the oracle, it only declines.
///
/// Results are self-contained copies: the AxisIndex and Tree need only
/// outlive the CompileSelector/CompileSentence call itself, not the
/// returned object.  Compile once per (selector, tree); reuse across
/// origins.

/// Compiles a binary selector phi(x, y) against the tree behind `index`.
/// Free variables must be within {x, y} (either may be unused).
///
/// `repr` picks the Mat-shape carrier for the whole compilation: dense
/// NodeMatrix rows or interval-encoded rows (kAuto resolves by tree
/// size, see ResolveAxisRepr).  Both produce byte-identical SelectFrom
/// answers; they differ only in space (O(n^2) vs O(n·spans)) and in
/// which op costs dominate.
Result<CompiledSelector> CompileSelector(const AxisIndex& index,
                                         const Formula& formula,
                                         const std::string& x = "x",
                                         const std::string& y = "y",
                                         AxisRepr repr = AxisRepr::kAuto);

/// Compiles and evaluates a sentence (no free variables).
Result<CompiledSentence> CompileSentence(const AxisIndex& index,
                                         const Formula& formula,
                                         AxisRepr repr = AxisRepr::kAuto);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_COMPILE_H_
