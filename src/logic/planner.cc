#include "src/logic/planner.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace treewalk {
namespace {

/// Selectivity estimate for one subformula: the fraction of assignments
/// (over its free variables) that satisfy it.
struct Est {
  double selectivity = 0.0;
  int free_vars = 0;
  bool exact = false;
};

double Clamp01(double s) { return std::min(1.0, std::max(0.0, s)); }

/// Average per-label population when the planner only has aggregate
/// stats (TreeStats carries counts by Symbol, not by name, so a label
/// atom is estimated at the mean label frequency rather than resolved
/// exactly; docs/PLANNER.md discusses the trade).
double AvgLabelCount(const TreeStats& stats) {
  if (stats.label_counts.empty()) return static_cast<double>(stats.nodes);
  return static_cast<double>(stats.nodes) /
         static_cast<double>(stats.label_counts.size());
}

double AvgAttrDistinct(const TreeStats& stats) {
  if (stats.attr_distinct.empty()) return 1.0;
  double total = 0.0;
  for (std::int64_t d : stats.attr_distinct) {
    total += static_cast<double>(std::max<std::int64_t>(d, 1));
  }
  return total / static_cast<double>(stats.attr_distinct.size());
}

/// Short operator label for the explain rendering: atoms print in full
/// (they are short), connectives print their kind plus the quantified
/// variable where there is one.
std::string OpLabel(const Formula& f) {
  const FormulaNode& node = f.node();
  switch (node.kind) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kNot:
      return "not";
    case FormulaKind::kAnd:
      return "and";
    case FormulaKind::kOr:
      return "or";
    case FormulaKind::kImplies:
      return "implies";
    case FormulaKind::kIff:
      return "iff";
    case FormulaKind::kExists:
      return "exists " + node.var;
    case FormulaKind::kForall:
      return "forall " + node.var;
    case FormulaKind::kAtom:
      return f.ToString();
  }
  return "?";
}

Est EstimateAtom(const FormulaNode& node, const TreeStats& stats) {
  const double n = static_cast<double>(stats.nodes);
  const double pairs = n * n;
  Est est;
  est.exact = true;
  switch (node.atom) {
    case AtomKind::kEdge:
      est.selectivity = static_cast<double>(stats.edges) / pairs;
      break;
    case AtomKind::kDescendant:
      est.selectivity = static_cast<double>(stats.sum_depths) / pairs;
      break;
    case AtomKind::kSibling:
      est.selectivity = static_cast<double>(stats.sib_pairs) / pairs;
      break;
    case AtomKind::kSucc:
      est.selectivity = static_cast<double>(stats.succ_pairs) / pairs;
      break;
    case AtomKind::kLabel:
      est.selectivity = AvgLabelCount(stats) / n;
      est.exact = false;  // aggregate, not per-name
      break;
    case AtomKind::kRoot:
      est.selectivity = 1.0 / n;
      break;
    case AtomKind::kLeaf:
      est.selectivity = static_cast<double>(stats.leaves) / n;
      break;
    case AtomKind::kFirst:
    case AtomKind::kLast:
      // Every internal node has exactly one first and one last child.
      est.selectivity = static_cast<double>(stats.parents) / n;
      break;
    case AtomKind::kEq: {
      const bool node_eq =
          node.terms.size() == 2 && !node.terms[0].IsData() &&
          !node.terms[1].IsData();
      if (node_eq) {
        est.selectivity = 1.0 / n;  // the diagonal of Dom^2
      } else {
        // Data equality under a uniform-values assumption: one value
        // out of the average distinct-count per column.
        est.selectivity = 1.0 / AvgAttrDistinct(stats);
        est.exact = false;
      }
      break;
    }
    case AtomKind::kRelation:
      est.selectivity = 0.5;  // store contents are invisible to stats
      est.exact = false;
      break;
  }
  est.selectivity = Clamp01(est.selectivity);
  return est;
}

/// Recursive cardinality estimator.  Exact at the tree-axis atom leaves
/// (TreeStats holds their closed-form counts); independence-style
/// algebra above.  Appends one OperatorEstimate per subformula in
/// pre-order.
Est Estimate(const Formula& f, const TreeStats& stats, int depth,
             std::vector<OperatorEstimate>* out) {
  const FormulaNode& node = f.node();
  const double n = static_cast<double>(stats.nodes);
  const std::size_t slot = out->size();
  out->push_back(OperatorEstimate{OpLabel(f), depth, 0.0, 0.0, false});

  Est est;
  est.free_vars = static_cast<int>(f.FreeVariables().size());
  switch (node.kind) {
    case FormulaKind::kTrue:
      est.selectivity = 1.0;
      est.exact = true;
      break;
    case FormulaKind::kFalse:
      est.selectivity = 0.0;
      est.exact = true;
      break;
    case FormulaKind::kAtom:
      est = EstimateAtom(node, stats);
      est.free_vars = static_cast<int>(f.FreeVariables().size());
      break;
    case FormulaKind::kNot: {
      const Est a = Estimate(node.children[0], stats, depth + 1, out);
      est.selectivity = 1.0 - a.selectivity;
      break;
    }
    case FormulaKind::kAnd: {
      const Est a = Estimate(node.children[0], stats, depth + 1, out);
      const Est b = Estimate(node.children[1], stats, depth + 1, out);
      est.selectivity = a.selectivity * b.selectivity;
      break;
    }
    case FormulaKind::kOr: {
      const Est a = Estimate(node.children[0], stats, depth + 1, out);
      const Est b = Estimate(node.children[1], stats, depth + 1, out);
      est.selectivity =
          a.selectivity + b.selectivity - a.selectivity * b.selectivity;
      break;
    }
    case FormulaKind::kImplies: {
      const Est a = Estimate(node.children[0], stats, depth + 1, out);
      const Est b = Estimate(node.children[1], stats, depth + 1, out);
      est.selectivity = 1.0 - a.selectivity * (1.0 - b.selectivity);
      break;
    }
    case FormulaKind::kIff: {
      const Est a = Estimate(node.children[0], stats, depth + 1, out);
      const Est b = Estimate(node.children[1], stats, depth + 1, out);
      est.selectivity = a.selectivity * b.selectivity +
                        (1.0 - a.selectivity) * (1.0 - b.selectivity);
      break;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      const Est body = Estimate(node.children[0], stats, depth + 1, out);
      // Independence across the n candidate witnesses: exists succeeds
      // unless all n fail; forall needs all n to succeed.  log1p keeps
      // (1 - s)^n stable for tiny s and large n.
      const double s = Clamp01(body.selectivity);
      if (n <= 0) {
        est.selectivity = node.kind == FormulaKind::kForall ? 1.0 : 0.0;
      } else if (node.kind == FormulaKind::kExists) {
        est.selectivity = -std::expm1(n * std::log1p(-std::min(s, 1.0 - 1e-12)));
      } else {
        est.selectivity = std::exp(n * std::log(std::max(s, 1e-12)));
      }
      break;
    }
  }
  est.selectivity = Clamp01(est.selectivity);

  OperatorEstimate& slot_ref = (*out)[slot];
  const double domain = std::pow(std::max(n, 1.0), est.free_vars);
  slot_ref.selectivity = est.selectivity;
  slot_ref.rows = est.selectivity * domain;
  slot_ref.exact = est.exact;
  return est;
}

struct FeatureWalk {
  FormulaFeatures* feat;
  void Walk(const Formula& f, int q_depth, int neg_depth) {
    const FormulaNode& node = f.node();
    ++feat->size;
    feat->width = std::max(
        feat->width, static_cast<int>(f.FreeVariables().size()));
    switch (node.kind) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        break;
      case FormulaKind::kAtom:
        ++feat->atoms;
        switch (node.atom) {
          case AtomKind::kEdge:
            ++feat->edge_atoms;
            break;
          case AtomKind::kDescendant:
            ++feat->desc_atoms;
            break;
          case AtomKind::kSibling:
            ++feat->sib_atoms;
            break;
          case AtomKind::kSucc:
            ++feat->succ_atoms;
            break;
          case AtomKind::kLabel:
            ++feat->label_atoms;
            break;
          case AtomKind::kRoot:
          case AtomKind::kLeaf:
          case AtomKind::kFirst:
          case AtomKind::kLast:
            ++feat->unary_atoms;
            break;
          case AtomKind::kEq: {
            const bool node_eq = node.terms.size() == 2 &&
                                 !node.terms[0].IsData() &&
                                 !node.terms[1].IsData();
            if (node_eq) {
              ++feat->node_eq_atoms;
            } else {
              ++feat->data_atoms;
            }
            break;
          }
          case AtomKind::kRelation:
            break;
        }
        break;
      case FormulaKind::kNot:
        feat->negation_depth = std::max(feat->negation_depth, neg_depth + 1);
        Walk(node.children[0], q_depth, neg_depth + 1);
        return;
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies:
      case FormulaKind::kIff:
        if (node.kind == FormulaKind::kOr) ++feat->or_count;
        if (node.kind == FormulaKind::kImplies) ++feat->implies_count;
        if (node.kind == FormulaKind::kIff) ++feat->iff_count;
        Walk(node.children[0], q_depth, neg_depth);
        Walk(node.children[1], q_depth, neg_depth);
        return;
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        ++feat->quantifiers;
        if (node.kind == FormulaKind::kExists) {
          ++feat->exists_count;
        } else {
          ++feat->forall_count;
        }
        feat->quantifier_depth = std::max(feat->quantifier_depth, q_depth + 1);
        Walk(node.children[0], q_depth + 1, neg_depth);
        return;
    }
  }
};

/// True if the top-level structure (through the outer existential block
/// and positive conjunctions) contains a desc or E atom — the shape the
/// reference evaluator's range planner turns into subtree/children
/// enumeration instead of a whole-tree scan.
bool HasRangeGuard(const Formula& f) {
  const FormulaNode& node = f.node();
  switch (node.kind) {
    case FormulaKind::kExists:
      return HasRangeGuard(node.children[0]);
    case FormulaKind::kAnd:
      return HasRangeGuard(node.children[0]) ||
             HasRangeGuard(node.children[1]);
    case FormulaKind::kAtom:
      return node.atom == AtomKind::kDescendant ||
             node.atom == AtomKind::kEdge;
    default:
      return false;
  }
}

}  // namespace

const char* PlanStrategyName(PlanStrategy s) {
  switch (s) {
    case PlanStrategy::kReference:
      return "reference";
    case PlanStrategy::kCompiledDense:
      return "compiled-dense";
    case PlanStrategy::kCompiledInterval:
      return "compiled-interval";
    case PlanStrategy::kXPathDirect:
      return "xpath-direct";
  }
  return "?";
}

FormulaFeatures AnalyzeFormula(const Formula& f) {
  FormulaFeatures feat;
  if (!f.valid()) return feat;
  FeatureWalk{&feat}.Walk(f, 0, 0);
  feat.has_range_guard = HasRangeGuard(f);
  return feat;
}

SelectorPlan PlanSelector(const TreeStats& stats, const Formula& selector,
                          const PlannerCalibration& cal,
                          const PlanOptions& opts) {
  SelectorPlan plan;
  if (!selector.valid() || stats.nodes <= 0) {
    plan.strategy = PlanStrategy::kReference;
    return plan;
  }
  plan.features = AnalyzeFormula(selector);
  const FormulaFeatures& feat = plan.features;

  const double n = static_cast<double>(stats.nodes);
  const double words = std::max(1.0, std::ceil(n / 64.0));
  const double ops = std::max(1, feat.size);
  const double atoms = std::max(1, feat.atoms);
  const double origins =
      opts.expected_origins >= 0.0 ? std::max(1.0, opts.expected_origins) : n;

  const Est whole =
      Estimate(selector, stats, 0, &plan.operators);
  plan.estimated_rows = plan.operators.empty() ? 0.0 : plan.operators[0].rows;
  (void)whole;

  // --- Reference: per-origin recursive search. ----------------------
  // Each origin enumerates candidate y (the full tree, or the guard's
  // average match count when the range planner applies) and pays the n
  // candidates of every quantifier on top.
  double effective_y = n;
  if (feat.has_range_guard) {
    // desc guards bound y to the origin's subtree (avg = sum_depths/n
    // matches per origin); E guards to its children (avg fanout).  Use
    // whichever guard shape is present, preferring the tighter E.
    const double avg_desc = static_cast<double>(stats.sum_depths) / n;
    const double avg_edge = static_cast<double>(stats.edges) / n;
    effective_y =
        std::max(1.0, feat.edge_atoms > 0 ? avg_edge : avg_desc);
  }
  plan.cost_reference = cal.reference_visit_cost * origins * atoms *
                        effective_y * std::pow(n, feat.quantifiers);

  // --- Compiled paths: build the satisfier DAG once, then one row
  // read per origin. ------------------------------------------------
  const double compile_overhead = cal.compile_op_cost * ops;
  plan.cost_dense =
      cal.dense_word_cost * (ops * n * words + origins * words) +
      compile_overhead;
  // Interval rows start at one span per row for every tau axis; each
  // disjunction can only widen rows.
  const double spans = 1.0 + static_cast<double>(feat.or_count);
  plan.cost_interval =
      cal.interval_span_cost * (ops * n * spans + origins * spans) +
      compile_overhead;

  // --- XPath direct (only when the selector arrived as a path). -----
  if (opts.offer_xpath) {
    const double steps = std::max(1, opts.xpath_steps);
    plan.cost_xpath = cal.xpath_step_cost * steps * n * origins;
  }

  const bool dense_allowed = opts.forced_repr != AxisRepr::kInterval;
  const bool interval_allowed = opts.forced_repr != AxisRepr::kDense;

  // Deterministic argmin with a fixed preference order for exact ties:
  // reference, dense, interval, xpath.
  plan.strategy = PlanStrategy::kReference;
  plan.repr = AxisRepr::kAuto;
  double best = plan.cost_reference;
  if (dense_allowed && plan.cost_dense < best) {
    best = plan.cost_dense;
    plan.strategy = PlanStrategy::kCompiledDense;
    plan.repr = AxisRepr::kDense;
  }
  if (interval_allowed && plan.cost_interval < best) {
    best = plan.cost_interval;
    plan.strategy = PlanStrategy::kCompiledInterval;
    plan.repr = AxisRepr::kInterval;
  }
  if (opts.offer_xpath && plan.cost_xpath >= 0.0 && plan.cost_xpath < best) {
    best = plan.cost_xpath;
    plan.strategy = PlanStrategy::kXPathDirect;
    plan.repr = AxisRepr::kAuto;
  }
  return plan;
}

PlannerCalibration RecalibrateFromMeasurements(
    const PlannerCalibration& base, const SelectorPlan& plan,
    const std::vector<StrategyMeasurement>& measured) {
  PlannerCalibration out = base;
  for (const StrategyMeasurement& m : measured) {
    if (m.nanos <= 0.0) continue;
    double predicted = 0.0;
    double* constant = nullptr;
    switch (m.strategy) {
      case PlanStrategy::kReference:
        predicted = plan.cost_reference;
        constant = &out.reference_visit_cost;
        break;
      case PlanStrategy::kCompiledDense:
        predicted = plan.cost_dense;
        constant = &out.dense_word_cost;
        break;
      case PlanStrategy::kCompiledInterval:
        predicted = plan.cost_interval;
        constant = &out.interval_span_cost;
        break;
      case PlanStrategy::kXPathDirect:
        predicted = plan.cost_xpath;
        constant = &out.xpath_step_cost;
        break;
    }
    if (constant == nullptr || predicted <= 0.0) continue;
    // Geometric half-step toward measured/predicted: repeated runs
    // converge on constants in nanoseconds-per-unit without
    // oscillating on a single noisy sample.
    *constant *= std::sqrt(m.nanos / predicted);
  }
  return out;
}

}  // namespace treewalk
