#ifndef TREEWALK_LOGIC_PARSER_H_
#define TREEWALK_LOGIC_PARSER_H_

#include <string_view>

#include "src/common/result.h"
#include "src/logic/formula.h"

namespace treewalk {

/// Maximum syntactic nesting depth (parentheses, negations, quantifier
/// prefixes, right-nested implications) the formula parser accepts.
/// Deeper input returns kInvalidArgument instead of overflowing the
/// recursive-descent stack (docs/ROBUSTNESS.md).
inline constexpr int kMaxFormulaNestingDepth = 500;

/// Parses the textual formula syntax shared by tree and store formulas.
///
///   formula := iff
///   iff     := imp ('<->' imp)*
///   imp     := or ('->' or)*              (right associative)
///   or      := and ('|' and)*
///   and     := unary ('&' unary)*
///   unary   := '!' unary
///            | ('exists' | 'forall') VAR unary
///            | primary
///   primary := '(' formula ')' | 'true' | 'false' | atom
///   atom    := 'E' '(' VAR ',' VAR ')'
///            | 'sib' '(' VAR ',' VAR ')'       -- sibling order x < y
///            | 'desc' '(' VAR ',' VAR ')'      -- descendant x -< y
///            | 'lab' '(' VAR ',' NAME ')'
///            | ('root'|'leaf'|'first'|'last') '(' VAR ')'
///            | 'succ' '(' VAR ',' VAR ')'
///            | NAME '(' term (',' term)* ')'   -- store relation atom
///            | NAME '(' ')'                     -- nullary relation atom
///            | term ('=' | '!=') term
///   term    := 'val' '(' NAME ',' VAR ')'      -- val_a(x), tree only
///            | 'attr' '(' NAME ')'             -- current node, store only
///            | VAR | INT | STRING
///
/// `!=` desugars to the negated equality.  Names of the built-in
/// predicates are reserved and cannot name relations or variables.
/// The parser is sort-agnostic; run ValidateTreeFormula /
/// ValidateStoreFormula on the result before evaluating.
Result<Formula> ParseFormula(std::string_view source);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_PARSER_H_
