#include "src/logic/formula.h"

#include <cassert>

namespace treewalk {

Term Term::Var(std::string name) {
  Term t;
  t.kind = Kind::kVar;
  t.var = std::move(name);
  return t;
}

Term Term::Int(DataValue value) {
  Term t;
  t.kind = Kind::kIntConst;
  t.value = value;
  return t;
}

Term Term::Str(std::string text) {
  Term t;
  t.kind = Kind::kStrConst;
  t.text = std::move(text);
  return t;
}

Term Term::AttrOf(std::string attr, std::string var) {
  Term t;
  t.kind = Kind::kAttrOfVar;
  t.attr = std::move(attr);
  t.var = std::move(var);
  return t;
}

Term Term::CurrentAttr(std::string attr) {
  Term t;
  t.kind = Kind::kCurrentAttr;
  t.attr = std::move(attr);
  return t;
}

Formula Formula::Make(FormulaNode node) {
  return Formula(std::make_shared<const FormulaNode>(std::move(node)));
}

Formula Formula::True() {
  FormulaNode n;
  n.kind = FormulaKind::kTrue;
  return Make(std::move(n));
}

Formula Formula::False() {
  FormulaNode n;
  n.kind = FormulaKind::kFalse;
  return Make(std::move(n));
}

Formula Formula::Not(Formula f) {
  assert(f.valid());
  FormulaNode n;
  n.kind = FormulaKind::kNot;
  n.children = {std::move(f)};
  return Make(std::move(n));
}

namespace {

FormulaNode BinaryNode(FormulaKind kind, Formula a, Formula b) {
  assert(a.valid() && b.valid());
  FormulaNode n;
  n.kind = kind;
  n.children = {std::move(a), std::move(b)};
  return n;
}

}  // namespace

Formula Formula::And(Formula a, Formula b) {
  return Make(BinaryNode(FormulaKind::kAnd, std::move(a), std::move(b)));
}
Formula Formula::Or(Formula a, Formula b) {
  return Make(BinaryNode(FormulaKind::kOr, std::move(a), std::move(b)));
}
Formula Formula::Implies(Formula a, Formula b) {
  return Make(BinaryNode(FormulaKind::kImplies, std::move(a), std::move(b)));
}
Formula Formula::Iff(Formula a, Formula b) {
  return Make(BinaryNode(FormulaKind::kIff, std::move(a), std::move(b)));
}

Formula Formula::Exists(std::string var, Formula body) {
  assert(body.valid());
  FormulaNode n;
  n.kind = FormulaKind::kExists;
  n.var = std::move(var);
  n.children = {std::move(body)};
  return Make(std::move(n));
}

Formula Formula::Forall(std::string var, Formula body) {
  assert(body.valid());
  FormulaNode n;
  n.kind = FormulaKind::kForall;
  n.var = std::move(var);
  n.children = {std::move(body)};
  return Make(std::move(n));
}

Formula Formula::AndAll(const std::vector<Formula>& fs) {
  if (fs.empty()) return True();
  Formula out = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) out = And(out, fs[i]);
  return out;
}

Formula Formula::OrAll(const std::vector<Formula>& fs) {
  if (fs.empty()) return False();
  Formula out = fs.front();
  for (std::size_t i = 1; i < fs.size(); ++i) out = Or(out, fs[i]);
  return out;
}

namespace {

FormulaNode AtomNode(AtomKind atom, std::vector<Term> terms,
                     std::string symbol = "") {
  FormulaNode n;
  n.kind = FormulaKind::kAtom;
  n.atom = atom;
  n.terms = std::move(terms);
  n.symbol = std::move(symbol);
  return n;
}

}  // namespace

Formula Formula::Edge(std::string x, std::string y) {
  return Make(AtomNode(AtomKind::kEdge, {Term::Var(std::move(x)),
                                    Term::Var(std::move(y))}));
}
Formula Formula::Sibling(std::string x, std::string y) {
  return Make(AtomNode(AtomKind::kSibling,
                  {Term::Var(std::move(x)), Term::Var(std::move(y))}));
}
Formula Formula::Descendant(std::string x, std::string y) {
  return Make(AtomNode(AtomKind::kDescendant,
                  {Term::Var(std::move(x)), Term::Var(std::move(y))}));
}
Formula Formula::Label(std::string x, std::string label) {
  return Make(AtomNode(AtomKind::kLabel, {Term::Var(std::move(x))},
                  std::move(label)));
}
Formula Formula::Root(std::string x) {
  return Make(AtomNode(AtomKind::kRoot, {Term::Var(std::move(x))}));
}
Formula Formula::Leaf(std::string x) {
  return Make(AtomNode(AtomKind::kLeaf, {Term::Var(std::move(x))}));
}
Formula Formula::First(std::string x) {
  return Make(AtomNode(AtomKind::kFirst, {Term::Var(std::move(x))}));
}
Formula Formula::Last(std::string x) {
  return Make(AtomNode(AtomKind::kLast, {Term::Var(std::move(x))}));
}
Formula Formula::Succ(std::string x, std::string y) {
  return Make(AtomNode(AtomKind::kSucc,
                  {Term::Var(std::move(x)), Term::Var(std::move(y))}));
}

Formula Formula::Eq(Term a, Term b) {
  return Make(AtomNode(AtomKind::kEq, {std::move(a), std::move(b)}));
}
Formula Formula::VarEq(std::string x, std::string y) {
  return Eq(Term::Var(std::move(x)), Term::Var(std::move(y)));
}
Formula Formula::Relation(std::string name, std::vector<Term> args) {
  return Make(AtomNode(AtomKind::kRelation, std::move(args), std::move(name)));
}


namespace {

void CollectFree(const Formula& f, std::set<std::string>& bound,
                 std::set<std::string>& free) {
  const FormulaNode& n = f.node();
  switch (n.kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return;
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      for (const Formula& c : n.children) CollectFree(c, bound, free);
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      bool was_bound = bound.count(n.var) > 0;
      bound.insert(n.var);
      CollectFree(n.children[0], bound, free);
      if (!was_bound) bound.erase(n.var);
      return;
    }
    case FormulaKind::kAtom:
      for (const Term& t : n.terms) {
        if ((t.kind == Term::Kind::kVar || t.kind == Term::Kind::kAttrOfVar) &&
            bound.count(t.var) == 0) {
          free.insert(t.var);
        }
      }
      return;
  }
}

bool QuantifierFree(const Formula& f) {
  const FormulaNode& n = f.node();
  if (n.kind == FormulaKind::kExists || n.kind == FormulaKind::kForall) {
    return false;
  }
  for (const Formula& c : n.children) {
    if (!QuantifierFree(c)) return false;
  }
  return true;
}

}  // namespace

std::set<std::string> Formula::FreeVariables() const {
  std::set<std::string> bound, free;
  CollectFree(*this, bound, free);
  return free;
}

bool Formula::IsExistentialPrenex() const {
  const Formula* body = this;
  while (body->node().kind == FormulaKind::kExists) {
    body = &body->node().children[0];
  }
  return QuantifierFree(*body);
}

std::size_t Formula::Size() const {
  std::size_t size = 1;
  for (const Formula& c : node().children) size += c.Size();
  return size;
}

namespace {

void CollectRelationNames(const Formula& f, std::set<std::string>& names) {
  const FormulaNode& n = f.node();
  if (n.kind == FormulaKind::kAtom && n.atom == AtomKind::kRelation) {
    names.insert(n.symbol);
  }
  for (const Formula& c : n.children) CollectRelationNames(c, names);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void HashBytes(std::uint64_t& h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

void HashString(std::uint64_t& h, const std::string& s) {
  std::size_t size = s.size();
  HashBytes(h, &size, sizeof(size));
  HashBytes(h, s.data(), s.size());
}

void HashTerm(std::uint64_t& h, const Term& t) {
  int kind = static_cast<int>(t.kind);
  HashBytes(h, &kind, sizeof(kind));
  HashString(h, t.var);
  HashString(h, t.attr);
  HashBytes(h, &t.value, sizeof(t.value));
  HashString(h, t.text);
}

void HashNode(std::uint64_t& h, const Formula& f) {
  const FormulaNode& n = f.node();
  int kind = static_cast<int>(n.kind);
  HashBytes(h, &kind, sizeof(kind));
  HashString(h, n.var);
  int atom = static_cast<int>(n.atom);
  HashBytes(h, &atom, sizeof(atom));
  HashString(h, n.symbol);
  for (const Term& t : n.terms) HashTerm(h, t);
  for (const Formula& c : n.children) HashNode(h, c);
}

}  // namespace

std::set<std::string> Formula::RelationNames() const {
  std::set<std::string> names;
  if (valid()) CollectRelationNames(*this, names);
  return names;
}

std::uint64_t Formula::StructuralHash() const {
  std::uint64_t h = kFnvOffset;
  if (valid()) HashNode(h, *this);
  return h;
}

namespace {

std::string TermToString(const Term& t) {
  switch (t.kind) {
    case Term::Kind::kVar:
      return t.var;
    case Term::Kind::kIntConst:
      return std::to_string(t.value);
    case Term::Kind::kStrConst:
      return "\"" + t.text + "\"";
    case Term::Kind::kAttrOfVar:
      return "val(" + t.attr + ", " + t.var + ")";
    case Term::Kind::kCurrentAttr:
      return "attr(" + t.attr + ")";
  }
  return "?";
}

std::string AtomToString(const FormulaNode& n) {
  auto arg = [&](std::size_t i) { return TermToString(n.terms[i]); };
  switch (n.atom) {
    case AtomKind::kEdge:
      return "E(" + arg(0) + ", " + arg(1) + ")";
    case AtomKind::kSibling:
      return "sib(" + arg(0) + ", " + arg(1) + ")";
    case AtomKind::kDescendant:
      return "desc(" + arg(0) + ", " + arg(1) + ")";
    case AtomKind::kLabel:
      return "lab(" + arg(0) + ", " + n.symbol + ")";
    case AtomKind::kRoot:
      return "root(" + arg(0) + ")";
    case AtomKind::kLeaf:
      return "leaf(" + arg(0) + ")";
    case AtomKind::kFirst:
      return "first(" + arg(0) + ")";
    case AtomKind::kLast:
      return "last(" + arg(0) + ")";
    case AtomKind::kSucc:
      return "succ(" + arg(0) + ", " + arg(1) + ")";
    case AtomKind::kEq:
      return arg(0) + " = " + arg(1);
    case AtomKind::kRelation: {
      std::string out = n.symbol + "(";
      for (std::size_t i = 0; i < n.terms.size(); ++i) {
        if (i > 0) out += ", ";
        out += TermToString(n.terms[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

void ToStringRec(const Formula& f, std::string& out) {
  const FormulaNode& n = f.node();
  switch (n.kind) {
    case FormulaKind::kTrue:
      out += "true";
      return;
    case FormulaKind::kFalse:
      out += "false";
      return;
    case FormulaKind::kNot:
      out += "!(";
      ToStringRec(n.children[0], out);
      out += ')';
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      const char* op = n.kind == FormulaKind::kAnd       ? " & "
                       : n.kind == FormulaKind::kOr      ? " | "
                       : n.kind == FormulaKind::kImplies ? " -> "
                                                         : " <-> ";
      out += '(';
      ToStringRec(n.children[0], out);
      out += op;
      ToStringRec(n.children[1], out);
      out += ')';
      return;
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      out += n.kind == FormulaKind::kExists ? "exists " : "forall ";
      out += n.var;
      out += ' ';
      ToStringRec(n.children[0], out);
      return;
    case FormulaKind::kAtom:
      out += AtomToString(n);
      return;
  }
}

}  // namespace

std::string Formula::ToString() const {
  std::string out;
  ToStringRec(*this, out);
  return out;
}

namespace {

Status ValidateRec(const Formula& f, bool tree_context,
                   const std::function<int(const std::string&)>* arity) {
  const FormulaNode& n = f.node();
  switch (n.kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return Status::Ok();
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      for (const Formula& c : n.children) {
        TREEWALK_RETURN_IF_ERROR(ValidateRec(c, tree_context, arity));
      }
      return Status::Ok();
    case FormulaKind::kAtom:
      break;
  }

  auto check_node_var = [&](const Term& t) -> Status {
    if (t.kind != Term::Kind::kVar) {
      return InvalidArgument("expected a node variable in atom");
    }
    return Status::Ok();
  };

  if (tree_context) {
    switch (n.atom) {
      case AtomKind::kRelation:
        return InvalidArgument("store relation atom '" + n.symbol +
                               "' in a tree formula");
      case AtomKind::kEq: {
        const Term& a = n.terms[0];
        const Term& b = n.terms[1];
        if (a.kind == Term::Kind::kCurrentAttr ||
            b.kind == Term::Kind::kCurrentAttr) {
          return InvalidArgument("attr(.) term in a tree formula");
        }
        bool a_node = a.kind == Term::Kind::kVar;
        bool b_node = b.kind == Term::Kind::kVar;
        if (a_node != b_node) {
          return InvalidArgument(
              "equality mixes node and data sorts: " + TermToString(a) +
              " = " + TermToString(b));
        }
        return Status::Ok();
      }
      default:
        for (const Term& t : n.terms) {
          TREEWALK_RETURN_IF_ERROR(check_node_var(t));
        }
        return Status::Ok();
    }
  }

  // Store context.
  switch (n.atom) {
    case AtomKind::kEq:
    case AtomKind::kRelation: {
      for (const Term& t : n.terms) {
        if (t.kind == Term::Kind::kAttrOfVar) {
          return InvalidArgument("val(.,.) term in a store formula");
        }
      }
      if (n.atom == AtomKind::kRelation && arity != nullptr) {
        int want = (*arity)(n.symbol);
        if (want < 0) {
          return NotFound("unknown store relation '" + n.symbol + "'");
        }
        if (want != static_cast<int>(n.terms.size())) {
          return InvalidArgument(
              "relation '" + n.symbol + "' has arity " +
              std::to_string(want) + ", used with " +
              std::to_string(n.terms.size()) + " arguments");
        }
      }
      return Status::Ok();
    }
    default:
      return InvalidArgument("tree atom in a store formula");
  }
}

}  // namespace

Status ValidateTreeFormula(const Formula& f) {
  if (!f.valid()) return InvalidArgument("empty formula");
  return ValidateRec(f, /*tree_context=*/true, nullptr);
}

Status ValidateStoreFormula(
    const Formula& f, const std::function<int(const std::string&)>& arity) {
  if (!f.valid()) return InvalidArgument("empty formula");
  return ValidateRec(f, /*tree_context=*/false, &arity);
}

}  // namespace treewalk
