#ifndef TREEWALK_LOGIC_PLANNER_H_
#define TREEWALK_LOGIC_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/logic/formula.h"
#include "src/tree/axis_index.h"
#include "src/tree/tree_stats.h"

namespace treewalk {

/// Cost-based strategy selection for selector evaluation
/// (docs/PLANNER.md).
///
/// The engine has four ways to answer "which nodes satisfy phi(x, y)
/// from origin u":
///   - the reference arena evaluator (per-origin recursive search),
///   - the compiled bitset path with dense NodeMatrix rows,
///   - the compiled bitset path with interval-encoded rows,
///   - the direct XPath evaluator (only when the query arrived as an
///     XPath path rather than a formula).
/// Historically the choice was hard-coded (always compile; dense below
/// kDenseAxisNodeLimit nodes, interval above).  The planner replaces
/// those fixed switches with one decision point: cheap exact tree
/// statistics (TreeStats) plus structural formula features feed a
/// per-strategy cost estimate, and the cheapest strategy wins.
///
/// The planner is advisory about *performance*, never about
/// *correctness*: all strategies agree byte-for-byte (the differential
/// oracle in tests/planner_test.cc holds that line), and a compiled
/// pick that the partial compiler declines at runtime still falls back
/// to the reference evaluator exactly as before.  The planner does not
/// try to predict compiler declines — raw quantifier width is not
/// decidable evidence (miniscoping and the guarded join compile many
/// width-3 formulas), so the runtime fallback stays the safety net.
///
/// Determinism: planning is a pure function of (stats, formula,
/// calibration).  Calibration constants are passed by value or const
/// pointer — there is no global mutable state — so results cannot
/// depend on what other threads ran first.

enum class PlanStrategy {
  kReference = 0,
  kCompiledDense,
  kCompiledInterval,
  kXPathDirect,
};

/// "reference", "compiled-dense", "compiled-interval", "xpath-direct".
const char* PlanStrategyName(PlanStrategy s);

/// Structural features of a selector, extracted in one AST walk.
struct FormulaFeatures {
  int size = 0;             ///< AST nodes
  int atoms = 0;            ///< atom leaves
  int quantifiers = 0;      ///< exists + forall
  int exists_count = 0;
  int forall_count = 0;
  int quantifier_depth = 0; ///< max nesting of quantifiers
  int negation_depth = 0;   ///< max nesting of kNot
  int or_count = 0;         ///< disjunctions (widen interval rows)
  int iff_count = 0;
  int implies_count = 0;
  /// Max simultaneous free variables over all subformulas ("width" of
  /// the *raw* formula; the compiler may still shrink it).
  int width = 0;
  // Axis mix: how many atoms of each shape appear.
  int edge_atoms = 0;
  int desc_atoms = 0;
  int sib_atoms = 0;
  int succ_atoms = 0;
  int label_atoms = 0;
  int unary_atoms = 0;      ///< root/leaf/first/last
  int node_eq_atoms = 0;
  int data_atoms = 0;       ///< equalities over attribute values
  /// A positive desc/E guard at the top level of the (stripped)
  /// existential block — the shape the reference evaluator's range
  /// planner prunes to subtree/children enumeration.
  bool has_range_guard = false;

  friend bool operator==(const FormulaFeatures&,
                         const FormulaFeatures&) = default;
};

FormulaFeatures AnalyzeFormula(const Formula& f);

/// Unit costs, in arbitrary "work units" (roughly: one word of bitset
/// algebra = 1).  The defaults are chosen so that on a span-1 axis
/// workload the dense/interval crossover lands at n = 4096 nodes —
/// exactly the legacy kDenseAxisNodeLimit — making the planner a strict
/// generalization of the old fixed switch.  `twq explain --timing`
/// measures real strategies and prints rescaled constants
/// (RecalibrateFromMeasurements); nothing updates these globally.
struct PlannerCalibration {
  /// Reference evaluator: cost of visiting one node in one atom check.
  double reference_visit_cost = 4.0;
  /// Compiled dense: cost per 64-bit word of row algebra.
  double dense_word_cost = 1.0;
  /// Compiled interval: cost per span per row of range algebra.
  double interval_span_cost = 64.0;
  /// XPath direct: cost per node per location step.
  double xpath_step_cost = 4.0;
  /// One-time compile overhead per op (normalization, hash-consing).
  double compile_op_cost = 32.0;

  friend bool operator==(const PlannerCalibration&,
                         const PlannerCalibration&) = default;
};

/// Cardinality estimate for one subformula, in pre-order; rendered by
/// `twq explain`.
struct OperatorEstimate {
  std::string op;          ///< short operator description
  int depth = 0;           ///< AST depth, for indented rendering
  double rows = 0.0;       ///< estimated satisfier count over free vars
  double selectivity = 0.0;///< rows / domain size
  bool exact = false;      ///< closed-form from TreeStats (atom leaves)
};

struct SelectorPlan {
  PlanStrategy strategy = PlanStrategy::kReference;
  /// Representation to request from the compiler when strategy is a
  /// compiled one (kDense or kInterval, never kAuto); kAuto otherwise.
  AxisRepr repr = AxisRepr::kAuto;
  FormulaFeatures features;
  /// Estimated total work units per strategy (xpath only when offered).
  double cost_reference = 0.0;
  double cost_dense = 0.0;
  double cost_interval = 0.0;
  double cost_xpath = -1.0;  ///< -1 when XPath direct was not a candidate
  /// Estimated satisfier pairs of the whole selector phi(x, y).
  double estimated_rows = 0.0;
  /// Per-subformula estimates, pre-order over the AST.
  std::vector<OperatorEstimate> operators;
};

struct PlanOptions {
  /// Expected number of distinct origins the selector will be evaluated
  /// from.  The interpreter does not know this upfront and uses the
  /// node count (every-node worst case); `twq explain --origin` uses 1.
  double expected_origins = -1.0;  ///< -1: default to stats.nodes
  /// Offer the direct XPath evaluator as a candidate (only meaningful
  /// when the selector was derived from an XPath path).
  bool offer_xpath = false;
  /// Location steps of the originating XPath path (for cost_xpath).
  int xpath_steps = 0;
  /// Respect a caller-forced representation: kDense/kInterval restrict
  /// the compiled candidates to that one representation.
  AxisRepr forced_repr = AxisRepr::kAuto;
};

/// Plans evaluation of `selector` (free variables within {x, y})
/// against a tree summarized by `stats`.  Pure function; never fails —
/// a degenerate input (empty tree, invalid formula) costs out to the
/// reference strategy, which is total.
SelectorPlan PlanSelector(const TreeStats& stats, const Formula& selector,
                          const PlannerCalibration& cal = {},
                          const PlanOptions& opts = {});

/// One measured strategy run, for calibration feedback.
struct StrategyMeasurement {
  PlanStrategy strategy = PlanStrategy::kReference;
  double nanos = 0.0;
};

/// Returns `base` with each measured strategy's unit cost rescaled
/// halfway (geometric damping) toward measured/predicted, so repeated
/// `twq explain --timing` runs converge instead of oscillating.
/// Strategies without a measurement (or with a non-positive predicted
/// cost) keep their constants.
PlannerCalibration RecalibrateFromMeasurements(
    const PlannerCalibration& base, const SelectorPlan& plan,
    const std::vector<StrategyMeasurement>& measured);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_PLANNER_H_
