#ifndef TREEWALK_LOGIC_ATOMIC_TYPES_H_
#define TREEWALK_LOGIC_ATOMIC_TYPES_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/common/data_value.h"

namespace treewalk {

/// Machinery for the k-equivalence ==_k of Section 4: two strings are
/// k-equivalent iff they satisfy the same FO(exists*) formulas with k
/// variables.  For the purely existential fragment this is decidable by a
/// *semantic* invariant: s |= exists x1..xk theta iff some k-tuple of
/// positions realizes an atomic type entailing theta, so
///
///     s ==_k s'   iff   the sets of atomic k-types realized in s and s'
///                       coincide (over a fixed finite value domain D).
///
/// An atomic type of a tuple (p_1..p_k) records, canonically:
///   - for each i: the value lambda_a(p_i) as an index into D, plus the
///     root/leaf boundary flags;
///   - for each pair i<j: the order relation of p_i, p_j in
///     {far-less, successor, equal, predecessor, far-greater}
/// which determines every atomic formula of Section 2.2/2.3 on strings
/// (monadic trees): E, desc, root, leaf, first, last, succ, =, val
/// comparisons, and val-against-constants for constants in D.
///
/// Strings are given as their value sequences (StringValues()).

/// Canonical encoding of one atomic k-type.
using AtomicType = std::vector<std::int64_t>;

/// The set of atomic k-types realized in a string; equality of these sets
/// is ==_k on the existential fragment.
using TypeSet = std::set<AtomicType>;

/// Pairwise order relation codes inside an AtomicType.
enum class OrderRel : std::int64_t {
  kFarLess = -2,     ///< p_i < p_j - 1
  kPredecessor = -1, ///< p_i = p_j - 1  (E(p_i, p_j) holds)
  kEqual = 0,
  kSuccessor = 1,    ///< p_i = p_j + 1
  kFarGreater = 2,
};

/// Atomic type of the tuple `positions` (0-based indices into `s`).
/// Values not present in `domain` are encoded by their first-occurrence
/// index in the tuple (equality pattern only), matching the logic's
/// inability to name them.
AtomicType AtomicTypeOf(const std::vector<DataValue>& s,
                        const std::vector<DataValue>& domain,
                        const std::vector<std::size_t>& positions);

/// The set of atomic k-types realized in `s`, with `constants` prepended
/// to every tuple: tp_k(s; i_1, ..., i_m) of Lemma 4.3 corresponds to
/// constants = {i_1, ..., i_m}.  Enumerates all |s|^k tuples.
TypeSet AtomicTypeSet(const std::vector<DataValue>& s, int k,
                      const std::vector<DataValue>& domain,
                      const std::vector<std::size_t>& constants = {});

/// True iff s1 ==_k s2 over `domain` (same realized atomic k-type sets).
bool KEquivalent(const std::vector<DataValue>& s1,
                 const std::vector<DataValue>& s2, int k,
                 const std::vector<DataValue>& domain);

/// Order-insensitive 64-bit fingerprint of a type set; used as the opaque
/// "N-type token" transmitted by the communication protocol (Lemma 4.5).
std::uint64_t TypeSetFingerprint(const TypeSet& types);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_ATOMIC_TYPES_H_
