#include "src/logic/tree_eval.h"

#include <cassert>

namespace treewalk {

namespace {

/// Pre-validated recursive evaluator.  All error conditions (sorts,
/// unbound variables, unknown attributes) are rejected before recursion
/// starts, so the hot path is exception- and status-free.
class TreeEvaluator {
 public:
  TreeEvaluator(const Tree& tree, NodeEnv env)
      : tree_(tree), env_(std::move(env)) {}

  /// Checks sorts, binds attribute columns, verifies free variables.
  Status Prepare(const Formula& formula) {
    TREEWALK_RETURN_IF_ERROR(ValidateTreeFormula(formula));
    for (const std::string& v : formula.FreeVariables()) {
      if (env_.find(v) == env_.end()) {
        return InvalidArgument("unbound free variable '" + v + "'");
      }
    }
    return CheckAttributes(formula);
  }

  void Bind(const std::string& var, NodeId node) { env_[var] = node; }

  bool Eval(const Formula& f) {
    const FormulaNode& n = f.node();
    switch (n.kind) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kNot:
        return !Eval(n.children[0]);
      case FormulaKind::kAnd:
        return Eval(n.children[0]) && Eval(n.children[1]);
      case FormulaKind::kOr:
        return Eval(n.children[0]) || Eval(n.children[1]);
      case FormulaKind::kImplies:
        return !Eval(n.children[0]) || Eval(n.children[1]);
      case FormulaKind::kIff:
        return Eval(n.children[0]) == Eval(n.children[1]);
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        bool exists = n.kind == FormulaKind::kExists;
        auto it = env_.find(n.var);
        bool had = it != env_.end();
        NodeId saved = had ? it->second : kNoNode;
        bool result = !exists;
        for (NodeId u = 0; u < static_cast<NodeId>(tree_.size()); ++u) {
          env_[n.var] = u;
          if (Eval(n.children[0]) == exists) {
            result = exists;
            break;
          }
        }
        if (had) {
          env_[n.var] = saved;
        } else {
          env_.erase(n.var);
        }
        return result;
      }
      case FormulaKind::kAtom:
        return EvalAtom(n);
    }
    return false;
  }

 private:
  Status CheckAttributes(const Formula& f) {
    const FormulaNode& n = f.node();
    for (const Formula& c : n.children) {
      TREEWALK_RETURN_IF_ERROR(CheckAttributes(c));
    }
    if (n.kind != FormulaKind::kAtom) return Status::Ok();
    for (const Term& t : n.terms) {
      if (t.kind == Term::Kind::kAttrOfVar &&
          tree_.FindAttribute(t.attr) == kNoAttr) {
        return InvalidArgument("tree has no attribute '" + t.attr + "'");
      }
    }
    return Status::Ok();
  }

  NodeId Node(const Term& t) {
    assert(t.kind == Term::Kind::kVar);
    auto it = env_.find(t.var);
    assert(it != env_.end());
    return it->second;
  }

  DataValue Data(const Term& t) {
    switch (t.kind) {
      case Term::Kind::kIntConst:
        return t.value;
      case Term::Kind::kStrConst:
        return tree_.values().ValueFor(t.text);
      case Term::Kind::kAttrOfVar:
        return tree_.attr(tree_.FindAttribute(t.attr), Node(Term::Var(t.var)));
      default:
        assert(false && "not a data term");
        return 0;
    }
  }

  bool EvalAtom(const FormulaNode& n) {
    switch (n.atom) {
      case AtomKind::kEdge: {
        NodeId x = Node(n.terms[0]), y = Node(n.terms[1]);
        return tree_.Parent(y) == x;
      }
      case AtomKind::kSibling: {
        NodeId x = Node(n.terms[0]), y = Node(n.terms[1]);
        return x != y && tree_.Parent(x) != kNoNode &&
               tree_.Parent(x) == tree_.Parent(y) &&
               tree_.ChildIndex(x) < tree_.ChildIndex(y);
      }
      case AtomKind::kDescendant: {
        NodeId x = Node(n.terms[0]), y = Node(n.terms[1]);
        return tree_.IsStrictAncestor(x, y);
      }
      case AtomKind::kLabel: {
        Symbol s = tree_.FindLabel(n.symbol);
        return s >= 0 && tree_.label(Node(n.terms[0])) == s;
      }
      case AtomKind::kRoot:
        return tree_.IsRoot(Node(n.terms[0]));
      case AtomKind::kLeaf:
        return tree_.IsLeaf(Node(n.terms[0]));
      case AtomKind::kFirst:
        return tree_.IsFirstChild(Node(n.terms[0]));
      case AtomKind::kLast:
        return tree_.IsLastChild(Node(n.terms[0]));
      case AtomKind::kSucc: {
        NodeId x = Node(n.terms[0]), y = Node(n.terms[1]);
        return tree_.NextSibling(x) == y;
      }
      case AtomKind::kEq: {
        const Term& a = n.terms[0];
        const Term& b = n.terms[1];
        if (a.kind == Term::Kind::kVar) return Node(a) == Node(b);
        return Data(a) == Data(b);
      }
      case AtomKind::kRelation:
        assert(false && "relation atom survived validation");
        return false;
    }
    return false;
  }

  const Tree& tree_;
  NodeEnv env_;
};

}  // namespace

Result<bool> EvalTreeFormula(const Tree& tree, const Formula& formula,
                             const NodeEnv& env) {
  if (!formula.valid()) return InvalidArgument("empty formula");
  TreeEvaluator evaluator(tree, env);
  TREEWALK_RETURN_IF_ERROR(evaluator.Prepare(formula));
  if (tree.empty()) {
    // Quantifiers over an empty domain: exists is false, forall is true;
    // no free variables can be bound, so only sentences make sense.
    if (!formula.FreeVariables().empty()) {
      return InvalidArgument("free variables on an empty tree");
    }
  }
  return evaluator.Eval(formula);
}

Result<bool> EvalTreeSentence(const Tree& tree, const Formula& formula) {
  if (formula.valid() && !formula.FreeVariables().empty()) {
    return InvalidArgument("sentence expected, found free variables");
  }
  return EvalTreeFormula(tree, formula, {});
}

namespace {

/// Candidate pruning for SelectNodes: if the selector's quantifier-free
/// body contains desc(x, y) or E(x, y) as a *positive top-level
/// conjunct*, no node outside x's subtree (resp. children) can be
/// selected, so the candidate loop may skip the rest of the tree.  This
/// is the planning step that makes atp() selectors like Example 3.2's
/// "desc(x, y) & ..." linear in the subtree instead of the whole tree.
enum class CandidateRange { kAll, kSubtree, kChildren };

void ScanConjuncts(const Formula& f, const std::string& x,
                   const std::string& y, CandidateRange& range) {
  const FormulaNode& n = f.node();
  if (n.kind == FormulaKind::kAnd) {
    ScanConjuncts(n.children[0], x, y, range);
    ScanConjuncts(n.children[1], x, y, range);
    return;
  }
  if (n.kind != FormulaKind::kAtom) return;
  if (n.terms.size() != 2 || n.terms[0].kind != Term::Kind::kVar ||
      n.terms[1].kind != Term::Kind::kVar || n.terms[0].var != x ||
      n.terms[1].var != y) {
    return;
  }
  if (n.atom == AtomKind::kEdge) {
    range = CandidateRange::kChildren;
  } else if (n.atom == AtomKind::kDescendant &&
             range != CandidateRange::kChildren) {
    range = CandidateRange::kSubtree;
  }
}

CandidateRange PlanSelector(const Formula& formula, const std::string& x,
                            const std::string& y) {
  const Formula* body = &formula;
  while (body->node().kind == FormulaKind::kExists) {
    // The pruning conjunct must not mention quantified variables named x
    // or y; shadowing would invalidate the plan.
    if (body->node().var == x || body->node().var == y) {
      return CandidateRange::kAll;
    }
    body = &body->node().children[0];
  }
  CandidateRange range = CandidateRange::kAll;
  ScanConjuncts(*body, x, y, range);
  return range;
}

}  // namespace

Result<std::vector<NodeId>> SelectNodes(const Tree& tree,
                                        const Formula& formula, NodeId origin,
                                        const std::string& x,
                                        const std::string& y) {
  if (!formula.valid()) return InvalidArgument("empty formula");
  for (const std::string& v : formula.FreeVariables()) {
    if (v != x && v != y) {
      return InvalidArgument("selector has unexpected free variable '" + v +
                             "'");
    }
  }
  if (!tree.Valid(origin)) return InvalidArgument("invalid origin node");

  NodeEnv env;
  env[x] = origin;
  env[y] = origin;  // placeholder; overwritten per candidate
  TreeEvaluator evaluator(tree, env);
  TREEWALK_RETURN_IF_ERROR(evaluator.Prepare(formula));

  std::vector<NodeId> selected;
  auto consider = [&](NodeId v) {
    evaluator.Bind(y, v);
    if (evaluator.Eval(formula)) selected.push_back(v);
  };
  switch (PlanSelector(formula, x, y)) {
    case CandidateRange::kAll:
      for (NodeId v = 0; v < static_cast<NodeId>(tree.size()); ++v) {
        consider(v);
      }
      break;
    case CandidateRange::kSubtree:
      for (NodeId v = origin + 1; v < tree.SubtreeEnd(origin); ++v) {
        consider(v);
      }
      break;
    case CandidateRange::kChildren:
      for (NodeId v = tree.FirstChild(origin); v != kNoNode;
           v = tree.NextSibling(v)) {
        consider(v);
      }
      break;
  }
  return selected;
}

}  // namespace treewalk
