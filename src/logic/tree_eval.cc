#include "src/logic/tree_eval.h"

#include <cassert>

namespace treewalk {

namespace {

/// Pre-validated recursive evaluator.  Prepare() lowers the Formula AST
/// into a flat arena of EvalNodes with every name resolved up front —
/// variables interned to dense slots, labels to Symbols, attribute
/// names to AttrIds, string constants to data values — so the recursive
/// hot path touches no maps, no strings, and no Status machinery.  The
/// environment is a flat NodeId vector indexed by slot (kNoNode =
/// unbound); quantifiers save and restore one slot, which reproduces
/// the by-name dynamic scoping of the naive evaluator exactly (one name
/// = one slot, shadowing included).
class TreeEvaluator {
 public:
  explicit TreeEvaluator(const Tree& tree) : tree_(tree) {}

  /// Checks sorts, verifies free variables against `env`, resolves all
  /// names, and binds `env` into the slot environment.
  Status Prepare(const Formula& formula, const NodeEnv& env) {
    TREEWALK_RETURN_IF_ERROR(ValidateTreeFormula(formula));
    for (const std::string& v : formula.FreeVariables()) {
      if (env.find(v) == env.end()) {
        return InvalidArgument("unbound free variable '" + v + "'");
      }
    }
    TREEWALK_ASSIGN_OR_RETURN(root_, Build(formula));
    env_.assign(slots_.size(), kNoNode);
    for (const auto& [name, node] : env) {
      int slot = SlotOf(name);
      if (slot >= 0) env_[slot] = node;
    }
    return Status::Ok();
  }

  /// Slot of a variable name, or -1 if the formula never mentions it.
  int SlotOf(const std::string& var) const {
    auto it = slots_.find(var);
    return it == slots_.end() ? -1 : it->second;
  }

  /// Rebinds one variable between evaluations (no-op for slot -1).
  void BindSlot(int slot, NodeId node) {
    if (slot >= 0) env_[slot] = node;
  }

  bool Eval() { return EvalNodeAt(root_); }

 private:
  /// One side of a data equality, fully resolved: a constant when
  /// attr == kNoAttr, otherwise val(attr, slot).
  struct DataRef {
    AttrId attr = kNoAttr;
    int slot = -1;
    DataValue value = 0;
  };

  struct EvalNode {
    FormulaKind kind = FormulaKind::kTrue;
    AtomKind atom = AtomKind::kEq;
    int child0 = -1;
    int child1 = -1;
    int slot = -1;        ///< quantifier slot / first atom variable
    int slot2 = -1;       ///< second atom variable
    Symbol symbol = -1;   ///< resolved label (-1: label unused in tree)
    bool node_eq = false; ///< kEq: node (true) or data (false) equality
    DataRef data0, data1;
  };

  int InternVar(const std::string& name) {
    auto [it, inserted] =
        slots_.try_emplace(name, static_cast<int>(slots_.size()));
    return it->second;
  }

  Result<DataRef> ResolveData(const Term& t) {
    DataRef ref;
    switch (t.kind) {
      case Term::Kind::kIntConst:
        ref.value = t.value;
        return ref;
      case Term::Kind::kStrConst:
        ref.value = tree_.values().ValueFor(t.text);
        return ref;
      case Term::Kind::kAttrOfVar:
        ref.attr = tree_.FindAttribute(t.attr);
        if (ref.attr == kNoAttr) {
          return InvalidArgument("tree has no attribute '" + t.attr + "'");
        }
        ref.slot = InternVar(t.var);
        return ref;
      default:
        return InvalidArgument("unexpected data term");
    }
  }

  Result<int> Build(const Formula& f) {
    const FormulaNode& n = f.node();
    EvalNode out;
    out.kind = n.kind;
    switch (n.kind) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        break;
      case FormulaKind::kNot: {
        TREEWALK_ASSIGN_OR_RETURN(out.child0, Build(n.children[0]));
        break;
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr:
      case FormulaKind::kImplies:
      case FormulaKind::kIff: {
        TREEWALK_ASSIGN_OR_RETURN(out.child0, Build(n.children[0]));
        TREEWALK_ASSIGN_OR_RETURN(out.child1, Build(n.children[1]));
        break;
      }
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        out.slot = InternVar(n.var);
        TREEWALK_ASSIGN_OR_RETURN(out.child0, Build(n.children[0]));
        break;
      }
      case FormulaKind::kAtom: {
        out.atom = n.atom;
        switch (n.atom) {
          case AtomKind::kEdge:
          case AtomKind::kSibling:
          case AtomKind::kDescendant:
          case AtomKind::kSucc:
            out.slot = InternVar(n.terms[0].var);
            out.slot2 = InternVar(n.terms[1].var);
            break;
          case AtomKind::kLabel:
            out.slot = InternVar(n.terms[0].var);
            out.symbol = tree_.FindLabel(n.symbol);
            break;
          case AtomKind::kRoot:
          case AtomKind::kLeaf:
          case AtomKind::kFirst:
          case AtomKind::kLast:
            out.slot = InternVar(n.terms[0].var);
            break;
          case AtomKind::kEq:
            out.node_eq = n.terms[0].kind == Term::Kind::kVar;
            if (out.node_eq) {
              out.slot = InternVar(n.terms[0].var);
              out.slot2 = InternVar(n.terms[1].var);
            } else {
              TREEWALK_ASSIGN_OR_RETURN(out.data0, ResolveData(n.terms[0]));
              TREEWALK_ASSIGN_OR_RETURN(out.data1, ResolveData(n.terms[1]));
            }
            break;
          case AtomKind::kRelation:
            return InvalidArgument("store atom in a tree formula");
        }
        break;
      }
    }
    nodes_.push_back(out);
    return static_cast<int>(nodes_.size()) - 1;
  }

  DataValue Data(const DataRef& d) const {
    if (d.attr == kNoAttr) return d.value;
    assert(env_[d.slot] != kNoNode);
    return tree_.attr(d.attr, env_[d.slot]);
  }

  bool EvalAtom(const EvalNode& n) {
    switch (n.atom) {
      case AtomKind::kEdge: {
        return tree_.Parent(env_[n.slot2]) == env_[n.slot];
      }
      case AtomKind::kSibling: {
        NodeId x = env_[n.slot], y = env_[n.slot2];
        return x != y && tree_.Parent(x) != kNoNode &&
               tree_.Parent(x) == tree_.Parent(y) &&
               tree_.ChildIndex(x) < tree_.ChildIndex(y);
      }
      case AtomKind::kDescendant:
        return tree_.IsStrictAncestor(env_[n.slot], env_[n.slot2]);
      case AtomKind::kLabel:
        return n.symbol >= 0 && tree_.label(env_[n.slot]) == n.symbol;
      case AtomKind::kRoot:
        return tree_.IsRoot(env_[n.slot]);
      case AtomKind::kLeaf:
        return tree_.IsLeaf(env_[n.slot]);
      case AtomKind::kFirst:
        return tree_.IsFirstChild(env_[n.slot]);
      case AtomKind::kLast:
        return tree_.IsLastChild(env_[n.slot]);
      case AtomKind::kSucc:
        return tree_.NextSibling(env_[n.slot]) == env_[n.slot2];
      case AtomKind::kEq:
        if (n.node_eq) return env_[n.slot] == env_[n.slot2];
        return Data(n.data0) == Data(n.data1);
      case AtomKind::kRelation:
        assert(false && "relation atom survived validation");
        return false;
    }
    return false;
  }

  bool EvalNodeAt(int i) {
    const EvalNode& n = nodes_[i];
    switch (n.kind) {
      case FormulaKind::kTrue:
        return true;
      case FormulaKind::kFalse:
        return false;
      case FormulaKind::kNot:
        return !EvalNodeAt(n.child0);
      case FormulaKind::kAnd:
        return EvalNodeAt(n.child0) && EvalNodeAt(n.child1);
      case FormulaKind::kOr:
        return EvalNodeAt(n.child0) || EvalNodeAt(n.child1);
      case FormulaKind::kImplies:
        return !EvalNodeAt(n.child0) || EvalNodeAt(n.child1);
      case FormulaKind::kIff:
        return EvalNodeAt(n.child0) == EvalNodeAt(n.child1);
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        bool exists = n.kind == FormulaKind::kExists;
        NodeId saved = env_[n.slot];
        bool result = !exists;
        for (NodeId u = 0; u < static_cast<NodeId>(tree_.size()); ++u) {
          env_[n.slot] = u;
          if (EvalNodeAt(n.child0) == exists) {
            result = exists;
            break;
          }
        }
        env_[n.slot] = saved;
        return result;
      }
      case FormulaKind::kAtom:
        return EvalAtom(n);
    }
    return false;
  }

  const Tree& tree_;
  std::vector<EvalNode> nodes_;
  int root_ = -1;
  std::map<std::string, int> slots_;
  std::vector<NodeId> env_;
};

}  // namespace

Result<bool> EvalTreeFormula(const Tree& tree, const Formula& formula,
                             const NodeEnv& env) {
  if (!formula.valid()) return InvalidArgument("empty formula");
  TreeEvaluator evaluator(tree);
  TREEWALK_RETURN_IF_ERROR(evaluator.Prepare(formula, env));
  if (tree.empty()) {
    // Quantifiers over an empty domain: exists is false, forall is true;
    // no free variables can be bound, so only sentences make sense.
    if (!formula.FreeVariables().empty()) {
      return InvalidArgument("free variables on an empty tree");
    }
  }
  return evaluator.Eval();
}

Result<bool> EvalTreeSentence(const Tree& tree, const Formula& formula) {
  if (formula.valid() && !formula.FreeVariables().empty()) {
    return InvalidArgument("sentence expected, found free variables");
  }
  return EvalTreeFormula(tree, formula, {});
}

namespace {

/// Candidate pruning for SelectNodes: if the selector's quantifier-free
/// body contains desc(x, y) or E(x, y) as a *positive top-level
/// conjunct*, no node outside x's subtree (resp. children) can be
/// selected, so the candidate loop may skip the rest of the tree.  This
/// is the planning step that makes atp() selectors like Example 3.2's
/// "desc(x, y) & ..." linear in the subtree instead of the whole tree.
enum class CandidateRange { kAll, kSubtree, kChildren };

void ScanConjuncts(const Formula& f, const std::string& x,
                   const std::string& y, CandidateRange& range) {
  const FormulaNode& n = f.node();
  if (n.kind == FormulaKind::kAnd) {
    ScanConjuncts(n.children[0], x, y, range);
    ScanConjuncts(n.children[1], x, y, range);
    return;
  }
  if (n.kind != FormulaKind::kAtom) return;
  if (n.terms.size() != 2 || n.terms[0].kind != Term::Kind::kVar ||
      n.terms[1].kind != Term::Kind::kVar || n.terms[0].var != x ||
      n.terms[1].var != y) {
    return;
  }
  if (n.atom == AtomKind::kEdge) {
    range = CandidateRange::kChildren;
  } else if (n.atom == AtomKind::kDescendant &&
             range != CandidateRange::kChildren) {
    range = CandidateRange::kSubtree;
  }
}

CandidateRange PlanSelector(const Formula& formula, const std::string& x,
                            const std::string& y) {
  const Formula* body = &formula;
  while (body->node().kind == FormulaKind::kExists) {
    // The pruning conjunct must not mention quantified variables named x
    // or y; shadowing would invalidate the plan.
    if (body->node().var == x || body->node().var == y) {
      return CandidateRange::kAll;
    }
    body = &body->node().children[0];
  }
  CandidateRange range = CandidateRange::kAll;
  ScanConjuncts(*body, x, y, range);
  return range;
}

}  // namespace

Result<std::vector<NodeId>> SelectNodes(const Tree& tree,
                                        const Formula& formula, NodeId origin,
                                        const std::string& x,
                                        const std::string& y) {
  if (!formula.valid()) return InvalidArgument("empty formula");
  for (const std::string& v : formula.FreeVariables()) {
    if (v != x && v != y) {
      return InvalidArgument("selector has unexpected free variable '" + v +
                             "'");
    }
  }
  if (!tree.Valid(origin)) return InvalidArgument("invalid origin node");

  // All loop-invariant work happens here, once: validation, name
  // resolution, and the slot lookup for y.  The candidate loop below
  // only rebinds one slot and re-evaluates.
  NodeEnv env;
  env[x] = origin;
  env[y] = origin;  // placeholder; overwritten per candidate
  TreeEvaluator evaluator(tree);
  TREEWALK_RETURN_IF_ERROR(evaluator.Prepare(formula, env));
  const int y_slot = evaluator.SlotOf(y);

  std::vector<NodeId> selected;
  auto consider = [&](NodeId v) {
    evaluator.BindSlot(y_slot, v);
    if (evaluator.Eval()) selected.push_back(v);
  };
  switch (PlanSelector(formula, x, y)) {
    case CandidateRange::kAll:
      selected.reserve(tree.size());
      for (NodeId v = 0; v < static_cast<NodeId>(tree.size()); ++v) {
        consider(v);
      }
      break;
    case CandidateRange::kSubtree:
      selected.reserve(
          static_cast<std::size_t>(tree.SubtreeEnd(origin) - origin - 1));
      for (NodeId v = origin + 1; v < tree.SubtreeEnd(origin); ++v) {
        consider(v);
      }
      break;
    case CandidateRange::kChildren:
      selected.reserve(static_cast<std::size_t>(tree.ChildCount(origin)));
      for (NodeId v = tree.FirstChild(origin); v != kNoNode;
           v = tree.NextSibling(v)) {
        consider(v);
      }
      break;
  }
  return selected;
}

}  // namespace treewalk
