#include "src/logic/selector_cache.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/atomic_file.h"
#include "src/common/crc32c.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"
#include "src/tree/interval_matrix.h"
#include "src/tree/snapshot.h"

namespace treewalk {
namespace {

constexpr char kEntryMagic[8] = {'T', 'W', 'S', 'E', 'L', 'C', '0', '1'};
constexpr std::size_t kEntryHeaderBytes = 44;
// shape_ byte values; pinned independently of the enum declaration.
constexpr std::uint8_t kShapeBool = 0, kShapeSetX = 1, kShapeSetY = 2,
                       kShapeMat = 3;

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* stores;
  Counter* fallbacks;

  static CacheMetrics& Get() {
    static CacheMetrics m{
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_selector_cache_hits_total",
            "Compiled selectors served from the persistent disk cache"),
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_selector_cache_misses_total",
            "Selector cache lookups that found no entry (compiled fresh)"),
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_selector_cache_stores_total",
            "Freshly compiled selectors persisted to the disk cache"),
        MetricsRegistry::Global().FindOrCreateCounter(
            "treewalk_selector_cache_fallbacks_total",
            "Cache entries rejected (stale, corrupt, truncated, or injected "
            "fault); the selector was recompiled instead"),
    };
    return m;
  }
};

void PutWords(const std::uint64_t* words, std::size_t count,
              std::string& out) {
  if (count > 0) {
    out.append(reinterpret_cast<const char*>(words),
               count * sizeof(std::uint64_t));
  }
}

// Word payloads are read with memcpy, not in-place views: cache entries
// are small relative to snapshots and a copy frees the decoder from the
// image's alignment and lifetime.
void GetWords(std::string_view bytes, std::size_t at, std::uint64_t* words,
              std::size_t count) {
  if (count > 0) {
    std::memcpy(words, bytes.data() + at, count * sizeof(std::uint64_t));
  }
}

}  // namespace

std::uint64_t StableFormulaHash(const Formula& formula, std::string_view x,
                                std::string_view y) {
  // Printed form, not StructuralHash(): the persistent key must hash
  // identically in every process.
  std::uint64_t h = Fnv1a64(formula.ToString());
  h = Fnv1a64("\x1f", h);
  h = Fnv1a64(x, h);
  h = Fnv1a64("\x1f", h);
  h = Fnv1a64(y, h);
  return h;
}

/// Friend of CompiledSelector and IntervalMatrix: the only code that
/// touches their private state outside the compiler.
class SelectorCacheCodec {
 public:
  static std::string Encode(const SelectorCacheKey& key,
                            const CompiledSelector& sel) {
    std::string out;
    out.append(kEntryMagic, sizeof(kEntryMagic));
    PutU32Le(kSnapshotVersion, out);
    PutU32Le(static_cast<std::uint32_t>(key.repr), out);
    PutU64Le(key.formula_hash, out);
    PutU64Le(key.tree_hash, out);
    PutU64Le(sel.n_, out);
    std::uint8_t shape = kShapeBool;
    switch (sel.shape_) {
      case CompiledSelector::Shape::kBool:
        shape = kShapeBool;
        break;
      case CompiledSelector::Shape::kSetX:
        shape = kShapeSetX;
        break;
      case CompiledSelector::Shape::kSetY:
        shape = kShapeSetY;
        break;
      case CompiledSelector::Shape::kMat:
        shape = kShapeMat;
        break;
    }
    out.push_back(static_cast<char>(shape));
    out.push_back(sel.literal_ ? '\x01' : '\x00');
    out.append(2, '\0');  // pad to kEntryHeaderBytes

    if (shape == kShapeSetX || shape == kShapeSetY) {
      PutU64Le(sel.set_->num_words(), out);
      PutWords(sel.set_->words(), sel.set_->num_words(), out);
    } else if (shape == kShapeMat && sel.mat_ != nullptr) {
      const NodeMatrix& m = *sel.mat_;
      PutU64Le(m.words_per_row(), out);
      PutWords(m.Row(0), m.size() * m.words_per_row(), out);
    } else if (shape == kShapeMat) {
      EncodeIntervalMatrix(*sel.imat_, out);
    }

    PutU32Le(Crc32c(out), out);
    return out;
  }

  static Result<CompiledSelector> Decode(std::string_view bytes,
                                         const SelectorCacheKey* expected) {
    if (bytes.size() < kEntryHeaderBytes + 4) {
      return InvalidArgument("selector cache entry truncated");
    }
    if (bytes.substr(0, 8) != std::string_view(kEntryMagic, 8)) {
      return InvalidArgument("not a selector cache entry (bad magic)");
    }
    if (GetU32Le(bytes, bytes.size() - 4) !=
        Crc32c(bytes.substr(0, bytes.size() - 4))) {
      return InvalidArgument("selector cache entry CRC mismatch");
    }
    const std::uint32_t version = GetU32Le(bytes, 8);
    if (version != kSnapshotVersion) {
      return InvalidArgument("selector cache entry has version " +
                             std::to_string(version));
    }
    const std::uint32_t repr_raw = GetU32Le(bytes, 12);
    if (repr_raw != static_cast<std::uint32_t>(AxisRepr::kDense) &&
        repr_raw != static_cast<std::uint32_t>(AxisRepr::kInterval)) {
      return InvalidArgument("selector cache entry has unresolved repr");
    }
    SelectorCacheKey key;
    key.formula_hash = GetU64Le(bytes, 16);
    key.tree_hash = GetU64Le(bytes, 24);
    key.repr = static_cast<AxisRepr>(repr_raw);
    if (expected != nullptr &&
        (key.formula_hash != expected->formula_hash ||
         key.tree_hash != expected->tree_hash ||
         key.repr != expected->repr)) {
      return FailedPrecondition(
          "selector cache entry is stale (key mismatch)");
    }
    const std::uint64_t n64 = GetU64Le(bytes, 32);
    if (n64 > (std::uint64_t{1} << 31) - 1) {
      return InvalidArgument("selector cache entry node count implausible");
    }
    const std::size_t n = static_cast<std::size_t>(n64);
    const std::uint8_t shape = static_cast<std::uint8_t>(bytes[40]);
    const std::uint8_t literal = static_cast<std::uint8_t>(bytes[41]);
    if (shape > kShapeMat || literal > 1) {
      return InvalidArgument("selector cache entry shape byte corrupt");
    }

    const std::string_view payload =
        bytes.substr(kEntryHeaderBytes, bytes.size() - kEntryHeaderBytes - 4);
    CompiledSelector sel;
    sel.n_ = n;
    sel.repr_ = key.repr;
    sel.literal_ = literal != 0;
    switch (shape) {
      case kShapeBool: {
        sel.shape_ = CompiledSelector::Shape::kBool;
        if (!payload.empty()) {
          return InvalidArgument("selector cache bool entry has payload");
        }
        break;
      }
      case kShapeSetX:
      case kShapeSetY: {
        sel.shape_ = shape == kShapeSetX ? CompiledSelector::Shape::kSetX
                                         : CompiledSelector::Shape::kSetY;
        const std::size_t want = (n + 63) / 64;
        if (payload.size() != 8 + want * 8 ||
            GetU64Le(payload, 0) != want) {
          return InvalidArgument("selector cache set payload corrupt");
        }
        NodeSet set(n);
        GetWords(payload, 8, set.words(), want);
        sel.set_ = std::make_shared<const NodeSet>(std::move(set));
        break;
      }
      case kShapeMat: {
        sel.shape_ = CompiledSelector::Shape::kMat;
        if (key.repr == AxisRepr::kDense) {
          const std::size_t wpr = (n + 63) / 64;
          if (payload.size() != 8 + n * wpr * 8 ||
              GetU64Le(payload, 0) != wpr) {
            return InvalidArgument("selector cache matrix payload corrupt");
          }
          NodeMatrix m(n);
          if (n > 0) GetWords(payload, 8, m.Row(0), n * wpr);
          sel.mat_ = std::make_shared<const NodeMatrix>(std::move(m));
        } else {
          TREEWALK_ASSIGN_OR_RETURN(IntervalMatrix m,
                                    DecodeIntervalMatrix(payload, n));
          sel.imat_ = std::make_shared<const IntervalMatrix>(std::move(m));
        }
        break;
      }
    }
    return sel;
  }

 private:
  static void EncodeIntervalMatrix(const IntervalMatrix& m,
                                   std::string& out) {
    // Pools first, each stored once; rows then reference pools by
    // index, so the sharing that makes the representation O(n) bytes is
    // itself what gets persisted (and reproduced on load).
    PutU64Le(m.pools_.size(), out);
    for (const auto& pool : m.pools_) {
      PutU64Le(pool->size(), out);
      for (const NodeSpan& s : *pool) {
        PutU32Le(static_cast<std::uint32_t>(s.begin), out);
        PutU32Le(static_cast<std::uint32_t>(s.end), out);
      }
    }
    PutU64Le(m.rows_.size(), out);
    for (const IntervalMatrix::Row& r : m.rows_) {
      PutU32Le(r.pool, out);
      // An empty slice can carry any stale offset in memory; canonical
      // images always say 0 so equal matrices encode to equal bytes.
      PutU32Le(r.count == 0 ? 0 : r.offset, out);
      PutU32Le(r.count, out);
      PutU32Le(static_cast<std::uint32_t>(r.clip_begin), out);
      PutU32Le(static_cast<std::uint32_t>(r.clip_end), out);
      PutU32Le(r.complemented ? 1 : 0, out);
    }
  }

  static Result<IntervalMatrix> DecodeIntervalMatrix(std::string_view p,
                                                     std::size_t n) {
    auto err = [] {
      return InvalidArgument("selector cache interval payload corrupt");
    };
    std::size_t at = 0;
    auto need = [&](std::size_t bytes) { return p.size() - at >= bytes; };
    if (!need(8)) return err();
    const std::uint64_t pool_count = GetU64Le(p, at);
    at += 8;
    if (pool_count > n + 1) return err();
    IntervalMatrix m;
    m.n_ = n;
    m.pools_.reserve(static_cast<std::size_t>(pool_count));
    const NodeId limit = static_cast<NodeId>(n);
    for (std::uint64_t i = 0; i < pool_count; ++i) {
      if (!need(8)) return err();
      const std::uint64_t span_count = GetU64Le(p, at);
      at += 8;
      if (span_count > p.size() / 8 || !need(span_count * 8)) return err();
      auto pool = std::make_shared<std::vector<NodeSpan>>();
      pool->reserve(static_cast<std::size_t>(span_count));
      for (std::uint64_t s = 0; s < span_count; ++s) {
        NodeSpan span;
        span.begin = static_cast<NodeId>(GetU32Le(p, at));
        span.end = static_cast<NodeId>(GetU32Le(p, at + 4));
        at += 8;
        // A pool is an arena of per-row slices (aliased rows share and
        // window them), so spans are NOT globally sorted here — only
        // each row's slice is.  Bound every endpoint to [0, n] now;
        // slice-local ordering is checked per row below.
        if (span.begin < 0 || span.end <= span.begin || span.end > limit) {
          return err();
        }
        pool->push_back(span);
      }
      m.pools_.push_back(std::move(pool));
    }
    if (!need(8) || GetU64Le(p, at) != n) return err();
    at += 8;
    if (!need(n * 24)) return err();
    m.rows_.reserve(n);
    for (std::size_t u = 0; u < n; ++u) {
      IntervalMatrix::Row r;
      r.pool = GetU32Le(p, at);
      r.offset = GetU32Le(p, at + 4);
      r.count = GetU32Le(p, at + 8);
      r.clip_begin = static_cast<NodeId>(GetU32Le(p, at + 12));
      r.clip_end = static_cast<NodeId>(GetU32Le(p, at + 16));
      const std::uint32_t comp = GetU32Le(p, at + 20);
      at += 24;
      if (r.pool >= pool_count || comp > 1) return err();
      const std::size_t pool_size = m.pools_[r.pool]->size();
      if (r.count == 0) {
        r.offset = 0;  // empty slice: offset is meaningless, keep it tame
      } else if (r.offset > pool_size || r.count > pool_size - r.offset) {
        return err();
      }
      if (r.clip_begin < 0 || r.clip_end < r.clip_begin ||
          r.clip_end > limit) {
        return err();
      }
      // The slice this row reads must be normalized (ascending, non-
      // overlapping): test() binary-searches it and RowSpans() merges
      // against the clip window assuming order.
      const std::vector<NodeSpan>& pool = *m.pools_[r.pool];
      for (std::uint32_t s = 1; s < r.count; ++s) {
        if (pool[r.offset + s].begin < pool[r.offset + s - 1].end) {
          return err();
        }
      }
      r.complemented = comp != 0;
      m.rows_.push_back(r);
    }
    if (at != p.size()) return err();
    return m;
  }
};

std::string EncodeSelectorCacheEntry(const SelectorCacheKey& key,
                                     const CompiledSelector& selector) {
  return SelectorCacheCodec::Encode(key, selector);
}

Result<CompiledSelector> DecodeSelectorCacheEntry(
    std::string_view bytes, const SelectorCacheKey* expected_key) {
  return SelectorCacheCodec::Decode(bytes, expected_key);
}

std::string SelectorDiskCache::EntryPath(const SelectorCacheKey& key) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%016llx-%016llx-%u.twsel",
                static_cast<unsigned long long>(key.formula_hash),
                static_cast<unsigned long long>(key.tree_hash),
                static_cast<unsigned>(key.repr));
  return dir_ + "/" + name;
}

Result<CompiledSelector> SelectorDiskCache::Load(
    const SelectorCacheKey& key) const {
  TREEWALK_FAILPOINT("selector_cache/load");
  TREEWALK_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(EntryPath(key)));
  return SelectorCacheCodec::Decode(bytes, &key);
}

Status SelectorDiskCache::Store(const SelectorCacheKey& key,
                                const CompiledSelector& selector) const {
  TREEWALK_FAILPOINT("selector_cache/store");
  return WriteFileAtomic(EntryPath(key),
                         SelectorCacheCodec::Encode(key, selector));
}

Result<CompiledSelector> CompileSelectorCached(
    const AxisIndex& index, const Formula& formula, const std::string& x,
    const std::string& y, AxisRepr repr, const SelectorDiskCache* cache,
    std::uint64_t tree_hash) {
  if (cache == nullptr) return CompileSelector(index, formula, x, y, repr);
  SelectorCacheKey key;
  key.formula_hash = StableFormulaHash(formula, x, y);
  key.tree_hash = tree_hash;
  key.repr = ResolveAxisRepr(repr, index.size());
  Result<CompiledSelector> cached = cache->Load(key);
  if (cached.ok()) {
    CacheMetrics::Get().hits->Increment();
    return cached;
  }
  if (cached.status().code() == StatusCode::kNotFound) {
    CacheMetrics::Get().misses->Increment();
  } else {
    // Stale, corrupt, truncated, or injected fault: the degraded path
    // is a plain compile — slower, never wrong.
    CacheMetrics::Get().fallbacks->Increment();
  }
  Result<CompiledSelector> fresh = CompileSelector(index, formula, x, y, repr);
  if (fresh.ok() && cache->Store(key, *fresh).ok()) {
    CacheMetrics::Get().stores->Increment();
  }
  return fresh;
}

}  // namespace treewalk
