#include "src/logic/parser.h"

#include <cctype>
#include <cstdlib>
#include <set>

namespace treewalk {

namespace {

const std::set<std::string>& ReservedWords() {
  static const std::set<std::string>& words = *new std::set<std::string>{
      "E",    "sib",  "desc",   "lab",    "root", "leaf", "first",
      "last", "succ", "exists", "forall", "true", "false", "val", "attr"};
  return words;
}

class FormulaParser {
 public:
  explicit FormulaParser(std::string_view source) : src_(source) {}

  Result<Formula> Parse() {
    TREEWALK_ASSIGN_OR_RETURN(Formula f, ParseIff());
    SkipSpace();
    if (pos_ != src_.size()) {
      return Err("trailing input after formula");
    }
    return f;
  }

 private:
  Result<Formula> ParseIff() {
    TREEWALK_ASSIGN_OR_RETURN(Formula left, ParseImp());
    while (ConsumeOp("<->")) {
      TREEWALK_ASSIGN_OR_RETURN(Formula right, ParseImp());
      left = Formula::Iff(left, right);
    }
    return left;
  }

  Result<Formula> ParseImp() {
    TREEWALK_ASSIGN_OR_RETURN(Formula left, ParseOr());
    if (ConsumeOp("->")) {
      TREEWALK_RETURN_IF_ERROR(EnterNesting());  // right assoc = recursion
      Result<Formula> right = ParseImp();
      --depth_;
      if (!right.ok()) return right.status();
      return Formula::Implies(left, std::move(right).value());
    }
    return left;
  }

  Result<Formula> ParseOr() {
    TREEWALK_ASSIGN_OR_RETURN(Formula left, ParseAnd());
    while (ConsumeOp("|")) {
      TREEWALK_ASSIGN_OR_RETURN(Formula right, ParseAnd());
      left = Formula::Or(left, right);
    }
    return left;
  }

  Result<Formula> ParseAnd() {
    TREEWALK_ASSIGN_OR_RETURN(Formula left, ParseUnary());
    while (ConsumeOp("&")) {
      TREEWALK_ASSIGN_OR_RETURN(Formula right, ParseUnary());
      left = Formula::And(left, right);
    }
    return left;
  }

  Result<Formula> ParseUnary() {
    SkipSpace();
    if (Peek() == '!' && PeekAt(1) != '=') {
      ++pos_;
      TREEWALK_RETURN_IF_ERROR(EnterNesting());
      Result<Formula> f = ParseUnary();
      --depth_;
      if (!f.ok()) return f.status();
      return Formula::Not(std::move(f).value());
    }
    std::size_t mark = pos_;
    std::string word = PeekWord();
    if (word == "exists" || word == "forall") {
      pos_ = mark + word.size();
      SkipSpace();
      std::string var = PeekWord();
      if (var.empty() || ReservedWords().count(var) > 0) {
        return Err("expected variable after quantifier");
      }
      pos_ += var.size();
      TREEWALK_RETURN_IF_ERROR(EnterNesting());
      Result<Formula> body = ParseUnary();
      --depth_;
      if (!body.ok()) return body.status();
      return word == "exists"
                 ? Formula::Exists(var, std::move(body).value())
                 : Formula::Forall(var, std::move(body).value());
    }
    return ParsePrimary();
  }

  Result<Formula> ParsePrimary() {
    SkipSpace();
    if (Peek() == '(') {
      ++pos_;
      TREEWALK_RETURN_IF_ERROR(EnterNesting());
      Result<Formula> inner = ParseIff();
      --depth_;
      if (!inner.ok()) return inner.status();
      Formula f = std::move(inner).value();
      SkipSpace();
      if (Peek() != ')') return Err("expected ')'");
      ++pos_;
      return f;
    }
    std::string word = PeekWord();
    if (word == "true") {
      pos_ += 4;
      return Formula::True();
    }
    if (word == "false") {
      pos_ += 5;
      return Formula::False();
    }
    return ParseAtom();
  }

  Result<Formula> ParseAtom() {
    SkipSpace();
    std::string word = PeekWord();

    // Built-in predicates.
    if (word == "E" || word == "sib" || word == "desc" || word == "succ") {
      pos_ += word.size();
      TREEWALK_ASSIGN_OR_RETURN(auto vars, ParseVarPair());
      if (word == "E") return Formula::Edge(vars.first, vars.second);
      if (word == "sib") return Formula::Sibling(vars.first, vars.second);
      if (word == "desc") return Formula::Descendant(vars.first, vars.second);
      return Formula::Succ(vars.first, vars.second);
    }
    if (word == "root" || word == "leaf" || word == "first" ||
        word == "last") {
      pos_ += word.size();
      TREEWALK_ASSIGN_OR_RETURN(std::string var, ParseParenVar());
      if (word == "root") return Formula::Root(var);
      if (word == "leaf") return Formula::Leaf(var);
      if (word == "first") return Formula::First(var);
      return Formula::Last(var);
    }
    if (word == "lab") {
      pos_ += word.size();
      SkipSpace();
      if (Peek() != '(') return Err("expected '(' after lab");
      ++pos_;
      SkipSpace();
      std::string var = PeekWord();
      if (var.empty()) return Err("expected variable in lab");
      pos_ += var.size();
      SkipSpace();
      if (Peek() != ',') return Err("expected ',' in lab");
      ++pos_;
      SkipSpace();
      std::string label = PeekLabel();
      if (label.empty()) return Err("expected label in lab");
      pos_ += label.size();
      SkipSpace();
      if (Peek() != ')') return Err("expected ')' in lab");
      ++pos_;
      return Formula::Label(var, label);
    }

    // Relation atom: NAME '(' ... ')' where NAME is not reserved and the
    // next non-space char is '(' AND the atom is not followed by '=' --
    // disambiguated by the grammar: terms never start with NAME '('
    // except val/attr, which are reserved.
    if (!word.empty() && ReservedWords().count(word) == 0) {
      std::size_t after = pos_ + word.size();
      std::size_t probe = after;
      while (probe < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[probe]))) {
        ++probe;
      }
      if (probe < src_.size() && src_[probe] == '(') {
        pos_ = probe + 1;
        std::vector<Term> args;
        SkipSpace();
        if (Peek() == ')') {
          ++pos_;
          return Formula::Relation(word, std::move(args));
        }
        while (true) {
          TREEWALK_ASSIGN_OR_RETURN(Term t, ParseTermExpr());
          args.push_back(std::move(t));
          SkipSpace();
          if (Peek() == ',') {
            ++pos_;
            continue;
          }
          break;
        }
        if (Peek() != ')') return Err("expected ')' in relation atom");
        ++pos_;
        return Formula::Relation(word, std::move(args));
      }
    }

    // Equality / inequality.
    TREEWALK_ASSIGN_OR_RETURN(Term left, ParseTermExpr());
    SkipSpace();
    bool negate = false;
    if (Peek() == '!' && PeekAt(1) == '=') {
      negate = true;
      pos_ += 2;
    } else if (Peek() == '=') {
      ++pos_;
    } else {
      return Err("expected '=' or '!=' after term");
    }
    TREEWALK_ASSIGN_OR_RETURN(Term right, ParseTermExpr());
    Formula eq = Formula::Eq(std::move(left), std::move(right));
    return negate ? Formula::Not(eq) : eq;
  }

  Result<Term> ParseTermExpr() {
    SkipSpace();
    char c = Peek();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
      if (pos_ == start + (c == '-' ? 1u : 0u)) return Err("expected number");
      return Term::Int(static_cast<DataValue>(std::strtoll(
          std::string(src_.substr(start, pos_ - start)).c_str(), nullptr,
          10)));
    }
    if (c == '"') {
      ++pos_;
      std::string text;
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) ++pos_;
        text.push_back(src_[pos_++]);
      }
      if (pos_ >= src_.size()) return Err("unclosed string");
      ++pos_;
      return Term::Str(std::move(text));
    }
    std::string word = PeekWord();
    if (word.empty()) return Err("expected term");
    if (word == "val") {
      pos_ += word.size();
      SkipSpace();
      if (Peek() != '(') return Err("expected '(' after val");
      ++pos_;
      SkipSpace();
      std::string attr = PeekWord();
      if (attr.empty()) return Err("expected attribute in val");
      pos_ += attr.size();
      SkipSpace();
      if (Peek() != ',') return Err("expected ',' in val");
      ++pos_;
      SkipSpace();
      std::string var = PeekWord();
      if (var.empty()) return Err("expected variable in val");
      pos_ += var.size();
      SkipSpace();
      if (Peek() != ')') return Err("expected ')' in val");
      ++pos_;
      return Term::AttrOf(attr, var);
    }
    if (word == "attr") {
      pos_ += word.size();
      SkipSpace();
      if (Peek() != '(') return Err("expected '(' after attr");
      ++pos_;
      SkipSpace();
      std::string attr = PeekWord();
      if (attr.empty()) return Err("expected attribute in attr");
      pos_ += attr.size();
      SkipSpace();
      if (Peek() != ')') return Err("expected ')' in attr");
      ++pos_;
      return Term::CurrentAttr(attr);
    }
    if (ReservedWords().count(word) > 0) {
      return Err("reserved word '" + word + "' used as a term");
    }
    pos_ += word.size();
    return Term::Var(std::move(word));
  }

  Result<std::pair<std::string, std::string>> ParseVarPair() {
    SkipSpace();
    if (Peek() != '(') return Err("expected '('");
    ++pos_;
    SkipSpace();
    std::string x = PeekWord();
    if (x.empty()) return Err("expected variable");
    pos_ += x.size();
    SkipSpace();
    if (Peek() != ',') return Err("expected ','");
    ++pos_;
    SkipSpace();
    std::string y = PeekWord();
    if (y.empty()) return Err("expected variable");
    pos_ += y.size();
    SkipSpace();
    if (Peek() != ')') return Err("expected ')'");
    ++pos_;
    return std::make_pair(x, y);
  }

  Result<std::string> ParseParenVar() {
    SkipSpace();
    if (Peek() != '(') return Err("expected '('");
    ++pos_;
    SkipSpace();
    std::string x = PeekWord();
    if (x.empty()) return Err("expected variable");
    pos_ += x.size();
    SkipSpace();
    if (Peek() != ')') return Err("expected ')'");
    ++pos_;
    return x;
  }

  /// Like PeekWord() but also accepts the '#'-prefixed delimiter labels
  /// (#top, #open, #close, #leaf) as label names in lab(., .).
  std::string PeekLabel() {
    SkipSpace();
    std::size_t i = pos_;
    if (i >= src_.size()) return "";
    char c = src_[i];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_' &&
        c != '#') {
      return "";
    }
    while (i < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[i])) ||
            src_[i] == '_' || src_[i] == '#' || src_[i] == '-')) {
      ++i;
    }
    return std::string(src_.substr(pos_, i - pos_));
  }

  /// Returns the identifier starting at the current position (after
  /// whitespace) without consuming it.
  std::string PeekWord() {
    SkipSpace();
    std::size_t i = pos_;
    if (i >= src_.size()) return "";
    char c = src_[i];
    if (!std::isalpha(static_cast<unsigned char>(c)) && c != '_') return "";
    while (i < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[i])) ||
            src_[i] == '_' || src_[i] == '\'')) {
      ++i;
    }
    return std::string(src_.substr(pos_, i - pos_));
  }

  bool ConsumeOp(std::string_view op) {
    SkipSpace();
    if (src_.substr(pos_, op.size()) == op) {
      // Don't let '->' consume the tail of '<->'.
      pos_ += op.size();
      return true;
    }
    return false;
  }

  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char PeekAt(std::size_t offset) const {
    return pos_ + offset < src_.size() ? src_[pos_ + offset] : '\0';
  }
  void SkipSpace() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }
  Status Err(std::string message) const {
    return InvalidArgument(message + " at offset " + std::to_string(pos_));
  }

  /// Guards every recursive production (parens, prefix operators, the
  /// right-associative '->'): adversarially deep input is rejected as
  /// kInvalidArgument instead of overflowing the parser's stack.  The
  /// caller decrements depth_ after its recursive call returns.
  Status EnterNesting() {
    if (depth_ >= kMaxFormulaNestingDepth) {
      return Err("formula nesting exceeds depth limit " +
                 std::to_string(kMaxFormulaNestingDepth));
    }
    ++depth_;
    return Status::Ok();
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Formula> ParseFormula(std::string_view source) {
  return FormulaParser(source).Parse();
}

}  // namespace treewalk
