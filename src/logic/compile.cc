#include "src/logic/compile.h"

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/failpoint.h"
#include "src/logic/normalize.h"
#include "src/tree/interval_matrix.h"

namespace treewalk {

namespace {

/// Non-owning shared_ptr view of index-owned data (aliasing constructor
/// with an empty owner).  Only used while the index is alive; the final
/// CompiledSelector payload is deep-copied.
std::shared_ptr<const NodeSet> Alias(const NodeSet& s) {
  return std::shared_ptr<const NodeSet>(std::shared_ptr<const void>(), &s);
}
std::shared_ptr<const NodeMatrix> Alias(const NodeMatrix& m) {
  return std::shared_ptr<const NodeMatrix>(std::shared_ptr<const void>(), &m);
}
std::shared_ptr<const IntervalMatrix> Alias(const IntervalMatrix& m) {
  return std::shared_ptr<const IntervalMatrix>(std::shared_ptr<const void>(),
                                               &m);
}

void FlattenConnective(FormulaKind kind, const Formula& f,
                       std::vector<Formula>& out) {
  if (f.node().kind == kind) {
    FlattenConnective(kind, f.node().children[0], out);
    FlattenConnective(kind, f.node().children[1], out);
  } else {
    out.push_back(f);
  }
}

bool MentionsVar(const Formula& f, const std::string& v) {
  return f.FreeVariables().count(v) > 0;
}

}  // namespace

/// One compilation unit: a scratch op DAG plus variable-slot scope over
/// one AxisIndex.  Named (not anonymous) so the Compiled* classes can
/// befriend it.
class Compiler {
 public:
  Compiler(const AxisIndex& index, AxisRepr repr)
      : index_(index), tree_(index.tree()), n_(index.size()),
        governor_(index.governor()),
        repr_(ResolveAxisRepr(repr, index.size())) {}

  Result<CompiledSelector> Selector(const Formula& formula,
                                    const std::string& x,
                                    const std::string& y) {
    TREEWALK_FAILPOINT("compiler/compile");
    TREEWALK_RETURN_IF_ERROR(GovernorCheckDeadlineNow(governor_));
    if (!formula.valid()) return InvalidArgument("empty formula");
    if (n_ == 0) return FailedPrecondition("cannot compile on an empty tree");
    if (x == y) {
      return FailedPrecondition("selector variables must be distinct");
    }
    TREEWALK_RETURN_IF_ERROR(ValidateTreeFormula(formula));
    for (const std::string& v : formula.FreeVariables()) {
      if (v != x && v != y) {
        return InvalidArgument("selector has unexpected free variable '" + v +
                               "'");
      }
    }
    binding_[x] = 0;
    binding_[y] = 1;
    next_slot_ = 2;
    TREEWALK_ASSIGN_OR_RETURN(
        Val v, CompileNode(Miniscope(ToNegationNormalForm(formula))));
    TREEWALK_ASSIGN_OR_RETURN(std::vector<OpValue> vals,
                              EvaluateOpsGoverned(ops_, n_, governor_));
    CompiledSelector out;
    out.n_ = n_;
    out.repr_ = repr_;
    switch (v.shape) {
      case Shape::kBool:
        out.shape_ = CompiledSelector::Shape::kBool;
        out.literal_ = vals[v.op].b;
        break;
      case Shape::kSet:
        out.shape_ = v.a == 0 ? CompiledSelector::Shape::kSetX
                              : CompiledSelector::Shape::kSetY;
        out.set_ = std::make_shared<NodeSet>(*vals[v.op].set);
        break;
      case Shape::kMat:
        assert(v.a == 0 && v.b == 1);
        out.shape_ = CompiledSelector::Shape::kMat;
        // The interval copy shares (co-owns) the evaluation's immutable
        // span pools, so it stays self-contained after the index dies
        // without re-materializing anything.
        if (vals[v.op].imat != nullptr) {
          out.imat_ = std::make_shared<IntervalMatrix>(*vals[v.op].imat);
        } else {
          out.mat_ = std::make_shared<NodeMatrix>(*vals[v.op].mat);
        }
        break;
    }
    return out;
  }

  Result<CompiledSentence> Sentence(const Formula& formula) {
    TREEWALK_FAILPOINT("compiler/compile");
    TREEWALK_RETURN_IF_ERROR(GovernorCheckDeadlineNow(governor_));
    if (!formula.valid()) return InvalidArgument("empty formula");
    if (n_ == 0) return FailedPrecondition("cannot compile on an empty tree");
    TREEWALK_RETURN_IF_ERROR(ValidateTreeFormula(formula));
    if (!formula.FreeVariables().empty()) {
      return InvalidArgument("sentence expected, found free variables");
    }
    TREEWALK_ASSIGN_OR_RETURN(
        Val v, CompileNode(Miniscope(ToNegationNormalForm(formula))));
    if (v.shape != Shape::kBool) {
      return Internal("sentence compiled to an open shape");
    }
    TREEWALK_ASSIGN_OR_RETURN(std::vector<OpValue> vals,
                              EvaluateOpsGoverned(ops_, n_, governor_));
    CompiledSentence out;
    out.value_ = vals[v.op].b;
    return out;
  }

 private:
  /// Shape of a compiled subformula value.  kSet carries its variable's
  /// slot in `a`; kMat carries (row, col) slots in (a, b) with a < b.
  /// Slots are assigned in scope order (free vars first, each quantifier
  /// strictly larger), so a quantified variable is always the column of
  /// any matrix it appears in and elimination is always a row reduction.
  enum class Shape { kBool, kSet, kMat };
  struct Val {
    Shape shape = Shape::kBool;
    int op = -1;
    int a = -1;
    int b = -1;
  };

  // --- Op emission with hash-consing. --------------------------------

  int Emit(Op op, std::uint64_t extra) {
    std::array<std::uint64_t, 4> key = {static_cast<std::uint64_t>(op.kind),
                                        static_cast<std::uint64_t>(op.a),
                                        static_cast<std::uint64_t>(op.b),
                                        extra};
    auto [it, inserted] = cse_.try_emplace(key, static_cast<int>(ops_.size()));
    if (inserted) ops_.push_back(std::move(op));
    return it->second;
  }
  int EmitConst(bool literal) {
    Op op;
    op.kind = OpKind::kConstBool;
    op.literal = literal;
    return Emit(std::move(op), literal ? 1 : 0);
  }
  int EmitLoadSet(std::shared_ptr<const NodeSet> s) {
    std::uint64_t extra = reinterpret_cast<std::uintptr_t>(s.get());
    Op op;
    op.kind = OpKind::kLoadSet;
    op.set = std::move(s);
    return Emit(std::move(op), extra);
  }
  int EmitLoadMat(std::shared_ptr<const NodeMatrix> m) {
    std::uint64_t extra = reinterpret_cast<std::uintptr_t>(m.get());
    Op op;
    op.kind = OpKind::kLoadMat;
    op.mat = std::move(m);
    return Emit(std::move(op), extra);
  }
  int EmitLoadIMat(std::shared_ptr<const IntervalMatrix> m) {
    std::uint64_t extra = reinterpret_cast<std::uintptr_t>(m.get());
    Op op;
    op.kind = OpKind::kLoadMat;
    op.imat = std::move(m);
    return Emit(std::move(op), extra);
  }
  int Emit1(OpKind kind, int a) {
    Op op;
    op.kind = kind;
    op.a = a;
    // One Compiler compiles under one representation, so the flag needs
    // no slot in the hash-cons key.
    if (kind == OpKind::kSetToMatRow || kind == OpKind::kSetToMatCol) {
      op.interval = interval();
    }
    return Emit(std::move(op), 0);
  }
  int Emit2(OpKind kind, int a, int b) {
    Op op;
    op.kind = kind;
    op.a = a;
    op.b = b;
    return Emit(std::move(op), 0);
  }
  int EmitCompose(int a, int b, int guard) {
    Op op;
    op.kind = OpKind::kCompose;
    op.a = a;
    op.b = b;
    op.c = guard;
    // guard participates in identity: same (P, Q) under different
    // guards are different joins.
    return Emit(std::move(op), static_cast<std::uint64_t>(guard + 1));
  }

  // --- Shape algebra. -------------------------------------------------

  static Val BoolVal(int op) { return Val{Shape::kBool, op, -1, -1}; }
  static Val SetVal(int op, int slot) { return Val{Shape::kSet, op, slot, -1}; }
  static Val MatVal(int op, int row, int col) {
    assert(row < col);
    return Val{Shape::kMat, op, row, col};
  }

  Val Negate(const Val& v) {
    switch (v.shape) {
      case Shape::kBool:
        return BoolVal(Emit1(OpKind::kNotBool, v.op));
      case Shape::kSet:
        return SetVal(Emit1(OpKind::kNotSet, v.op), v.a);
      case Shape::kMat:
        return MatVal(Emit1(OpKind::kNotMat, v.op), v.a, v.b);
    }
    return v;
  }

  /// Lifts `v` to a matrix over slot pair (row, col); v's variables must
  /// be a subset of {row, col}.
  Val LiftToMat(const Val& v, int row, int col) {
    switch (v.shape) {
      case Shape::kBool: {
        int s = Emit1(OpKind::kBoolToSet, v.op);
        return MatVal(Emit1(OpKind::kSetToMatRow, s), row, col);
      }
      case Shape::kSet:
        assert(v.a == row || v.a == col);
        return MatVal(Emit1(v.a == row ? OpKind::kSetToMatRow
                                       : OpKind::kSetToMatCol,
                            v.op),
                      row, col);
      case Shape::kMat:
        assert(v.a == row && v.b == col);
        return v;
    }
    return v;
  }

  /// And/Or of two compiled values, lifting shapes as needed.  Fails
  /// exactly when the combination needs three or more distinct
  /// variables (the width-2 representation limit).
  Result<Val> Combine(bool is_and, const Val& va, const Val& vb) {
    // Canonicalize: order by shape so Bool comes first, Mat last.
    if (static_cast<int>(va.shape) > static_cast<int>(vb.shape)) {
      return Combine(is_and, vb, va);
    }
    switch (va.shape) {
      case Shape::kBool:
        switch (vb.shape) {
          case Shape::kBool:
            return BoolVal(Emit2(is_and ? OpKind::kAndBool : OpKind::kOrBool,
                                 va.op, vb.op));
          case Shape::kSet: {
            int s = Emit1(OpKind::kBoolToSet, va.op);
            return SetVal(Emit2(is_and ? OpKind::kAndSet : OpKind::kOrSet, s,
                                vb.op),
                          vb.a);
          }
          case Shape::kMat: {
            Val lifted = LiftToMat(va, vb.a, vb.b);
            return MatVal(Emit2(is_and ? OpKind::kAndMat : OpKind::kOrMat,
                                lifted.op, vb.op),
                          vb.a, vb.b);
          }
        }
        break;
      case Shape::kSet:
        switch (vb.shape) {
          case Shape::kSet: {
            if (va.a == vb.a) {
              return SetVal(Emit2(is_and ? OpKind::kAndSet : OpKind::kOrSet,
                                  va.op, vb.op),
                            va.a);
            }
            int row = va.a < vb.a ? va.a : vb.a;
            int col = va.a < vb.a ? vb.a : va.a;
            Val la = LiftToMat(va, row, col);
            Val lb = LiftToMat(vb, row, col);
            return MatVal(Emit2(is_and ? OpKind::kAndMat : OpKind::kOrMat,
                                la.op, lb.op),
                          row, col);
          }
          case Shape::kMat: {
            if (va.a != vb.a && va.a != vb.b) {
              return FailedPrecondition(
                  "subformula needs more than two variables");
            }
            Val la = LiftToMat(va, vb.a, vb.b);
            return MatVal(Emit2(is_and ? OpKind::kAndMat : OpKind::kOrMat,
                                la.op, vb.op),
                          vb.a, vb.b);
          }
          default:
            break;
        }
        break;
      case Shape::kMat:
        if (va.a != vb.a || va.b != vb.b) {
          return FailedPrecondition("subformula needs more than two variables");
        }
        return MatVal(Emit2(is_and ? OpKind::kAndMat : OpKind::kOrMat, va.op,
                            vb.op),
                      va.a, va.b);
    }
    return Internal("unreachable shape combination");
  }

  Result<Val> CombineAll(bool is_and, const std::vector<Val>& vals) {
    assert(!vals.empty());
    Val acc = vals[0];
    for (std::size_t i = 1; i < vals.size(); ++i) {
      TREEWALK_ASSIGN_OR_RETURN(acc, Combine(is_and, acc, vals[i]));
    }
    return acc;
  }

  // --- Miniscoping. ----------------------------------------------------

  /// Pushes quantifiers inward at the formula level (NNF input):
  /// exists distributes over or (forall over and), and conjuncts
  /// (disjuncts) not mentioning the quantified variable are pulled out
  /// of its scope — sound because the domain is nonempty.  This runs
  /// *before* compilation so that a pulled-out conjunct lands at the
  /// scope of the quantifier that can join it: without the pass,
  /// exists z exists w (E(x,z) & E(z,w) & E(w,y)) recombines E(x,z)
  /// inside the inner exists, where it needs three variables; after it,
  /// the conjunct sits under exists z, where the guarded join pairs it
  /// with the composed inner relation.
  Formula Miniscope(const Formula& f) {
    const FormulaNode& node = f.node();
    switch (node.kind) {
      case FormulaKind::kNot:
        return Formula::Not(Miniscope(node.children[0]));
      case FormulaKind::kAnd:
        return Formula::And(Miniscope(node.children[0]),
                            Miniscope(node.children[1]));
      case FormulaKind::kOr:
        return Formula::Or(Miniscope(node.children[0]),
                           Miniscope(node.children[1]));
      case FormulaKind::kImplies:
        return Formula::Implies(Miniscope(node.children[0]),
                                Miniscope(node.children[1]));
      case FormulaKind::kIff:
        return Formula::Iff(Miniscope(node.children[0]),
                            Miniscope(node.children[1]));
      case FormulaKind::kExists:
      case FormulaKind::kForall:
        return MiniscopeQuantifier(node.kind == FormulaKind::kExists,
                                   node.var, Miniscope(node.children[0]));
      default:
        return f;
    }
  }

  Formula MiniscopeQuantifier(bool exists, const std::string& w,
                              const Formula& body) {
    if (!MentionsVar(body, w)) return body;  // vacuous on a nonempty domain
    FormulaKind dual = exists ? FormulaKind::kOr : FormulaKind::kAnd;
    if (body.node().kind == dual) {
      Formula a = MiniscopeQuantifier(exists, w, body.node().children[0]);
      Formula b = MiniscopeQuantifier(exists, w, body.node().children[1]);
      return exists ? Formula::Or(a, b) : Formula::And(a, b);
    }
    std::vector<Formula> parts;
    FlattenConnective(exists ? FormulaKind::kAnd : FormulaKind::kOr, body,
                      parts);
    std::vector<Formula> with_w, without_w;
    for (const Formula& p : parts) {
      (MentionsVar(p, w) ? with_w : without_w).push_back(p);
    }
    Formula inner_body =
        exists ? Formula::AndAll(with_w) : Formula::OrAll(with_w);
    Formula inner =
        exists ? Formula::Exists(w, inner_body) : Formula::Forall(w, inner_body);
    if (without_w.empty()) return inner;
    without_w.push_back(inner);
    return exists ? Formula::AndAll(without_w) : Formula::OrAll(without_w);
  }

  // --- Formula compilation. -------------------------------------------

  Result<int> SlotOf(const std::string& var) {
    auto it = binding_.find(var);
    if (it == binding_.end()) {
      return InvalidArgument("unbound free variable '" + var + "'");
    }
    return it->second;
  }

  Result<Val> CompileNode(const Formula& f) {
    const FormulaNode& node = f.node();
    switch (node.kind) {
      case FormulaKind::kTrue:
        return BoolVal(EmitConst(true));
      case FormulaKind::kFalse:
        return BoolVal(EmitConst(false));
      case FormulaKind::kNot: {
        TREEWALK_ASSIGN_OR_RETURN(Val v, CompileNode(node.children[0]));
        return Negate(v);
      }
      case FormulaKind::kAnd:
      case FormulaKind::kOr: {
        TREEWALK_ASSIGN_OR_RETURN(Val a, CompileNode(node.children[0]));
        TREEWALK_ASSIGN_OR_RETURN(Val b, CompileNode(node.children[1]));
        return Combine(node.kind == FormulaKind::kAnd, a, b);
      }
      case FormulaKind::kImplies:
        // NNF removes these; kept for robustness on raw input.
        return CompileNode(
            Formula::Or(Formula::Not(node.children[0]), node.children[1]));
      case FormulaKind::kIff:
        return CompileNode(Formula::Or(
            Formula::And(node.children[0], node.children[1]),
            Formula::And(Formula::Not(node.children[0]),
                         Formula::Not(node.children[1]))));
      case FormulaKind::kExists:
        return CompileQuantifier(/*exists=*/true, node.var, node.children[0]);
      case FormulaKind::kForall:
        return CompileQuantifier(/*exists=*/false, node.var, node.children[0]);
      case FormulaKind::kAtom:
        return CompileAtom(node);
    }
    return Internal("unknown formula kind");
  }

  /// Quantifier compilation: miniscope, bind a fresh (strictly largest)
  /// slot, compile the parts that mention the variable, and eliminate
  /// the slot by a row reduction — or, when the parts straddle two other
  /// variables, by the guarded-join composition.  Scope extraction
  /// (exists w (A & B) = A & exists w B for w-free A, dually for
  /// forall/or) relies on the domain being nonempty, which Selector()/
  /// Sentence() guarantee.
  Result<Val> CompileQuantifier(bool exists, const std::string& w,
                                const Formula& body) {
    FormulaKind dual = exists ? FormulaKind::kOr : FormulaKind::kAnd;
    if (body.node().kind == dual) {
      // exists distributes over or (forall over and).
      TREEWALK_ASSIGN_OR_RETURN(
          Val a, CompileQuantifier(exists, w, body.node().children[0]));
      TREEWALK_ASSIGN_OR_RETURN(
          Val b, CompileQuantifier(exists, w, body.node().children[1]));
      return Combine(!exists, a, b);
    }

    std::vector<Formula> parts;
    FlattenConnective(exists ? FormulaKind::kAnd : FormulaKind::kOr, body,
                      parts);
    std::vector<Formula> with_w, without_w;
    for (const Formula& p : parts) {
      (MentionsVar(p, w) ? with_w : without_w).push_back(p);
    }

    std::vector<Val> outer;
    outer.reserve(without_w.size() + 1);
    for (const Formula& p : without_w) {
      TREEWALK_ASSIGN_OR_RETURN(Val v, CompileNode(p));
      outer.push_back(v);
    }
    if (!with_w.empty()) {
      TREEWALK_ASSIGN_OR_RETURN(Val inner,
                                EliminateVar(exists, w, with_w));
      outer.push_back(inner);
    }
    return CombineAll(exists, outer);
  }

  /// Compiles `parts` (each mentioning `w`) under a fresh binding of `w`
  /// and returns their conjunction (exists) / disjunction (forall) with
  /// `w` eliminated.
  Result<Val> EliminateVar(bool exists, const std::string& w,
                           const std::vector<Formula>& parts) {
    auto saved = binding_.find(w);
    int saved_slot = saved != binding_.end() ? saved->second : -1;
    int slot_w = next_slot_++;
    binding_[w] = slot_w;

    std::vector<Val> vals;
    vals.reserve(parts.size());
    Status failure = Status::Ok();
    for (const Formula& p : parts) {
      Result<Val> r = CompileNode(p);
      if (!r.ok()) {
        failure = r.status();
        break;
      }
      vals.push_back(*r);
    }

    Result<Val> out = failure.ok() ? Reduce(exists, slot_w, vals)
                                   : Result<Val>(failure);

    if (saved_slot >= 0) {
      binding_[w] = saved_slot;
    } else {
      binding_.erase(w);
    }
    return out;
  }

  Result<Val> Reduce(bool exists, int slot_w, const std::vector<Val>& vals) {
    Result<Val> folded = CombineAll(exists, vals);
    Val v;
    if (folded.ok()) {
      v = *folded;
    } else {
      // Width overflow: the parts straddle two variables besides w.
      // Try the guarded join.
      TREEWALK_ASSIGN_OR_RETURN(v, GuardedJoin(exists, slot_w, vals));
      return v;  // join already eliminated w
    }
    switch (v.shape) {
      case Shape::kBool:
        return v;  // w unused; exists/forall over a nonempty domain
      case Shape::kSet:
        if (v.a != slot_w) return v;
        return BoolVal(
            Emit1(exists ? OpKind::kAnySet : OpKind::kAllSet, v.op));
      case Shape::kMat:
        // slot_w is the largest live slot, so it must be the column.
        assert(v.b == slot_w);
        return SetVal(Emit1(exists ? OpKind::kAnyRow : OpKind::kAllRow, v.op),
                      v.a);
    }
    return Internal("unreachable reduce shape");
  }

  /// exists w (P(a, w) & Q(b, w)) as a boolean composition
  /// R[u][v] = exists w P[u][w] & Q[v][w] (kCompose); the forall dual
  /// goes through De Morgan: forall w (P | Q) = !exists w (!P & !Q).
  /// `vals` are the compiled w-parts; each must be Set(w) or Mat(*, w)
  /// with exactly two distinct row variables among them.
  Result<Val> GuardedJoin(bool exists, int slot_w,
                          const std::vector<Val>& vals) {
    std::vector<Val> wsets;
    std::map<int, std::vector<Val>> groups;  // row slot -> mats
    for (const Val& v : vals) {
      if (v.shape == Shape::kSet && v.a == slot_w) {
        wsets.push_back(v);
      } else if (v.shape == Shape::kMat && v.b == slot_w) {
        groups[v.a].push_back(v);
      } else {
        return FailedPrecondition("subformula needs more than two variables");
      }
    }
    if (groups.size() != 2) {
      return FailedPrecondition("subformula needs more than two variables");
    }
    auto it = groups.begin();
    int slot_a = it->first;
    TREEWALK_ASSIGN_OR_RETURN(Val mat_a, CombineAll(exists, it->second));
    ++it;
    int slot_b = it->first;
    TREEWALK_ASSIGN_OR_RETURN(Val mat_b, CombineAll(exists, it->second));
    // Fold parts that mention only w into the join's guard set: the
    // composition then tests C[w] per joined member instead of paying
    // for a column-broadcast matrix and an intersection — on the
    // interval representation that broadcast is the difference between
    // an O(n + spans) join and an O(n * spans) one.  Under the forall
    // dual (forall w (P | Q | S) = !exists w (!P & !Q & !S)) the guard
    // is the complement of the disjoined w-sets.
    int guard = -1;
    for (const Val& s : wsets) {
      guard = guard < 0 ? s.op
                        : Emit2(exists ? OpKind::kAndSet : OpKind::kOrSet,
                                guard, s.op);
    }
    if (guard >= 0 && !exists) guard = Emit1(OpKind::kNotSet, guard);
    int pa = mat_a.op, pb = mat_b.op;
    if (!exists) {
      pa = Emit1(OpKind::kNotMat, pa);
      pb = Emit1(OpKind::kNotMat, pb);
    }
    // kCompose rows come from the first operand; order so the smaller
    // slot is the row, keeping the result canonical.
    int composed = slot_a < slot_b ? EmitCompose(pa, pb, guard)
                                   : EmitCompose(pb, pa, guard);
    if (!exists) composed = Emit1(OpKind::kNotMat, composed);
    int row = slot_a < slot_b ? slot_a : slot_b;
    int col = slot_a < slot_b ? slot_b : slot_a;
    return MatVal(composed, row, col);
  }

  // --- Atoms. ----------------------------------------------------------

  Result<Val> CompileAtom(const FormulaNode& node) {
    switch (node.atom) {
      case AtomKind::kRoot:
        return UnarySet(node.terms[0], index_.Roots());
      case AtomKind::kLeaf:
        return UnarySet(node.terms[0], index_.Leaves());
      case AtomKind::kFirst:
        return UnarySet(node.terms[0], index_.FirstChildren());
      case AtomKind::kLast:
        return UnarySet(node.terms[0], index_.LastChildren());
      case AtomKind::kLabel:
        return UnarySet(node.terms[0], index_.LabelSet(node.symbol));
      case AtomKind::kEdge:
        return AxisAtom(node, &AxisIndex::TryEdgeMatrix,
                        &AxisIndex::TryEdgeIntervals);
      case AtomKind::kSibling:
        return AxisAtom(node, &AxisIndex::TrySiblingMatrix,
                        &AxisIndex::TrySiblingIntervals);
      case AtomKind::kDescendant:
        return AxisAtom(node, &AxisIndex::TryDescendantMatrix,
                        &AxisIndex::TryDescendantIntervals);
      case AtomKind::kSucc:
        return AxisAtom(node, &AxisIndex::TrySuccMatrix,
                        &AxisIndex::TrySuccIntervals);
      case AtomKind::kEq: {
        const Term& a = node.terms[0];
        const Term& b = node.terms[1];
        if (a.kind == Term::Kind::kVar) return NodeEq(a, b);
        return DataEq(a, b);
      }
      case AtomKind::kRelation:
        return FailedPrecondition("store atom in a tree formula");
    }
    return Internal("unknown atom kind");
  }

  Result<Val> UnarySet(const Term& t, const NodeSet& s) {
    TREEWALK_ASSIGN_OR_RETURN(int slot, SlotOf(t.var));
    return SetVal(EmitLoadSet(Alias(s)), slot);
  }

  /// Loads the axis relation named by the (dense, interval) accessor
  /// pair in this compilation's representation.
  Result<Val> AxisAtom(const FormulaNode& node,
                       Result<const NodeMatrix*> (AxisIndex::*dense)() const,
                       Result<const IntervalMatrix*> (AxisIndex::*spans)()
                           const) {
    if (interval()) {
      TREEWALK_ASSIGN_OR_RETURN(const IntervalMatrix* m, (index_.*spans)());
      return BinaryAxis(node, *m);
    }
    TREEWALK_ASSIGN_OR_RETURN(const NodeMatrix* m, (index_.*dense)());
    return BinaryAxis(node, *m);
  }

  /// Irreflexive axis relation R(u, v): loads R (or its cached
  /// transpose when the terms arrive in descending slot order) as a
  /// matrix; R(x, x) is uniformly false for all four axes.
  Result<Val> BinaryAxis(const FormulaNode& node, const NodeMatrix& rel) {
    TREEWALK_ASSIGN_OR_RETURN(int su, SlotOf(node.terms[0].var));
    TREEWALK_ASSIGN_OR_RETURN(int sv, SlotOf(node.terms[1].var));
    if (su == sv) {
      return SetVal(EmitLoadSet(Alias(index_.Empty())), su);
    }
    if (su < sv) {
      return MatVal(EmitLoadMat(Alias(rel)), su, sv);
    }
    TREEWALK_ASSIGN_OR_RETURN(std::shared_ptr<const NodeMatrix> t,
                              Transposed(rel));
    return MatVal(EmitLoadMat(std::move(t)), sv, su);
  }

  Result<Val> BinaryAxis(const FormulaNode& node, const IntervalMatrix& rel) {
    TREEWALK_ASSIGN_OR_RETURN(int su, SlotOf(node.terms[0].var));
    TREEWALK_ASSIGN_OR_RETURN(int sv, SlotOf(node.terms[1].var));
    if (su == sv) {
      return SetVal(EmitLoadSet(Alias(index_.Empty())), su);
    }
    if (su < sv) {
      return MatVal(EmitLoadIMat(Alias(rel)), su, sv);
    }
    TREEWALK_ASSIGN_OR_RETURN(std::shared_ptr<const IntervalMatrix> t,
                              Transposed(rel));
    return MatVal(EmitLoadIMat(std::move(t)), sv, su);
  }

  Result<Val> NodeEq(const Term& a, const Term& b) {
    TREEWALK_ASSIGN_OR_RETURN(int sa, SlotOf(a.var));
    TREEWALK_ASSIGN_OR_RETURN(int sb, SlotOf(b.var));
    if (sa == sb) {
      return SetVal(EmitLoadSet(Alias(index_.Full())), sa);
    }
    // The identity matrix is symmetric; no transpose needed.
    if (interval()) {
      TREEWALK_ASSIGN_OR_RETURN(const IntervalMatrix* id,
                                index_.TryIdentityIntervals());
      return MatVal(EmitLoadIMat(Alias(*id)), sa < sb ? sa : sb,
                    sa < sb ? sb : sa);
    }
    TREEWALK_ASSIGN_OR_RETURN(const NodeMatrix* id,
                              index_.TryIdentityMatrix());
    return MatVal(EmitLoadMat(Alias(*id)), sa < sb ? sa : sb,
                  sa < sb ? sb : sa);
  }

  Result<Val> DataEq(const Term& a, const Term& b) {
    bool a_attr = a.kind == Term::Kind::kAttrOfVar;
    bool b_attr = b.kind == Term::Kind::kAttrOfVar;
    if (!a_attr && !b_attr) {
      TREEWALK_ASSIGN_OR_RETURN(DataValue da, ConstData(a));
      TREEWALK_ASSIGN_OR_RETURN(DataValue db, ConstData(b));
      return BoolVal(EmitConst(da == db));
    }
    if (a_attr != b_attr) {
      const Term& attr_term = a_attr ? a : b;
      const Term& const_term = a_attr ? b : a;
      TREEWALK_ASSIGN_OR_RETURN(AttrId attr, AttrIdOf(attr_term));
      TREEWALK_ASSIGN_OR_RETURN(int slot, SlotOf(attr_term.var));
      TREEWALK_ASSIGN_OR_RETURN(DataValue v, ConstData(const_term));
      TREEWALK_ASSIGN_OR_RETURN(const NodeSet* s,
                                index_.TryAttrValueSet(attr, v));
      return SetVal(EmitLoadSet(Alias(*s)), slot);
    }
    TREEWALK_ASSIGN_OR_RETURN(AttrId aa, AttrIdOf(a));
    TREEWALK_ASSIGN_OR_RETURN(AttrId ab, AttrIdOf(b));
    TREEWALK_ASSIGN_OR_RETURN(int sa, SlotOf(a.var));
    TREEWALK_ASSIGN_OR_RETURN(int sb, SlotOf(b.var));
    if (sa == sb) {
      TREEWALK_ASSIGN_OR_RETURN(std::shared_ptr<const NodeSet> s,
                                AttrPairSet(aa, ab));
      return SetVal(EmitLoadSet(std::move(s)), sa);
    }
    // Canonical orientation: rows are the smaller slot's variable.
    AttrId row_attr = sa < sb ? aa : ab;
    AttrId col_attr = sa < sb ? ab : aa;
    if (interval()) {
      TREEWALK_ASSIGN_OR_RETURN(std::shared_ptr<const IntervalMatrix> m,
                                AttrPairIMat(row_attr, col_attr));
      return MatVal(EmitLoadIMat(std::move(m)), sa < sb ? sa : sb,
                    sa < sb ? sb : sa);
    }
    TREEWALK_ASSIGN_OR_RETURN(std::shared_ptr<const NodeMatrix> m,
                              AttrPairMat(row_attr, col_attr));
    return MatVal(EmitLoadMat(std::move(m)), sa < sb ? sa : sb,
                  sa < sb ? sb : sa);
  }

  Result<DataValue> ConstData(const Term& t) {
    switch (t.kind) {
      case Term::Kind::kIntConst:
        return t.value;
      case Term::Kind::kStrConst:
        return tree_.values().ValueFor(t.text);
      default:
        return FailedPrecondition("non-constant data term");
    }
  }

  Result<AttrId> AttrIdOf(const Term& t) {
    AttrId a = tree_.FindAttribute(t.attr);
    if (a == kNoAttr) {
      return InvalidArgument("tree has no attribute '" + t.attr + "'");
    }
    return a;
  }

  // --- Derived relation materialization (cached per compilation). ------
  //
  // These are compiler-owned (unlike the AxisIndex memos) and die with
  // the Compiler, so each is charged under kCompiledOps on first build;
  // the governed op evaluation releases only its own transient charges,
  // so these stay charged for the compilation's lifetime.

  Result<std::shared_ptr<const NodeMatrix>> Transposed(const NodeMatrix& m) {
    auto [it, inserted] = transposed_.try_emplace(&m);
    if (inserted) {
      Status charge = GovernorCharge(governor_, MemoryCategory::kCompiledOps,
                                     index_.MatrixBytes());
      if (!charge.ok()) {
        transposed_.erase(it);
        return charge;
      }
      it->second = std::make_shared<const NodeMatrix>(m.Transposed());
    }
    return it->second;
  }

  /// Interval counterpart: output size is data-dependent (O(input
  /// spans)), so construction runs against a transient charge that
  /// bounds its peak, and the survivor is then re-charged at its exact
  /// footprint for the compilation's lifetime like the dense caches.
  Result<std::shared_ptr<const IntervalMatrix>> Transposed(
      const IntervalMatrix& m) {
    auto found = itransposed_.find(&m);
    if (found != itransposed_.end()) return found->second;
    Result<IntervalMatrix> built = IntervalMatrix();
    {
      ScopedMemoryCharge building(governor_, MemoryCategory::kCompiledOps);
      built = IntervalMatrix::Transposed(
          m, governor_ != nullptr ? &building : nullptr);
      if (built.ok()) {
        TREEWALK_RETURN_IF_ERROR(GovernorCharge(governor_,
                                                MemoryCategory::kCompiledOps,
                                                (*built).ApproxBytes()));
      }
    }
    if (!built.ok()) return built.status();
    auto sp = std::make_shared<const IntervalMatrix>(std::move(built).value());
    itransposed_.emplace(&m, sp);
    return sp;
  }

  /// {u : attr(a, u) == attr(b, u)}.
  Result<std::shared_ptr<const NodeSet>> AttrPairSet(AttrId a, AttrId b) {
    auto [it, inserted] = attr_pair_sets_.try_emplace({a, b});
    if (inserted) {
      Status charge =
          GovernorCharge(governor_, MemoryCategory::kCompiledOps,
                         static_cast<std::int64_t>((n_ + 63) / 64 * 8 + 48));
      if (!charge.ok()) {
        attr_pair_sets_.erase(it);
        return charge;
      }
      auto s = std::make_shared<NodeSet>(n_);
      for (NodeId u = 0; u < static_cast<NodeId>(n_); ++u) {
        if (tree_.attr(a, u) == tree_.attr(b, u)) s->set(u);
      }
      it->second = std::move(s);
    }
    return it->second;
  }

  /// {(u, v) : attr(row_attr, u) == attr(col_attr, v)}: a value join
  /// over the attribute-value indexes.
  Result<std::shared_ptr<const NodeMatrix>> AttrPairMat(AttrId row_attr,
                                                        AttrId col_attr) {
    auto found = attr_pair_mats_.find({row_attr, col_attr});
    if (found != attr_pair_mats_.end()) return found->second;
    // Resolve the value indexes *before* charging for the matrix so an
    // error mid-build leaves neither a cache entry nor a stale charge.
    TREEWALK_ASSIGN_OR_RETURN(const std::vector<DataValue>* values,
                              index_.TryAttrValues(row_attr));
    TREEWALK_ASSIGN_OR_RETURN(const std::vector<DataValue>* col_values,
                              index_.TryAttrValues(col_attr));
    (void)col_values;
    TREEWALK_RETURN_IF_ERROR(GovernorCharge(
        governor_, MemoryCategory::kCompiledOps, index_.MatrixBytes()));
    auto m = std::make_shared<NodeMatrix>(n_);
    for (DataValue v : *values) {
      const NodeSet& cols = index_.AttrValueSet(col_attr, v);
      if (!cols.any()) continue;
      for (NodeId u : index_.AttrValueSet(row_attr, v).ToVector()) {
        m->RowUnion(u, cols);
      }
    }
    auto [it, inserted] = attr_pair_mats_.emplace(
        std::make_pair(row_attr, col_attr), std::move(m));
    (void)inserted;
    return it->second;
  }

  /// Interval carrier of the attribute value join: all rows whose
  /// row-attr value is v alias one span image of
  /// {u : attr(col_attr, u) == v}, so the matrix costs
  /// O(n + total column runs) instead of |rows| * n bits.
  Result<std::shared_ptr<const IntervalMatrix>> AttrPairIMat(AttrId row_attr,
                                                             AttrId col_attr) {
    auto found = attr_pair_imats_.find({row_attr, col_attr});
    if (found != attr_pair_imats_.end()) return found->second;
    TREEWALK_ASSIGN_OR_RETURN(const std::vector<DataValue>* values,
                              index_.TryAttrValues(row_attr));
    TREEWALK_ASSIGN_OR_RETURN(const std::vector<DataValue>* col_values,
                              index_.TryAttrValues(col_attr));
    (void)col_values;
    Result<IntervalMatrix> built = IntervalMatrix();
    {
      // Same charge discipline as the interval Transposed cache.
      ScopedMemoryCharge building(governor_, MemoryCategory::kCompiledOps);
      IntervalMatrixBuilder b(n_, governor_ != nullptr ? &building : nullptr);
      for (DataValue v : *values) {
        const NodeSet& cols = index_.AttrValueSet(col_attr, v);
        std::vector<NodeId> rows = index_.AttrValueSet(row_attr, v).ToVector();
        if (rows.empty() || !cols.any()) continue;
        // The builder latches its first failure and Finish() reports
        // it, so the span statuses need no per-call handling.
        NodeId run_begin = kNoNode, run_end = kNoNode;
        for (NodeId u : cols.ToVector()) {
          if (run_begin == kNoNode) {
            run_begin = u;
            run_end = u + 1;
          } else if (u == run_end) {
            ++run_end;
          } else {
            (void)b.AddSpan(run_begin, run_end);
            run_begin = u;
            run_end = u + 1;
          }
        }
        if (run_begin != kNoNode) (void)b.AddSpan(run_begin, run_end);
        (void)b.CommitRow(rows[0]);
        for (std::size_t i = 1; i < rows.size(); ++i) {
          (void)b.AliasRow(rows[i], rows[0]);
        }
      }
      built = std::move(b).Finish();
      if (built.ok()) {
        TREEWALK_RETURN_IF_ERROR(GovernorCharge(governor_,
                                                MemoryCategory::kCompiledOps,
                                                (*built).ApproxBytes()));
      }
    }
    if (!built.ok()) return built.status();
    auto sp = std::make_shared<const IntervalMatrix>(std::move(built).value());
    attr_pair_imats_.emplace(std::make_pair(row_attr, col_attr), sp);
    return sp;
  }

  bool interval() const { return repr_ == AxisRepr::kInterval; }

  const AxisIndex& index_;
  const Tree& tree_;
  std::size_t n_;
  ResourceGovernor* governor_ = nullptr;
  AxisRepr repr_ = AxisRepr::kDense;  ///< resolved; never kAuto

  std::vector<Op> ops_;
  std::map<std::array<std::uint64_t, 4>, int> cse_;
  std::map<std::string, int> binding_;
  int next_slot_ = 0;

  std::map<const NodeMatrix*, std::shared_ptr<const NodeMatrix>> transposed_;
  std::map<const IntervalMatrix*, std::shared_ptr<const IntervalMatrix>>
      itransposed_;
  std::map<std::pair<AttrId, AttrId>, std::shared_ptr<const NodeSet>>
      attr_pair_sets_;
  std::map<std::pair<AttrId, AttrId>, std::shared_ptr<const NodeMatrix>>
      attr_pair_mats_;
  std::map<std::pair<AttrId, AttrId>, std::shared_ptr<const IntervalMatrix>>
      attr_pair_imats_;
};

Result<CompiledSelector> CompileSelector(const AxisIndex& index,
                                         const Formula& formula,
                                         const std::string& x,
                                         const std::string& y, AxisRepr repr) {
  Compiler compiler(index, repr);
  return compiler.Selector(formula, x, y);
}

Result<CompiledSentence> CompileSentence(const AxisIndex& index,
                                         const Formula& formula,
                                         AxisRepr repr) {
  Compiler compiler(index, repr);
  return compiler.Sentence(formula);
}

}  // namespace treewalk
