#include "src/logic/normalize.h"

namespace treewalk {

namespace {

Formula Nnf(const Formula& f, bool negated);

/// NNF of "not f".
Formula NnfNegated(const Formula& f) { return Nnf(f, true); }

Formula Nnf(const Formula& f, bool negated) {
  const FormulaNode& n = f.node();
  switch (n.kind) {
    case FormulaKind::kTrue:
      return negated ? Formula::False() : Formula::True();
    case FormulaKind::kFalse:
      return negated ? Formula::True() : Formula::False();
    case FormulaKind::kNot:
      return Nnf(n.children[0], !negated);
    case FormulaKind::kAnd:
      return negated ? Formula::Or(NnfNegated(n.children[0]),
                                   NnfNegated(n.children[1]))
                     : Formula::And(Nnf(n.children[0], false),
                                    Nnf(n.children[1], false));
    case FormulaKind::kOr:
      return negated ? Formula::And(NnfNegated(n.children[0]),
                                    NnfNegated(n.children[1]))
                     : Formula::Or(Nnf(n.children[0], false),
                                   Nnf(n.children[1], false));
    case FormulaKind::kImplies:
      // a -> b  ==  !a | b.
      return negated ? Formula::And(Nnf(n.children[0], false),
                                    NnfNegated(n.children[1]))
                     : Formula::Or(NnfNegated(n.children[0]),
                                   Nnf(n.children[1], false));
    case FormulaKind::kIff:
      // a <-> b  ==  (a & b) | (!a & !b); negated: (a & !b) | (!a & b).
      if (negated) {
        return Formula::Or(
            Formula::And(Nnf(n.children[0], false),
                         NnfNegated(n.children[1])),
            Formula::And(NnfNegated(n.children[0]),
                         Nnf(n.children[1], false)));
      }
      return Formula::Or(
          Formula::And(Nnf(n.children[0], false), Nnf(n.children[1], false)),
          Formula::And(NnfNegated(n.children[0]),
                       NnfNegated(n.children[1])));
    case FormulaKind::kExists:
      return negated ? Formula::Forall(n.var, NnfNegated(n.children[0]))
                     : Formula::Exists(n.var, Nnf(n.children[0], false));
    case FormulaKind::kForall:
      return negated ? Formula::Exists(n.var, NnfNegated(n.children[0]))
                     : Formula::Forall(n.var, Nnf(n.children[0], false));
    case FormulaKind::kAtom:
      return negated ? Formula::Not(f) : f;
  }
  return f;
}

}  // namespace

Formula ToNegationNormalForm(const Formula& formula) {
  return Nnf(formula, false);
}

bool IsNegationNormalForm(const Formula& formula) {
  const FormulaNode& n = formula.node();
  switch (n.kind) {
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      return false;
    case FormulaKind::kNot:
      return n.children[0].node().kind == FormulaKind::kAtom;
    default:
      for (const Formula& c : n.children) {
        if (!IsNegationNormalForm(c)) return false;
      }
      return true;
  }
}

}  // namespace treewalk
