#ifndef TREEWALK_LOGIC_NORMALIZE_H_
#define TREEWALK_LOGIC_NORMALIZE_H_

#include "src/logic/formula.h"

namespace treewalk {

/// Negation normal form: eliminates kImplies / kIff and pushes kNot down
/// to atoms (De Morgan, quantifier dualization), preserving semantics on
/// every model.  Iff is expanded as (a & b) | (!a & !b), so the result
/// can be exponentially larger in the Iff-nesting depth (rare in
/// practice; guards and selectors in this library are Iff-shallow).
///
/// Constants are folded through negation (!true -> false); double
/// negations cancel.
Formula ToNegationNormalForm(const Formula& formula);

/// True iff the formula is in negation normal form: no kImplies / kIff,
/// and every kNot wraps an atom.
bool IsNegationNormalForm(const Formula& formula);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_NORMALIZE_H_
