#ifndef TREEWALK_LOGIC_SELECTOR_CACHE_H_
#define TREEWALK_LOGIC_SELECTOR_CACHE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/result.h"
#include "src/logic/bitset_eval.h"
#include "src/logic/compile.h"
#include "src/logic/formula.h"
#include "src/tree/axis_index.h"

namespace treewalk {

/// Persistent on-disk cache of compiled selector op-DAG results
/// ("TWSELC01", docs/SNAPSHOT.md §selector cache).  A CompiledSelector
/// is the materialized satisfier relation of phi(x, y) against one
/// tree, so the cache key is the pair (formula, tree) plus everything
/// that changes the materialized bytes:
///
///   formula_hash   FNV-1a over the formula's printed form and the
///                  (x, y) variable names — printed form, not
///                  Formula::StructuralHash(), because the key must be
///                  stable across processes;
///   tree_hash      TreeContentHash() of the tree compiled against;
///   version        kSnapshotVersion (bumping the snapshot format
///                  invalidates cached selectors too);
///   repr           the *resolved* AxisRepr (dense and interval
///                  payloads differ).
///
/// Entries are written atomically (tmp+rename), CRC-checked per
/// section, and carry the key they were computed for; a stale, corrupt,
/// or truncated entry loads as a non-OK Status and the caller falls
/// back to compiling — never a wrong answer, never a crash
/// (failpoint- and fuzz-proven).  Interval payloads persist their span
/// pools once plus per-row descriptors, so the pool sharing that makes
/// the representation O(n) survives the round trip (RetainedBytes() is
/// preserved).
struct SelectorCacheKey {
  std::uint64_t formula_hash = 0;
  std::uint64_t tree_hash = 0;
  AxisRepr repr = AxisRepr::kDense;
};

/// Process-stable formula-side hash of a cache key.
std::uint64_t StableFormulaHash(const Formula& formula, std::string_view x,
                                std::string_view y);

/// Serializes `selector` to a cache-entry image carrying `key`.
std::string EncodeSelectorCacheEntry(const SelectorCacheKey& key,
                                     const CompiledSelector& selector);

/// Validates an entry image and reconstructs the selector.  When
/// `expected_key` is non-null, a key mismatch (stale entry) is an
/// error.  Exposed for tests and the snapshot fuzz harness.
Result<CompiledSelector> DecodeSelectorCacheEntry(
    std::string_view bytes, const SelectorCacheKey* expected_key);

/// Directory of cache entries, one file per key
/// (`<dir>/<hex key>.twsel`).  Thread-safe: entries are immutable and
/// written atomically, so concurrent readers/writers (batch workers)
/// need no coordination.  Failpoints: selector_cache/load,
/// selector_cache/store.
class SelectorDiskCache {
 public:
  explicit SelectorDiskCache(std::string dir) : dir_(std::move(dir)) {}

  const std::string& dir() const { return dir_; }

  /// Loads and validates the entry for `key`; kNotFound when absent,
  /// other errors for corrupt/stale files (callers treat both as a
  /// miss and recompile).
  Result<CompiledSelector> Load(const SelectorCacheKey& key) const;

  /// Persists `selector` under `key` (atomic replace).
  Status Store(const SelectorCacheKey& key,
               const CompiledSelector& selector) const;

  /// Path the entry for `key` lives at.
  std::string EntryPath(const SelectorCacheKey& key) const;

 private:
  std::string dir_;
};

/// CompileSelector with a read-through disk cache: resolves `repr`
/// against the tree size, tries `cache` (when non-null), and falls back
/// to compiling — storing the fresh result best-effort.  A cache
/// failure of any kind (missing, stale, corrupt, injected fault) only
/// costs the compile it would have saved; hits, misses, stores, and
/// fallbacks are counted in the metrics registry
/// (treewalk_selector_cache_*_total).  `tree_hash` is
/// TreeContentHash() of the tree behind `index`, hoisted out so batch
/// runs hash each tree once.
Result<CompiledSelector> CompileSelectorCached(
    const AxisIndex& index, const Formula& formula, const std::string& x,
    const std::string& y, AxisRepr repr, const SelectorDiskCache* cache,
    std::uint64_t tree_hash);

}  // namespace treewalk

#endif  // TREEWALK_LOGIC_SELECTOR_CACHE_H_
