#ifndef TREEWALK_XTM_MACHINE_H_
#define TREEWALK_XTM_MACHINE_H_

#include <set>
#include <string>
#include <vector>

#include "src/automata/program.h"  // Move
#include "src/common/result.h"

namespace treewalk {

/// Movement of the work-tape head.
enum class TapeMove { kLeft, kRight, kStay };

/// Optional register operation attached to a transition.  xTM registers
/// (after Hull & Su's domain Turing machines) each hold one data value.
struct XtmRegOp {
  enum class Kind {
    kNone,
    kLoadAttr,  ///< reg := val_attr(current node)
  };
  Kind kind = Kind::kNone;
  int reg = 0;
  std::string attr;
};

/// Optional applicability guard comparing a register against an attribute
/// of the current node.  A transition with a guard only applies when the
/// comparison holds — this is how xTMs branch on data values.
struct XtmGuard {
  enum class Kind { kNone, kRegEqualsAttr, kRegNotEqualsAttr };
  Kind kind = Kind::kNone;
  int reg = 0;
  std::string attr;
};

/// One xTM transition.  Matched on (state, node label, tape symbol) plus
/// the guard.  `label` may be "*" (wildcard, shadowed by exact-label
/// transitions for the same state, as for tree-walking programs);
/// `read` may be -1 (any symbol).
struct XtmTransition {
  std::string state;
  std::string label;
  int read = -1;
  XtmGuard guard;

  std::string next_state;
  Move tree_move = Move::kStay;
  int write = -1;  ///< -1: leave the cell unchanged
  TapeMove tape_move = TapeMove::kStay;
  XtmRegOp reg_op;
};

/// An XML Turing machine (Definition 6.1): a tree-walking finite control
/// over delim(t) with a one-way infinite work-tape over a finite
/// alphabet {0 (blank), 1, ..., tape_alphabet_size-1}, plus data-value
/// registers.  States not listed in `universal_states` are existential;
/// a machine where every configuration has at most one applicable
/// transition is deterministic and can be run by XtmRunner::Run, any
/// machine by RunAlternating (acceptance = least fixpoint over the
/// AND/OR configuration graph).
///
/// Acceptance: reaching `accept_state`.  A stuck existential
/// configuration rejects; a stuck universal configuration accepts
/// (vacuous conjunction).
struct Xtm {
  std::string initial_state;
  std::string accept_state;
  int tape_alphabet_size = 2;
  int num_registers = 0;
  std::vector<XtmTransition> transitions;
  std::set<std::string> universal_states;

  /// Structural checks: nonempty states, symbols within the alphabet,
  /// register indices within range, no transition out of accept_state.
  Status Validate() const;
};

}  // namespace treewalk

#endif  // TREEWALK_XTM_MACHINE_H_
