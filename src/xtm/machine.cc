#include "src/xtm/machine.h"

namespace treewalk {

Status Xtm::Validate() const {
  if (initial_state.empty() || accept_state.empty()) {
    return InvalidArgument("xTM initial/accept states not set");
  }
  if (tape_alphabet_size < 1) {
    return InvalidArgument("tape alphabet must contain at least the blank");
  }
  if (num_registers < 0) return InvalidArgument("negative register count");
  for (std::size_t i = 0; i < transitions.size(); ++i) {
    const XtmTransition& t = transitions[i];
    auto err = [&](const std::string& message) {
      return InvalidArgument("transition #" + std::to_string(i) + ": " +
                             message);
    };
    if (t.state.empty() || t.next_state.empty()) {
      return err("empty state name");
    }
    if (t.state == accept_state) {
      return err("no transition may leave the accept state");
    }
    if (t.read < -1 || t.read >= tape_alphabet_size) {
      return err("read symbol out of range");
    }
    if (t.write < -1 || t.write >= tape_alphabet_size) {
      return err("write symbol out of range");
    }
    if (t.guard.kind != XtmGuard::Kind::kNone &&
        (t.guard.reg < 0 || t.guard.reg >= num_registers)) {
      return err("guard register out of range");
    }
    if (t.reg_op.kind != XtmRegOp::Kind::kNone &&
        (t.reg_op.reg < 0 || t.reg_op.reg >= num_registers)) {
      return err("register op out of range");
    }
  }
  return Status::Ok();
}

}  // namespace treewalk
