#include "src/xtm/run.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "src/tree/delimited.h"

namespace treewalk {

namespace {

struct Config {
  NodeId node;
  std::string state;
  std::vector<int> tape;  // trailing blanks trimmed
  std::size_t head = 0;
  std::vector<DataValue> registers;

  friend auto operator<=>(const Config&, const Config&) = default;
};

class XtmEngine {
 public:
  XtmEngine(const Xtm& machine, const Tree& tree, const XtmOptions& options)
      : machine_(machine), tree_(tree), options_(options) {
    for (const XtmTransition& t : machine.transitions) {
      labels_.push_back(t.label == "*" ? -2 : tree.FindLabel(t.label));
      if (t.label != "*") exact_keys_.insert(t.state + "\x1f" + t.label);
      attr_ids_.push_back(
          t.guard.kind == XtmGuard::Kind::kNone
              ? kNoAttr
              : tree.FindAttribute(t.guard.attr));
      load_attr_ids_.push_back(
          t.reg_op.kind == XtmRegOp::Kind::kNone
              ? kNoAttr
              : tree.FindAttribute(t.reg_op.attr));
    }
  }

  Config InitialConfig() const {
    Config c;
    c.node = tree_.root();
    c.state = machine_.initial_state;
    c.registers.assign(static_cast<std::size_t>(machine_.num_registers), 0);
    return c;
  }

  Status ApplicableTransitions(const Config& c,
                               std::vector<std::size_t>& out) const {
    out.clear();
    Symbol label = tree_.label(c.node);
    bool shadowed =
        exact_keys_.count(c.state + "\x1f" + tree_.LabelName(label)) > 0;
    int read = c.head < c.tape.size() ? c.tape[c.head] : 0;
    for (std::size_t i = 0; i < machine_.transitions.size(); ++i) {
      const XtmTransition& t = machine_.transitions[i];
      if (t.state != c.state) continue;
      if (t.label == "*") {
        if (shadowed) continue;
      } else if (labels_[i] != label) {
        continue;
      }
      if (t.read != -1 && t.read != read) continue;
      if (t.guard.kind != XtmGuard::Kind::kNone) {
        if (attr_ids_[i] == kNoAttr) {
          return InvalidArgument("guard references unknown attribute '" +
                                 t.guard.attr + "'");
        }
        DataValue attr = tree_.attr(attr_ids_[i], c.node);
        DataValue reg = c.registers[static_cast<std::size_t>(t.guard.reg)];
        bool equal = attr == reg;
        if (t.guard.kind == XtmGuard::Kind::kRegEqualsAttr ? !equal : equal) {
          continue;
        }
      }
      out.push_back(i);
    }
    return Status::Ok();
  }

  /// Applies transition `index`; returns false when the move leaves the
  /// tree or the tape head falls off the left end (that branch rejects).
  bool Apply(std::size_t index, Config& c, std::size_t& space) const {
    const XtmTransition& t = machine_.transitions[index];
    // Tree move.
    NodeId v = c.node;
    switch (t.tree_move) {
      case Move::kStay:
        break;
      case Move::kLeft:
        v = tree_.PrevSibling(c.node);
        break;
      case Move::kRight:
        v = tree_.NextSibling(c.node);
        break;
      case Move::kUp:
        v = tree_.Parent(c.node);
        break;
      case Move::kDown:
        v = tree_.FirstChild(c.node);
        break;
    }
    if (v == kNoNode) return false;
    c.node = v;
    // Tape write.
    if (t.write != -1) {
      if (c.head >= c.tape.size()) c.tape.resize(c.head + 1, 0);
      c.tape[c.head] = t.write;
    }
    // Tape move.
    switch (t.tape_move) {
      case TapeMove::kStay:
        break;
      case TapeMove::kLeft:
        if (c.head == 0) return false;
        --c.head;
        break;
      case TapeMove::kRight:
        ++c.head;
        break;
    }
    space = std::max(space, c.head + 1);
    while (!c.tape.empty() && c.tape.back() == 0) c.tape.pop_back();
    // Register op.  An unknown attribute was rejected when the machine
    // was matched against the tree (see ApplicableTransitions' guard
    // handling); loads against a missing column read kBottom so the
    // machine still behaves deterministically on label-only trees.
    if (t.reg_op.kind == XtmRegOp::Kind::kLoadAttr) {
      c.registers[static_cast<std::size_t>(t.reg_op.reg)] =
          load_attr_ids_[index] == kNoAttr
              ? kBottom
              : tree_.attr(load_attr_ids_[index], c.node);
    }
    c.state = t.next_state;
    return true;
  }

  const Xtm& machine_;
  const Tree& tree_;
  const XtmOptions& options_;
  std::vector<Symbol> labels_;
  std::set<std::string> exact_keys_;
  std::vector<AttrId> attr_ids_;
  std::vector<AttrId> load_attr_ids_;
};

}  // namespace

Result<XtmResult> RunXtm(const Xtm& machine, const Tree& input,
                         XtmOptions options) {
  TREEWALK_RETURN_IF_ERROR(machine.Validate());
  if (input.empty()) return InvalidArgument("empty input tree");
  DelimitedTree delimited = Delimit(input);
  XtmEngine engine(machine, delimited.tree, options);

  XtmResult result;
  result.space = 1;
  Config c = engine.InitialConfig();
  std::vector<std::size_t> applicable;
  while (true) {
    if (c.state == machine.accept_state) {
      result.accepted = true;
      return result;
    }
    TREEWALK_RETURN_IF_ERROR(engine.ApplicableTransitions(c, applicable));
    if (applicable.empty()) {
      result.accepted = machine.universal_states.count(c.state) > 0;
      return result;
    }
    if (applicable.size() > 1) {
      return Nondeterminism(
          "deterministic run: " + std::to_string(applicable.size()) +
          " transitions apply in state " + c.state);
    }
    if (++result.steps > options.max_steps) {
      return ResourceExhausted("xTM exceeded max_steps");
    }
    if (!engine.Apply(applicable[0], c, result.space)) {
      result.accepted = false;  // fell off the tree or tape
      return result;
    }
  }
}

Result<XtmResult> RunXtmAlternating(const Xtm& machine, const Tree& input,
                                    XtmOptions options) {
  TREEWALK_RETURN_IF_ERROR(machine.Validate());
  if (input.empty()) return InvalidArgument("empty input tree");
  DelimitedTree delimited = Delimit(input);
  XtmEngine engine(machine, delimited.tree, options);

  XtmResult result;
  result.space = 1;

  // Phase 1: materialize the reachable configuration graph.  Successor
  // index -1 encodes a branch that falls off the tree/tape (never
  // accepting).
  constexpr int kFalseSink = -1;
  std::map<Config, int> index_of;
  std::vector<Config> configs;
  std::vector<std::vector<int>> successors;
  std::vector<bool> is_universal;
  std::vector<bool> is_accepting_terminal;

  auto intern = [&](const Config& c) -> Result<int> {
    auto it = index_of.find(c);
    if (it != index_of.end()) return it->second;
    if (configs.size() >= options.max_configs) {
      return ResourceExhausted("alternating xTM exceeded max_configs");
    }
    int id = static_cast<int>(configs.size());
    index_of.emplace(c, id);
    configs.push_back(c);
    successors.emplace_back();
    is_universal.push_back(machine.universal_states.count(c.state) > 0);
    is_accepting_terminal.push_back(c.state == machine.accept_state);
    return id;
  };

  TREEWALK_ASSIGN_OR_RETURN(int initial, intern(engine.InitialConfig()));
  std::vector<std::size_t> applicable;
  for (int id = 0; id < static_cast<int>(configs.size()); ++id) {
    if (is_accepting_terminal[static_cast<std::size_t>(id)]) continue;
    Config c = configs[static_cast<std::size_t>(id)];  // copy: vector grows
    TREEWALK_RETURN_IF_ERROR(engine.ApplicableTransitions(c, applicable));
    for (std::size_t t : applicable) {
      if (++result.steps > options.max_steps) {
        return ResourceExhausted("alternating xTM exceeded max_steps");
      }
      Config next = c;
      if (!engine.Apply(t, next, result.space)) {
        successors[static_cast<std::size_t>(id)].push_back(kFalseSink);
        continue;
      }
      TREEWALK_ASSIGN_OR_RETURN(int next_id, intern(next));
      successors[static_cast<std::size_t>(id)].push_back(next_id);
    }
  }
  result.configs = configs.size();

  // Phase 2: least fixpoint.  Start all-false; OR for existential
  // configurations, AND for universal ones (a stuck universal
  // configuration is a vacuous conjunction and accepts immediately).
  std::vector<bool> value(configs.size(), false);
  for (std::size_t id = 0; id < configs.size(); ++id) {
    value[id] = is_accepting_terminal[id] ||
                (is_universal[id] && successors[id].empty());
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t id = 0; id < configs.size(); ++id) {
      if (value[id] || is_accepting_terminal[id]) continue;
      if (successors[id].empty()) continue;  // stuck existential: false
      bool next;
      if (is_universal[id]) {
        next = true;
        for (int s : successors[id]) {
          if (s == kFalseSink || !value[static_cast<std::size_t>(s)]) {
            next = false;
            break;
          }
        }
      } else {
        next = false;
        for (int s : successors[id]) {
          if (s != kFalseSink && value[static_cast<std::size_t>(s)]) {
            next = true;
            break;
          }
        }
      }
      if (next) {
        value[id] = true;
        changed = true;
      }
    }
  }
  result.accepted = value[static_cast<std::size_t>(initial)];
  return result;
}

}  // namespace treewalk
