#include "src/xtm/library.h"

#include <string>

#include "src/tree/delimited.h"

namespace treewalk {

namespace {

/// Convenience transition factory.
XtmTransition T(std::string state, std::string label, int read,
                std::string next, Move tree_move, int write = -1,
                TapeMove tape_move = TapeMove::kStay) {
  XtmTransition t;
  t.state = std::move(state);
  t.label = std::move(label);
  t.read = read;
  t.next_state = std::move(next);
  t.tree_move = tree_move;
  t.write = write;
  t.tape_move = tape_move;
  return t;
}

/// Installs the delimiter-guided DFS skeleton (same shape as the
/// tree-walking library): descend from `fwd`, turn at #leaf / #close into
/// `back`, advance right from `back`.
void AddDfs(Xtm& m, const std::string& fwd, const std::string& back) {
  m.transitions.push_back(
      T(fwd, std::string(kTopLabel), -1, fwd, Move::kDown));
  m.transitions.push_back(
      T(fwd, std::string(kOpenLabel), -1, fwd, Move::kRight));
  m.transitions.push_back(T(fwd, "*", -1, fwd, Move::kDown));
  m.transitions.push_back(
      T(fwd, std::string(kLeafLabel), -1, back, Move::kUp));
  m.transitions.push_back(
      T(fwd, std::string(kCloseLabel), -1, back, Move::kUp));
  m.transitions.push_back(T(back, "*", -1, fwd, Move::kRight));
}

}  // namespace

Xtm XtmParity(std::string_view label) {
  const std::string lab(label);
  Xtm m;
  m.initial_state = "fwd_e";
  m.accept_state = "acc";
  AddDfs(m, "fwd_e", "back_e");
  AddDfs(m, "fwd_o", "back_o");
  m.transitions.push_back(T("fwd_e", lab, -1, "fwd_o", Move::kDown));
  m.transitions.push_back(T("fwd_o", lab, -1, "fwd_e", Move::kDown));
  m.transitions.push_back(
      T("back_e", std::string(kTopLabel), -1, "acc", Move::kStay));
  return m;
}

Xtm XtmCountMod4(std::string_view label) {
  // Tape symbols: 0 blank, 1 bit-zero, 2 bit-one, 3 left-end marker.
  const std::string lab(label);
  Xtm m;
  m.initial_state = "init";
  m.accept_state = "acc";
  m.tape_alphabet_size = 4;
  // Initialization: plant the marker at cell 0, step right to the LSB.
  m.transitions.push_back(T("init", std::string(kTopLabel), 0, "fwd",
                            Move::kStay, /*write=*/3, TapeMove::kRight));
  AddDfs(m, "fwd", "back");
  // At a counted node (head is at the LSB): binary increment, then
  // rewind to the LSB and descend.
  m.transitions.push_back(
      T("inc", lab, 2, "inc", Move::kStay, /*write=*/1, TapeMove::kRight));
  m.transitions.push_back(
      T("inc", lab, 0, "rew", Move::kStay, /*write=*/2, TapeMove::kStay));
  m.transitions.push_back(
      T("inc", lab, 1, "rew", Move::kStay, /*write=*/2, TapeMove::kStay));
  m.transitions.push_back(
      T("rew", lab, 1, "rew", Move::kStay, -1, TapeMove::kLeft));
  m.transitions.push_back(
      T("rew", lab, 2, "rew", Move::kStay, -1, TapeMove::kLeft));
  m.transitions.push_back(
      T("rew", lab, 3, "fwd", Move::kDown, -1, TapeMove::kRight));
  // Entering a counted node forward redirects into the increment.
  m.transitions.push_back(T("fwd", lab, -1, "inc", Move::kStay));
  // Final check: back at #top, head at the LSB; accept iff bits 0 and 1
  // are not one (count % 4 == 0).
  m.transitions.push_back(T("back", std::string(kTopLabel), 0, "acc",
                            Move::kStay));
  m.transitions.push_back(T("back", std::string(kTopLabel), 1, "chk2",
                            Move::kStay, -1, TapeMove::kRight));
  m.transitions.push_back(T("chk2", std::string(kTopLabel), 0, "acc",
                            Move::kStay));
  m.transitions.push_back(T("chk2", std::string(kTopLabel), 1, "acc",
                            Move::kStay));
  // read 2 anywhere in the check: stuck, rejects.
  return m;
}

Xtm XtmDyck(std::string_view open, std::string_view close) {
  // Tape symbols: 0 blank, 1 pebble, 3 left-end marker.  Invariant: the
  // head rests on the first blank after the pebbles.
  Xtm m;
  m.initial_state = "init";
  m.accept_state = "acc";
  m.tape_alphabet_size = 4;
  m.transitions.push_back(T("init", std::string(kTopLabel), 0, "fwd",
                            Move::kStay, /*write=*/3, TapeMove::kRight));
  AddDfs(m, "fwd", "back");
  // Open: push a pebble and descend.
  m.transitions.push_back(T("fwd", std::string(open), -1, "fwd", Move::kDown,
                            /*write=*/1, TapeMove::kRight));
  // Close: pop a pebble (underflow reads the marker and gets stuck).
  m.transitions.push_back(T("fwd", std::string(close), -1, "pop",
                            Move::kStay, -1, TapeMove::kLeft));
  m.transitions.push_back(T("pop", std::string(close), 1, "fwd", Move::kDown,
                            /*write=*/0, TapeMove::kStay));
  // End of walk: balanced iff one step left of the head is the marker.
  m.transitions.push_back(T("back", std::string(kTopLabel), -1, "fin",
                            Move::kStay, -1, TapeMove::kLeft));
  m.transitions.push_back(
      T("fin", std::string(kTopLabel), 3, "acc", Move::kStay));
  return m;
}

Xtm XtmBooleanCircuit(std::string_view attr) {
  Xtm m;
  m.initial_state = "start";
  m.accept_state = "acc";
  m.num_registers = 1;  // register 0 stays 0; literals test attr != reg0
  m.universal_states = {"and_pick"};
  m.transitions.push_back(
      T("start", std::string(kTopLabel), -1, "start2", Move::kDown));
  m.transitions.push_back(
      T("start2", std::string(kOpenLabel), -1, "eval", Move::kRight));
  // Dispatch at a node under evaluation.
  m.transitions.push_back(T("eval", "and", -1, "and_enter", Move::kDown));
  m.transitions.push_back(
      T("and_enter", std::string(kOpenLabel), -1, "and_pick", Move::kRight));
  m.transitions.push_back(T("eval", "or", -1, "or_enter", Move::kDown));
  m.transitions.push_back(
      T("or_enter", std::string(kOpenLabel), -1, "or_pick", Move::kRight));
  // Literal: applicable only when attr != 0 (register 0 holds 0).
  XtmTransition lit = T("eval", "lit", -1, "acc", Move::kStay);
  lit.guard.kind = XtmGuard::Kind::kRegNotEqualsAttr;
  lit.guard.reg = 0;
  lit.guard.attr = std::string(attr);
  m.transitions.push_back(lit);
  // Child selection: "or" existentially picks one child, "and"
  // universally requires every child; both use the eval-or-skip pair,
  // instantiated only at circuit labels so #close terminates the scan
  // (stuck existential = false, stuck universal = true).
  for (const char* pick : {"or_pick", "and_pick"}) {
    for (const char* child : {"and", "or", "lit"}) {
      m.transitions.push_back(T(pick, child, -1, "eval", Move::kStay));
      m.transitions.push_back(T(pick, child, -1, pick, Move::kRight));
    }
  }
  return m;
}

}  // namespace treewalk
