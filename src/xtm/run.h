#ifndef TREEWALK_XTM_RUN_H_
#define TREEWALK_XTM_RUN_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/tree/tree.h"
#include "src/xtm/machine.h"

namespace treewalk {

struct XtmOptions {
  std::int64_t max_steps = 1'000'000;
  /// Alternating evaluation: maximum number of distinct configurations
  /// memoized before aborting with kResourceExhausted.
  std::size_t max_configs = 1'000'000;
};

/// Resource accounting for the complexity classes of Section 6:
/// `steps` realizes the PTIME^X / EXPTIME^X measures, `space` (work-tape
/// cells visited) the LOGSPACE^X / PSPACE^X measures.
struct XtmResult {
  bool accepted = false;
  std::int64_t steps = 0;
  std::size_t space = 0;
  std::size_t configs = 0;  ///< alternating runs only
};

/// Runs a deterministic xTM on (the delimitation of) `input`.  Errors
/// with kNondeterminism if two transitions apply to one configuration.
/// Looping runs end with kResourceExhausted once max_steps transitions
/// are spent (xTM configurations include the unbounded tape, so cycle
/// detection is by budget, not by memoization).
Result<XtmResult> RunXtm(const Xtm& machine, const Tree& input,
                         XtmOptions options = {});

/// Runs an alternating xTM: acceptance is the least fixpoint over the
/// AND/OR configuration graph (ALOGSPACE^X / APSPACE^X of Section 6,
/// with the paper's correspondences ALOGSPACE = PTIME and
/// APSPACE = EXPTIME).  Cycles contribute non-acceptance.
Result<XtmResult> RunXtmAlternating(const Xtm& machine, const Tree& input,
                                    XtmOptions options = {});

}  // namespace treewalk

#endif  // TREEWALK_XTM_RUN_H_
