#ifndef TREEWALK_XTM_LIBRARY_H_
#define TREEWALK_XTM_LIBRARY_H_

#include <string_view>

#include "src/xtm/machine.h"

namespace treewalk {

/// Deterministic, constant-space: accepts iff the number of
/// `label`-nodes is even.  DFS walk, no tape use.
Xtm XtmParity(std::string_view label);

/// Deterministic, logarithmic-space: counts `label`-nodes in binary on
/// the work tape (cell 0 is a left-end marker, LSB at cell 1) and
/// accepts iff the count is divisible by 4.  The tape usage of a run is
/// O(log #occurrences) — the LOGSPACE^X regime of Theorem 7.1(1).
Xtm XtmCountMod4(std::string_view label);

/// Deterministic, linear-space: reads the document-order sequence of
/// `open`/`close` labels as a bracket string and accepts iff it is
/// balanced (unary counter on the tape; never negative, zero at the
/// end).  Space grows with maximal nesting — the PSPACE^X regime.
Xtm XtmDyck(std::string_view open, std::string_view close);

/// Alternating, constant-space: evaluates an AND/OR circuit tree with
/// labels "and", "or", "lit" where a literal's truth is attribute
/// `attr` != 0.  "and" nodes are universal over their children, "or"
/// nodes existential — the ALOGSPACE^X = PTIME^X regime of
/// Theorem 7.1(2).
Xtm XtmBooleanCircuit(std::string_view attr = "v");

}  // namespace treewalk

#endif  // TREEWALK_XTM_LIBRARY_H_
