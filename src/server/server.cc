#include "src/server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "src/automata/text_format.h"
#include "src/common/crc32c.h"
#include "src/common/failpoint.h"
#include "src/common/metrics.h"

namespace treewalk {

namespace {

using Clock = std::chrono::steady_clock;

/// Server instrument family (docs/OBSERVABILITY.md).  Mirrors
/// ServerCounters 1:1 — the counters are the source of truth for the
/// stats wire response, the registry carries the same values into
/// Prometheus exposition.
struct ServerMetrics {
  Counter* connections_accepted;
  Counter* connections_rejected;
  Counter* admitted;
  Counter* served_ok;
  Counter* served_error;
  Counter* drained;
  Counter* shed_queue;
  Counter* shed_memory;
  Counter* shed_draining;
  Counter* protocol_errors;
  Counter* slow_reaped;
  Counter* reload_requests;
  Counter* reloads;
  Counter* quarantined;
  Counter* health_probes;
  Counter* ready_probes;
  Gauge* inflight;
  Gauge* open_connections;
  Gauge* reserved_bytes;
  Gauge* corpus_generation;
  Histogram* request_latency_ms;
  Histogram* reload_latency_ms;

  static ServerMetrics& Get() {
    static ServerMetrics* metrics = [] {
      auto* m = new ServerMetrics;
      MetricsRegistry& r = MetricsRegistry::Global();
      const char* conns_help = "Client connections, by accept outcome";
      m->connections_accepted = r.FindOrCreateCounter(
          "treewalk_server_connections_total", conns_help,
          {{"status", "accepted"}});
      m->connections_rejected = r.FindOrCreateCounter(
          "treewalk_server_connections_total", conns_help,
          {{"status", "rejected"}});
      m->admitted = r.FindOrCreateCounter(
          "treewalk_server_admitted_total",
          "Requests past admission control (== ok + error + drained)");
      const char* req_help = "Admitted requests finished, by outcome";
      m->served_ok = r.FindOrCreateCounter(
          "treewalk_server_requests_total", req_help, {{"outcome", "ok"}});
      m->served_error = r.FindOrCreateCounter(
          "treewalk_server_requests_total", req_help, {{"outcome", "error"}});
      m->drained = r.FindOrCreateCounter(
          "treewalk_server_requests_total", req_help, {{"outcome", "drained"}});
      const char* shed_help = "Requests shed before admission, by reason";
      m->shed_queue = r.FindOrCreateCounter(
          "treewalk_server_shed_total", shed_help, {{"reason", "queue"}});
      m->shed_memory = r.FindOrCreateCounter(
          "treewalk_server_shed_total", shed_help, {{"reason", "memory"}});
      m->shed_draining = r.FindOrCreateCounter(
          "treewalk_server_shed_total", shed_help, {{"reason", "draining"}});
      m->protocol_errors = r.FindOrCreateCounter(
          "treewalk_server_protocol_errors_total",
          "Malformed frames (bad length prefix, unknown type, bad body)");
      m->slow_reaped = r.FindOrCreateCounter(
          "treewalk_server_slow_clients_reaped_total",
          "Connections closed because a frame read/write exceeded the "
          "I/O timeout");
      m->reload_requests = r.FindOrCreateCounter(
          "treewalk_server_reload_requests_total",
          "SIGHUPs observed by the serve driver; each one triggers a "
          "live corpus reload (build a fresh generation, swap "
          "atomically)");
      m->reloads = r.FindOrCreateCounter(
          "treewalk_server_reloads_total",
          "Corpus generation swaps completed (in-flight queries finish "
          "on the generation they pinned)");
      m->quarantined = r.FindOrCreateCounter(
          "treewalk_server_quarantined_total",
          "Queries shed with kQuarantined because their formula x tree "
          "pair tripped the governor max-consecutive-failures times");
      const char* probe_help = "Health/readiness probe frames answered";
      m->health_probes = r.FindOrCreateCounter(
          "treewalk_server_probes_total", probe_help,
          {{"probe", "health"}});
      m->ready_probes = r.FindOrCreateCounter(
          "treewalk_server_probes_total", probe_help,
          {{"probe", "ready"}});
      m->inflight = r.FindOrCreateGauge(
          "treewalk_server_inflight_requests",
          "Requests admitted but not yet answered (bounded by max_queue)");
      m->open_connections = r.FindOrCreateGauge(
          "treewalk_server_open_connections",
          "Currently open client connections (bounded by max_connections)");
      m->reserved_bytes = r.FindOrCreateGauge(
          "treewalk_server_reserved_bytes",
          "Memory reserved by admitted requests against the server budget");
      m->corpus_generation = r.FindOrCreateGauge(
          "treewalk_server_corpus_generation",
          "Generation number of the corpus serving new queries "
          "(0 = startup corpus, +1 per completed reload)");
      m->request_latency_ms = r.FindOrCreateHistogram(
          "treewalk_server_request_latency_ms",
          "Admission to response-built latency of admitted requests",
          LatencyBucketsMs());
      m->reload_latency_ms = r.FindOrCreateHistogram(
          "treewalk_server_reload_latency_ms",
          "Off-thread corpus rebuild latency per SIGHUP reload "
          "(the swap itself is one pointer move)",
          LatencyBucketsMs());
      return m;
    }();
    return *metrics;
  }
};

enum class IoStatus { kOk, kEof, kTimeout, kError };

/// Reads exactly `len` bytes with an overall deadline.  Blocking socket
/// + poll(): a peer that stalls mid-frame trips kTimeout, a reset or a
/// drain-time shutdown() trips kEof/kError promptly.
IoStatus ReadFull(int fd, unsigned char* buf, std::size_t len,
                  std::int64_t timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t done = 0;
  while (done < len) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    if (left <= 0) return IoStatus::kTimeout;
    struct pollfd pfd = {fd, POLLIN, 0};
    int pr = poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (pr == 0) return IoStatus::kTimeout;
    ssize_t n = recv(fd, buf + done, len - done, 0);
    if (n == 0) return IoStatus::kEof;
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

IoStatus WriteFull(int fd, const char* buf, std::size_t len,
                   std::int64_t timeout_ms) {
  const Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t done = 0;
  while (done < len) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline - Clock::now())
                    .count();
    if (left <= 0) return IoStatus::kTimeout;
    struct pollfd pfd = {fd, POLLOUT, 0};
    int pr = poll(&pfd, 1, static_cast<int>(left));
    if (pr < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (pr == 0) return IoStatus::kTimeout;
    // MSG_NOSIGNAL: a client that closed mid-response must surface as
    // EPIPE on this thread, not SIGPIPE to the process.
    ssize_t n = send(fd, buf + done, len - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return IoStatus::kError;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoStatus::kOk;
}

Status CheckFailpoint(const char* site) {
  if (!FailpointRegistry::armed()) return Status::Ok();
  return FailpointRegistry::Global().Check(site);
}

std::string ErrorFrame(WireError code, std::string message) {
  return EncodeFrame(MessageType::kError,
                     EncodeError({code, std::move(message)}));
}

double MillisSince(Clock::time_point start) {
  return std::chrono::duration_cast<
             std::chrono::duration<double, std::milli>>(Clock::now() - start)
      .count();
}

}  // namespace

QueryServer::QueryServer(ServerOptions options,
                         std::shared_ptr<ResidentTreeCache> corpus)
    : options_(std::move(options)), corpus_(std::move(corpus)) {
  ServerMetrics::Get().corpus_generation->Set(
      corpus_ ? static_cast<std::int64_t>(corpus_->generation()) : 0);
}

QueryServer::QueryServer(ServerOptions options, ResidentTreeCache* corpus)
    : QueryServer(std::move(options),
                  std::shared_ptr<ResidentTreeCache>(corpus,
                                                     [](ResidentTreeCache*) {
                                                     })) {}

QueryServer::~QueryServer() {
  bool needs_teardown;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    needs_teardown = started_ && !terminated_;
  }
  if (needs_teardown) {
    BeginDrain();
    AwaitTermination();
  }
}

Status QueryServer::Start() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (started_) return FailedPrecondition("server already started");
    started_ = true;
  }
  if (options_.num_workers < 1) {
    return InvalidArgument("num_workers must be >= 1, got " +
                           std::to_string(options_.num_workers));
  }
  if (options_.max_queue < 1) {
    return InvalidArgument("max_queue must be >= 1, got " +
                           std::to_string(options_.max_queue));
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return InvalidArgument("unparsable listen address: " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    Status status = Internal(std::string("bind ") + options_.host + ":" +
                             std::to_string(options_.port) + ": " +
                             std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  // Bounded accept backlog: the kernel queue is part of the admission
  // story — max_connections of it is all we will ever drain.
  if (listen(listen_fd_, options_.max_connections) != 0) {
    Status status = Internal(std::string("listen: ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
              &addr_len);
  port_ = ntohs(addr.sin_port);

  workers_.reserve(static_cast<std::size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back(&QueryServer::WorkerLoop, this);
  }
  accept_thread_ = std::thread(&QueryServer::AcceptLoop, this);
  return Status::Ok();
}

void QueryServer::AcceptLoop() {
  ServerMetrics& metrics = ServerMetrics::Get();
  while (!draining_.load(std::memory_order_acquire)) {
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    // Short poll so a drain stops the accept loop within ~50 ms even
    // with no connection attempts arriving.
    int pr = poll(&pfd, 1, 50);
    JoinFinishedConnections();
    if (pr <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    Status injected = CheckFailpoint("server/accept");
    bool at_capacity =
        open_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections;
    if (!injected.ok() || at_capacity ||
        draining_.load(std::memory_order_acquire)) {
      // Best-effort typed rejection before the close: a well-behaved
      // client distinguishes "shed, retry elsewhere" from a crash.
      std::string frame =
          draining_.load(std::memory_order_acquire)
              ? ErrorFrame(WireError::kDraining, "server is draining")
              : ErrorFrame(WireError::kOverloaded,
                           at_capacity ? "connection limit reached"
                                       : injected.message());
      WriteFull(fd, frame.data(), frame.size(), 100);
      close(fd);
      counters_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      metrics.connections_rejected->Increment();
      continue;
    }
    counters_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    metrics.connections_accepted->Increment();
    metrics.open_connections->Set(
        open_connections_.fetch_add(1, std::memory_order_relaxed) + 1);
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread(&QueryServer::ConnectionLoop, this, raw);
  }
}

void QueryServer::ConnectionLoop(Connection* conn) {
  ServerMetrics& metrics = ServerMetrics::Get();
  const int fd = conn->fd;
  while (true) {
    unsigned char prefix[4];
    IoStatus rs = ReadFull(fd, prefix, sizeof(prefix), options_.io_timeout_ms);
    if (rs == IoStatus::kTimeout) {
      counters_.slow_clients_reaped.fetch_add(1, std::memory_order_relaxed);
      metrics.slow_reaped->Increment();
      break;
    }
    if (rs != IoStatus::kOk) break;  // clean EOF or reset between frames
    Status injected = CheckFailpoint("server/read");
    if (!injected.ok()) {
      std::string frame = ErrorFrame(WireErrorFromStatus(injected.code()),
                                     injected.message());
      WriteFull(fd, frame.data(), frame.size(), options_.io_timeout_ms);
      break;
    }
    Result<std::uint32_t> len = DecodeFrameLength(prefix);
    if (!len.ok()) {
      // The stream position is unrecoverable after a bad prefix: answer
      // typed, then close.  Nothing was allocated for the bogus length.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics.protocol_errors->Increment();
      std::string frame =
          ErrorFrame(WireError::kInvalidRequest, len.status().message());
      WriteFull(fd, frame.data(), frame.size(), options_.io_timeout_ms);
      break;
    }
    std::string payload(len.value(), '\0');
    rs = ReadFull(fd, reinterpret_cast<unsigned char*>(payload.data()),
                  payload.size(), options_.io_timeout_ms);
    if (rs == IoStatus::kTimeout) {
      counters_.slow_clients_reaped.fetch_add(1, std::memory_order_relaxed);
      metrics.slow_reaped->Increment();
      break;
    }
    if (rs != IoStatus::kOk) {
      // Mid-frame disconnect: a protocol violation, not a clean close.
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics.protocol_errors->Increment();
      break;
    }
    Result<Frame> frame = DecodeFramePayload(payload);
    std::string response;
    if (!frame.ok()) {
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics.protocol_errors->Increment();
      response =
          ErrorFrame(WireError::kInvalidRequest, frame.status().message());
    } else {
      response = HandleFrame(frame.value());
    }
    injected = CheckFailpoint("server/write");
    if (!injected.ok()) break;  // simulated dead client: drop + close
    IoStatus ws =
        WriteFull(fd, response.data(), response.size(), options_.io_timeout_ms);
    if (ws == IoStatus::kTimeout) {
      counters_.slow_clients_reaped.fetch_add(1, std::memory_order_relaxed);
      metrics.slow_reaped->Increment();
      break;
    }
    if (ws != IoStatus::kOk) break;
  }
  close(fd);
  metrics.open_connections->Set(
      open_connections_.fetch_sub(1, std::memory_order_relaxed) - 1);
  conn->done.store(true, std::memory_order_release);
}

std::string QueryServer::HandleFrame(const Frame& frame) {
  ServerMetrics& metrics = ServerMetrics::Get();
  switch (frame.type) {
    case MessageType::kPing:
      counters_.pings.fetch_add(1, std::memory_order_relaxed);
      return EncodeFrame(MessageType::kPong, "");
    case MessageType::kHealth:
      // Liveness: answered whenever a connection thread is running —
      // including all through a drain.  A supervisor keys restarts off
      // this; only a dead or wedged process fails it.
      counters_.health_probes.fetch_add(1, std::memory_order_relaxed);
      metrics.health_probes->Increment();
      return EncodeFrame(MessageType::kHealthResult,
                         EncodeProbeResult({true}));
    case MessageType::kReady:
      // Readiness: accepting + corpus loaded + not draining.  Flips
      // false the instant BeginDrain() latches, long before the
      // process exits — a balancer stops routing while the drain is
      // still answering in-flight work.
      counters_.ready_probes.fetch_add(1, std::memory_order_relaxed);
      metrics.ready_probes->Increment();
      return EncodeFrame(MessageType::kReadyResult,
                         EncodeProbeResult({ready()}));
    case MessageType::kStats:
      counters_.stats_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeFrame(MessageType::kStatsResult, EncodeStats(BuildStats()));
    case MessageType::kMetrics:
      counters_.metrics_requests.fetch_add(1, std::memory_order_relaxed);
      return EncodeFrame(MessageType::kMetricsResult,
                         MetricsRegistry::Global().Snapshot()
                             .ToPrometheusText());
    case MessageType::kQuery: {
      Result<QueryRequest> query = DecodeQueryRequest(frame.body);
      if (!query.ok()) {
        counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
        metrics.protocol_errors->Increment();
        return ErrorFrame(WireError::kInvalidRequest,
                          query.status().message());
      }
      return DispatchQuery(std::move(query).value());
    }
    default:
      counters_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      metrics.protocol_errors->Increment();
      return ErrorFrame(WireError::kInvalidRequest,
                        std::string("response type ") +
                            MessageTypeName(frame.type) +
                            " sent as a request");
  }
}

std::string QueryServer::DispatchQuery(QueryRequest query) {
  ServerMetrics& metrics = ServerMetrics::Get();
  Status injected = CheckFailpoint("server/dispatch");
  if (!injected.ok()) {
    // An injected dispatch fault is a pre-admission shed: it must not
    // disturb the admitted == ok + error + drained reconciliation.
    counters_.shed_queue.fetch_add(1, std::memory_order_relaxed);
    metrics.shed_queue->Increment();
    return ErrorFrame(WireError::kOverloaded, injected.message());
  }
  if (draining_.load(std::memory_order_acquire)) {
    counters_.shed_draining.fetch_add(1, std::memory_order_relaxed);
    metrics.shed_draining->Increment();
    return ErrorFrame(WireError::kDraining, "server is draining");
  }
  // Queue admission: reserve an in-flight slot or shed.  fetch_add
  // first, undo on failure — never more than max_queue slots admitted.
  int inflight = inflight_.fetch_add(1, std::memory_order_acq_rel);
  if (inflight >= options_.max_queue) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.shed_queue.fetch_add(1, std::memory_order_relaxed);
    metrics.shed_queue->Increment();
    return ErrorFrame(WireError::kOverloaded,
                      "admission queue full (" +
                          std::to_string(options_.max_queue) +
                          " requests in flight)");
  }
  // Memory admission: reserve this request's budget against the
  // server-wide high water.
  const std::int64_t reserve = options_.request_memory_budget_bytes;
  if (options_.memory_budget_bytes > 0 && reserve > 0) {
    std::int64_t total =
        reserved_bytes_.fetch_add(reserve, std::memory_order_acq_rel) +
        reserve;
    if (total > options_.memory_budget_bytes) {
      reserved_bytes_.fetch_sub(reserve, std::memory_order_acq_rel);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      counters_.shed_memory.fetch_add(1, std::memory_order_relaxed);
      metrics.shed_memory->Increment();
      return ErrorFrame(WireError::kOverloaded,
                        "server memory high-water reached");
    }
    metrics.reserved_bytes->Set(total);
  }
  counters_.requests_admitted.fetch_add(1, std::memory_order_relaxed);
  metrics.admitted->Increment();
  metrics.inflight->Set(inflight + 1);
  const Clock::time_point admitted_at = Clock::now();

  PendingRequest pending;
  pending.query = std::move(query);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(&pending);
  }
  queue_cv_.notify_one();
  std::string response;
  {
    std::unique_lock<std::mutex> lock(pending.mu);
    pending.cv.wait(lock, [&] { return pending.completed; });
    response = std::move(pending.response);
  }
  metrics.request_latency_ms->Observe(MillisSince(admitted_at));
  if (options_.memory_budget_bytes > 0 && reserve > 0) {
    metrics.reserved_bytes->Set(
        reserved_bytes_.fetch_sub(reserve, std::memory_order_acq_rel) -
        reserve);
  }
  metrics.inflight->Set(inflight_.fetch_sub(1, std::memory_order_acq_rel) -
                        1);
  return response;
}

void QueryServer::WorkerLoop() {
  while (true) {
    PendingRequest* request = nullptr;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] {
        return !queue_.empty() ||
               stop_workers_.load(std::memory_order_acquire);
      });
      if (queue_.empty()) {
        // stop_workers_ and an empty queue: every admitted request has
        // been answered (workers only stop after the queue is dry, so
        // the reconciliation invariant cannot leak a request).
        return;
      }
      request = queue_.front();
      queue_.pop_front();
    }
    std::string response = ExecuteQuery(request->query);
    {
      // Notify under the lock: the PendingRequest lives on the
      // dispatcher's stack and is destroyed as soon as it observes
      // `completed`, so an unlocked notify could outlive the cv.
      std::lock_guard<std::mutex> lock(request->mu);
      request->response = std::move(response);
      request->completed = true;
      request->cv.notify_one();
    }
  }
}

std::string QueryServer::ExecuteQuery(const QueryRequest& query) {
  ServerMetrics& metrics = ServerMetrics::Get();
  auto served_error = [&](WireError code, std::string message) {
    counters_.served_error.fetch_add(1, std::memory_order_relaxed);
    metrics.served_error->Increment();
    return ErrorFrame(code, std::move(message));
  };

  // Pin the current corpus generation for this query's whole run: a
  // SwapCorpus() racing with us retires the cache from new dispatches,
  // but this shared_ptr (and the entry's own pin below) keeps the tree
  // alive and the answer consistent — no query ever observes a
  // half-swapped generation.
  std::shared_ptr<ResidentTreeCache> corpus = this->corpus();
  std::shared_ptr<const ResidentTreeCache::Prepared> tree =
      corpus->Lookup(query.tree_name);
  if (tree == nullptr) {
    return served_error(WireError::kNotFound,
                        "unknown tree '" + query.tree_name + "'");
  }
  Result<Program> program = ParseProgramText(query.program_text);
  if (!program.ok()) {
    return served_error(WireError::kInvalidRequest,
                        program.status().message());
  }
  const std::uint64_t poison_key = QuarantineKey(query);
  if (IsQuarantined(poison_key)) {
    counters_.quarantined.fetch_add(1, std::memory_order_relaxed);
    metrics.quarantined->Increment();
    return served_error(
        WireError::kQuarantined,
        "query quarantined: tripped the governor " +
            std::to_string(options_.max_consecutive_failures) +
            " consecutive times on tree '" + query.tree_name + "'");
  }

  BatchJob job;
  job.program = &program.value();
  job.deadline_ms =
      query.deadline_ms > 0
          ? std::min<std::int64_t>(query.deadline_ms, options_.max_deadline_ms)
          : options_.default_deadline_ms;
  job.memory_budget_bytes = options_.request_memory_budget_bytes;
  job.retry = options_.retry;
  job.job_id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  JobResult result =
      RunResidentJob(job, tree->delimited, cancel_, options_.backoff_seed);

  if (!result.status.ok()) {
    if (result.status.code() == StatusCode::kCancelled) {
      // Only the drain path cancels; the client sees the typed code and
      // the books count it separately from real failures.
      counters_.drained.fetch_add(1, std::memory_order_relaxed);
      metrics.drained->Increment();
      return ErrorFrame(WireError::kCancelled,
                        "request cancelled by server drain");
    }
    RecordQuarantineOutcome(
        poison_key,
        result.status.code() == StatusCode::kDeadlineExceeded ||
            result.status.code() == StatusCode::kResourceExhausted);
    return served_error(WireErrorFromStatus(result.status.code()),
                        result.status.message());
  }
  RecordQuarantineOutcome(poison_key, /*governor_tripped=*/false);
  counters_.planner_picks_reference.fetch_add(
      result.run.stats.planner_picks_reference, std::memory_order_relaxed);
  counters_.planner_picks_dense.fetch_add(
      result.run.stats.planner_picks_dense, std::memory_order_relaxed);
  counters_.planner_picks_interval.fetch_add(
      result.run.stats.planner_picks_interval, std::memory_order_relaxed);
  counters_.served_ok.fetch_add(1, std::memory_order_relaxed);
  metrics.served_ok->Increment();
  QueryResultMsg msg;
  msg.accepted = result.run.accepted;
  msg.rung = static_cast<std::uint8_t>(
      result.attempts.empty() ? 0 : result.attempts.back().rung);
  msg.attempts = static_cast<std::uint32_t>(result.attempts.size());
  msg.steps = result.run.stats.steps;
  msg.atp_calls = result.run.stats.atp_calls;
  return EncodeFrame(MessageType::kQueryResult, EncodeQueryResult(msg));
}

StatsMap QueryServer::BuildStats() const {
  StatsMap stats;
  auto put = [&stats](const char* key, std::int64_t value) {
    stats.entries.emplace_back(key, value);
  };
  const ServerCounters& c = counters_;
  put("server.connections_accepted",
      c.connections_accepted.load(std::memory_order_relaxed));
  put("server.connections_rejected",
      c.connections_rejected.load(std::memory_order_relaxed));
  put("server.admitted", c.requests_admitted.load(std::memory_order_relaxed));
  put("server.served_ok", c.served_ok.load(std::memory_order_relaxed));
  put("server.served_error", c.served_error.load(std::memory_order_relaxed));
  put("server.drained", c.drained.load(std::memory_order_relaxed));
  put("server.shed_queue", c.shed_queue.load(std::memory_order_relaxed));
  put("server.shed_memory", c.shed_memory.load(std::memory_order_relaxed));
  put("server.shed_draining",
      c.shed_draining.load(std::memory_order_relaxed));
  put("server.protocol_errors",
      c.protocol_errors.load(std::memory_order_relaxed));
  put("server.slow_clients_reaped",
      c.slow_clients_reaped.load(std::memory_order_relaxed));
  put("server.pings", c.pings.load(std::memory_order_relaxed));
  put("server.stats_requests",
      c.stats_requests.load(std::memory_order_relaxed));
  put("server.metrics_requests",
      c.metrics_requests.load(std::memory_order_relaxed));
  put("server.health_probes",
      c.health_probes.load(std::memory_order_relaxed));
  put("server.ready_probes", c.ready_probes.load(std::memory_order_relaxed));
  put("server.quarantined", c.quarantined.load(std::memory_order_relaxed));
  put("server.reloads", c.reloads.load(std::memory_order_relaxed));
  put("planner.picks_reference",
      c.planner_picks_reference.load(std::memory_order_relaxed));
  put("planner.picks_dense",
      c.planner_picks_dense.load(std::memory_order_relaxed));
  put("planner.picks_interval",
      c.planner_picks_interval.load(std::memory_order_relaxed));
  put("server.inflight", inflight_.load(std::memory_order_relaxed));
  put("server.open_connections",
      open_connections_.load(std::memory_order_relaxed));
  put("server.reserved_bytes",
      reserved_bytes_.load(std::memory_order_relaxed));
  put("server.draining", draining_.load(std::memory_order_acquire) ? 1 : 0);
  put("server.ready", ready() ? 1 : 0);
  std::shared_ptr<ResidentTreeCache> corpus = this->corpus();
  put("corpus.generation", static_cast<std::int64_t>(corpus->generation()));
  put("corpus.resident_trees", corpus->resident_trees());
  put("corpus.resident_bytes", corpus->resident_bytes());
  put("corpus.peak_bytes", corpus->peak_bytes());
  put("corpus.evictions", corpus->evictions());
  put("corpus.capacity_bytes", corpus->capacity_bytes());
  return stats;
}

bool QueryServer::ready() const {
  if (draining_.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || terminated_) return false;
  }
  std::shared_ptr<ResidentTreeCache> corpus = this->corpus();
  return corpus != nullptr && corpus->resident_trees() > 0;
}

std::shared_ptr<ResidentTreeCache> QueryServer::corpus() const {
  std::lock_guard<std::mutex> lock(corpus_mu_);
  return corpus_;
}

void QueryServer::SwapCorpus(std::shared_ptr<ResidentTreeCache> next,
                             double build_ms) {
  if (next == nullptr) return;
  ServerMetrics& metrics = ServerMetrics::Get();
  std::shared_ptr<ResidentTreeCache> old;
  {
    std::lock_guard<std::mutex> lock(corpus_mu_);
    old = std::move(corpus_);
    corpus_ = std::move(next);
    metrics.corpus_generation->Set(
        static_cast<std::int64_t>(corpus_->generation()));
  }
  {
    // A new corpus invalidates old poison verdicts: the tree contents
    // behind a fingerprint may have changed.
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    quarantine_.clear();
  }
  counters_.reloads.fetch_add(1, std::memory_order_relaxed);
  metrics.reloads->Increment();
  metrics.reload_latency_ms->Observe(build_ms);
  // `old` dies here unless in-flight queries pinned it; then the last
  // pin's release frees the generation (and its accountant's books).
}

std::uint64_t QueryServer::QuarantineKey(const QueryRequest& query) {
  // Fingerprint the pair, not the request: deadline_ms is excluded so a
  // client cannot dodge the quarantine by re-submitting with a
  // different budget.  The '\0' separator keeps ("ab","c") distinct
  // from ("a","bc"); tree names never contain NUL.
  std::uint64_t h = Fnv1a64(query.tree_name);
  h = Fnv1a64(std::string_view("\0", 1), h);
  return Fnv1a64(query.program_text, h);
}

bool QueryServer::IsQuarantined(std::uint64_t key) {
  if (options_.max_consecutive_failures <= 0) return false;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  auto it = quarantine_.find(key);
  return it != quarantine_.end() &&
         it->second >= options_.max_consecutive_failures;
}

void QueryServer::RecordQuarantineOutcome(std::uint64_t key,
                                          bool governor_tripped) {
  if (options_.max_consecutive_failures <= 0) return;
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  if (!governor_tripped) {
    quarantine_.erase(key);
    return;
  }
  if (quarantine_.size() >= kQuarantineTableCap &&
      quarantine_.find(key) == quarantine_.end()) {
    quarantine_.clear();
  }
  ++quarantine_[key];
}

void QueryServer::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;
  }
  queue_cv_.notify_all();
}

void QueryServer::JoinFinishedConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (auto it = conns_.begin(); it != conns_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = conns_.erase(it);
    } else {
      ++it;
    }
  }
}

void QueryServer::AwaitTermination() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || terminated_) return;
    terminated_ = true;
  }
  BeginDrain();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // Grace phase: in-flight requests get drain_deadline_ms to finish.
  const Clock::time_point grace_deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_deadline_ms);
  while (inflight_.load(std::memory_order_acquire) > 0 &&
         Clock::now() < grace_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Force phase: cooperatively cancel whatever is still running — every
  // running query aborts at its next transition with kCancelled and is
  // accounted `drained`.
  if (inflight_.load(std::memory_order_acquire) > 0) {
    cancel_.store(true, std::memory_order_release);
    queue_cv_.notify_all();
    while (inflight_.load(std::memory_order_acquire) > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  // Every admitted request is answered; unblock idle readers and join
  // the connection fleet.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const auto& conn : conns_) {
      if (!conn->done.load(std::memory_order_acquire)) {
        shutdown(conn->fd, SHUT_RDWR);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      if (conn->thread.joinable()) conn->thread.join();
    }
    conns_.clear();
  }
  stop_workers_.store(true, std::memory_order_release);
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

}  // namespace treewalk
