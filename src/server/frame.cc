#include "src/server/frame.h"

#include <algorithm>
#include <cstring>

namespace treewalk {

namespace {

void PutU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian cursor: every Get* advances or fails,
/// so decoders cannot read past the body no matter how it was cut.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool GetU8(std::uint8_t& v) {
    if (data_.size() < 1) return false;
    v = static_cast<std::uint8_t>(data_[0]);
    data_.remove_prefix(1);
    return true;
  }
  bool GetU16(std::uint16_t& v) {
    if (data_.size() < 2) return false;
    v = 0;
    for (int i = 0; i < 2; ++i) {
      v = static_cast<std::uint16_t>(
          v | static_cast<std::uint16_t>(
                  static_cast<unsigned char>(data_[static_cast<size_t>(i)]))
                  << (8 * i));
    }
    data_.remove_prefix(2);
    return true;
  }
  bool GetU32(std::uint32_t& v) {
    if (data_.size() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(data_[static_cast<size_t>(i)]))
           << (8 * i);
    }
    data_.remove_prefix(4);
    return true;
  }
  bool GetU64(std::uint64_t& v) {
    if (data_.size() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(data_[static_cast<size_t>(i)]))
           << (8 * i);
    }
    data_.remove_prefix(8);
    return true;
  }
  /// Reads a `len`-byte string.  The length was already decoded from
  /// the same bounded body, so this can never allocate more than the
  /// frame cap.
  bool GetBytes(std::size_t len, std::string& out) {
    if (data_.size() < len) return false;
    out.assign(data_.data(), len);
    data_.remove_prefix(len);
    return true;
  }
  bool empty() const { return data_.empty(); }

 private:
  std::string_view data_;
};

Status Malformed(const char* what) {
  return InvalidArgument(std::string("malformed frame: ") + what);
}

}  // namespace

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kQuery: return "query";
    case MessageType::kStats: return "stats";
    case MessageType::kMetrics: return "metrics";
    case MessageType::kPing: return "ping";
    case MessageType::kHealth: return "health";
    case MessageType::kReady: return "ready";
    case MessageType::kQueryResult: return "query-result";
    case MessageType::kError: return "error";
    case MessageType::kStatsResult: return "stats-result";
    case MessageType::kMetricsResult: return "metrics-result";
    case MessageType::kPong: return "pong";
    case MessageType::kHealthResult: return "health-result";
    case MessageType::kReadyResult: return "ready-result";
  }
  return "?";
}

const char* WireErrorName(WireError code) {
  switch (code) {
    case WireError::kOverloaded: return "kOverloaded";
    case WireError::kDraining: return "kDraining";
    case WireError::kInvalidRequest: return "kInvalidRequest";
    case WireError::kNotFound: return "kNotFound";
    case WireError::kDeadlineExceeded: return "kDeadlineExceeded";
    case WireError::kResourceExhausted: return "kResourceExhausted";
    case WireError::kCancelled: return "kCancelled";
    case WireError::kRejectedProgram: return "kRejectedProgram";
    case WireError::kInternal: return "kInternal";
    case WireError::kQuarantined: return "kQuarantined";
  }
  return "?";
}

WireError WireErrorFromStatus(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return WireError::kInvalidRequest;
    case StatusCode::kNotFound: return WireError::kNotFound;
    case StatusCode::kDeadlineExceeded: return WireError::kDeadlineExceeded;
    case StatusCode::kResourceExhausted: return WireError::kResourceExhausted;
    case StatusCode::kCancelled: return WireError::kCancelled;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kNondeterminism:
      return WireError::kRejectedProgram;
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return WireError::kInternal;
  }
  return WireError::kInternal;
}

std::int64_t StatsMap::Value(std::string_view key,
                             std::int64_t fallback) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return fallback;
}

std::string EncodeFrame(MessageType type, std::string_view body) {
  std::string out;
  std::uint32_t payload = static_cast<std::uint32_t>(body.size()) + 1;
  if (body.size() + 1 > kMaxFrameBytes) {
    // Truncating would emit garbage; an empty typed error is at least
    // honest.  Unreachable from our own encoders (caps are enforced at
    // build time below).
    return EncodeFrame(MessageType::kError,
                       EncodeError({WireError::kInternal, "oversized frame"}));
  }
  out.reserve(4 + payload);
  PutU32(out, payload);
  out.push_back(static_cast<char>(type));
  out.append(body);
  return out;
}

Result<std::uint32_t> DecodeFrameLength(const unsigned char prefix[4]) {
  std::uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<std::uint32_t>(prefix[i]) << (8 * i);
  }
  if (n == 0) return Malformed("zero-length payload");
  if (n > kMaxFrameBytes) {
    return InvalidArgument("malformed frame: declared payload of " +
                           std::to_string(n) + " bytes exceeds the " +
                           std::to_string(kMaxFrameBytes) + "-byte cap");
  }
  return n;
}

Result<Frame> DecodeFramePayload(std::string_view payload) {
  if (payload.empty()) return Malformed("empty payload");
  auto raw = static_cast<std::uint8_t>(payload[0]);
  switch (static_cast<MessageType>(raw)) {
    case MessageType::kQuery:
    case MessageType::kStats:
    case MessageType::kMetrics:
    case MessageType::kPing:
    case MessageType::kHealth:
    case MessageType::kReady:
    case MessageType::kQueryResult:
    case MessageType::kError:
    case MessageType::kStatsResult:
    case MessageType::kMetricsResult:
    case MessageType::kPong:
    case MessageType::kHealthResult:
    case MessageType::kReadyResult:
      return Frame{static_cast<MessageType>(raw), payload.substr(1)};
  }
  return InvalidArgument("malformed frame: unknown message type " +
                         std::to_string(raw));
}

std::string EncodeQueryRequest(const QueryRequest& query) {
  std::string out;
  std::uint16_t name_len = static_cast<std::uint16_t>(
      std::min<std::size_t>(query.tree_name.size(), kMaxTreeNameBytes));
  std::uint32_t prog_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(query.program_text.size(), kMaxFrameBytes));
  out.reserve(2 + name_len + 4 + prog_len + 4);
  PutU16(out, name_len);
  out.append(query.tree_name.data(), name_len);
  PutU32(out, prog_len);
  out.append(query.program_text.data(), prog_len);
  PutU32(out, query.deadline_ms);
  return out;
}

Result<QueryRequest> DecodeQueryRequest(std::string_view body) {
  Cursor cur(body);
  QueryRequest query;
  std::uint16_t name_len = 0;
  if (!cur.GetU16(name_len)) return Malformed("truncated tree-name length");
  if (name_len > kMaxTreeNameBytes) {
    return Malformed("tree name exceeds the 256-byte cap");
  }
  if (!cur.GetBytes(name_len, query.tree_name)) {
    return Malformed("truncated tree name");
  }
  std::uint32_t prog_len = 0;
  if (!cur.GetU32(prog_len)) return Malformed("truncated program length");
  // The body itself is already <= kMaxFrameBytes; this check turns an
  // inconsistent inner length into a typed error instead of a bounds
  // failure inside GetBytes.
  if (prog_len > kMaxFrameBytes) {
    return Malformed("program length exceeds the frame cap");
  }
  if (!cur.GetBytes(prog_len, query.program_text)) {
    return Malformed("truncated program text");
  }
  if (!cur.GetU32(query.deadline_ms)) {
    return Malformed("truncated deadline");
  }
  if (!cur.empty()) return Malformed("trailing bytes after query");
  return query;
}

std::string EncodeQueryResult(const QueryResultMsg& result) {
  std::string out;
  out.reserve(1 + 1 + 4 + 8 + 8);
  out.push_back(result.accepted ? 1 : 0);
  out.push_back(static_cast<char>(result.rung));
  PutU32(out, result.attempts);
  PutU64(out, static_cast<std::uint64_t>(result.steps));
  PutU64(out, static_cast<std::uint64_t>(result.atp_calls));
  return out;
}

Result<QueryResultMsg> DecodeQueryResult(std::string_view body) {
  Cursor cur(body);
  QueryResultMsg result;
  std::uint8_t accepted = 0;
  std::uint64_t steps = 0, atp = 0;
  if (!cur.GetU8(accepted) || accepted > 1) {
    return Malformed("bad accepted flag");
  }
  if (!cur.GetU8(result.rung)) return Malformed("truncated rung");
  if (!cur.GetU32(result.attempts)) return Malformed("truncated attempts");
  if (!cur.GetU64(steps) || !cur.GetU64(atp)) {
    return Malformed("truncated counters");
  }
  if (!cur.empty()) return Malformed("trailing bytes after query result");
  result.accepted = accepted == 1;
  result.steps = static_cast<std::int64_t>(steps);
  result.atp_calls = static_cast<std::int64_t>(atp);
  return result;
}

std::string EncodeError(const ErrorMsg& error) {
  std::string out;
  std::uint32_t msg_len = static_cast<std::uint32_t>(
      std::min<std::size_t>(error.message.size(), 4096));
  out.reserve(1 + 4 + msg_len);
  out.push_back(static_cast<char>(error.code));
  PutU32(out, msg_len);
  out.append(error.message.data(), msg_len);
  return out;
}

Result<ErrorMsg> DecodeError(std::string_view body) {
  Cursor cur(body);
  ErrorMsg error;
  std::uint8_t code = 0;
  if (!cur.GetU8(code)) return Malformed("truncated error code");
  if (code < static_cast<std::uint8_t>(WireError::kOverloaded) ||
      code > static_cast<std::uint8_t>(WireError::kQuarantined)) {
    return Malformed("unknown error code");
  }
  error.code = static_cast<WireError>(code);
  std::uint32_t msg_len = 0;
  if (!cur.GetU32(msg_len)) return Malformed("truncated message length");
  if (msg_len > kMaxFrameBytes) return Malformed("oversized error message");
  if (!cur.GetBytes(msg_len, error.message)) {
    return Malformed("truncated error message");
  }
  if (!cur.empty()) return Malformed("trailing bytes after error");
  return error;
}

std::string EncodeProbeResult(const ProbeResultMsg& probe) {
  std::string out;
  out.push_back(probe.ok ? 1 : 0);
  return out;
}

Result<ProbeResultMsg> DecodeProbeResult(std::string_view body) {
  Cursor cur(body);
  std::uint8_t ok = 0;
  if (!cur.GetU8(ok) || ok > 1) return Malformed("bad probe flag");
  if (!cur.empty()) return Malformed("trailing bytes after probe result");
  ProbeResultMsg probe;
  probe.ok = ok == 1;
  return probe;
}

std::string EncodeStats(const StatsMap& stats) {
  std::string out;
  PutU32(out, static_cast<std::uint32_t>(stats.entries.size()));
  for (const auto& [key, value] : stats.entries) {
    std::uint16_t key_len = static_cast<std::uint16_t>(
        std::min<std::size_t>(key.size(), 256));
    PutU16(out, key_len);
    out.append(key.data(), key_len);
    PutU64(out, static_cast<std::uint64_t>(value));
  }
  return out;
}

Result<StatsMap> DecodeStats(std::string_view body) {
  Cursor cur(body);
  StatsMap stats;
  std::uint32_t count = 0;
  if (!cur.GetU32(count)) return Malformed("truncated stats count");
  // Each entry is at least 2 + 8 bytes; an impossible count is rejected
  // before the reserve below can balloon.
  if (count > kMaxFrameBytes / 10) return Malformed("implausible stats count");
  stats.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint16_t key_len = 0;
    if (!cur.GetU16(key_len)) return Malformed("truncated stats key length");
    if (key_len > 256) return Malformed("oversized stats key");
    std::string key;
    if (!cur.GetBytes(key_len, key)) return Malformed("truncated stats key");
    std::uint64_t value = 0;
    if (!cur.GetU64(value)) return Malformed("truncated stats value");
    stats.entries.emplace_back(std::move(key),
                               static_cast<std::int64_t>(value));
  }
  if (!cur.empty()) return Malformed("trailing bytes after stats");
  return stats;
}

}  // namespace treewalk
