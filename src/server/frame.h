#ifndef TREEWALK_SERVER_FRAME_H_
#define TREEWALK_SERVER_FRAME_H_

/// Wire protocol of `twq serve` (docs/SERVER.md).
///
/// Every message is one length-prefixed frame:
///
///   u32  payload length N, little-endian, 1 <= N <= kMaxFrameBytes
///   u8   message type (MessageType)
///   ...  N-1 body bytes, layout per type
///
/// The length prefix is validated *before* any allocation, so an
/// adversarial 4 GiB prefix costs the server four bytes of reading and
/// one typed kInvalidArgument — never an allocation.  All integers are
/// little-endian and unaligned; strings are length-prefixed, never
/// NUL-terminated.  Decoders are total: any byte string produces either
/// a value or a typed Status (fuzzed by tests/fuzz/fuzz_serve_frame.cc;
/// malformation table in tests/serve_frame_test.cc).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace treewalk {

/// Hard cap on one frame's payload (type byte + body).  Programs are
/// the only unbounded field; 1 MiB of program text is far beyond any
/// real query and small enough that a malicious fleet cannot balloon
/// the daemon by holding half-sent maximal frames.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Cap on a query's tree-name field (a corpus key, not a path).
inline constexpr std::uint32_t kMaxTreeNameBytes = 256;

/// On-wire message types.  Requests have the high bit clear, responses
/// set, so a stray response byte can never decode as a request.
enum class MessageType : std::uint8_t {
  kQuery = 0x01,    ///< run a program on a named corpus tree
  kStats = 0x02,    ///< server/engine counter snapshot (StatsMap)
  kMetrics = 0x03,  ///< live Prometheus text exposition
  kPing = 0x04,     ///< protocol echo (answered even by a server that
                    ///< could not serve a query; see kHealth/kReady)
  kHealth = 0x05,   ///< liveness probe: "is the process serving frames?"
  kReady = 0x06,    ///< readiness probe: "should a balancer send work?"

  kQueryResult = 0x81,   ///< QueryResultMsg
  kError = 0x82,         ///< ErrorMsg (typed; includes kOverloaded)
  kStatsResult = 0x83,   ///< StatsMap
  kMetricsResult = 0x84, ///< Prometheus text body
  kPong = 0x85,          ///< empty body
  kHealthResult = 0x86,  ///< ProbeResultMsg (ok == 1 whenever answered)
  kReadyResult = 0x87,   ///< ProbeResultMsg (ok == accepting work)
};

const char* MessageTypeName(MessageType type);

/// Typed error codes a server can answer with.  The first two are
/// server-boundary conditions with no StatusCode equivalent; the rest
/// mirror StatusCode so an engine failure maps 1:1 onto the wire.
enum class WireError : std::uint8_t {
  kOverloaded = 1,        ///< admission control shed this request
  kDraining = 2,          ///< server is draining; no new work accepted
  kInvalidRequest = 3,    ///< malformed frame or unparsable program
  kNotFound = 4,          ///< unknown tree name
  kDeadlineExceeded = 5,  ///< per-request deadline tripped
  kResourceExhausted = 6, ///< per-request memory/step budget tripped
  kCancelled = 7,         ///< request aborted by shutdown mid-run
  kRejectedProgram = 8,   ///< program violates its restriction class
  kInternal = 9,          ///< engine invariant violation / injected fault
  kQuarantined = 10,      ///< formula x tree pair quarantined as poison
};

const char* WireErrorName(WireError code);

/// StatusCode -> wire code for engine/parse failures (the server-side
/// boundary codes kOverloaded/kDraining/kQuarantined are produced by
/// the server, not mapped).
WireError WireErrorFromStatus(StatusCode code);

/// kQuery body.
struct QueryRequest {
  std::string tree_name;     ///< corpus key (u16 length prefix on wire)
  std::string program_text;  ///< .twp text (u32 length prefix on wire)
  /// Client deadline budget in ms; 0 = server default.  The server
  /// clamps it to its --max-deadline-ms.
  std::uint32_t deadline_ms = 0;
};

/// kQueryResult body.
struct QueryResultMsg {
  bool accepted = false;
  std::uint8_t rung = 0;       ///< degradation rung of the final attempt
  std::uint32_t attempts = 1;  ///< attempts the retry ladder ran
  std::int64_t steps = 0;
  std::int64_t atp_calls = 0;
};

/// kError body.
struct ErrorMsg {
  WireError code = WireError::kInternal;
  std::string message;
};

/// kHealthResult / kReadyResult body.  Liveness and readiness are
/// deliberately distinct (docs/SERVER.md, "Operational runbook"): a
/// draining server is alive (kHealthResult ok=1 on an established
/// connection) but not ready (kReadyResult ok=0), so a supervisor
/// restarts only dead processes while a balancer stops routing early.
struct ProbeResultMsg {
  bool ok = false;
};

/// kStatsResult body: an ordered key -> i64 map, self-describing so
/// the loadgen and tests can assert served/shed/drained counts without
/// scraping stderr.  Keys are catalogued in docs/SERVER.md.
struct StatsMap {
  std::vector<std::pair<std::string, std::int64_t>> entries;

  /// Value for `key`, or `fallback` when absent.
  std::int64_t Value(std::string_view key, std::int64_t fallback = 0) const;
};

/// Frames a payload (type byte + body) with its length prefix.  The
/// caller keeps bodies under kMaxFrameBytes; oversize is a programming
/// error and is clamped to an empty kError frame rather than silently
/// emitting an unparsable one.
std::string EncodeFrame(MessageType type, std::string_view body);

/// Validates a length prefix.  `prefix` must point at 4 bytes.
/// Returns the payload length, or kInvalidArgument for 0 or > cap —
/// *before* the caller allocates anything.
Result<std::uint32_t> DecodeFrameLength(const unsigned char prefix[4]);

/// One decoded frame: the type byte plus a view of the body (aliasing
/// the caller's buffer).
struct Frame {
  MessageType type = MessageType::kPing;
  std::string_view body;
};

/// Splits a complete payload (as sized by DecodeFrameLength) into type
/// and body, validating the type byte.
Result<Frame> DecodeFramePayload(std::string_view payload);

// Body codecs.  Encode* return the body only (frame with EncodeFrame);
// Decode* are total over arbitrary bytes.
std::string EncodeQueryRequest(const QueryRequest& query);
Result<QueryRequest> DecodeQueryRequest(std::string_view body);

std::string EncodeQueryResult(const QueryResultMsg& result);
Result<QueryResultMsg> DecodeQueryResult(std::string_view body);

std::string EncodeError(const ErrorMsg& error);
Result<ErrorMsg> DecodeError(std::string_view body);

std::string EncodeProbeResult(const ProbeResultMsg& probe);
Result<ProbeResultMsg> DecodeProbeResult(std::string_view body);

std::string EncodeStats(const StatsMap& stats);
Result<StatsMap> DecodeStats(std::string_view body);

}  // namespace treewalk

#endif  // TREEWALK_SERVER_FRAME_H_
