#ifndef TREEWALK_SERVER_SERVER_H_
#define TREEWALK_SERVER_SERVER_H_

/// `twq serve` (docs/SERVER.md): a resident query daemon over a
/// preloaded corpus of trees.  The design goal is *overload safety*,
/// not raw throughput — every resource a client can consume is bounded
/// before it is consumed:
///
///   frames      length-validated before allocation (src/server/frame.h)
///   queue       at most ServerOptions::max_queue requests in flight;
///               excess is shed with a typed kOverloaded, never queued
///   memory      each admitted request reserves its per-request budget
///               against the server-wide budget; reservation failure is
///               kOverloaded (admission), budget trips inside the run
///               are kResourceExhausted (execution)
///   time        every request runs under a deadline (client budget
///               clamped to max_deadline_ms, else default_deadline_ms)
///   sockets     at most max_connections clients; slow readers/writers
///               are reaped after io_timeout_ms
///
/// Shutdown is a first-class path: BeginDrain() stops accepting,
/// in-flight requests get drain_deadline_ms to finish, stragglers are
/// cooperatively cancelled (kCancelled on the wire, counted `drained`),
/// and AwaitTermination() returns only when every thread is joined.
/// The accounting invariant — checked by tests/serve_chaos_test.cc down
/// to the last request — is
///
///   admitted == served_ok + served_error + drained
///
/// and every shed request is counted by reason.  Failpoint sites
/// server/{accept,read,write,dispatch} inject faults at each boundary.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/engine/engine.h"
#include "src/engine/input_cache.h"
#include "src/server/frame.h"

namespace treewalk {

struct ServerOptions {
  /// Listen address.  Loopback by default: the daemon speaks an
  /// unauthenticated protocol and is meant to sit behind a local
  /// front end.
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  int port = 0;
  /// Worker threads executing admitted queries.
  int num_workers = 4;
  /// Admission bound: maximum requests admitted but not yet answered
  /// (queued + running).  The queue can never grow beyond it.
  int max_queue = 64;
  /// Maximum simultaneously open client connections; excess connections
  /// are sent a best-effort kOverloaded and closed at accept.
  int max_connections = 64;
  /// Server-wide memory high-water for admitted requests: each
  /// admission reserves request_memory_budget_bytes against it.
  /// 0 = unlimited.
  std::int64_t memory_budget_bytes = 0;
  /// Memory budget each query runs under (0 = unlimited).
  std::int64_t request_memory_budget_bytes = 64ll << 20;
  /// Deadline for requests that do not carry a client budget.
  std::int64_t default_deadline_ms = 1000;
  /// Clamp on client-supplied deadline budgets.
  std::int64_t max_deadline_ms = 10000;
  /// How long BeginDrain() lets in-flight requests finish before
  /// cancelling them cooperatively.
  std::int64_t drain_deadline_ms = 2000;
  /// Slow-client guard: a connection that keeps a frame read or write
  /// blocked longer than this is reaped.
  std::int64_t io_timeout_ms = 5000;
  /// Retry policy applied to every query.  The RetryPolicy default
  /// (max_attempts = 1) means no server-side retries: the client owns
  /// end-to-end retries, and a retry budget multiplied across a full
  /// queue would defeat the deadline math.
  RetryPolicy retry;
  /// Seeds backoff jitter when retry.max_attempts > 1.
  std::uint64_t backoff_seed = 0;
  /// Poison-request quarantine: a formula x tree pair whose governor
  /// trips (deadline / memory) this many times *consecutively* is shed
  /// with a typed kQuarantined instead of re-burning a worker —
  /// Gottlob-Koch-Schulz pathological queries stay pathological no
  /// matter how often a client resubmits them.  0 disables the
  /// quarantine.  A served success (or any non-governor verdict) for
  /// the pair resets its streak; a corpus reload clears the table.
  int max_consecutive_failures = 0;
};

/// Monotonic counters behind the `stats` wire request.  All atomics:
/// read coherently enough for the reconciliation invariant because
/// every counter is incremented exactly once per request, before the
/// response that makes the client's observation possible.
struct ServerCounters {
  std::atomic<std::int64_t> connections_accepted{0};
  std::atomic<std::int64_t> connections_rejected{0};
  std::atomic<std::int64_t> requests_admitted{0};
  std::atomic<std::int64_t> served_ok{0};
  std::atomic<std::int64_t> served_error{0};
  std::atomic<std::int64_t> drained{0};
  std::atomic<std::int64_t> shed_queue{0};
  std::atomic<std::int64_t> shed_memory{0};
  std::atomic<std::int64_t> shed_draining{0};
  std::atomic<std::int64_t> protocol_errors{0};
  std::atomic<std::int64_t> slow_clients_reaped{0};
  std::atomic<std::int64_t> pings{0};
  std::atomic<std::int64_t> stats_requests{0};
  std::atomic<std::int64_t> metrics_requests{0};
  std::atomic<std::int64_t> health_probes{0};
  std::atomic<std::int64_t> ready_probes{0};
  /// Queries shed with kQuarantined (counted served_error as well: the
  /// request was admitted and answered, just without burning a worker).
  std::atomic<std::int64_t> quarantined{0};
  /// Completed corpus generation swaps (SwapCorpus calls).
  std::atomic<std::int64_t> reloads{0};
  /// Cost-based planner strategy picks accumulated from served queries'
  /// RunStats (PlanMode::kAuto; see src/logic/planner.h).
  std::atomic<std::int64_t> planner_picks_reference{0};
  std::atomic<std::int64_t> planner_picks_dense{0};
  std::atomic<std::int64_t> planner_picks_interval{0};
};

/// The daemon.  Lifecycle: construct → Start() → (serve) →
/// BeginDrain() → AwaitTermination().  All public methods are
/// thread-safe; BeginDrain() may be called from a signal-polling
/// driver loop at any time and is idempotent.
class QueryServer {
 public:
  /// `corpus` is the startup generation; queries resolve tree names
  /// through Lookup() only — every generation is preloaded before it is
  /// swapped in, so the hot path never does I/O.  SwapCorpus() replaces
  /// it atomically at reload.
  QueryServer(ServerOptions options,
              std::shared_ptr<ResidentTreeCache> corpus);
  /// Borrowed-corpus convenience for callers that own the cache for the
  /// server's whole lifetime (tests, benchmarks).  `corpus` must then
  /// outlive the server; SwapCorpus() still works and simply drops the
  /// non-owning reference.
  QueryServer(ServerOptions options, ResidentTreeCache* corpus);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept loop and worker pool.
  Status Start();

  /// The bound port (after Start(); meaningful with options.port == 0).
  int port() const { return port_; }

  /// Stops accepting, lets in-flight work finish within
  /// drain_deadline_ms, then cancels stragglers.  Idempotent.
  void BeginDrain();

  /// Blocks until every thread is joined.  Requires BeginDrain() to
  /// have been called (or calls it).  Safe to call once.
  void AwaitTermination();

  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Readiness as answered by the kReady probe: started, not draining,
  /// and holding a corpus generation with at least one tree.
  bool ready() const;

  /// The corpus generation new queries will pin (never null after
  /// construction).  In-flight queries may still be running on an
  /// earlier generation they pinned at dispatch.
  std::shared_ptr<ResidentTreeCache> corpus() const;

  /// Atomic live-reload swap: `next` becomes the generation every
  /// query dispatched from now on pins; queries already running keep
  /// their pinned generation until they answer, at which point the old
  /// cache (and its memory accounting) is released with the last pin.
  /// `build_ms` is the off-thread build latency, recorded in
  /// treewalk_server_reload_latency_ms.  The quarantine table is
  /// cleared — a new corpus deserves a fresh verdict.  Null `next` is
  /// ignored (a failed reload keeps the old generation serving).
  void SwapCorpus(std::shared_ptr<ResidentTreeCache> next, double build_ms);

  const ServerCounters& counters() const { return counters_; }

  /// The `stats` response body: server counters, gauges, and corpus
  /// cache occupancy, keys catalogued in docs/SERVER.md.
  StatsMap BuildStats() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// One admitted query waiting for / occupying a worker.
  struct PendingRequest {
    QueryRequest query;
    std::string response;  // complete encoded frame
    bool completed = false;
    std::mutex mu;
    std::condition_variable cv;
  };

  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  void WorkerLoop();

  /// Handles one well-framed request on the connection thread; returns
  /// the complete response frame.
  std::string HandleFrame(const Frame& frame);
  /// Admission control + dispatch for a query; returns the response.
  std::string DispatchQuery(QueryRequest query);
  /// Executes one admitted query on a worker.
  std::string ExecuteQuery(const QueryRequest& query);

  /// Reaps finished connection threads (accept loop housekeeping).
  void JoinFinishedConnections();

  /// FNV-1a fingerprint of a formula x tree pair (quarantine key).
  static std::uint64_t QuarantineKey(const QueryRequest& query);
  /// True when the pair's consecutive-governor-trip streak has crossed
  /// options_.max_consecutive_failures.
  bool IsQuarantined(std::uint64_t key);
  /// Folds one executed query's verdict into the streak table.
  void RecordQuarantineOutcome(std::uint64_t key, bool governor_tripped);

  ServerOptions options_;
  mutable std::mutex corpus_mu_;
  std::shared_ptr<ResidentTreeCache> corpus_;  // guarded by corpus_mu_
  ServerCounters counters_;

  /// Consecutive governor-trip streaks by formula x tree fingerprint,
  /// bounded: at kQuarantineTableCap entries the table is cleared (the
  /// cost of forgetting a streak is one more wasted attempt; the cost
  /// of an unbounded table is a memory leak an adversary controls).
  static constexpr std::size_t kQuarantineTableCap = 4096;
  std::mutex quarantine_mu_;
  std::unordered_map<std::uint64_t, int> quarantine_;

  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> draining_{false};
  std::atomic<bool> cancel_{false};        // polled by running queries
  std::atomic<bool> stop_workers_{false};
  std::atomic<int> open_connections_{0};
  std::atomic<int> inflight_{0};           // admitted, not yet answered
  std::atomic<std::int64_t> reserved_bytes_{0};
  std::atomic<std::uint64_t> next_request_id_{1};

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<PendingRequest*> queue_;

  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;

  mutable std::mutex lifecycle_mu_;
  bool started_ = false;
  bool terminated_ = false;
};

}  // namespace treewalk

#endif  // TREEWALK_SERVER_SERVER_H_
