#include "src/hyperset/hyperset.h"

#include <algorithm>
#include <cassert>

namespace treewalk {

std::strong_ordering operator<=>(const Hyperset& a, const Hyperset& b) {
  if (auto c = a.level_ <=> b.level_; c != 0) return c;
  if (a.level_ == 1) return a.atoms_ <=> b.atoms_;
  return a.members_ <=> b.members_;
}

Hyperset Hyperset::Atoms(std::vector<DataValue> atoms) {
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  Hyperset h(1);
  h.atoms_ = std::move(atoms);
  return h;
}

Result<Hyperset> Hyperset::Of(std::vector<Hyperset> members) {
  if (members.empty()) {
    return InvalidArgument(
        "cannot infer the level of an empty hyperset; use Hyperset(level)");
  }
  int level = members.front().level();
  for (const Hyperset& m : members) {
    if (m.level() != level) {
      return InvalidArgument("hyperset members have mixed levels");
    }
  }
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  Hyperset h(level + 1);
  h.members_ = std::move(members);
  return h;
}

std::string Hyperset::ToString() const {
  std::string out = "{";
  if (level_ == 1) {
    for (std::size_t i = 0; i < atoms_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(atoms_[i]);
    }
  } else {
    for (std::size_t i = 0; i < members_.size(); ++i) {
      if (i > 0) out += ", ";
      out += members_[i].ToString();
    }
  }
  out += "}";
  return out;
}

namespace {

void EncodeInto(const Hyperset& h, std::vector<DataValue>& out) {
  if (h.level() == 1) {
    out.push_back(1);
    out.insert(out.end(), h.atoms().begin(), h.atoms().end());
    return;
  }
  for (const Hyperset& m : h.members()) {
    out.push_back(h.level());
    EncodeInto(m, out);
  }
}

/// Parses one level-`level` encoding from s[pos...], stopping at the end
/// or at any marker of an enclosing level.  `top_level` is the outermost
/// level, bounding the marker range {1, ..., top_level}.
Result<Hyperset> DecodeFrom(int level, int top_level,
                            const std::vector<DataValue>& s,
                            std::size_t& pos) {
  if (level == 1) {
    if (pos >= s.size() || s[pos] != 1) {
      return InvalidArgument("expected marker 1 at position " +
                             std::to_string(pos));
    }
    ++pos;
    std::vector<DataValue> atoms;
    while (pos < s.size() && (s[pos] < 1 || s[pos] > top_level)) {
      atoms.push_back(s[pos++]);
    }
    return Hyperset::Atoms(std::move(atoms));
  }
  std::vector<Hyperset> members;
  while (pos < s.size() && s[pos] == level) {
    ++pos;
    TREEWALK_ASSIGN_OR_RETURN(
        Hyperset member, DecodeFrom(level - 1, top_level, s, pos));
    members.push_back(std::move(member));
  }
  if (members.empty()) return Hyperset(level);
  auto of = Hyperset::Of(std::move(members));
  assert(of.ok());
  return of;
}

}  // namespace

std::vector<DataValue> EncodeHyperset(const Hyperset& h) {
  std::vector<DataValue> out;
  EncodeInto(h, out);
  return out;
}

Result<Hyperset> DecodeHyperset(int level,
                                const std::vector<DataValue>& encoding) {
  if (level < 1) return InvalidArgument("level must be >= 1");
  std::size_t pos = 0;
  TREEWALK_ASSIGN_OR_RETURN(Hyperset h,
                            DecodeFrom(level, level, encoding, pos));
  if (pos != encoding.size()) {
    return InvalidArgument("trailing symbols after encoding at position " +
                           std::to_string(pos));
  }
  // Validate the D_m restriction: no atom may collide with a marker.
  struct Checker {
    int top_level;
    Status Check(const Hyperset& h) const {
      if (h.level() == 1) {
        for (DataValue v : h.atoms()) {
          if (v >= 1 && v <= top_level) {
            return InvalidArgument("atom " + std::to_string(v) +
                                   " collides with a marker");
          }
        }
        return Status::Ok();
      }
      for (const Hyperset& m : h.members()) {
        TREEWALK_RETURN_IF_ERROR(Check(m));
      }
      return Status::Ok();
    }
  };
  TREEWALK_RETURN_IF_ERROR(Checker{level}.Check(h));
  return h;
}

std::vector<Hyperset> EnumerateHypersets(
    int level, const std::vector<DataValue>& domain) {
  assert(level >= 1);
  if (level == 1) {
    // All subsets of the domain.
    std::vector<Hyperset> out;
    std::size_t n = domain.size();
    assert(n < 20);
    for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
      std::vector<DataValue> atoms;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) atoms.push_back(domain[i]);
      }
      out.push_back(Hyperset::Atoms(std::move(atoms)));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
  std::vector<Hyperset> lower = EnumerateHypersets(level - 1, domain);
  assert(lower.size() < 20);
  std::vector<Hyperset> out;
  for (std::size_t mask = 0; mask < (std::size_t{1} << lower.size());
       ++mask) {
    std::vector<Hyperset> members;
    for (std::size_t i = 0; i < lower.size(); ++i) {
      if ((mask >> i) & 1) members.push_back(lower[i]);
    }
    if (members.empty()) {
      out.push_back(Hyperset(level));
    } else {
      auto h = Hyperset::Of(std::move(members));
      assert(h.ok());
      out.push_back(std::move(h).value());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<DataValue> SplitString(const std::vector<DataValue>& f,
                                   const std::vector<DataValue>& g,
                                   DataValue hash) {
  std::vector<DataValue> out = f;
  out.push_back(hash);
  out.insert(out.end(), g.begin(), g.end());
  return out;
}

bool InLm(int m, const std::vector<DataValue>& s, DataValue hash) {
  // Exactly one separator.
  std::size_t count = 0;
  std::size_t split = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == hash) {
      ++count;
      split = i;
    }
  }
  if (count != 1) return false;
  std::vector<DataValue> f(s.begin(), s.begin() + static_cast<long>(split));
  std::vector<DataValue> g(s.begin() + static_cast<long>(split) + 1, s.end());
  auto hf = DecodeHyperset(m, f);
  auto hg = DecodeHyperset(m, g);
  return hf.ok() && hg.ok() && *hf == *hg;
}

std::string L1Sentence(DataValue hash) {
  const std::string H = std::to_string(hash);
  return
      // exactly one separator
      "exists h (val(a, h) = " + H + ") & "
      "forall h forall h2 (val(a, h) = " + H + " & val(a, h2) = " + H +
      " -> h = h2) & "
      // f starts with the marker 1
      "forall x (root(x) -> val(a, x) = 1) & "
      // g exists and starts with the marker 1
      "forall h (val(a, h) = " + H +
      " -> !(leaf(h)) & exists y (E(h, y) & val(a, y) = 1)) & "
      // markers appear nowhere else
      "forall x (val(a, x) = 1 -> root(x) | exists h (val(a, h) = " + H +
      " & E(h, x))) & "
      // every f-datum occurs in g
      "forall h (val(a, h) = " + H +
      " -> forall x ((desc(x, h) & !(root(x))) -> "
      "exists y (desc(h, y) & val(a, y) != 1 & val(a, y) = val(a, x)))) & "
      // every g-datum occurs in f
      "forall h (val(a, h) = " + H +
      " -> forall y ((desc(h, y) & val(a, y) != 1) -> "
      "exists x (desc(x, h) & !(root(x)) & val(a, x) = val(a, y))))";
}

}  // namespace treewalk
