#ifndef TREEWALK_HYPERSET_HYPERSET_H_
#define TREEWALK_HYPERSET_HYPERSET_H_

#include <compare>
#include <string>
#include <vector>

#include "src/common/data_value.h"
#include "src/common/result.h"

namespace treewalk {

/// The i-hypersets of Section 4: a 1-hyperset is a finite subset of D; an
/// i-hyperset is a finite set of (i-1)-hypersets.  Values are kept
/// canonical (sorted, deduplicated), so equality is structural.
class Hyperset {
 public:
  /// The empty hyperset of the given level (level >= 1).
  explicit Hyperset(int level = 1) : level_(level) {}

  /// A 1-hyperset from atoms.
  static Hyperset Atoms(std::vector<DataValue> atoms);
  /// A level-(members' level + 1) hyperset from members, which must share
  /// one level.
  static Result<Hyperset> Of(std::vector<Hyperset> members);

  int level() const { return level_; }
  std::size_t size() const {
    return level_ == 1 ? atoms_.size() : members_.size();
  }
  bool empty() const { return size() == 0; }

  const std::vector<DataValue>& atoms() const { return atoms_; }
  const std::vector<Hyperset>& members() const { return members_; }

  /// "{1, 2}" / "{{1}, {2, 3}}".
  std::string ToString() const;

  friend bool operator==(const Hyperset&, const Hyperset&) = default;
  friend std::strong_ordering operator<=>(const Hyperset& a,
                                          const Hyperset& b);

 private:
  int level_;
  std::vector<DataValue> atoms_;    // level 1
  std::vector<Hyperset> members_;  // level > 1
};

/// Section 4's string encoding over D_m = D \ {1, ..., m}: a 1-hyperset
/// {d_1 < ... < d_n} encodes as "1 d_1 ... d_n"; an i-hyperset
/// {H(w_1), ...} as "i w_1 i w_2 ...".  Members are emitted in canonical
/// order, so Encode is injective on hypersets.
std::vector<DataValue> EncodeHyperset(const Hyperset& h);

/// Decodes an encoding of a level-`level` hyperset.  The data values must
/// avoid the marker range {1, ..., level} (the D_m restriction);
/// malformed encodings are kInvalidArgument.
Result<Hyperset> DecodeHyperset(int level,
                                const std::vector<DataValue>& encoding);

/// All level-`level` hypersets over `domain`, in canonical order.  There
/// are exp_level(|domain|) of them (the tower function of Lemma 4.6), so
/// keep the inputs tiny.
std::vector<Hyperset> EnumerateHypersets(int level,
                                         const std::vector<DataValue>& domain);

/// The split string f#g of Section 4 (`hash` plays '#').
std::vector<DataValue> SplitString(const std::vector<DataValue>& f,
                                   const std::vector<DataValue>& g,
                                   DataValue hash);

/// Membership in L^m: s must be f#g with f, g encodings of m-hypersets
/// over D_m \ {hash} and H(f) = H(g).  Returns false (not an error) for
/// strings outside the encoding format, matching the language semantics.
bool InLm(int m, const std::vector<DataValue>& s, DataValue hash);

/// Lemma 4.2 witness for m = 1: an FO sentence over monadic trees (label
/// "s", attribute "a") that holds exactly on the strings of L^1.  The
/// sentence is built for the given hash value.
std::string L1Sentence(DataValue hash);

}  // namespace treewalk

#endif  // TREEWALK_HYPERSET_HYPERSET_H_
