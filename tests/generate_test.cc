#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/tree/generate.h"
#include "src/tree/traversal.h"

namespace treewalk {
namespace {

TEST(RandomTree, RespectsNodeCountAndArity) {
  std::mt19937 rng(1);
  RandomTreeOptions options;
  options.num_nodes = 200;
  options.max_children = 3;
  Tree t = RandomTree(rng, options);
  EXPECT_EQ(t.size(), 200u);
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    EXPECT_LE(t.ChildCount(u), 3);
  }
}

TEST(RandomTree, AttributeValuesInRange) {
  std::mt19937 rng(2);
  RandomTreeOptions options;
  options.num_nodes = 50;
  options.value_range = 4;
  options.attributes = {"p", "q"};
  Tree t = RandomTree(rng, options);
  for (const char* name : {"p", "q"}) {
    AttrId a = t.FindAttribute(name);
    ASSERT_NE(a, kNoAttr);
    for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
      EXPECT_GE(t.attr(a, u), 0);
      EXPECT_LT(t.attr(a, u), 4);
    }
  }
}

TEST(RandomTree, DeterministicGivenSeed) {
  RandomTreeOptions options;
  options.num_nodes = 40;
  std::mt19937 rng1(42), rng2(42);
  Tree t1 = RandomTree(rng1, options);
  Tree t2 = RandomTree(rng2, options);
  ASSERT_EQ(t1.size(), t2.size());
  for (NodeId u = 0; u < static_cast<NodeId>(t1.size()); ++u) {
    EXPECT_EQ(t1.Parent(u), t2.Parent(u));
    EXPECT_EQ(t1.LabelName(t1.label(u)), t2.LabelName(t2.label(u)));
  }
}

TEST(FullTree, SizeIsGeometricSum) {
  Tree t = FullTree(2, 3);
  EXPECT_EQ(t.size(), 15u);  // 1 + 2 + 4 + 8
  EXPECT_EQ(Height(t), 3);
  Tree single = FullTree(3, 0);
  EXPECT_EQ(single.size(), 1u);
}

TEST(FullTree, EveryInternalNodeHasExactArity) {
  Tree t = FullTree(3, 2);
  EXPECT_EQ(t.size(), 13u);
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    if (!t.IsLeaf(u)) {
      EXPECT_EQ(t.ChildCount(u), 3);
    }
  }
}

TEST(RandomString, IsMonadic) {
  std::mt19937 rng(3);
  Tree t = RandomString(rng, 25, 5);
  EXPECT_EQ(t.size(), 25u);
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    EXPECT_LE(t.ChildCount(u), 1);
  }
}

bool Example32PropertyHolds(const Tree& t) {
  Symbol delta = t.FindLabel("delta");
  AttrId a = t.FindAttribute("a");
  for (NodeId u = 0; u < static_cast<NodeId>(t.size()); ++u) {
    if (t.label(u) != delta) continue;
    std::set<DataValue> values;
    for (NodeId v = u + 1; v < t.SubtreeEnd(u); ++v) {
      if (t.IsLeaf(v)) values.insert(t.attr(a, v));
    }
    if (values.size() > 1) return false;
  }
  return true;
}

TEST(Example32Tree, UniformSatisfiesProperty) {
  std::mt19937 rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = Example32Tree(rng, 30, /*uniform=*/true);
    EXPECT_TRUE(Example32PropertyHolds(t)) << "trial " << trial;
  }
}

TEST(Example32Tree, PoisonedViolatesProperty) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Tree t = Example32Tree(rng, 30, /*uniform=*/false);
    EXPECT_FALSE(Example32PropertyHolds(t)) << "trial " << trial;
  }
}

TEST(Example32Tree, MinimumSize) {
  std::mt19937 rng(6);
  Tree t = Example32Tree(rng, 3, /*uniform=*/false);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(Example32PropertyHolds(t));
}

}  // namespace
}  // namespace treewalk
